//! Bit-for-bit equivalence wall for the incremental evaluators.
//!
//! Every delta-scored move must reproduce `ObjectiveEvaluator::evaluate`
//! exactly — not within a tolerance, but to the last bit (`f64::to_bits`).
//! That is what makes the local-search hot paths safe: an incremental area
//! that drifted by even one ulp would make accept/reject decisions diverge
//! from the from-scratch evaluator and break the solver differential
//! oracles downstream.
//!
//! The properties cover the move kinds the solvers actually issue:
//!
//! * adjacent and non-adjacent pair swaps (tabu best/first-swap scans),
//! * relocations (VNS shift descent, LNS greedy repair),
//! * span rewrites (LNS destroy-repair windows),
//! * whole-order replacement (cooperative warm-start adoption),
//! * long random sequences interleaving evaluations with commits, which
//!   would expose any stale per-position cache left behind by `commit_*`.

use idd_core::{
    DeltaEvaluator, Deployment, IndexId, InstanceBuilder, ObjectiveEvaluator, PrefixEvaluator,
    ProblemInstance, SuffixReplayEvaluator,
};
use proptest::prelude::*;

/// A random consistent problem instance with up to `max_indexes` indexes.
fn arb_instance(max_indexes: usize) -> impl Strategy<Value = ProblemInstance> {
    (2..=max_indexes).prop_flat_map(move |n| {
        let costs = proptest::collection::vec(1.0f64..20.0, n);
        let queries = proptest::collection::vec(
            (
                20.0f64..200.0,
                proptest::collection::vec(
                    (proptest::collection::vec(0..n, 1..=3.min(n)), 0.05f64..0.9),
                    1..=4,
                ),
            ),
            1..=6,
        );
        let interactions = proptest::collection::vec((0..n, 0..n, 0.05f64..0.8), 0..=4);
        (costs, queries, interactions).prop_map(move |(costs, queries, interactions)| {
            let mut b = InstanceBuilder::new("delta-equivalence");
            for c in &costs {
                b.add_index(*c);
            }
            for (runtime, plans) in queries {
                let q = b.add_query(runtime);
                for (members, fraction) in plans {
                    let ids: Vec<IndexId> = members.into_iter().map(IndexId::new).collect();
                    b.add_plan(q, ids, runtime * fraction);
                }
            }
            for (target, helper, fraction) in interactions {
                if target != helper {
                    let saving = costs[target] * fraction;
                    b.add_build_interaction(IndexId::new(target), IndexId::new(helper), saving);
                }
            }
            b.build().expect("generated instance is consistent")
        })
    })
}

/// An instance plus a random base permutation of its indexes.
fn arb_instance_and_base(
    max_indexes: usize,
) -> impl Strategy<Value = (ProblemInstance, Deployment)> {
    arb_instance(max_indexes).prop_flat_map(|inst| {
        let n = inst.num_indexes();
        (
            Just(inst),
            Just(()).prop_perturb(move |_, mut rng| {
                let mut order: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = (rng.next_u64() as usize) % (i + 1);
                    order.swap(i, j);
                }
                Deployment::from_raw(order)
            }),
        )
    })
}

/// One move in a generated local-search episode.
#[derive(Debug, Clone)]
enum Move {
    /// Swap positions `a` and `b` (`a == b` allowed: the identity move).
    Swap { a: usize, b: usize, commit: bool },
    /// Relocate position `from` to `to`.
    Shift {
        from: usize,
        to: usize,
        commit: bool,
    },
    /// Reverse the window `[at, at + len)` — a span rewrite.
    Reverse { at: usize, len: usize, commit: bool },
    /// Replace the whole base with a freshly shuffled order.
    Reseed { seed: u64 },
}

/// A random episode of up to `max_len` moves over an `n`-position order.
/// Adjacent swaps are over-weighted: they are the O(1) fast path and the
/// most common move the tabu scans issue.
fn arb_moves(n: usize, max_len: usize) -> impl Strategy<Value = Vec<Move>> {
    (1..=max_len).prop_perturb(move |len, mut rng| {
        (0..len)
            .map(|_| {
                let commit = rng.next_u64() & 1 == 0;
                let pos = |rng: &mut proptest::TestRng| rng.below(n as u64) as usize;
                match rng.below(10) {
                    0..=3 => {
                        // Adjacent swap.
                        let a = rng.below(n.saturating_sub(1).max(1) as u64) as usize;
                        Move::Swap {
                            a,
                            b: (a + 1).min(n - 1),
                            commit,
                        }
                    }
                    4..=5 => Move::Swap {
                        a: pos(&mut rng),
                        b: pos(&mut rng),
                        commit,
                    },
                    6..=7 => Move::Shift {
                        from: pos(&mut rng),
                        to: pos(&mut rng),
                        commit,
                    },
                    8 => {
                        let at = pos(&mut rng);
                        let len = 2 + rng.below(4) as usize;
                        Move::Reverse {
                            at,
                            len: len.min(n - at),
                            commit,
                        }
                    }
                    _ => Move::Reseed {
                        seed: rng.next_u64(),
                    },
                }
            })
            .collect()
    })
}

fn shuffled(n: usize, seed: u64) -> Deployment {
    // Tiny deterministic LCG shuffle; good enough for generating orders.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() as usize) % (i + 1);
        order.swap(i, j);
    }
    Deployment::from_raw(order)
}

fn assert_bits(label: &str, got: f64, want: f64) {
    assert_eq!(
        got.to_bits(),
        want.to_bits(),
        "{label}: delta path produced {got:?} but the from-scratch evaluator says {want:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every pair swap — adjacent or not — reproduces the from-scratch area
    /// bit-for-bit, and probing does not corrupt the evaluator (the same
    /// probe repeated returns the same bits).
    #[test]
    fn swaps_match_full_evaluation((inst, base) in arb_instance_and_base(10)) {
        let n = inst.num_indexes();
        let full = ObjectiveEvaluator::new(&inst);
        let mut delta = DeltaEvaluator::new(&inst, base.clone());
        assert_bits("base area", delta.base_area(), full.evaluate_area(&base));
        for a in 0..n {
            for b in a..n {
                let mut swapped = base.clone();
                swapped.swap(a, b);
                let want = full.evaluate_area(&swapped);
                assert_bits("swap", delta.evaluate_swap(a, b), want);
                assert_bits("swap (repeat probe)", delta.evaluate_swap(a, b), want);
            }
        }
    }

    /// Every relocation reproduces `Deployment::relocate` + full evaluation
    /// bit-for-bit.
    #[test]
    fn shifts_match_full_evaluation((inst, base) in arb_instance_and_base(9)) {
        let n = inst.num_indexes();
        let full = ObjectiveEvaluator::new(&inst);
        let mut delta = DeltaEvaluator::new(&inst, base.clone());
        for from in 0..n {
            for to in 0..n {
                let mut moved = base.clone();
                moved.relocate(from, to);
                assert_bits("shift", delta.evaluate_shift(from, to), full.evaluate_area(&moved));
            }
        }
    }

    /// Span rewrites (the LNS destroy-repair shape) and whole-order
    /// replacement agree with the from-scratch evaluator.
    #[test]
    fn spans_and_orders_match_full_evaluation(
        ((inst, base), at, len, seed) in (
            arb_instance_and_base(10),
            0usize..10,
            2usize..6,
            0u64..u64::MAX,
        )
    ) {
        let n = inst.num_indexes();
        let full = ObjectiveEvaluator::new(&inst);
        let mut delta = DeltaEvaluator::new(&inst, base.clone());

        let at = at.min(n - 1);
        let len = len.min(n - at);
        let mut span: Vec<IndexId> = base.order()[at..at + len].to_vec();
        span.reverse();
        let mut rewritten = base.clone();
        rewritten.replace_span(at, &span);
        assert_bits("span", delta.evaluate_span(at, &span), full.evaluate_area(&rewritten));

        let other = shuffled(n, seed);
        assert_bits("order", delta.evaluate_order(&other), full.evaluate_area(&other));
        // Probing a foreign order must not disturb the base.
        assert_bits("base after probes", delta.base_area(), full.evaluate_area(&base));
    }

    /// Long random episodes interleaving probes with commits: after every
    /// commit the evaluator's cached area and every subsequent probe must
    /// still match the from-scratch evaluator. This is the stale-cache
    /// regression wall — a `commit_*` that forgets to refresh a
    /// per-position cache line fails here within a few moves.
    #[test]
    fn committed_move_sequences_stay_exact(
        ((inst, base), moves) in (arb_instance_and_base(8), arb_moves(8, 24))
    ) {
        let n = inst.num_indexes();
        let full = ObjectiveEvaluator::new(&inst);
        let mut delta = DeltaEvaluator::new(&inst, base.clone());
        let mut oracle = SuffixReplayEvaluator::new(&inst, base.clone());
        let mut current = base;

        for mv in moves {
            match mv {
                Move::Swap { a, b, commit } => {
                    let (a, b) = (a.min(n - 1), b.min(n - 1));
                    let mut next = current.clone();
                    next.swap(a, b);
                    let want = full.evaluate_area(&next);
                    assert_bits("episode swap probe", delta.evaluate_swap(a, b), want);
                    assert_bits("oracle swap probe", oracle.evaluate_swap(a, b), want);
                    if commit {
                        delta.commit_swap(a, b);
                        oracle.commit_swap(a, b);
                        current = next;
                    }
                }
                Move::Shift { from, to, commit } => {
                    let (from, to) = (from.min(n - 1), to.min(n - 1));
                    let mut next = current.clone();
                    next.relocate(from, to);
                    let want = full.evaluate_area(&next);
                    assert_bits("episode shift probe", delta.evaluate_shift(from, to), want);
                    if commit {
                        delta.commit_shift(from, to);
                        oracle.commit_order(next.clone());
                        current = next;
                    }
                }
                Move::Reverse { at, len, commit } => {
                    let at = at.min(n - 1);
                    let len = len.min(n - at);
                    let mut span: Vec<IndexId> = current.order()[at..at + len].to_vec();
                    span.reverse();
                    let mut next = current.clone();
                    next.replace_span(at, &span);
                    let want = full.evaluate_area(&next);
                    assert_bits("episode span probe", delta.evaluate_span(at, &span), want);
                    if commit {
                        delta.commit_span(at, &span);
                        oracle.commit_order(next.clone());
                        current = next;
                    }
                }
                Move::Reseed { seed } => {
                    let next = shuffled(n, seed);
                    let want = full.evaluate_area(&next);
                    assert_bits("episode order probe", delta.evaluate_order(&next), want);
                    delta.commit_order(next.clone());
                    oracle.set_base(next.clone());
                    current = next;
                }
            }
            // The committed state must stay exact after every step.
            let want = full.evaluate_area(&current);
            assert_bits("episode base", delta.base_area(), want);
            assert_bits("episode oracle base", oracle.base_area(), want);
            prop_assert_eq!(delta.base().order(), current.order());
        }
    }

    /// The `PrefixEvaluator` facade (now a thin wrapper over the delta
    /// evaluator) stays bit-identical too.
    #[test]
    fn prefix_evaluator_facade_stays_exact(
        ((inst, base), pairs) in (
            arb_instance_and_base(8),
            proptest::collection::vec((0usize..8, 0usize..8), 1..12),
        )
    ) {
        let n = inst.num_indexes();
        let full = ObjectiveEvaluator::new(&inst);
        let mut prefix = PrefixEvaluator::new(&inst, base.clone());
        let mut current = base;
        for (a, b) in pairs {
            let (a, b) = (a.min(n - 1), b.min(n - 1));
            let mut next = current.clone();
            next.swap(a, b);
            let want = full.evaluate_area(&next);
            assert_bits("prefix swap probe", prefix.evaluate_swap(a, b), want);
            prefix.commit_swap(a, b);
            current = next;
            assert_bits("prefix base", prefix.base_area(), full.evaluate_area(&current));
        }
    }
}

/// Deterministic regression: a commit immediately followed by a probe of the
/// *same* span exercises the freshly rewritten cache lines.
#[test]
fn probe_after_commit_reuses_fresh_cache() {
    let mut b = InstanceBuilder::new("stale-cache");
    let i: Vec<IndexId> = (0..6).map(|k| b.add_index(2.0 + k as f64)).collect();
    for q in 0..4 {
        let qid = b.add_query(60.0 + q as f64 * 11.0);
        b.add_plan(qid, vec![i[q % 6]], 9.0);
        b.add_plan(qid, vec![i[q % 6], i[(q + 2) % 6]], 21.0);
    }
    b.add_build_interaction(i[0], i[3], 1.25);
    b.add_build_interaction(i[4], i[1], 0.75);
    let inst = b.build().unwrap();
    let full = ObjectiveEvaluator::new(&inst);

    let mut delta = DeltaEvaluator::new(&inst, Deployment::identity(6));
    delta.commit_swap(1, 2);
    delta.commit_shift(0, 4);
    let mut current = Deployment::identity(6);
    current.swap(1, 2);
    current.relocate(0, 4);
    assert_eq!(delta.base().order(), current.order());
    assert_eq!(
        delta.base_area().to_bits(),
        full.evaluate_area(&current).to_bits()
    );
    // Re-probe the exact span the commits touched.
    for a in 0..5 {
        let mut swapped = current.clone();
        swapped.swap(a, a + 1);
        assert_eq!(
            delta.evaluate_swap(a, a + 1).to_bits(),
            full.evaluate_area(&swapped).to_bits()
        );
    }
}
