//! Adversarial-input and round-trip locks for the hand-rolled serde seams
//! (ISSUE 8, satellite 1).
//!
//! The evolution model ([`EventKind`] and friends) and the journal records
//! ([`JournalRecord`]) both use hand-rolled tagged single-key enum serde on
//! top of the vendored derive, and journals / scenarios are parsed from
//! files (`figure14 --dump` → `replay`). These tests pin the contract that
//! malformed input is an `Err`, never a panic and never a silent default:
//!
//! * arbitrary `Value` trees (wrong shapes, junk keys, deep nesting) fed to
//!   every deserializer return without panicking;
//! * duplicate fields in an object are rejected *through the derive path*
//!   (`serde::__find_unique`), even when the duplicates agree;
//! * unknown enum tags, multi-key and non-object tagged payloads error;
//! * randomly generated scenarios and journal records round-trip through
//!   the JSON text form losslessly (the re-serialized text is identical,
//!   so every `f64` survives bit-for-bit);
//! * random byte-level mutations of valid serialized text parse to `Err`
//!   or to some value — never a panic.

use idd_core::{
    BuildFailure, CompleteRecord, DebounceRecord, DesignRevision, DispatchRecord, EventKind,
    EventRecord, EvolutionEvent, EvolutionScenario, FailRecord, IndexAddition, IndexId,
    JournalRecord, QueryId, ReplanDecision, WorkloadDrift,
};
use proptest::prelude::*;
use serde::{Deserialize, Value};

/// Exactly representable, shortest-printing floats: dyadic rationals with a
/// bounded integer part, so `to_string` → `from_str` is lossless and the
/// round-trip assertions below can demand textual identity. Negative zero
/// and non-finite values are excluded on purpose — the vendored text form
/// is documented lossy for them (`vendor/README.md`), and no model value
/// ever produces them.
fn dyadic(rng: &mut TestRng) -> f64 {
    (rng.below(1 << 24) as f64 - (1 << 23) as f64) / 256.0
}

/// Field names the model actually uses, junk, and hostile strings alike —
/// so random objects sometimes look *almost* right, which is where a
/// first-match-wins or default-on-missing bug would hide.
fn arbitrary_key(rng: &mut TestRng) -> String {
    const POOL: &[&str] = &[
        "clock",
        "slot",
        "index",
        "at",
        "kind",
        "drift",
        "revision",
        "weights",
        "name",
        "events",
        "failures",
        "waste_fraction",
        "dispatch",
        "complete",
        "pending",
        "objective",
        "",
        " ",
        "CLOCK",
        "clock ",
        "\u{1F4A3}",
        "a\"b\\c",
        "\n",
    ];
    POOL[rng.below(POOL.len() as u64) as usize].to_string()
}

fn arbitrary_value(rng: &mut TestRng, depth: u64) -> Value {
    match rng.below(if depth == 0 { 6 } else { 8 }) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 1),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::UInt(rng.next_u64()),
        4 => Value::Float(dyadic(rng)),
        5 => Value::String(arbitrary_key(rng)),
        6 => Value::Array(
            (0..rng.below(4))
                .map(|_| arbitrary_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..rng.below(4))
                .map(|_| (arbitrary_key(rng), arbitrary_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

fn arbitrary_event_kind(rng: &mut TestRng) -> EventKind {
    if rng.below(2) == 0 {
        EventKind::Drift(WorkloadDrift {
            weights: (0..rng.below(4))
                .map(|_| (QueryId::new(rng.below(16) as usize), dyadic(rng).abs()))
                .collect(),
        })
    } else {
        EventKind::Revision(DesignRevision {
            add: (0..rng.below(3))
                .map(|_| IndexAddition {
                    name: arbitrary_key(rng),
                    creation_cost: dyadic(rng).abs(),
                    plans: (0..rng.below(3))
                        .map(|_| {
                            (
                                QueryId::new(rng.below(16) as usize),
                                (0..rng.below(3))
                                    .map(|_| IndexId::new(rng.below(16) as usize))
                                    .collect(),
                                dyadic(rng).abs(),
                            )
                        })
                        .collect(),
                    helped_by: (0..rng.below(3))
                        .map(|_| (IndexId::new(rng.below(16) as usize), dyadic(rng).abs()))
                        .collect(),
                    helps: (0..rng.below(3))
                        .map(|_| (IndexId::new(rng.below(16) as usize), dyadic(rng).abs()))
                        .collect(),
                    after: (0..rng.below(3))
                        .map(|_| IndexId::new(rng.below(16) as usize))
                        .collect(),
                })
                .collect(),
            drop: (0..rng.below(3))
                .map(|_| IndexId::new(rng.below(16) as usize))
                .collect(),
        })
    }
}

fn arbitrary_scenario(rng: &mut TestRng) -> EvolutionScenario {
    EvolutionScenario {
        name: arbitrary_key(rng),
        events: (0..rng.below(4))
            .map(|_| EvolutionEvent {
                at: dyadic(rng).abs(),
                kind: arbitrary_event_kind(rng),
            })
            .collect(),
        failures: (0..rng.below(3))
            .map(|_| BuildFailure {
                index: IndexId::new(rng.below(16) as usize),
                failures: rng.below(4) as u32,
                waste_fraction: dyadic(rng).abs() / (1 << 15) as f64,
            })
            .collect(),
    }
}

fn arbitrary_journal_record(rng: &mut TestRng) -> JournalRecord {
    match rng.below(6) {
        0 => JournalRecord::Dispatch(DispatchRecord {
            clock: dyadic(rng).abs(),
            slot: rng.below(4) as usize,
            position: rng.below(16) as usize,
            index: IndexId::new(rng.below(16) as usize),
            plan_offset: rng.below(4) as usize,
            cost: dyadic(rng).abs(),
            retries: rng.below(3) as u32,
            waste_per_failure: dyadic(rng).abs(),
        }),
        1 => JournalRecord::Fail(FailRecord {
            clock: dyadic(rng).abs(),
            slot: rng.below(4) as usize,
            index: IndexId::new(rng.below(16) as usize),
            attempt: 1 + rng.below(3) as u32,
            wasted: dyadic(rng).abs(),
        }),
        2 => JournalRecord::Complete(CompleteRecord {
            clock: dyadic(rng).abs(),
            slot: rng.below(4) as usize,
            index: IndexId::new(rng.below(16) as usize),
            realized: dyadic(rng).abs(),
        }),
        3 => JournalRecord::EventLanded(EventRecord {
            clock: dyadic(rng).abs(),
            event: EvolutionEvent {
                at: dyadic(rng).abs(),
                kind: arbitrary_event_kind(rng),
            },
        }),
        4 => JournalRecord::Replan(ReplanDecision {
            clock: dyadic(rng).abs(),
            trigger: arbitrary_key(rng),
            pending: (0..rng.below(5))
                .map(|_| IndexId::new(rng.below(16) as usize))
                .collect(),
            warm_start_objective: if rng.below(2) == 0 {
                None
            } else {
                Some(dyadic(rng).abs())
            },
            objective: dyadic(rng).abs(),
            solver: arbitrary_key(rng),
            improved: rng.below(2) == 1,
        }),
        _ => JournalRecord::Debounce(DebounceRecord {
            clock: dyadic(rng).abs(),
            deferred: arbitrary_key(rng),
            next_event_at: dyadic(rng).abs(),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Any Value tree — wrong shape, junk keys, deep nesting — fed to every
    /// model deserializer returns `Ok` or `Err` without panicking, and a
    /// tree that does deserialize came from a plausibly-shaped object, not
    /// from a silent default.
    #[test]
    fn adversarial_value_trees_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("adversarial-{seed}"));
        let v = arbitrary_value(&mut rng, 3);
        let _ = EventKind::from_value(&v);
        let _ = EvolutionEvent::from_value(&v);
        let _ = EvolutionScenario::from_value(&v);
        let _ = WorkloadDrift::from_value(&v);
        let _ = DesignRevision::from_value(&v);
        let _ = BuildFailure::from_value(&v);
        let _ = JournalRecord::from_value(&v);
        let _ = DispatchRecord::from_value(&v);
        let _ = ReplanDecision::from_value(&v);
        // A tagged enum can only ever parse out of a single-key object.
        if EventKind::from_value(&v).is_ok() || JournalRecord::from_value(&v).is_ok() {
            prop_assert!(matches!(&v, Value::Object(entries) if entries.len() == 1));
        }
    }

    /// Scenarios round-trip losslessly through the JSON text form: the
    /// re-serialized text is *identical*, so every `f64` (and every string
    /// escape) survived bit-for-bit.
    #[test]
    fn scenarios_round_trip_textually(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("scenario-{seed}"));
        let scenario = arbitrary_scenario(&mut rng);
        let text = serde_json::to_string(&scenario).expect("scenarios serialize");
        let back: EvolutionScenario = serde_json::from_str(&text).expect("own output parses");
        prop_assert_eq!(&back, &scenario);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }

    /// Journal records round-trip losslessly through the JSON text form,
    /// exactly like the journals `figure14 --dump` writes and `replay`
    /// parses back.
    #[test]
    fn journal_records_round_trip_textually(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("journal-{seed}"));
        let record = arbitrary_journal_record(&mut rng);
        let text = serde_json::to_string(&record).expect("records serialize");
        let back: JournalRecord = serde_json::from_str(&text).expect("own output parses");
        prop_assert_eq!(&back, &record);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }

    /// Byte-level mutations (truncation, bit flips, splices) of valid
    /// serialized records parse to `Err` or to some record — never a panic.
    #[test]
    fn mutated_record_text_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("mutate-{seed}"));
        let record = arbitrary_journal_record(&mut rng);
        let mut bytes = serde_json::to_string(&record).unwrap().into_bytes();
        match rng.below(3) {
            0 => {
                let keep = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.truncate(keep);
            }
            1 => {
                let at = rng.below(bytes.len() as u64) as usize;
                bytes[at] ^= 1 << rng.below(8);
            }
            _ => {
                let at = rng.below(bytes.len() as u64) as usize;
                let splice = bytes[..at].to_vec();
                bytes.extend_from_slice(&splice);
            }
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = serde_json::from_str::<JournalRecord>(&text);
        let _ = serde_json::from_str::<EvolutionScenario>(&text);
    }
}

/// Duplicate fields are ambiguous, not first-match-wins — rejected through
/// the derive path (`serde::__find_unique`) even when the duplicates agree,
/// and through the text parser on top of it.
#[test]
fn duplicate_fields_are_rejected_through_the_derive() {
    let conflicting = Value::Object(vec![
        ("index".into(), Value::Int(1)),
        ("failures".into(), Value::Int(2)),
        ("waste_fraction".into(), Value::Float(0.5)),
        ("index".into(), Value::Int(3)),
    ]);
    assert!(BuildFailure::from_value(&conflicting).is_err());

    let agreeing = Value::Object(vec![
        ("index".into(), Value::Int(1)),
        ("index".into(), Value::Int(1)),
        ("failures".into(), Value::Int(2)),
        ("waste_fraction".into(), Value::Float(0.5)),
    ]);
    assert!(BuildFailure::from_value(&agreeing).is_err());

    let text = r#"{"index":1,"failures":2,"waste_fraction":0.5,"index":1}"#;
    assert!(serde_json::from_str::<BuildFailure>(text).is_err());

    // The same object without the duplicate parses fine — the rejection is
    // about the duplicate, not the shape.
    let clean = r#"{"index":1,"failures":2,"waste_fraction":0.5}"#;
    let parsed: BuildFailure = serde_json::from_str(clean).expect("clean object parses");
    assert_eq!(parsed.index, IndexId::new(1));
    assert_eq!(parsed.failures, 2);
}

/// Unknown tags, multi-key tagged objects, and non-object payloads error —
/// no variant is ever silently defaulted.
#[test]
fn unknown_and_ambiguous_enum_tags_error() {
    assert!(serde_json::from_str::<EventKind>(r#"{"mutation":{}}"#).is_err());
    assert!(serde_json::from_str::<EventKind>(r#"{}"#).is_err());
    assert!(serde_json::from_str::<EventKind>(r#""drift""#).is_err());
    assert!(serde_json::from_str::<EventKind>(
        r#"{"drift":{"weights":[]},"revision":{"add":[],"drop":[]}}"#
    )
    .is_err());

    assert!(serde_json::from_str::<JournalRecord>(r#"{"checkpoint":{"clock":0.0}}"#).is_err());
    assert!(serde_json::from_str::<JournalRecord>(r#"{}"#).is_err());
    assert!(serde_json::from_str::<JournalRecord>(r#"[{"dispatch":{}}]"#).is_err());
    assert!(serde_json::from_str::<JournalRecord>(
        r#"{"debounce":{"clock":1.0,"deferred":"drift","next_event_at":2.0},"fail":{}}"#
    )
    .is_err());

    // A known tag whose payload is missing required fields is still an
    // error, not a default.
    assert!(serde_json::from_str::<JournalRecord>(r#"{"complete":{"clock":1.0}}"#).is_err());
    assert!(serde_json::from_str::<EventKind>(r#"{"drift":{}}"#).is_err());
}
