//! Error-free summation of `f64` values and products.
//!
//! [`ExactSum`] is a fixed-point superaccumulator: a wide limb array that
//! covers every bit position a double (or a product of two doubles) can
//! occupy, so adding and subtracting terms is *exact* — no rounding happens
//! until [`ExactSum::value`] collapses the accumulator back to the nearest
//! `f64` (round-to-nearest-even, the IEEE default).
//!
//! ## Why the objective needs this
//!
//! The paper's objective `Σ R_{i-1}·C_i` is a sum of products. Evaluated
//! with naive left-to-right `f64` accumulation, its low bits depend on the
//! *order* in which terms are added — which makes a bit-for-bit `O(1)`
//! delta evaluation of a local-search move mathematically impossible: an
//! adjacent swap changes two partial sums in the middle of the chain, and
//! the rounding of every later partial sum shifts with them.
//!
//! Accumulating the terms exactly and rounding once makes the objective a
//! pure function of the *multiset* of terms. A move that replaces the span
//! `[a, b)` of a deployment order leaves every term outside the span
//! bitwise unchanged (runtime levels and build costs are set functions of
//! the prefix), so the moved order's objective is
//! `round(Σ ⊖ old span terms ⊕ new span terms)` — computable in
//! `O(span)` and *bit-identical* to a from-scratch evaluation. That
//! identity is what [`DeltaEvaluator`](crate::objective::DeltaEvaluator)
//! is built on and what `tests/delta_equivalence.rs` locks down.
//!
//! ## Representation
//!
//! `limbs[k]` holds (signed, with deferred carries) the weight-`2^(64k −
//! BIAS)` digit of the running sum. The range covers `2^-2148` (the lowest
//! bit of a product of two subnormals) through `2^2047` (the highest bit of
//! a product of two maximal doubles), plus headroom for carries. Each limb
//! is an `i128` accumulating signed 64-bit contributions, so ~2^62
//! additions are possible before any overflow — far beyond any realistic
//! use. A touched-limb window `[lo, hi]` keeps every operation (including
//! rounding and snapshot copies) proportional to the handful of limbs a
//! realistic workload actually exercises, not the full array.

/// Number of 64-bit limbs: bit positions `[-BIAS, 64·LIMBS - BIAS)`.
const LIMBS: usize = 68;
/// Absolute value of the lowest representable bit position (`2^-2148` is
/// the lowest bit of a product of two subnormals; rounded up to a limb
/// boundary with one limb of slack).
const BIAS: i32 = 2176;
/// Mask of one limb.
const M64: u128 = u64::MAX as u128;

/// An exact (error-free) accumulator of `f64` terms and `f64·f64` products.
///
/// The result of [`ExactSum::value`] is the correctly rounded
/// (nearest-even) double of the exact sum, independent of the order in
/// which terms were added — the property the incremental objective
/// evaluation relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSum {
    limbs: Vec<i128>,
    /// Touched-limb window, inclusive; `lo > hi` means empty (sum is 0).
    lo: usize,
    hi: usize,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

/// Splits a finite `f64` into `(integer mantissa, exponent of mantissa bit
/// 0, sign)`: `v = sign · m · 2^e`. Integer decomposition sidesteps the
/// under/overflow pitfalls of Dekker-style floating-point splitting.
#[inline]
fn decompose(v: f64) -> (u64, i32, bool) {
    debug_assert!(v.is_finite(), "ExactSum term must be finite, got {v}");
    let bits = v.to_bits();
    let negative = bits >> 63 == 1;
    let exp_field = ((bits >> 52) & 0x7FF) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if exp_field == 0 {
        (frac, -1074, negative) // subnormal (or zero)
    } else {
        (frac | (1u64 << 52), exp_field - 1075, negative)
    }
}

impl ExactSum {
    /// Creates an empty accumulator (sum = 0).
    pub fn new() -> Self {
        Self {
            limbs: vec![0; LIMBS],
            lo: LIMBS,
            hi: 0,
        }
    }

    /// Resets the sum to 0 (touched limbs only; O(window)).
    pub fn clear(&mut self) {
        if self.lo <= self.hi {
            self.limbs[self.lo..=self.hi].fill(0);
        }
        self.lo = LIMBS;
        self.hi = 0;
    }

    /// Copies `other`'s state into `self` without reallocating, touching
    /// only the union of the two windows (the cheap snapshot-restore the
    /// delta evaluator leans on).
    pub fn assign_from(&mut self, other: &ExactSum) {
        if self.lo <= self.hi {
            self.limbs[self.lo..=self.hi].fill(0);
        }
        if other.lo <= other.hi {
            self.limbs[other.lo..=other.hi].copy_from_slice(&other.limbs[other.lo..=other.hi]);
        }
        self.lo = other.lo;
        self.hi = other.hi;
    }

    #[inline]
    fn touch(&mut self, lo: usize, hi: usize) {
        if lo < self.lo {
            self.lo = lo;
        }
        if hi > self.hi {
            self.hi = hi;
        }
    }

    /// Adds `m · 2^(e)` (sign-applied) where `m` occupies up to 106 bits
    /// given as a `u128`.
    #[inline]
    fn add_wide(&mut self, m: u128, e: i32, negative: bool) {
        if m == 0 {
            return;
        }
        let pos = (e + BIAS) as usize; // e >= -2148 > -BIAS by construction
        let limb = pos / 64;
        let shift = (pos % 64) as u32;
        // m << shift spans up to 106 + 63 = 169 bits: split into three
        // 64-bit words without ever shifting a u128 past its width.
        let w0 = (m & M64) as u64;
        let w1 = (m >> 64) as u64;
        let (r0, r1, r2) = if shift == 0 {
            (w0, w1, 0u64)
        } else {
            (
                w0 << shift,
                (w1 << shift) | (w0 >> (64 - shift)),
                w1 >> (64 - shift),
            )
        };
        let sign: i128 = if negative { -1 } else { 1 };
        self.limbs[limb] += r0 as i128 * sign;
        let mut hi = limb;
        if r1 != 0 {
            self.limbs[limb + 1] += r1 as i128 * sign;
            hi = limb + 1;
        }
        if r2 != 0 {
            self.limbs[limb + 2] += r2 as i128 * sign;
            hi = limb + 2;
        }
        self.touch(limb, hi);
    }

    /// Adds a single `f64` term exactly.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let (m, e, neg) = decompose(v);
        self.add_wide(m as u128, e, neg);
    }

    /// Subtracts a single `f64` term exactly.
    #[inline]
    pub fn sub(&mut self, v: f64) {
        let (m, e, neg) = decompose(v);
        self.add_wide(m as u128, e, !neg);
    }

    /// Adds the *exact* product `a · b` (no intermediate rounding).
    #[inline]
    pub fn add_prod(&mut self, a: f64, b: f64) {
        let (ma, ea, na) = decompose(a);
        let (mb, eb, nb) = decompose(b);
        self.add_wide(ma as u128 * mb as u128, ea + eb, na != nb);
    }

    /// Subtracts the *exact* product `a · b`.
    #[inline]
    pub fn sub_prod(&mut self, a: f64, b: f64) {
        let (ma, ea, na) = decompose(a);
        let (mb, eb, nb) = decompose(b);
        self.add_wide(ma as u128 * mb as u128, ea + eb, na == nb);
    }

    /// The exact sum rounded once to the nearest `f64` (ties to even) —
    /// the canonical reading every evaluation path agrees on bit-for-bit.
    ///
    /// Cost is O(touched window), not O(total range): the limbs are copied
    /// to a stack buffer, carry-normalized, and the top 53 bits (plus round
    /// and sticky information) are assembled into an IEEE double.
    pub fn value(&self) -> f64 {
        if self.lo > self.hi {
            return 0.0;
        }
        let len = self.hi - self.lo + 1;
        // Window + slack for carry propagation past the top limb.
        let mut buf = [0i128; LIMBS + 4];
        buf[..len].copy_from_slice(&self.limbs[self.lo..=self.hi]);

        // Carry-normalize into words in [0, 2^64); final carry is 0 (sum
        // >= 0) or -1 (sum < 0, two's-complement form).
        let mut words = [0u64; LIMBS + 4];
        let mut carry: i128 = 0;
        let mut top = 0usize;
        for (k, w) in buf.iter().enumerate().take(len) {
            let t = *w + carry;
            carry = t >> 64; // arithmetic shift: floor division by 2^64
            let rem = (t - (carry << 64)) as u128 as u64;
            words[k] = rem;
            if rem != 0 {
                top = top.max(k);
            }
        }
        let mut extra = len;
        while carry != 0 && carry != -1 {
            let t = carry;
            carry = t >> 64;
            let rem = (t - (carry << 64)) as u128 as u64;
            words[extra] = rem;
            if rem != 0 {
                top = top.max(extra);
            }
            extra += 1;
        }
        let negative = carry == -1;
        if negative {
            // Magnitude = two's-complement negation over `extra` words.
            let mut borrow_done = false;
            for w in words.iter_mut().take(extra) {
                *w = !*w;
                if !borrow_done {
                    let (nw, overflow) = w.overflowing_add(1);
                    *w = nw;
                    borrow_done = !overflow;
                }
            }
            if !borrow_done {
                words[extra] = 1;
                extra += 1;
            }
            top = 0;
            for k in (0..extra).rev() {
                if words[k] != 0 {
                    top = k;
                    break;
                }
            }
        }
        if words[..extra].iter().all(|&w| w == 0) {
            return 0.0;
        }

        // Absolute bit position of the most significant set bit.
        let msb_in_top = 63 - words[top].leading_zeros() as i32;
        let msb = (self.lo as i32 + top as i32) * 64 + msb_in_top - BIAS;

        // Mantissa bits run [target_lsb, msb]; below target_lsb only the
        // round bit and a sticky OR survive.
        let target_lsb = (msb - 52).max(-1074);
        let mant_bits = (msb - target_lsb + 1) as u32; // <= 53

        // Extracts the bit at absolute position `p` (0 if below range).
        let bit_at = |p: i32| -> u64 {
            let off = p + BIAS - (self.lo as i32) * 64;
            if off < 0 {
                return 0;
            }
            let (w, b) = ((off / 64) as usize, (off % 64) as u32);
            if w >= extra {
                0
            } else {
                (words[w] >> b) & 1
            }
        };

        // Assemble the mantissa bit by bit (<= 53 iterations; bits below the
        // touched window read as zero, which also covers the subnormal case
        // where `target_lsb` sits under the window).
        let mut mantissa: u64 = 0;
        for k in 0..mant_bits {
            mantissa |= bit_at(target_lsb + k as i32) << k;
        }

        // Round bit + sticky (any set bit strictly below the round bit).
        let round = bit_at(target_lsb - 1) == 1;
        let sticky = if !round {
            false
        } else {
            let cut = target_lsb - 1 + BIAS - (self.lo as i32) * 64; // offset of the round bit
            if cut <= 0 {
                false
            } else {
                let (w, b) = ((cut / 64) as usize, (cut % 64) as u32);
                words[..w.min(extra)].iter().any(|&word| word != 0)
                    || (w < extra && b > 0 && words[w] & ((1u64 << b) - 1) != 0)
            }
        };
        if round && (sticky || mantissa & 1 == 1) {
            mantissa += 1;
        }
        let mut lsb = target_lsb;
        if mantissa == 1u64 << 53 {
            mantissa = 1u64 << 52;
            lsb += 1;
        }

        // Assemble the IEEE-754 bits.
        let bits = if mantissa == 0 {
            0
        } else if lsb == -1074 && mantissa < (1u64 << 52) {
            mantissa // subnormal: exponent field 0
        } else {
            // Normal: value = 1.frac · 2^(lsb + mant_len - 1). Renormalize
            // in case rounding a subnormal-range value reached 2^52.
            let mut m = mantissa;
            let mut e = lsb;
            while m < (1u64 << 52) {
                m <<= 1;
                e -= 1;
            }
            let exp_field = (e + 52 + 1023) as u64;
            debug_assert!((1..=2046).contains(&exp_field), "overflow in ExactSum");
            (exp_field << 52) | (m & ((1u64 << 52) - 1))
        };
        f64::from_bits(bits | ((negative as u64) << 63))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(values: &[f64]) -> f64 {
        let mut acc = ExactSum::new();
        for &v in values {
            acc.add(v);
        }
        acc.value()
    }

    #[test]
    fn single_values_round_trip_exactly() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.1,
            -0.1,
            1e300,
            -1e300,
            1e-300,
            5e-324, // smallest subnormal
            -5e-324,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            123456.789,
            (1u64 << 53) as f64,
        ] {
            assert_eq!(sum_of(&[v]).to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn single_product_matches_ieee_multiplication() {
        // A lone product rounded once is exactly the IEEE product.
        let cases = [
            (3.0, 7.0),
            (0.1, 0.2),
            (1e200, 1e-200),
            (1e-308, 0.5), // subnormal result
            (5e-324, 1.0), // subnormal input
            (-0.1, 0.7),
            (123.456, -789.012),
            (1e160, 1e140), // huge but finite
        ];
        for (a, b) in cases {
            let mut acc = ExactSum::new();
            acc.add_prod(a, b);
            assert_eq!(acc.value().to_bits(), (a * b).to_bits(), "{a} * {b}");
        }
    }

    #[test]
    fn order_independence_bit_for_bit() {
        let values = [
            1e16, -1.0, 0.1, 7.25, -1e16, 3.5e-5, 1e10, -0.3, 2.5e-13, 42.0,
        ];
        let forward = sum_of(&values);
        let mut rev = values;
        rev.reverse();
        assert_eq!(forward.to_bits(), sum_of(&rev).to_bits());
        // Interleave adds and cancelling subs.
        let mut acc = ExactSum::new();
        acc.add(1e18);
        for &v in &values {
            acc.add(v);
        }
        acc.sub(1e18);
        assert_eq!(forward.to_bits(), acc.value().to_bits());
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        let mut acc = ExactSum::new();
        acc.add(1e100);
        acc.add(1.0);
        acc.sub(1e100);
        assert_eq!(acc.value(), 1.0);
        acc.sub(1.0);
        assert_eq!(acc.value(), 0.0);
        // Product cancellation.
        acc.add_prod(0.1, 0.2);
        acc.sub_prod(0.1, 0.2);
        assert_eq!(acc.value(), 0.0);
    }

    #[test]
    fn small_integer_sums_are_exact() {
        let mut acc = ExactSum::new();
        let mut expect: i64 = 0;
        for k in 1..=1000i64 {
            let v = (k * if k % 3 == 0 { -1 } else { 1 }) as f64;
            acc.add(v);
            expect += v as i64;
        }
        assert_eq!(acc.value(), expect as f64);
    }

    #[test]
    fn ties_round_to_even() {
        // 2^53 + 1 is exactly halfway between 2^53 and 2^53 + 2 → even.
        let mut acc = ExactSum::new();
        acc.add((1u64 << 53) as f64);
        acc.add(1.0);
        assert_eq!(acc.value(), (1u64 << 53) as f64);
        // 2^53 + 3 is halfway between 2^53 + 2 and 2^53 + 4 → 2^53 + 4.
        let mut acc = ExactSum::new();
        acc.add((1u64 << 53) as f64);
        acc.add(3.0);
        assert_eq!(acc.value(), ((1u64 << 53) + 4) as f64);
        // Sticky bit breaks the tie upward: 2^53 + 1 + 2^-10.
        let mut acc = ExactSum::new();
        acc.add((1u64 << 53) as f64);
        acc.add(1.0);
        acc.add(2.0_f64.powi(-10));
        assert_eq!(acc.value(), ((1u64 << 53) + 2) as f64);
    }

    #[test]
    fn negative_totals_round_symmetrically() {
        let values = [1e16, -1.0, 0.1, 7.25, -1e16, 3.5e-5];
        let pos = sum_of(&values);
        let neg: Vec<f64> = values.iter().map(|v| -v).collect();
        assert_eq!((-pos).to_bits(), sum_of(&neg).to_bits());
    }

    #[test]
    fn products_accumulate_with_more_precision_than_naive() {
        // Σ aᵢ·bᵢ where naive fused rounding loses bits.
        let mut acc = ExactSum::new();
        acc.add_prod(1e8 + 1.0, 1e8 - 1.0); // 1e16 - 1
        acc.sub_prod(1e8, 1e8); // -1e16
        assert_eq!(acc.value(), -1.0);
    }

    #[test]
    fn assign_from_and_clear_reuse_allocations() {
        let mut a = ExactSum::new();
        a.add_prod(123.456, 789.01);
        a.add(0.5);
        let mut b = ExactSum::new();
        b.add(1e300); // touch a far-away window first
        b.assign_from(&a);
        assert_eq!(a.value().to_bits(), b.value().to_bits());
        b.add(1.0);
        assert_ne!(a.value().to_bits(), b.value().to_bits());
        b.clear();
        assert_eq!(b.value(), 0.0);
        b.assign_from(&a);
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn subnormal_sums_and_underflow_to_zero() {
        let tiny = 5e-324;
        let mut acc = ExactSum::new();
        acc.add(tiny);
        acc.add(tiny);
        assert_eq!(acc.value(), 1e-323);
        // Exact zero after cancellation of subnormals.
        acc.sub(tiny);
        acc.sub(tiny);
        assert_eq!(acc.value(), 0.0);
        // A product strictly below the subnormal range still accumulates
        // exactly and contributes once it is amplified back.
        let mut acc = ExactSum::new();
        acc.add_prod(5e-324, 0.5); // 2^-1075: not representable alone
        assert_eq!(acc.value(), 0.0, "rounds to even (zero)");
        acc.add_prod(5e-324, 0.5);
        assert_eq!(acc.value(), 5e-324, "two halves make a whole ulp");
    }

    #[test]
    fn randomized_sums_match_wide_reference() {
        // Cross-check value() against a simple i128 fixed-point reference on
        // values scaled so the reference stays exact.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut acc = ExactSum::new();
            let mut reference: i128 = 0; // units of 2^-20
            for _ in 0..40 {
                let raw = (next() % (1 << 40)) as i64 - (1 << 39);
                let v = raw as f64 / (1u64 << 20) as f64; // exact in f64
                acc.add(v);
                reference += raw as i128;
            }
            let expect = reference as f64 / (1u64 << 20) as f64;
            assert_eq!(acc.value().to_bits(), expect.to_bits());
        }
    }
}
