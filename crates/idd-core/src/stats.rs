//! Instance statistics — the quantities of the paper's Table 4.

use crate::instance::ProblemInstance;
use serde::{Deserialize, Serialize};

/// Summary statistics of a problem instance, matching Table 4 of the paper:
/// `|Q|`, `|I|`, `|P|`, the widest plan, and the number of build and query
/// interactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Instance name.
    pub name: String,
    /// Number of queries `|Q|`.
    pub num_queries: usize,
    /// Number of candidate indexes `|I|`.
    pub num_indexes: usize,
    /// Number of query plans (atomic configurations) `|P|`.
    pub num_plans: usize,
    /// Number of indexes in the widest plan ("Largest Plan" in Table 4).
    pub largest_plan: usize,
    /// Number of build interactions (`cspdup` entries).
    pub num_build_interactions: usize,
    /// Number of query interactions: plans that require two or more indexes.
    pub num_query_interactions: usize,
    /// Maximum relative build-cost saving over all indexes
    /// (`max_i max_j cspdup(i,j)/ctime(i)`); the paper reports observing up
    /// to ~80% on TPC-DS.
    pub max_build_saving_ratio: f64,
    /// Relative saving of the whole deployment when every build interaction
    /// is exploited (`1 − Σ min-cost / Σ ctime`); the paper reports ~20%.
    pub max_total_deployment_saving_ratio: f64,
}

impl InstanceStats {
    /// Computes the statistics of an instance.
    pub fn of(instance: &ProblemInstance) -> Self {
        let largest_plan = instance
            .plans()
            .iter()
            .map(|p| p.width())
            .max()
            .unwrap_or(0);
        let num_query_interactions = instance
            .plans()
            .iter()
            .filter(|p| p.is_interaction())
            .count();
        let max_build_saving_ratio = instance
            .build_interactions()
            .iter()
            .map(|bi| {
                let base = instance.creation_cost(bi.target);
                if base > 0.0 {
                    bi.speedup / base
                } else {
                    0.0
                }
            })
            .fold(0.0_f64, f64::max);
        let total_base: f64 = instance.total_base_build_cost();
        let total_min: f64 = instance
            .index_ids()
            .map(|i| instance.min_build_cost(i))
            .sum();
        let max_total_deployment_saving_ratio = if total_base > 0.0 {
            1.0 - total_min / total_base
        } else {
            0.0
        };
        Self {
            name: instance.name().to_string(),
            num_queries: instance.num_queries(),
            num_indexes: instance.num_indexes(),
            num_plans: instance.num_plans(),
            largest_plan,
            num_build_interactions: instance.build_interactions().len(),
            num_query_interactions,
            max_build_saving_ratio,
            max_total_deployment_saving_ratio,
        }
    }

    /// Renders the Table-4 row for this instance.
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:>5} {:>5} {:>6} {:>12} {:>14} {:>14}",
            self.name,
            self.num_queries,
            self.num_indexes,
            self.num_plans,
            format!("{} Index", self.largest_plan),
            self.num_build_interactions,
            self.num_query_interactions
        )
    }

    /// Header matching [`InstanceStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<10} {:>5} {:>5} {:>6} {:>12} {:>14} {:>14}",
            "Dataset", "|Q|", "|I|", "|P|", "LargestPlan", "#Inter.(Build)", "#Inter.(Query)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IndexId;

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("stats");
        let i0 = b.add_index(10.0);
        let i1 = b.add_index(5.0);
        let i2 = b.add_index(2.0);
        let q0 = b.add_query(100.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q0, vec![i0], 10.0);
        b.add_plan(q0, vec![i0, i1, i2], 60.0);
        b.add_plan(q1, vec![i1, i2], 20.0);
        b.add_build_interaction(i1, i0, 4.0); // 80% of 5.0
        b.build().unwrap()
    }

    #[test]
    fn counts_match_definition() {
        let s = InstanceStats::of(&instance());
        assert_eq!(s.num_queries, 2);
        assert_eq!(s.num_indexes, 3);
        assert_eq!(s.num_plans, 3);
        assert_eq!(s.largest_plan, 3);
        assert_eq!(s.num_build_interactions, 1);
        assert_eq!(s.num_query_interactions, 2);
    }

    #[test]
    fn build_saving_ratios() {
        let s = InstanceStats::of(&instance());
        assert!((s.max_build_saving_ratio - 0.8).abs() < 1e-9);
        // Total: base 17, min-cost sum 13 → saving 4/17.
        assert!((s.max_total_deployment_saving_ratio - 4.0 / 17.0).abs() < 1e-9);
    }

    #[test]
    fn table_row_mentions_key_numbers() {
        let s = InstanceStats::of(&instance());
        let row = s.table_row();
        assert!(row.contains("stats"));
        assert!(row.contains("3 Index"));
        let header = InstanceStats::table_header();
        assert!(header.contains("|I|"));
    }

    #[test]
    fn handles_instance_with_no_interactions() {
        let mut b = ProblemInstance::builder("plain");
        let i0 = b.add_index(1.0);
        let q = b.add_query(5.0);
        b.add_plan(q, vec![i0], 1.0);
        let inst = b.build().unwrap();
        let s = InstanceStats::of(&inst);
        assert_eq!(s.num_build_interactions, 0);
        assert_eq!(s.num_query_interactions, 0);
        assert_eq!(s.max_build_saving_ratio, 0.0);
        assert_eq!(s.max_total_deployment_saving_ratio, 0.0);
        assert_eq!(s.largest_plan, 1);
        let _ = IndexId::new(0);
    }
}
