//! Instance reductions used by the exact-search experiments (Tables 5 and 6).
//!
//! The paper evaluates exact methods on *reduced* TPC-H instances: the number
//! of indexes is varied, and the *interaction density* is lowered by dropping
//! suboptimal plans and weak build interactions. This module reproduces those
//! reductions:
//!
//! * [`Density::Low`] — "remove all suboptimal query plans and build
//!   interactions": each query keeps only its best plan, and all build
//!   interactions are dropped.
//! * [`Density::Mid`] — "remove all but one suboptimal query plan and build
//!   interactions with less than 15% effect": each query keeps its two best
//!   plans, and a build interaction survives only if it saves at least 15% of
//!   the target's creation cost.
//! * [`Density::Full`] — keep everything.
//!
//! [`ReduceOptions::max_indexes`] additionally restricts the instance to the
//! `k` most beneficial indexes (by accumulated plan speed-up shared across
//! plan members), remapping identifiers densely.

use crate::error::Result;
use crate::instance::{InstanceBuilder, ProblemInstance};
use crate::types::IndexId;
use serde::{Deserialize, Serialize};

/// Interaction density levels of the paper's exact-search experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Density {
    /// Best plan per query only, no build interactions.
    Low,
    /// Two best plans per query, build interactions with ≥ 15% effect.
    Mid,
    /// All plans and interactions.
    Full,
}

impl Density {
    /// How many plans each query keeps, `None` meaning all.
    fn plans_per_query(self) -> Option<usize> {
        match self {
            Density::Low => Some(1),
            Density::Mid => Some(2),
            Density::Full => None,
        }
    }

    /// Minimum relative effect (`cspdup / ctime`) a build interaction must
    /// have to survive, `None` meaning interactions are dropped entirely.
    fn min_build_effect(self) -> Option<f64> {
        match self {
            Density::Low => None,
            Density::Mid => Some(0.15),
            Density::Full => Some(0.0),
        }
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Density::Low => write!(f, "low"),
            Density::Mid => write!(f, "mid"),
            Density::Full => write!(f, "full"),
        }
    }
}

/// Options controlling [`reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReduceOptions {
    /// Interaction density to keep.
    pub density: Density,
    /// If set, keep only the `k` most beneficial indexes.
    pub max_indexes: Option<usize>,
}

impl ReduceOptions {
    /// Full density, all indexes (the identity reduction).
    pub fn full() -> Self {
        Self {
            density: Density::Full,
            max_indexes: None,
        }
    }

    /// Low density with at most `k` indexes — the configuration of most
    /// Table 5 / Table 6 columns.
    pub fn low(k: usize) -> Self {
        Self {
            density: Density::Low,
            max_indexes: Some(k),
        }
    }

    /// Mid density with at most `k` indexes.
    pub fn mid(k: usize) -> Self {
        Self {
            density: Density::Mid,
            max_indexes: Some(k),
        }
    }
}

/// Scores each index by its share of the speed-ups of the plans it appears in
/// (a plan's speed-up is split evenly among its members). Used to pick the
/// "most beneficial" subset when `max_indexes` is set.
fn index_benefit_scores(instance: &ProblemInstance) -> Vec<f64> {
    let mut scores = vec![0.0_f64; instance.num_indexes()];
    for plan in instance.plans() {
        if plan.indexes.is_empty() {
            continue;
        }
        let share = instance.plan_speedup(plan.id) / plan.indexes.len() as f64;
        for &i in &plan.indexes {
            scores[i.raw()] += share;
        }
    }
    scores
}

/// Produces a reduced copy of `instance` according to `options`.
///
/// Plans that reference dropped indexes are removed; queries always survive
/// (a query with no remaining plan simply never speeds up). Precedence
/// constraints between surviving indexes are preserved.
pub fn reduce(instance: &ProblemInstance, options: ReduceOptions) -> Result<ProblemInstance> {
    // 1. Choose the surviving index set.
    let keep: Vec<bool> = match options.max_indexes {
        Some(k) if k < instance.num_indexes() => {
            let scores = index_benefit_scores(instance);
            let mut ids: Vec<usize> = (0..instance.num_indexes()).collect();
            ids.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut keep = vec![false; instance.num_indexes()];
            for &i in ids.iter().take(k) {
                keep[i] = true;
            }
            keep
        }
        _ => vec![true; instance.num_indexes()],
    };

    // Dense remapping old raw id → new raw id.
    let mut remap = vec![usize::MAX; instance.num_indexes()];
    let mut next = 0usize;
    for (old, &kept) in keep.iter().enumerate() {
        if kept {
            remap[old] = next;
            next += 1;
        }
    }

    let mut b = InstanceBuilder::new(format!(
        "{}-{}-{}idx",
        instance.name(),
        options.density,
        next
    ));

    for idx in instance.indexes() {
        if keep[idx.id.raw()] {
            b.push_index(idx.clone());
        }
    }
    for q in instance.queries() {
        b.push_query(q.clone());
    }

    // 2. Filter plans: drop plans touching removed indexes, then keep the top
    //    `plans_per_query` by speed-up.
    let per_query_limit = options.density.plans_per_query();
    for q in instance.query_ids() {
        let mut surviving: Vec<_> = instance
            .plans_of_query(q)
            .iter()
            .map(|&pid| instance.plan(pid))
            .filter(|p| p.indexes.iter().all(|i| keep[i.raw()]))
            .collect();
        surviving.sort_by(|a, b| {
            b.speedup
                .partial_cmp(&a.speedup)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let take = per_query_limit.unwrap_or(surviving.len());
        for plan in surviving.into_iter().take(take) {
            let indexes = plan
                .indexes
                .iter()
                .map(|i| IndexId::new(remap[i.raw()]))
                .collect();
            b.add_plan(q, indexes, plan.speedup);
        }
    }

    // 3. Filter build interactions by relative effect.
    if let Some(min_effect) = options.density.min_build_effect() {
        for bi in instance.build_interactions() {
            if !keep[bi.target.raw()] || !keep[bi.helper.raw()] {
                continue;
            }
            let base = instance.creation_cost(bi.target);
            let effect = if base > 0.0 { bi.speedup / base } else { 0.0 };
            if effect >= min_effect {
                b.add_build_interaction(
                    IndexId::new(remap[bi.target.raw()]),
                    IndexId::new(remap[bi.helper.raw()]),
                    bi.speedup,
                );
            }
        }
    }

    // 4. Preserve precedence constraints among survivors.
    for pr in instance.precedences() {
        if keep[pr.before.raw()] && keep[pr.after.raw()] {
            b.add_precedence(
                IndexId::new(remap[pr.before.raw()]),
                IndexId::new(remap[pr.after.raw()]),
            );
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::InstanceStats;

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("toy");
        let i0 = b.add_index(10.0);
        let i1 = b.add_index(8.0);
        let i2 = b.add_index(6.0);
        let i3 = b.add_index(4.0);
        let q0 = b.add_query(100.0);
        let q1 = b.add_query(80.0);
        b.add_plan(q0, vec![i0], 30.0);
        b.add_plan(q0, vec![i0, i1], 60.0);
        b.add_plan(q0, vec![i3], 5.0);
        b.add_plan(q1, vec![i2], 20.0);
        b.add_plan(q1, vec![i2, i3], 25.0);
        b.add_build_interaction(i1, i0, 4.0); // 50% effect
        b.add_build_interaction(i3, i2, 0.2); // 5% effect
        b.add_precedence(i0, i1);
        b.build().unwrap()
    }

    #[test]
    fn full_reduction_is_identity_in_counts() {
        let inst = instance();
        let red = reduce(&inst, ReduceOptions::full()).unwrap();
        assert_eq!(red.num_indexes(), inst.num_indexes());
        assert_eq!(red.num_plans(), inst.num_plans());
        assert_eq!(
            red.build_interactions().len(),
            inst.build_interactions().len()
        );
        assert_eq!(red.precedences().len(), 1);
    }

    #[test]
    fn low_density_keeps_best_plan_per_query_and_no_build_interactions() {
        let inst = instance();
        let red = reduce(
            &inst,
            ReduceOptions {
                density: Density::Low,
                max_indexes: None,
            },
        )
        .unwrap();
        assert_eq!(red.num_plans(), 2);
        assert!(red.build_interactions().is_empty());
        let stats = InstanceStats::of(&red);
        assert_eq!(stats.num_build_interactions, 0);
        // Best plan of q0 is the 60s two-index plan.
        assert!(
            (red.plan_speedup(red.plans_of_query(crate::QueryId::new(0))[0]) - 60.0).abs() < 1e-9
        );
    }

    #[test]
    fn mid_density_keeps_two_plans_and_strong_interactions() {
        let inst = instance();
        let red = reduce(
            &inst,
            ReduceOptions {
                density: Density::Mid,
                max_indexes: None,
            },
        )
        .unwrap();
        assert_eq!(red.num_plans(), 4);
        // The 5% interaction is dropped, the 50% one survives.
        assert_eq!(red.build_interactions().len(), 1);
        assert_eq!(red.build_interactions()[0].speedup, 4.0);
    }

    #[test]
    fn max_indexes_keeps_most_beneficial_and_remaps_ids() {
        let inst = instance();
        let red = reduce(&inst, ReduceOptions::low(2)).unwrap();
        assert_eq!(red.num_indexes(), 2);
        // Every plan in the reduced instance references only valid ids.
        for p in red.plans() {
            for &i in &p.indexes {
                assert!(i.raw() < 2);
            }
        }
        // Benefit shares: i0 = 30 + 30 = 60, i1 = 30, i2 = 20 + 12.5 = 32.5,
        // i3 = 5 + 12.5 = 17.5 — so the top two are i0 and i2.
        let names: Vec<&str> = red.indexes().iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"idx0"));
        assert!(names.contains(&"idx2"));
    }

    #[test]
    fn queries_without_plans_survive() {
        let inst = instance();
        let red = reduce(&inst, ReduceOptions::low(1)).unwrap();
        assert_eq!(red.num_queries(), 2);
        assert_eq!(red.baseline_runtime(), inst.baseline_runtime());
    }

    #[test]
    fn precedence_dropped_when_member_removed() {
        let inst = instance();
        let red = reduce(&inst, ReduceOptions::low(1)).unwrap();
        assert!(red.precedences().is_empty() || red.num_indexes() >= 2);
    }

    #[test]
    fn reduced_instance_name_mentions_density_and_size() {
        let inst = instance();
        let red = reduce(&inst, ReduceOptions::mid(3)).unwrap();
        assert!(red.name().contains("mid"));
        assert!(red.name().contains("3idx"));
    }
}
