//! Convenience re-exports of the most commonly used core types.

pub use crate::accsum::ExactSum;
pub use crate::curve::{CurvePoint, ImprovementCurve};
pub use crate::error::{CoreError, Result as CoreResult};
pub use crate::evolution::{
    BuildFailure, DesignRevision, EventKind, EvolutionEvent, EvolutionScenario, IndexAddition,
    WorkloadDrift,
};
pub use crate::index::IndexMeta;
pub use crate::instance::{InstanceBuilder, ProblemInstance};
pub use crate::interaction::{BuildInteraction, Precedence};
pub use crate::matrix::{MatrixFile, SoaView};
pub use crate::objective::{
    DeltaEvaluator, ObjectiveEvaluator, ObjectiveStepper, ObjectiveValue, PrefixEvaluator,
    StepMetrics, SuffixReplayEvaluator,
};
pub use crate::plan::QueryPlan;
pub use crate::query::QueryMeta;
pub use crate::reduce::{reduce, Density, ReduceOptions};
pub use crate::residual::ResidualInstance;
pub use crate::schedule::{DeploymentSchedule, ScheduledBuild};
pub use crate::slotsched::{SlotScheduleEvaluator, SlotScheduleValue};
pub use crate::solution::Deployment;
pub use crate::stats::InstanceStats;
pub use crate::types::{IndexId, PlanId, QueryId};
