//! Query plans (atomic configurations).

use crate::types::{IndexId, PlanId, QueryId};
use serde::{Deserialize, Serialize};

/// A query plan, called an *atomic configuration* in the what-if literature:
/// a set of indexes that, when all present, speed up one query by
/// [`QueryPlan::speedup`] seconds compared to its original runtime.
///
/// The empty plan (original runtime, zero speed-up) is implicit and never
/// stored. A query may have many plans; the optimizer always uses the fastest
/// *available* one, which creates the paper's *competing interactions*.
/// Plans with two or more indexes encode *query interactions*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// Dense identifier of this plan within its [`crate::ProblemInstance`].
    pub id: PlanId,
    /// The query this plan belongs to.
    pub query: QueryId,
    /// The indexes the plan requires, sorted ascending with no duplicates.
    pub indexes: Vec<IndexId>,
    /// `qspdup(p, q)`: seconds saved compared to the query's original runtime
    /// when every index in `indexes` is available.
    pub speedup: f64,
}

impl QueryPlan {
    /// Creates a plan, sorting and deduplicating the index set.
    pub fn new(id: PlanId, query: QueryId, mut indexes: Vec<IndexId>, speedup: f64) -> Self {
        indexes.sort_unstable();
        indexes.dedup();
        Self {
            id,
            query,
            indexes,
            speedup,
        }
    }

    /// Number of indexes the plan requires.
    pub fn width(&self) -> usize {
        self.indexes.len()
    }

    /// Returns `true` when the plan uses the given index.
    pub fn uses(&self, index: IndexId) -> bool {
        self.indexes.binary_search(&index).is_ok()
    }

    /// Returns `true` when every index of the plan appears in `available`
    /// (a bitmap keyed by raw index id).
    pub fn available_in(&self, available: &[bool]) -> bool {
        self.indexes.iter().all(|i| available[i.raw()])
    }

    /// Returns `true` when this plan requires at least two indexes, i.e. it
    /// encodes a *query interaction* between indexes.
    pub fn is_interaction(&self) -> bool {
        self.indexes.len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(ids: &[usize], speedup: f64) -> QueryPlan {
        QueryPlan::new(
            PlanId::new(0),
            QueryId::new(0),
            ids.iter().copied().map(IndexId::new).collect(),
            speedup,
        )
    }

    #[test]
    fn new_sorts_and_dedups() {
        let p = plan(&[3, 1, 3, 2], 5.0);
        assert_eq!(
            p.indexes,
            vec![IndexId::new(1), IndexId::new(2), IndexId::new(3)]
        );
        assert_eq!(p.width(), 3);
    }

    #[test]
    fn uses_is_exact() {
        let p = plan(&[1, 4], 5.0);
        assert!(p.uses(IndexId::new(1)));
        assert!(p.uses(IndexId::new(4)));
        assert!(!p.uses(IndexId::new(2)));
    }

    #[test]
    fn availability_requires_all_indexes() {
        let p = plan(&[0, 2], 5.0);
        assert!(!p.available_in(&[true, true, false]));
        assert!(!p.available_in(&[false, true, true]));
        assert!(p.available_in(&[true, false, true]));
    }

    #[test]
    fn interaction_means_two_or_more_indexes() {
        assert!(!plan(&[1], 1.0).is_interaction());
        assert!(plan(&[1, 2], 1.0).is_interaction());
    }

    #[test]
    fn serde_round_trip() {
        let p = plan(&[0, 5], 2.5);
        let json = serde_json::to_string(&p).unwrap();
        let back: QueryPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
