//! Strongly-typed identifiers for indexes, queries and query plans.
//!
//! Identifiers are dense `usize` handles into the owning
//! [`crate::instance::ProblemInstance`] so they can double as vector offsets
//! in the hot evaluation loops without hashing.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// Creates an identifier from a raw dense offset.
            pub const fn new(raw: usize) -> Self {
                Self(raw)
            }

            /// Returns the raw dense offset.
            pub const fn raw(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an index (`i ∈ I` in the paper).
    IndexId,
    "i"
);
id_type!(
    /// Identifier of a query (`q ∈ Q` in the paper).
    QueryId,
    "q"
);
id_type!(
    /// Identifier of a query plan (`p ∈ P` in the paper), i.e. an *atomic
    /// configuration*: a set of indexes that together yield a speed-up for one
    /// query.
    PlanId,
    "p"
);

/// Iterator over all dense identifiers `0..n` of a given id type.
pub fn id_range<T: From<usize>>(n: usize) -> impl Iterator<Item = T> {
    (0..n).map(T::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(IndexId::new(3).to_string(), "i3");
        assert_eq!(QueryId::new(0).to_string(), "q0");
        assert_eq!(PlanId::new(12).to_string(), "p12");
    }

    #[test]
    fn conversions_round_trip() {
        let id = IndexId::from(7usize);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.raw(), 7);
        assert_eq!(IndexId::new(7), id);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(IndexId::new(1) < IndexId::new(2));
        let mut v = vec![QueryId::new(2), QueryId::new(0), QueryId::new(1)];
        v.sort();
        assert_eq!(v, vec![QueryId::new(0), QueryId::new(1), QueryId::new(2)]);
    }

    #[test]
    fn id_range_yields_dense_ids() {
        let ids: Vec<IndexId> = id_range(3).collect();
        assert_eq!(ids, vec![IndexId::new(0), IndexId::new(1), IndexId::new(2)]);
    }

    #[test]
    fn serde_is_transparent() {
        let id = PlanId::new(5);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "5");
        let back: PlanId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
