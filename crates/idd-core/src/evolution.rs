//! Evolution events: how a deployment's world changes mid-flight.
//!
//! The paper's motivating scenario (Section 1) is an OLAP installation whose
//! workload *evolves while indexes are still being deployed*: query mixes
//! shift, the design advisor revises the target index set, builds fail and
//! must be retried. This module is the declarative model of those changes —
//! a seeded, fully deterministic [`EvolutionScenario`] that a deployment
//! runtime (the `idd-deploy` crate) replays against a running schedule.
//!
//! The model deliberately lives in `idd-core`: an evolution scenario is part
//! of the *problem statement* for evolving OLAP, not of any particular
//! runtime or solver. Generators for realistic scenarios live in
//! `idd-workloads`.

use crate::error::{CoreError, Result};
use crate::instance::ProblemInstance;
use crate::types::{IndexId, QueryId};
use serde::{Deserialize, Serialize};

/// A workload drift: some queries change weight (the paper notes weighting a
/// query is equivalent to scaling its runtime, so this models both "this
/// report is suddenly hot" and "that dashboard was retired").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadDrift {
    /// `(query, new weight)` pairs; queries not listed keep their weight.
    pub weights: Vec<(QueryId, f64)>,
}

impl WorkloadDrift {
    /// Applies the drift to an instance, returning the re-weighted instance.
    /// Ids are unchanged; only query weights move.
    ///
    /// Scenarios are serde round-trippable, so a stale scenario may name
    /// queries the instance does not have: that is an error, never a panic.
    pub fn apply_to(&self, instance: &ProblemInstance) -> Result<ProblemInstance> {
        let mut b = instance.to_builder();
        for &(q, w) in &self.weights {
            if q.raw() >= instance.num_queries() {
                return Err(CoreError::UnknownQuery(q));
            }
            b.set_query_weight(q, w.max(0.0));
        }
        b.build()
    }
}

/// One index added to the target set by a design revision.
///
/// References to existing structure use parent-instance ids; the new index
/// itself receives the next dense id when the revision is applied. To keep
/// revisions composable and id-stable, a new index's plans pair it only with
/// *existing* indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexAddition {
    /// Human-readable name of the new index.
    pub name: String,
    /// `ctime` of the new index.
    pub creation_cost: f64,
    /// Plans gained: `(query, existing partner indexes, speedup)`. The new
    /// index is implicitly part of every listed plan.
    pub plans: Vec<(QueryId, Vec<IndexId>, f64)>,
    /// Existing indexes whose presence speeds up building the new one, as
    /// `(helper, saving)`.
    pub helped_by: Vec<(IndexId, f64)>,
    /// Existing indexes the new one can speed up, as `(target, saving)`.
    /// Targets that are already built simply gain nothing.
    pub helps: Vec<(IndexId, f64)>,
    /// Existing indexes that must be deployed before the new one. Safe by
    /// construction: the new index is always unbuilt when the revision
    /// lands, so the constraint can never contradict the frozen prefix.
    pub after: Vec<IndexId>,
}

/// A design revision: indexes added to and/or dropped from the target set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DesignRevision {
    /// New candidate indexes (appended with fresh dense ids, in order).
    pub add: Vec<IndexAddition>,
    /// Indexes retracted from the target set. Already-built indexes cannot
    /// be retracted (the runtime counts such requests as ineffective).
    pub drop: Vec<IndexId>,
}

impl DesignRevision {
    /// Applies the *additions* of this revision to an instance, returning
    /// the extended instance and the ids assigned to the new indexes.
    /// Drops are not applied here: retracted indexes stay in the instance
    /// (ids must remain stable) and are excluded from scheduling by the
    /// runtime via [`ProblemInstance::residual_excluding`].
    ///
    /// Out-of-model values are clamped rather than rejected: a plan speed-up
    /// is capped at the query's runtime, an interaction saving at the
    /// target's creation cost — a revision describes intent, and the model's
    /// invariants win. References to queries or indexes the instance does
    /// not have are errors (a stale, deserialized scenario must surface as
    /// a failed event, never a panic).
    pub fn apply_additions(
        &self,
        instance: &ProblemInstance,
    ) -> Result<(ProblemInstance, Vec<IndexId>)> {
        for add in &self.add {
            if let Some(&(query, _, _)) = add
                .plans
                .iter()
                .find(|(q, _, _)| q.raw() >= instance.num_queries())
            {
                return Err(CoreError::UnknownQuery(query));
            }
            if let Some(&(target, _)) = add
                .helps
                .iter()
                .find(|(t, _)| t.raw() >= instance.num_indexes())
            {
                return Err(CoreError::UnknownIndex(target));
            }
        }
        let mut b = instance.to_builder();
        let mut new_ids = Vec::with_capacity(self.add.len());
        for add in &self.add {
            let id = b.add_named_index(add.name.clone(), add.creation_cost.max(0.0));
            new_ids.push(id);
        }
        for (add, &id) in self.add.iter().zip(&new_ids) {
            for (query, partners, speedup) in &add.plans {
                let mut indexes = partners.clone();
                indexes.push(id);
                let cap = instance.query(*query).original_runtime;
                b.add_plan(*query, indexes, speedup.clamp(0.0, cap));
            }
            for &(helper, saving) in &add.helped_by {
                b.add_build_interaction(id, helper, saving.clamp(0.0, add.creation_cost));
            }
            for &(target, saving) in &add.helps {
                let cap = instance.creation_cost(target);
                b.add_build_interaction(target, id, saving.clamp(0.0, cap));
            }
            for &before in &add.after {
                b.add_precedence(before, id);
            }
        }
        Ok((b.build()?, new_ids))
    }
}

/// What changes at one point of the deployment clock.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Query weights change.
    Drift(WorkloadDrift),
    /// The target index set is revised.
    Revision(DesignRevision),
}

// The vendored serde derive supports field-less enums only, so the tagged
// representation (`{"drift": {...}}` / `{"revision": {...}}`) is hand-rolled.
impl Serialize for EventKind {
    fn to_value(&self) -> serde::Value {
        let (tag, value) = match self {
            EventKind::Drift(d) => ("drift", d.to_value()),
            EventKind::Revision(r) => ("revision", r.to_value()),
        };
        serde::Value::Object(vec![(tag.to_string(), value)])
    }
}

impl Deserialize for EventKind {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v.as_object() {
            Some([(tag, value)]) => match tag.as_str() {
                "drift" => Ok(EventKind::Drift(Deserialize::from_value(value)?)),
                "revision" => Ok(EventKind::Revision(Deserialize::from_value(value)?)),
                other => Err(serde::Error::custom(format!(
                    "unknown EventKind tag `{other}`"
                ))),
            },
            _ => Err(serde::Error::custom(
                "expected a single-key object for EventKind",
            )),
        }
    }
}

/// One evolution event, stamped with the deployment-clock time at which it
/// becomes visible. A deterministic runtime applies events at the first
/// build boundary at or after `at` (an in-flight build is atomic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionEvent {
    /// Deployment-clock time at which the event lands.
    pub at: f64,
    /// What changes.
    pub kind: EventKind,
}

/// A deterministic build-failure specification: the first `failures`
/// attempts to build `index` fail after `waste_fraction` of its effective
/// build cost has been spent, then the build succeeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildFailure {
    /// The index whose build fails.
    pub index: IndexId,
    /// Number of failed attempts before success.
    pub failures: u32,
    /// Fraction of the effective build cost wasted per failed attempt
    /// (clamped to `[0, 1]` by consumers).
    pub waste_fraction: f64,
}

/// A complete, seeded evolution scenario: timed events plus per-index build
/// failures. Replayed deterministically by the deployment runtime.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EvolutionScenario {
    /// Scenario name (reports and tables).
    pub name: String,
    /// Timed events; the runtime processes them in `at` order (ties in
    /// listed order).
    pub events: Vec<EvolutionEvent>,
    /// Build failures, keyed by index.
    pub failures: Vec<BuildFailure>,
}

impl EvolutionScenario {
    /// An empty scenario (nothing ever changes).
    pub fn quiet(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            events: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// `true` when the scenario contains no events and no failures.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty() && self.failures.is_empty()
    }

    /// The events sorted by time (stable: ties keep their listed order).
    pub fn sorted_events(&self) -> Vec<EvolutionEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        events
    }

    /// The failure spec for one index, if any.
    pub fn failure_for(&self, index: IndexId) -> Option<&BuildFailure> {
        self.failures.iter().find(|f| f.index == index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ProblemInstance {
        let mut b = ProblemInstance::builder("evo");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let q0 = b.add_query(30.0);
        b.add_plan(q0, vec![i0], 5.0);
        b.add_plan(q0, vec![i1], 20.0);
        b.add_build_interaction(i1, i0, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn drift_rescales_weights_only() {
        let inst = base();
        let drift = WorkloadDrift {
            weights: vec![(QueryId::new(0), 3.0)],
        };
        let drifted = drift.apply_to(&inst).unwrap();
        assert_eq!(drifted.baseline_runtime(), 90.0);
        assert_eq!(drifted.num_indexes(), inst.num_indexes());
        assert_eq!(drifted.num_plans(), inst.num_plans());
        // Negative weights are clamped to zero, not rejected.
        let zeroed = WorkloadDrift {
            weights: vec![(QueryId::new(0), -1.0)],
        }
        .apply_to(&inst)
        .unwrap();
        assert_eq!(zeroed.baseline_runtime(), 0.0);
    }

    #[test]
    fn revision_appends_indexes_with_stable_existing_ids() {
        let inst = base();
        let revision = DesignRevision {
            add: vec![IndexAddition {
                name: "i_new".into(),
                creation_cost: 3.0,
                plans: vec![(QueryId::new(0), vec![IndexId::new(0)], 12.0)],
                helped_by: vec![(IndexId::new(1), 1.0)],
                helps: vec![(IndexId::new(0), 99.0)], // clamped to ctime(i0)
                after: vec![IndexId::new(0)],
            }],
            drop: vec![IndexId::new(1)],
        };
        let (revised, new_ids) = revision.apply_additions(&inst).unwrap();
        assert_eq!(new_ids, vec![IndexId::new(2)]);
        assert_eq!(revised.num_indexes(), 3);
        // Existing structure untouched.
        assert_eq!(revised.creation_cost(IndexId::new(0)), 4.0);
        assert_eq!(revised.build_speedup(IndexId::new(1), IndexId::new(0)), 2.0);
        // New structure in place, with the oversized saving clamped.
        assert_eq!(revised.build_speedup(IndexId::new(2), IndexId::new(1)), 1.0);
        assert_eq!(revised.build_speedup(IndexId::new(0), IndexId::new(2)), 4.0);
        assert_eq!(revised.precedences().len(), 1);
        // The new plan contains the new index plus its partner.
        let plans = revised.plans_using_index(IndexId::new(2));
        assert_eq!(plans.len(), 1);
        assert_eq!(revised.plan(plans[0]).width(), 2);
        // Drops are *not* applied here (ids must stay stable).
        assert_eq!(revision.drop, vec![IndexId::new(1)]);
    }

    #[test]
    fn stale_ids_error_instead_of_panicking() {
        let inst = base();
        // Drift naming a query the instance does not have.
        let drift = WorkloadDrift {
            weights: vec![(QueryId::new(9), 2.0)],
        };
        assert!(matches!(
            drift.apply_to(&inst),
            Err(CoreError::UnknownQuery(_))
        ));
        // Addition whose plan targets an unknown query.
        let bad_plan = DesignRevision {
            add: vec![IndexAddition {
                name: "x".into(),
                creation_cost: 1.0,
                plans: vec![(QueryId::new(9), vec![], 1.0)],
                helped_by: vec![],
                helps: vec![],
                after: vec![],
            }],
            drop: vec![],
        };
        assert!(matches!(
            bad_plan.apply_additions(&inst),
            Err(CoreError::UnknownQuery(_))
        ));
        // Addition helping an unknown index.
        let bad_helps = DesignRevision {
            add: vec![IndexAddition {
                name: "y".into(),
                creation_cost: 1.0,
                plans: vec![],
                helped_by: vec![],
                helps: vec![(IndexId::new(42), 0.5)],
                after: vec![],
            }],
            drop: vec![],
        };
        assert!(matches!(
            bad_helps.apply_additions(&inst),
            Err(CoreError::UnknownIndex(_))
        ));
        // Unknown partner / helper / precedence ids surface through the
        // builder's own validation rather than a panic.
        let bad_partner = DesignRevision {
            add: vec![IndexAddition {
                name: "z".into(),
                creation_cost: 1.0,
                plans: vec![(QueryId::new(0), vec![IndexId::new(42)], 1.0)],
                helped_by: vec![],
                helps: vec![],
                after: vec![],
            }],
            drop: vec![],
        };
        assert!(bad_partner.apply_additions(&inst).is_err());
    }

    #[test]
    fn scenario_sorting_is_stable_and_failure_lookup_works() {
        let drift = |at: f64| EvolutionEvent {
            at,
            kind: EventKind::Drift(WorkloadDrift { weights: vec![] }),
        };
        let scenario = EvolutionScenario {
            name: "s".into(),
            events: vec![drift(5.0), drift(1.0), drift(5.0)],
            failures: vec![BuildFailure {
                index: IndexId::new(1),
                failures: 2,
                waste_fraction: 0.5,
            }],
        };
        assert!(!scenario.is_quiet());
        let sorted = scenario.sorted_events();
        assert_eq!(
            sorted.iter().map(|e| e.at).collect::<Vec<_>>(),
            vec![1.0, 5.0, 5.0]
        );
        assert!(scenario.failure_for(IndexId::new(1)).is_some());
        assert!(scenario.failure_for(IndexId::new(0)).is_none());
        assert!(EvolutionScenario::quiet("q").is_quiet());
    }

    #[test]
    fn serde_round_trip() {
        let scenario = EvolutionScenario {
            name: "rt".into(),
            events: vec![EvolutionEvent {
                at: 2.5,
                kind: EventKind::Revision(DesignRevision {
                    add: vec![],
                    drop: vec![IndexId::new(0)],
                }),
            }],
            failures: vec![],
        };
        let json = serde_json::to_string(&scenario).unwrap();
        let back: EvolutionScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
    }
}
