//! Operational deployment schedules.
//!
//! A [`Deployment`] is just a permutation; what a DBA actually executes is a
//! *schedule*: which index to build when, what it costs, which existing index
//! it can be built from, and how much faster the workload becomes at each
//! step. [`DeploymentSchedule`] materializes that view from an evaluated
//! order, and renders it either as a human-readable timeline or as a DDL
//! script skeleton.

use crate::instance::ProblemInstance;
use crate::objective::{ObjectiveEvaluator, ObjectiveValue};
use crate::solution::Deployment;
use crate::types::IndexId;
use serde::{Deserialize, Serialize};

/// One scheduled index build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledBuild {
    /// Position in the deployment order (0-based).
    pub position: usize,
    /// The index being built.
    pub index: IndexId,
    /// Deployment clock at which the build starts.
    pub start: f64,
    /// Deployment clock at which the index becomes available.
    pub finish: f64,
    /// Effective build cost (after build interactions).
    pub cost: f64,
    /// The already-built index whose presence made this build cheaper, if the
    /// best applicable build interaction is known.
    pub built_from: Option<IndexId>,
    /// Workload runtime while this index is building.
    pub runtime_during: f64,
    /// Workload runtime once this index is available.
    pub runtime_after: f64,
}

/// A fully resolved deployment schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentSchedule {
    builds: Vec<ScheduledBuild>,
    baseline_runtime: f64,
    final_runtime: f64,
    total_time: f64,
    objective: f64,
}

impl DeploymentSchedule {
    /// Builds the schedule for a deployment order.
    pub fn new(instance: &ProblemInstance, deployment: &Deployment) -> Self {
        let value = ObjectiveEvaluator::new(instance).evaluate(deployment);
        Self::from_objective(instance, deployment, &value)
    }

    /// Builds the schedule from an already evaluated objective (avoids
    /// re-evaluating when the caller has the [`ObjectiveValue`] at hand).
    pub fn from_objective(
        instance: &ProblemInstance,
        deployment: &Deployment,
        value: &ObjectiveValue,
    ) -> Self {
        let mut built = vec![false; instance.num_indexes()];
        let mut builds = Vec::with_capacity(value.steps.len());
        for (position, step) in value.steps.iter().enumerate() {
            // Which helper produced the best interaction, if any?
            let built_from = instance
                .helpers_of(step.index)
                .iter()
                .filter(|(helper, _)| built[helper.raw()])
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .filter(|(_, saving)| *saving > 0.0)
                .map(|(helper, _)| *helper);
            builds.push(ScheduledBuild {
                position,
                index: step.index,
                start: step.elapsed_start,
                finish: step.elapsed_end,
                cost: step.build_cost,
                built_from,
                runtime_during: step.runtime_before,
                runtime_after: step.runtime_after,
            });
            built[step.index.raw()] = true;
        }
        let _ = deployment;
        Self {
            builds,
            baseline_runtime: value.baseline_runtime,
            final_runtime: value.final_runtime,
            total_time: value.deployment_time,
            objective: value.area,
        }
    }

    /// The scheduled builds in execution order.
    pub fn builds(&self) -> &[ScheduledBuild] {
        &self.builds
    }

    /// Total deployment time.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// Objective area of the schedule.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Workload runtime before / after the whole deployment.
    pub fn runtime_range(&self) -> (f64, f64) {
        (self.baseline_runtime, self.final_runtime)
    }

    /// Number of builds finished at or before deployment clock `clock` —
    /// the length of the frozen prefix when an evolution event lands at that
    /// moment (an in-flight build is atomic and counts as unfinished).
    ///
    /// Offered for consumers that reason about *planned* schedules (what
    /// would be frozen if an event landed at `clock`?); the `idd-deploy`
    /// runtime tracks its realized prefix directly and does not go through
    /// this view.
    pub fn completed_by(&self, clock: f64) -> usize {
        self.builds
            .iter()
            .take_while(|b| b.finish <= clock + 1e-12)
            .count()
    }

    /// The index ids of the first `count` builds, in execution order — a
    /// frozen prefix in the shape [`crate::ProblemInstance::residual`]
    /// expects (as a built bitmap) and
    /// [`crate::Deployment::splice`] consumes.
    pub fn prefix_order(&self, count: usize) -> Vec<IndexId> {
        self.builds[..count.min(self.builds.len())]
            .iter()
            .map(|b| b.index)
            .collect()
    }

    /// The moment (deployment clock) at which the workload has realized at
    /// least `fraction` (0–1) of its eventual total speed-up, or `None` when
    /// the deployment yields no speed-up at all.
    pub fn time_to_realize(&self, fraction: f64) -> Option<f64> {
        let total_gain = self.baseline_runtime - self.final_runtime;
        if total_gain <= 0.0 {
            return None;
        }
        let target = self.baseline_runtime - total_gain * fraction.clamp(0.0, 1.0);
        self.builds
            .iter()
            .find(|b| b.runtime_after <= target + 1e-9)
            .map(|b| b.finish)
    }

    /// Renders a human-readable timeline.
    pub fn render_timeline(&self, instance: &ProblemInstance) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "deployment of {} indexes — total {:.0}s, workload {:.0}s → {:.0}s, objective {:.0}\n",
            self.builds.len(),
            self.total_time,
            self.baseline_runtime,
            self.final_runtime,
            self.objective
        ));
        for b in &self.builds {
            let name = &instance.index_meta(b.index).name;
            let from = match b.built_from {
                Some(h) => format!(" (scanning {})", instance.index_meta(h).name),
                None => String::new(),
            };
            out.push_str(&format!(
                "  [{:>8.0}s – {:>8.0}s] build {}{} — workload {:.0}s → {:.0}s\n",
                b.start, b.finish, name, from, b.runtime_during, b.runtime_after
            ));
        }
        out
    }

    /// Renders a DDL script skeleton (`CREATE INDEX` statements in order,
    /// with the timing information as comments).
    pub fn render_ddl(&self, instance: &ProblemInstance) -> String {
        let mut out = String::new();
        out.push_str("-- generated by idd: deploy in this order\n");
        for b in &self.builds {
            let meta = instance.index_meta(b.index);
            let columns = if meta.key_columns.is_empty() {
                "...".to_string()
            } else {
                meta.key_columns.join(", ")
            };
            let include = if meta.include_columns.is_empty() {
                String::new()
            } else {
                format!(" INCLUDE ({})", meta.include_columns.join(", "))
            };
            out.push_str(&format!(
                "-- step {} (~{:.0}s, expected workload runtime afterwards {:.0}s)\n",
                b.position + 1,
                b.cost,
                b.runtime_after
            ));
            out.push_str(&format!(
                "CREATE INDEX {} ON {} ({}){};\n",
                meta.name,
                if meta.table.is_empty() {
                    "<table>"
                } else {
                    &meta.table
                },
                columns,
                include
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("sched");
        let mut wide = crate::index::IndexMeta::named(
            IndexId::new(0),
            "ix_people_lang_age",
            "PEOPLE",
            vec!["LANG".into(), "AGE".into()],
            6.0,
        );
        wide.include_columns = vec!["REGION".into()];
        b.push_index(wide);
        b.push_index(crate::index::IndexMeta::named(
            IndexId::new(1),
            "ix_people_lang",
            "PEOPLE",
            vec!["LANG".into()],
            4.0,
        ));
        let q = b.add_named_query("report", 30.0);
        b.add_plan(q, vec![IndexId::new(0)], 20.0);
        b.add_plan(q, vec![IndexId::new(1)], 5.0);
        b.add_build_interaction(IndexId::new(1), IndexId::new(0), 3.0);
        b.build().unwrap()
    }

    #[test]
    fn schedule_matches_objective_steps() {
        let inst = instance();
        let d = Deployment::from_raw([0, 1]);
        let schedule = DeploymentSchedule::new(&inst, &d);
        assert_eq!(schedule.builds().len(), 2);
        assert_eq!(schedule.total_time(), 6.0 + 1.0);
        assert_eq!(schedule.runtime_range(), (30.0, 10.0));
        // The second build exploits the wide index.
        assert_eq!(schedule.builds()[1].built_from, Some(IndexId::new(0)));
        assert_eq!(schedule.builds()[1].cost, 1.0);
        // The first cannot (nothing exists yet).
        assert_eq!(schedule.builds()[0].built_from, None);
    }

    #[test]
    fn time_to_realize_fractions() {
        let inst = instance();
        let d = Deployment::from_raw([0, 1]);
        let schedule = DeploymentSchedule::new(&inst, &d);
        // All of the 20s gain arrives when the wide index finishes at t=6.
        assert_eq!(schedule.time_to_realize(0.5), Some(6.0));
        assert_eq!(schedule.time_to_realize(1.0), Some(6.0));
        // A deployment with no gain reports None.
        let mut b = ProblemInstance::builder("nogain");
        b.add_index(1.0);
        b.add_query(5.0);
        let no_gain = b.build().unwrap();
        let sched = DeploymentSchedule::new(&no_gain, &Deployment::identity(1));
        assert_eq!(sched.time_to_realize(0.5), None);
    }

    #[test]
    fn completed_by_counts_finished_builds_only() {
        let inst = instance();
        let schedule = DeploymentSchedule::new(&inst, &Deployment::from_raw([0, 1]));
        // Builds finish at t=6 and t=7.
        assert_eq!(schedule.completed_by(0.0), 0);
        assert_eq!(schedule.completed_by(5.9), 0);
        assert_eq!(schedule.completed_by(6.0), 1);
        assert_eq!(schedule.completed_by(6.5), 1);
        assert_eq!(schedule.completed_by(7.0), 2);
        assert_eq!(schedule.prefix_order(1), vec![IndexId::new(0)]);
        assert_eq!(schedule.prefix_order(9).len(), 2);
    }

    #[test]
    fn timeline_and_ddl_render_names_and_order() {
        let inst = instance();
        let d = Deployment::from_raw([0, 1]);
        let schedule = DeploymentSchedule::new(&inst, &d);
        let timeline = schedule.render_timeline(&inst);
        assert!(timeline.contains("ix_people_lang_age"));
        assert!(timeline.contains("scanning ix_people_lang_age"));
        let ddl = schedule.render_ddl(&inst);
        let first = ddl.find("ix_people_lang_age").unwrap();
        let second = ddl.rfind("CREATE INDEX ix_people_lang ").unwrap();
        assert!(first < second, "DDL must list the wide index first");
        assert!(ddl.contains("INCLUDE (REGION)"));
        assert!(ddl.contains("ON PEOPLE (LANG, AGE)"));
    }

    #[test]
    fn serde_round_trip() {
        let inst = instance();
        let schedule = DeploymentSchedule::new(&inst, &Deployment::from_raw([1, 0]));
        let json = serde_json::to_string(&schedule).unwrap();
        let back: DeploymentSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, schedule);
    }
}
