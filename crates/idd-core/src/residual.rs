//! Prefix-freeze support: residual instances for mid-flight replanning.
//!
//! When a deployment is interrupted mid-flight (the workload drifted, the
//! target index set was revised, a build failed), the indexes already built
//! are *frozen* — they can be neither un-built nor reordered — and the only
//! remaining decision is the order of the unbuilt suffix. That suffix is
//! itself an instance of the same optimization problem, over a smaller index
//! set, with every constant conditioned on the built prefix:
//!
//! * a query's baseline runtime drops by the best speed-up it already enjoys;
//! * a plan that is partially available shrinks to its *missing* indexes and
//!   keeps only its *marginal* speed-up over the query's current best;
//! * an index's creation cost drops by the best build interaction among
//!   already-built helpers, and interactions from still-unbuilt helpers keep
//!   only their margin over that floor;
//! * precedence constraints whose `before` side is built are discharged.
//!
//! The reduction is exact: for any suffix order, `prefix area + residual
//! area == full area` (up to floating-point association), so optimizing the
//! residual instance with any solver optimizes the real remaining decision.
//! [`ResidualInstance`] carries the id mapping between the two worlds and
//! the [`ResidualInstance::splice`] that reassembles a full deployment.

use crate::error::{CoreError, Result};
use crate::instance::ProblemInstance;
use crate::solution::Deployment;
use crate::types::IndexId;

/// A residual problem instance for the unbuilt suffix of a deployment,
/// together with the id mapping back to its parent instance.
///
/// With concurrent build slots, a replan can fire while builds are still
/// running. Those *in-flight* indexes are committed: they can no more be
/// reordered than the built prefix, yet their completions still discount
/// query costs and future builds. [`ProblemInstance::residual_for_replan`]
/// therefore conditions the residual on built ∪ in-flight and records the
/// in-flight order here, so [`ResidualInstance::splice_around`] can
/// reassemble `built ++ in-flight ++ replanned suffix` and callers can
/// assert no in-flight index leaked into the reordering.
#[derive(Debug, Clone)]
pub struct ResidualInstance {
    instance: ProblemInstance,
    /// Residual id (dense) → parent id.
    to_parent: Vec<IndexId>,
    /// Parent raw id → residual id, `None` for built/excluded/in-flight
    /// indexes.
    from_parent: Vec<Option<IndexId>>,
    /// Parent ids of the builds that were in flight when the residual was
    /// derived, in dispatch order. Empty for serial (build-boundary)
    /// residuals.
    in_flight: Vec<IndexId>,
}

impl ResidualInstance {
    /// The residual instance itself (solvers consume this directly).
    pub fn instance(&self) -> &ProblemInstance {
        &self.instance
    }

    /// Number of indexes remaining to build.
    pub fn num_remaining(&self) -> usize {
        self.to_parent.len()
    }

    /// The parent id of a residual index.
    pub fn parent_id(&self, residual: IndexId) -> IndexId {
        self.to_parent[residual.raw()]
    }

    /// The residual id of a parent index, if it is part of the residual.
    pub fn residual_id(&self, parent: IndexId) -> Option<IndexId> {
        self.from_parent.get(parent.raw()).copied().flatten()
    }

    /// Maps a residual-order slice back to parent ids.
    pub fn lift_order(&self, order: &[IndexId]) -> Vec<IndexId> {
        order.iter().map(|&i| self.parent_id(i)).collect()
    }

    /// Projects a parent-id suffix order into residual ids. Returns `None`
    /// when the projection is not a permutation of the residual indexes
    /// (some residual index missing, a built/excluded index present, or a
    /// duplicate) — the caller then has no usable warm start.
    pub fn project_order(&self, parent_order: &[IndexId]) -> Option<Deployment> {
        if parent_order.len() != self.to_parent.len() {
            return None;
        }
        let mut seen = vec![false; self.to_parent.len()];
        let mut out = Vec::with_capacity(parent_order.len());
        for &p in parent_order {
            let r = self.residual_id(p)?;
            if std::mem::replace(&mut seen[r.raw()], true) {
                return None;
            }
            out.push(r);
        }
        Some(Deployment::new(out))
    }

    /// Splices a residual-order suffix onto the frozen parent-id prefix,
    /// producing a deployment order in parent ids (`prefix ++ lifted
    /// suffix`). The prefix is taken verbatim — never reordered.
    pub fn splice(&self, prefix: &[IndexId], suffix: &Deployment) -> Deployment {
        let mut order = Vec::with_capacity(prefix.len() + suffix.len());
        order.extend_from_slice(prefix);
        order.extend(self.lift_order(suffix.order()));
        Deployment::new(order)
    }

    /// The builds that were in flight when this residual was derived, in
    /// dispatch order (parent ids). Empty unless the residual came from
    /// [`ProblemInstance::residual_for_replan`].
    pub fn in_flight(&self) -> &[IndexId] {
        &self.in_flight
    }

    /// [`ResidualInstance::splice`] for mid-build replans: the full order is
    /// `built_prefix ++ in-flight ++ lifted suffix` — both commitments taken
    /// verbatim, never reordered.
    ///
    /// This is the canonical *completed-then-in-flight* normal form, for
    /// callers that track the two commitments separately. A concurrent
    /// scheduler whose completions interleave with dispatches should splice
    /// onto its own dispatch-order committed sequence instead
    /// ([`Deployment::splice`]) — the two agree exactly when every
    /// completed build was dispatched before every in-flight one.
    pub fn splice_around(&self, built_prefix: &[IndexId], suffix: &Deployment) -> Deployment {
        let mut order =
            Vec::with_capacity(built_prefix.len() + self.in_flight.len() + suffix.len());
        order.extend_from_slice(built_prefix);
        order.extend_from_slice(&self.in_flight);
        order.extend(self.lift_order(suffix.order()));
        Deployment::new(order)
    }
}

impl ProblemInstance {
    /// Derives the residual instance for the unbuilt suffix, given a bitmap
    /// of already-built indexes. See [`crate::residual`] for the reduction.
    ///
    /// Fails with [`CoreError::PrecedenceViolated`] when a hard precedence
    /// points from an unbuilt index to a built one (the prefix was not a
    /// feasible partial deployment), and with [`CoreError::EmptyInstance`]
    /// when nothing remains to build.
    pub fn residual(&self, built: &[bool]) -> Result<ResidualInstance> {
        self.residual_excluding(built, &vec![false; self.num_indexes()])
    }

    /// [`ProblemInstance::residual`] with an additional exclusion set:
    /// indexes marked `excluded` (and not built) are dropped from the target
    /// set entirely — they appear in no residual plan, help no residual
    /// build, and are never scheduled. This models design revisions that
    /// retract indexes mid-deployment.
    pub fn residual_excluding(
        &self,
        built: &[bool],
        excluded: &[bool],
    ) -> Result<ResidualInstance> {
        self.residual_impl(built, excluded, Vec::new())
    }

    /// The residual instance for a replan that fires while builds are still
    /// in flight (concurrent build slots): `in_flight` lists the committed
    /// builds in dispatch order. They are conditioned on exactly like the
    /// built prefix — their completions *will* discount query costs and
    /// future builds — but, like the prefix, they are excluded from the
    /// reordering decision: they appear in no residual id and the replanned
    /// suffix is spliced *behind* them
    /// ([`ResidualInstance::splice_around`]).
    ///
    /// # Panics
    ///
    /// Panics if an in-flight index is already built or excluded — that is a
    /// scheduler bug, not a recoverable state.
    pub fn residual_for_replan(
        &self,
        built: &[bool],
        in_flight: &[IndexId],
        excluded: &[bool],
    ) -> Result<ResidualInstance> {
        let mut committed = built.to_vec();
        for &i in in_flight {
            assert!(
                !built[i.raw()] && !excluded[i.raw()],
                "in-flight {i} is already built or excluded"
            );
            assert!(!committed[i.raw()], "in-flight {i} listed twice");
            committed[i.raw()] = true;
        }
        self.residual_impl(&committed, excluded, in_flight.to_vec())
    }

    fn residual_impl(
        &self,
        built: &[bool],
        excluded: &[bool],
        in_flight: Vec<IndexId>,
    ) -> Result<ResidualInstance> {
        let n = self.num_indexes();
        assert_eq!(built.len(), n, "built bitmap must cover every index");
        assert_eq!(excluded.len(), n, "excluded bitmap must cover every index");

        // Dense residual ids in parent-id order (deterministic).
        let mut to_parent = Vec::new();
        let mut from_parent = vec![None; n];
        for raw in 0..n {
            if !built[raw] && !excluded[raw] {
                from_parent[raw] = Some(IndexId::new(to_parent.len()));
                to_parent.push(IndexId::new(raw));
            }
        }
        if to_parent.is_empty() {
            return Err(CoreError::EmptyInstance);
        }

        let mut b = ProblemInstance::builder(format!("{}:residual", self.name()));

        // Indexes: base cost conditioned on the built prefix.
        let mut prefix_floor = vec![0.0_f64; n];
        for &parent in &to_parent {
            let meta = self.index_meta(parent);
            let floor = self
                .helpers_of(parent)
                .iter()
                .filter(|(h, _)| built[h.raw()])
                .map(|(_, s)| *s)
                .fold(0.0_f64, f64::max);
            prefix_floor[parent.raw()] = floor;
            let mut reduced = meta.clone();
            reduced.creation_cost = meta.creation_cost - floor;
            b.push_index(reduced);
        }

        // Queries: baseline runtime drops by the best already-available
        // speed-up (unweighted; the weight is preserved on the query).
        let mut available_best = vec![0.0_f64; self.num_queries()];
        for plan in self.plans() {
            if plan.available_in(built) && plan.speedup > available_best[plan.query.raw()] {
                available_best[plan.query.raw()] = plan.speedup;
            }
        }
        for q in self.queries() {
            let mut reduced = q.clone();
            reduced.original_runtime = q.original_runtime - available_best[q.id.raw()];
            b.push_query(reduced);
        }

        // Plans: keep the missing indexes and the marginal speed-up. A plan
        // touching an excluded index can never complete and is dropped; a
        // plan whose margin over the current best is zero contributes
        // nothing and is dropped too.
        for plan in self.plans() {
            if plan.available_in(built) {
                continue; // already realized, folded into the query baseline
            }
            if plan.indexes.iter().any(|i| excluded[i.raw()]) {
                continue;
            }
            let margin = plan.speedup - available_best[plan.query.raw()];
            if margin <= 0.0 {
                continue;
            }
            let missing: Vec<IndexId> = plan
                .indexes
                .iter()
                .filter(|i| !built[i.raw()])
                .map(|i| from_parent[i.raw()].expect("unbuilt, unexcluded index is residual"))
                .collect();
            debug_assert!(!missing.is_empty());
            b.add_plan(plan.query, missing, margin);
        }

        // Build interactions among remaining indexes: only the margin over
        // the prefix floor survives.
        for bi in self.build_interactions() {
            let (Some(target), Some(helper)) =
                (from_parent[bi.target.raw()], from_parent[bi.helper.raw()])
            else {
                continue;
            };
            let margin = bi.speedup - prefix_floor[bi.target.raw()];
            if margin > 0.0 {
                b.add_build_interaction(target, helper, margin);
            }
        }

        // Precedences: both-remaining pairs survive; a built `before`
        // discharges the constraint; a built/excluded `after` with an
        // unbuilt `before` means the prefix (or the exclusion) broke the
        // constraint.
        for pr in self.precedences() {
            match (from_parent[pr.before.raw()], from_parent[pr.after.raw()]) {
                (Some(before), Some(after)) => b.add_precedence(before, after),
                (None, _) if built[pr.before.raw()] => {} // discharged
                (_, None) if excluded[pr.after.raw()] && !built[pr.after.raw()] => {
                    // The constrained index left the target set: vacuous.
                }
                (None, Some(_)) if excluded[pr.before.raw()] => {
                    // A retained index can no longer get its prerequisite.
                    return Err(CoreError::PrecedenceViolated {
                        before: pr.before,
                        after: pr.after,
                    });
                }
                _ => {
                    return Err(CoreError::PrecedenceViolated {
                        before: pr.before,
                        after: pr.after,
                    });
                }
            }
        }

        Ok(ResidualInstance {
            instance: b.build()?,
            to_parent,
            from_parent,
            in_flight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveEvaluator;

    /// 4 indexes, competing plans, build interactions and one precedence.
    fn parent() -> ProblemInstance {
        let mut b = ProblemInstance::builder("parent");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let i2 = b.add_index(3.0);
        let i3 = b.add_index(5.0);
        let q0 = b.add_query(30.0);
        b.add_plan(q0, vec![i0], 5.0);
        b.add_plan(q0, vec![i1], 20.0);
        let q1 = b.add_query(40.0);
        b.add_plan(q1, vec![i2, i3], 25.0);
        b.add_plan(q1, vec![i2], 8.0);
        b.add_build_interaction(i1, i0, 2.0);
        b.add_build_interaction(i3, i2, 1.5);
        b.add_build_interaction(i3, i1, 1.0);
        b.add_precedence(i2, i3);
        b.build().unwrap()
    }

    fn built_bitmap(n: usize, built: &[usize]) -> Vec<bool> {
        let mut bm = vec![false; n];
        for &i in built {
            bm[i] = true;
        }
        bm
    }

    #[test]
    fn residual_area_is_additive_with_the_prefix() {
        let inst = parent();
        let eval = ObjectiveEvaluator::new(&inst);
        // Freeze the prefix [i0, i2]; the suffix decision is over {i1, i3}.
        let prefix = [IndexId::new(0), IndexId::new(2)];
        let built = built_bitmap(4, &[0, 2]);
        let residual = inst.residual(&built).unwrap();
        assert_eq!(residual.num_remaining(), 2);
        let prefix_area = eval.evaluate_prefix_area(&prefix);

        let res_eval = ObjectiveEvaluator::new(residual.instance());
        for suffix_raw in [[0usize, 1], [1, 0]] {
            let suffix = Deployment::from_raw(suffix_raw);
            let res_area = res_eval.evaluate_area(&suffix);
            let full = residual.splice(&prefix, &suffix);
            let full_area = eval.evaluate_area(&full);
            assert!(
                (prefix_area + res_area - full_area).abs() < 1e-9,
                "suffix {suffix_raw:?}: {prefix_area} + {res_area} != {full_area}"
            );
        }
    }

    #[test]
    fn costs_and_speedups_are_conditioned_on_the_prefix() {
        let inst = parent();
        let built = built_bitmap(4, &[0, 2]);
        let residual = inst.residual(&built).unwrap();
        let r = residual.instance();
        // i1 keeps id order: residual 0 = parent 1, residual 1 = parent 3.
        assert_eq!(residual.parent_id(IndexId::new(0)), IndexId::new(1));
        assert_eq!(residual.parent_id(IndexId::new(1)), IndexId::new(3));
        // i1's cost dropped by the built helper i0 (6 - 2), i3's by i2.
        assert_eq!(r.creation_cost(IndexId::new(0)), 4.0);
        assert_eq!(r.creation_cost(IndexId::new(1)), 3.5);
        // q0 already enjoys the 5s plan; the 20s plan keeps its 15s margin.
        assert_eq!(r.query_runtime(crate::types::QueryId::new(0)), 25.0);
        assert_eq!(r.query_runtime(crate::types::QueryId::new(1)), 32.0);
        // i3's interaction from unbuilt helper i1 keeps only its margin over
        // the built floor (1.0 - 1.5 < 0: dropped).
        assert_eq!(r.build_speedup(IndexId::new(1), IndexId::new(0)), 0.0);
    }

    #[test]
    fn project_and_lift_round_trip() {
        let inst = parent();
        let built = built_bitmap(4, &[0]);
        let residual = inst.residual(&built).unwrap();
        let parent_suffix = [IndexId::new(2), IndexId::new(3), IndexId::new(1)];
        let projected = residual.project_order(&parent_suffix).unwrap();
        assert_eq!(residual.lift_order(projected.order()), parent_suffix);
        // A projection containing a built index is rejected.
        assert!(residual
            .project_order(&[IndexId::new(0), IndexId::new(3), IndexId::new(1)])
            .is_none());
        // Wrong length and duplicates are rejected.
        assert!(residual.project_order(&parent_suffix[..2]).is_none());
        assert!(residual
            .project_order(&[IndexId::new(2), IndexId::new(2), IndexId::new(1)])
            .is_none());
    }

    #[test]
    fn infeasible_prefix_is_rejected() {
        let inst = parent();
        // i3 built without its prerequisite i2.
        let built = built_bitmap(4, &[3]);
        assert!(matches!(
            inst.residual(&built),
            Err(CoreError::PrecedenceViolated { .. })
        ));
    }

    #[test]
    fn nothing_left_is_rejected() {
        let inst = parent();
        let built = built_bitmap(4, &[0, 1, 2, 3]);
        assert!(matches!(
            inst.residual(&built),
            Err(CoreError::EmptyInstance)
        ));
    }

    #[test]
    fn exclusions_drop_plans_and_discharge_paired_precedences() {
        let inst = parent();
        let built = built_bitmap(4, &[0]);
        // Drop i3 from the target set: q1's wide plan dies with it, and the
        // i2→i3 precedence is discharged because its `after` side left too.
        let mut excluded = vec![false; 4];
        excluded[3] = true;
        let residual = inst.residual_excluding(&built, &excluded).unwrap();
        assert_eq!(residual.num_remaining(), 2); // i1, i2
        let r = residual.instance();
        assert!(r.precedences().is_empty());
        // q1 keeps only its i2-only plan.
        let q1_plans = r.plans_of_query(crate::types::QueryId::new(1));
        assert_eq!(q1_plans.len(), 1);
        assert_eq!(r.plan(q1_plans[0]).speedup, 8.0);
    }

    #[test]
    fn in_flight_residual_conditions_like_built_but_never_reorders() {
        let inst = parent();
        // i0 is built; i2 is mid-build when the replan fires. The residual
        // decision is over {i1, i3} only, conditioned on i0 AND i2.
        let built = built_bitmap(4, &[0]);
        let in_flight = [IndexId::new(2)];
        let excluded = vec![false; 4];
        let residual = inst
            .residual_for_replan(&built, &in_flight, &excluded)
            .unwrap();
        assert_eq!(residual.in_flight(), &in_flight);
        assert_eq!(residual.num_remaining(), 2);
        // No residual id maps to the in-flight index…
        assert!(residual.residual_id(IndexId::new(2)).is_none());
        for r in 0..residual.num_remaining() {
            assert_ne!(residual.parent_id(IndexId::new(r)), IndexId::new(2));
        }
        // …but its conditioning matches the plain residual that treats i2 as
        // already built: same costs, same runtimes, same plans.
        let as_built = inst.residual(&built_bitmap(4, &[0, 2])).unwrap();
        let (a, b) = (residual.instance(), as_built.instance());
        assert_eq!(a.num_indexes(), b.num_indexes());
        for raw in 0..a.num_indexes() {
            assert_eq!(
                a.creation_cost(IndexId::new(raw)),
                b.creation_cost(IndexId::new(raw))
            );
        }
        for q in 0..a.num_queries() {
            assert_eq!(
                a.query_runtime(crate::types::QueryId::new(q)),
                b.query_runtime(crate::types::QueryId::new(q))
            );
        }
        assert_eq!(a.num_plans(), b.num_plans());
        // The i2→i3 precedence is discharged by the in-flight commitment.
        assert!(a.precedences().is_empty());

        // splice_around keeps both commitments verbatim, in order.
        let suffix = Deployment::from_raw([1, 0]);
        let full = residual.splice_around(&[IndexId::new(0)], &suffix);
        assert!(full.starts_with(&[IndexId::new(0), IndexId::new(2)]));
        assert_eq!(full.len(), 4);

        // Exactness: once the in-flight build completes, prefix + residual
        // areas add up to the full area for any suffix order.
        let eval = ObjectiveEvaluator::new(&inst);
        let committed_prefix = [IndexId::new(0), IndexId::new(2)];
        let prefix_area = eval.evaluate_prefix_area(&committed_prefix);
        let res_eval = ObjectiveEvaluator::new(residual.instance());
        for raw in [[0usize, 1], [1, 0]] {
            let s = Deployment::from_raw(raw);
            let full_area = eval.evaluate_area(&residual.splice_around(&[IndexId::new(0)], &s));
            assert!((prefix_area + res_eval.evaluate_area(&s) - full_area).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_in_flight_replan_residual_matches_the_plain_residual() {
        let inst = parent();
        let built = built_bitmap(4, &[0]);
        let excluded = vec![false; 4];
        let plain = inst.residual_excluding(&built, &excluded).unwrap();
        let replan = inst.residual_for_replan(&built, &[], &excluded).unwrap();
        assert!(plain.in_flight().is_empty());
        assert_eq!(replan.num_remaining(), plain.num_remaining());
        let suffix = Deployment::identity(plain.num_remaining());
        assert_eq!(
            replan.splice_around(&[IndexId::new(0)], &suffix),
            plain.splice(&[IndexId::new(0)], &suffix)
        );
    }

    #[test]
    #[should_panic(expected = "already built or excluded")]
    fn in_flight_overlapping_built_is_a_scheduler_bug() {
        let inst = parent();
        let built = built_bitmap(4, &[0]);
        let _ = inst.residual_for_replan(&built, &[IndexId::new(0)], &[false; 4]);
    }

    #[test]
    fn excluding_a_prerequisite_of_a_retained_index_is_rejected() {
        let inst = parent();
        let built = built_bitmap(4, &[]);
        let mut excluded = vec![false; 4];
        excluded[2] = true; // i2 gone, i3 retained but requires i2 first
        assert!(matches!(
            inst.residual_excluding(&built, &excluded),
            Err(CoreError::PrecedenceViolated { .. })
        ));
    }
}
