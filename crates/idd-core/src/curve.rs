//! The improvement curve: workload runtime as a function of deployment time.
//!
//! This is the curve of the paper's Figure 2 / Figure 4 — a step function that
//! starts at the baseline runtime and drops each time an index finishes
//! building. The objective is exactly the area under it over the deployment
//! window.

use crate::objective::ObjectiveValue;
use serde::{Deserialize, Serialize};

/// One point of the improvement curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Elapsed deployment time (seconds since deployment started).
    pub elapsed: f64,
    /// Total workload runtime at that moment.
    pub runtime: f64,
}

/// The full improvement curve of one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImprovementCurve {
    points: Vec<CurvePoint>,
}

impl ImprovementCurve {
    /// Builds the curve from an evaluated objective (requires the step trace,
    /// i.e. a value produced by `ObjectiveEvaluator::evaluate`, not the
    /// area-only fast path).
    pub fn from_objective(value: &ObjectiveValue) -> Self {
        let mut points = Vec::with_capacity(value.steps.len() * 2 + 1);
        points.push(CurvePoint {
            elapsed: 0.0,
            runtime: value.baseline_runtime,
        });
        for step in &value.steps {
            // Runtime stays flat while the index builds...
            points.push(CurvePoint {
                elapsed: step.elapsed_end,
                runtime: step.runtime_before,
            });
            // ...then drops the moment it becomes available.
            points.push(CurvePoint {
                elapsed: step.elapsed_end,
                runtime: step.runtime_after,
            });
        }
        Self { points }
    }

    /// The curve's points, in increasing elapsed time.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Workload runtime at an arbitrary moment of the deployment.
    pub fn runtime_at(&self, elapsed: f64) -> f64 {
        let mut current = self.points.first().map(|p| p.runtime).unwrap_or(0.0);
        for p in &self.points {
            if p.elapsed <= elapsed {
                current = p.runtime;
            } else {
                break;
            }
        }
        current
    }

    /// Area under the curve between `0` and the end of deployment, computed
    /// from the points. Matches `ObjectiveValue::area` up to floating-point
    /// rounding and is used as a cross-check in tests.
    pub fn area(&self) -> f64 {
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].elapsed - w[0].elapsed;
            if dt > 0.0 {
                area += dt * w[0].runtime;
            }
        }
        area
    }

    /// Renders the curve as `elapsed,runtime` CSV lines (with header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("elapsed,runtime\n");
        for p in &self.points {
            out.push_str(&format!("{:.6},{:.6}\n", p.elapsed, p.runtime));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ProblemInstance;
    use crate::objective::ObjectiveEvaluator;
    use crate::solution::Deployment;

    fn example() -> ProblemInstance {
        let mut b = ProblemInstance::builder("curve");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let q = b.add_query(30.0);
        b.add_plan(q, vec![i0], 5.0);
        b.add_plan(q, vec![i1], 20.0);
        b.build().unwrap()
    }

    #[test]
    fn curve_area_matches_objective_area() {
        let inst = example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0, 1], [1, 0]] {
            let v = eval.evaluate(&Deployment::from_raw(order));
            let curve = ImprovementCurve::from_objective(&v);
            assert!((curve.area() - v.area).abs() < 1e-9);
        }
    }

    #[test]
    fn runtime_at_steps_down_after_each_build() {
        let inst = example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        let curve = ImprovementCurve::from_objective(&v);
        assert_eq!(curve.runtime_at(0.0), 30.0);
        assert_eq!(curve.runtime_at(3.9), 30.0);
        assert_eq!(curve.runtime_at(4.0), 25.0);
        // The second index has no build interaction here, so it finishes at
        // elapsed 10; the runtime is still 25 just before that.
        assert_eq!(curve.runtime_at(9.9), 25.0);
        assert_eq!(curve.runtime_at(10.0), 10.0);
        assert_eq!(curve.runtime_at(100.0), 10.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let inst = example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        let curve = ImprovementCurve::from_objective(&v);
        let csv = curve.to_csv();
        assert!(csv.starts_with("elapsed,runtime\n"));
        assert_eq!(csv.lines().count(), curve.points().len() + 1);
    }
}
