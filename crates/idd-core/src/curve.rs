//! The improvement curve: workload runtime as a function of deployment time.
//!
//! This is the curve of the paper's Figure 2 / Figure 4 — a step function that
//! starts at the baseline runtime and drops each time an index finishes
//! building. The objective is exactly the area under it over the deployment
//! window.
//!
//! Besides the plotted curve, this module carries the *schedule-as-benefit-
//! curve* view used by shard recombination: a fixed deployment order reduces
//! to a sequence of [`BenefitStep`]s (build cost, runtime drop), and
//! [`density_blocks`] decomposes that sequence into its maximal-density
//! prefix blocks. For independent sub-schedules, interleaving the blocks in
//! non-increasing density order minimizes the total area (Smith's rule
//! lifted from jobs to blocks), which is how `idd-solver`'s decomposer
//! merges per-shard schedules back into one deployment.

use crate::objective::ObjectiveValue;
use crate::types::IndexId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// One point of the improvement curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Elapsed deployment time (seconds since deployment started).
    pub elapsed: f64,
    /// Total workload runtime at that moment.
    pub runtime: f64,
}

/// The full improvement curve of one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImprovementCurve {
    points: Vec<CurvePoint>,
}

impl ImprovementCurve {
    /// Builds the curve from an evaluated objective (requires the step trace,
    /// i.e. a value produced by `ObjectiveEvaluator::evaluate`, not the
    /// area-only fast path).
    pub fn from_objective(value: &ObjectiveValue) -> Self {
        let mut points = Vec::with_capacity(value.steps.len() * 2 + 1);
        points.push(CurvePoint {
            elapsed: 0.0,
            runtime: value.baseline_runtime,
        });
        for step in &value.steps {
            // Runtime stays flat while the index builds...
            points.push(CurvePoint {
                elapsed: step.elapsed_end,
                runtime: step.runtime_before,
            });
            // ...then drops the moment it becomes available.
            points.push(CurvePoint {
                elapsed: step.elapsed_end,
                runtime: step.runtime_after,
            });
        }
        Self { points }
    }

    /// The curve's points, in increasing elapsed time.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Workload runtime at an arbitrary moment of the deployment.
    pub fn runtime_at(&self, elapsed: f64) -> f64 {
        let mut current = self.points.first().map(|p| p.runtime).unwrap_or(0.0);
        for p in &self.points {
            if p.elapsed <= elapsed {
                current = p.runtime;
            } else {
                break;
            }
        }
        current
    }

    /// Area under the curve between `0` and the end of deployment, computed
    /// from the points. Matches `ObjectiveValue::area` up to floating-point
    /// rounding and is used as a cross-check in tests.
    pub fn area(&self) -> f64 {
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].elapsed - w[0].elapsed;
            if dt > 0.0 {
                area += dt * w[0].runtime;
            }
        }
        area
    }

    /// Renders the curve as `elapsed,runtime` CSV lines (with header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("elapsed,runtime\n");
        for p in &self.points {
            out.push_str(&format!("{:.6},{:.6}\n", p.elapsed, p.runtime));
        }
        out
    }
}

/// One build step of a fixed schedule, reduced to what the recombination
/// merge needs: how long the step occupies the deployment clock and how much
/// workload runtime it releases when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenefitStep {
    /// The index built at this step.
    pub index: IndexId,
    /// Effective build cost of the step (interactions with *earlier* steps
    /// of the same schedule already applied).
    pub cost: f64,
    /// Runtime drop realized when the step completes
    /// (`runtime_before − runtime_after`, never negative).
    pub benefit: f64,
}

/// Extracts the benefit-curve view of an evaluated deployment. Requires the
/// step trace, i.e. a value produced by `ObjectiveEvaluator::evaluate`, not
/// the area-only fast path.
pub fn benefit_steps(value: &ObjectiveValue) -> Vec<BenefitStep> {
    value
        .steps
        .iter()
        .map(|s| BenefitStep {
            index: s.index,
            cost: s.build_cost,
            benefit: s.runtime_before - s.runtime_after,
        })
        .collect()
}

/// A contiguous run of schedule steps that must be kept together when the
/// schedule is interleaved with independent work (see [`density_blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleBlock {
    /// Position of the block's first step in the source schedule.
    pub start: usize,
    /// Number of steps in the block.
    pub len: usize,
    /// Summed effective build cost of the block's steps.
    pub cost: f64,
    /// Summed runtime drop of the block's steps.
    pub benefit: f64,
}

/// Density classes make the comparison total without ever dividing:
/// a free block that releases runtime is denser than everything finite,
/// and a free block that releases nothing is inert and compares equal to
/// other inert blocks at the very back.
fn density_class(cost: f64, benefit: f64) -> u8 {
    if cost > 0.0 {
        1
    } else if benefit > 0.0 {
        0 // zero cost, positive benefit: infinite density
    } else {
        2 // zero cost, zero benefit: inert
    }
}

impl ScheduleBlock {
    /// Density ordering: `Greater` means `self` is denser than `other` and
    /// should be scheduled earlier. Densities are compared by
    /// cross-multiplication (`benefit_a·cost_b` vs `benefit_b·cost_a`), so
    /// zero-cost blocks never produce `inf`/`NaN` and equal densities
    /// compare exactly `Equal` — callers add their own deterministic
    /// tie-break.
    pub fn density_cmp(&self, other: &ScheduleBlock) -> Ordering {
        let class_a = density_class(self.cost, self.benefit);
        let class_b = density_class(other.cost, other.benefit);
        if class_a != class_b {
            // Lower class = denser.
            return class_b.cmp(&class_a);
        }
        if class_a != 1 {
            return Ordering::Equal;
        }
        (self.benefit * other.cost).total_cmp(&(other.benefit * self.cost))
    }
}

/// Decomposes a fixed schedule into its maximal-density prefix blocks: the
/// unique partition into contiguous runs whose densities strictly decrease.
///
/// The exchange argument behind it: if a later step (or run) is at least as
/// dense as the run before it, no optimal interleaving with independent work
/// ever separates the two — anything worth inserting between them is worth
/// inserting before both — so they fuse into one block. What remains is the
/// schedule's canonical form for Smith-style merging: interleave blocks from
/// independent schedules in non-increasing density order and the total area
/// is minimized over all interleavings that preserve each schedule's
/// internal order.
pub fn density_blocks(steps: &[BenefitStep]) -> Vec<ScheduleBlock> {
    let mut blocks: Vec<ScheduleBlock> = Vec::with_capacity(steps.len());
    for (k, step) in steps.iter().enumerate() {
        let mut current = ScheduleBlock {
            start: k,
            len: 1,
            cost: step.cost,
            benefit: step.benefit,
        };
        while let Some(previous) = blocks.last() {
            if current.density_cmp(previous) == Ordering::Less {
                break;
            }
            let previous = blocks.pop().expect("last() was Some");
            current = ScheduleBlock {
                start: previous.start,
                len: previous.len + current.len,
                cost: previous.cost + current.cost,
                benefit: previous.benefit + current.benefit,
            };
        }
        blocks.push(current);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ProblemInstance;
    use crate::objective::ObjectiveEvaluator;
    use crate::solution::Deployment;

    fn example() -> ProblemInstance {
        let mut b = ProblemInstance::builder("curve");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let q = b.add_query(30.0);
        b.add_plan(q, vec![i0], 5.0);
        b.add_plan(q, vec![i1], 20.0);
        b.build().unwrap()
    }

    #[test]
    fn curve_area_matches_objective_area() {
        let inst = example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0, 1], [1, 0]] {
            let v = eval.evaluate(&Deployment::from_raw(order));
            let curve = ImprovementCurve::from_objective(&v);
            assert!((curve.area() - v.area).abs() < 1e-9);
        }
    }

    #[test]
    fn runtime_at_steps_down_after_each_build() {
        let inst = example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        let curve = ImprovementCurve::from_objective(&v);
        assert_eq!(curve.runtime_at(0.0), 30.0);
        assert_eq!(curve.runtime_at(3.9), 30.0);
        assert_eq!(curve.runtime_at(4.0), 25.0);
        // The second index has no build interaction here, so it finishes at
        // elapsed 10; the runtime is still 25 just before that.
        assert_eq!(curve.runtime_at(9.9), 25.0);
        assert_eq!(curve.runtime_at(10.0), 10.0);
        assert_eq!(curve.runtime_at(100.0), 10.0);
    }

    fn step(cost: f64, benefit: f64) -> BenefitStep {
        BenefitStep {
            index: IndexId::new(0),
            cost,
            benefit,
        }
    }

    #[test]
    fn decreasing_densities_stay_separate_blocks() {
        let blocks = density_blocks(&[step(1.0, 9.0), step(1.0, 4.0), step(1.0, 1.0)]);
        assert_eq!(blocks.len(), 3);
        assert_eq!(
            blocks.iter().map(|b| (b.start, b.len)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 1), (2, 1)]
        );
    }

    #[test]
    fn increasing_densities_fuse_into_one_block() {
        // A later, denser step can never be profitably separated from its
        // predecessor, so the whole ascending run is one block.
        let blocks = density_blocks(&[step(4.0, 1.0), step(2.0, 2.0), step(1.0, 8.0)]);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks[0].len, 3);
        assert_eq!(blocks[0].cost, 7.0);
        assert_eq!(blocks[0].benefit, 11.0);
    }

    #[test]
    fn valley_fuses_with_the_peak_behind_it() {
        // 5, 0.5, 4: the cheap-but-dense tail pulls the valley forward but
        // cannot jump over it, so valley+tail fuse (density 4.5/2 = 2.25)
        // and stay behind the leading density-5 step.
        let blocks = density_blocks(&[step(1.0, 5.0), step(1.0, 0.5), step(1.0, 4.0)]);
        assert_eq!(
            blocks.iter().map(|b| (b.start, b.len)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 2)]
        );
        assert_eq!(blocks[1].benefit, 4.5);
    }

    #[test]
    fn zero_cost_steps_compare_without_nan() {
        // Free-and-useful is denser than everything; free-and-inert ties
        // only with itself at the back.
        let infinite = ScheduleBlock {
            start: 0,
            len: 1,
            cost: 0.0,
            benefit: 1.0,
        };
        let finite = ScheduleBlock {
            start: 0,
            len: 1,
            cost: 2.0,
            benefit: 100.0,
        };
        let inert = ScheduleBlock {
            start: 0,
            len: 1,
            cost: 0.0,
            benefit: 0.0,
        };
        assert_eq!(infinite.density_cmp(&finite), Ordering::Greater);
        assert_eq!(finite.density_cmp(&inert), Ordering::Greater);
        assert_eq!(inert.density_cmp(&inert), Ordering::Equal);
        // Equal finite densities at different scales are exactly equal.
        let a = ScheduleBlock {
            start: 0,
            len: 1,
            cost: 2.0,
            benefit: 10.0,
        };
        let b = ScheduleBlock {
            start: 0,
            len: 1,
            cost: 1.0,
            benefit: 5.0,
        };
        assert_eq!(a.density_cmp(&b), Ordering::Equal);
    }

    #[test]
    fn benefit_steps_read_off_the_objective_trace() {
        let inst = example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        let steps = benefit_steps(&v);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].cost, 4.0);
        assert_eq!(steps[0].benefit, 5.0);
        assert_eq!(steps[1].cost, 6.0);
        assert_eq!(steps[1].benefit, 15.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let inst = example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        let curve = ImprovementCurve::from_objective(&v);
        let csv = curve.to_csv();
        assert!(csv.starts_with("elapsed,runtime\n"));
        assert_eq!(csv.lines().count(), curve.points().len() + 1);
    }
}
