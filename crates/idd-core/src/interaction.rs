//! Build interactions and precedence constraints between indexes.

use crate::types::IndexId;
use serde::{Deserialize, Serialize};

/// A *build interaction*: building [`BuildInteraction::target`] is
/// [`BuildInteraction::speedup`] seconds cheaper when
/// [`BuildInteraction::helper`] already exists (e.g. the narrow index
/// `i1(City)` can be built by scanning the existing wide index
/// `i2(City, Salary)` instead of the base table).
///
/// Following the paper's constraint (5), interactions are pair-wise and only
/// the *best* available helper counts:
/// `C_{T_i} = ctime(i) − max_{j: T_j < T_i} cspdup(i, j)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildInteraction {
    /// The index whose creation becomes cheaper.
    pub target: IndexId,
    /// The index that must already exist for the saving to apply.
    pub helper: IndexId,
    /// `cspdup(target, helper)`: seconds saved off `ctime(target)`.
    pub speedup: f64,
}

impl BuildInteraction {
    /// Creates a build interaction.
    pub fn new(target: IndexId, helper: IndexId, speedup: f64) -> Self {
        Self {
            target,
            helper,
            speedup,
        }
    }
}

/// A hard precedence constraint: [`Precedence::before`] must be deployed
/// before [`Precedence::after`].
///
/// The paper's examples are (a) the clustered index of a materialized view
/// must precede the view's secondary indexes, and (b) a correlation-exploiting
/// secondary index requires its clustered index first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Precedence {
    /// The index that must be built first.
    pub before: IndexId,
    /// The index that can only be built afterwards.
    pub after: IndexId,
}

impl Precedence {
    /// Creates a precedence constraint `before ≺ after`.
    pub fn new(before: IndexId, after: IndexId) -> Self {
        Self { before, after }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_interaction_round_trips_through_serde() {
        let b = BuildInteraction::new(IndexId::new(1), IndexId::new(2), 4.0);
        let json = serde_json::to_string(&b).unwrap();
        let back: BuildInteraction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn precedence_is_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Precedence::new(IndexId::new(0), IndexId::new(1)));
        set.insert(Precedence::new(IndexId::new(0), IndexId::new(1)));
        set.insert(Precedence::new(IndexId::new(1), IndexId::new(0)));
        assert_eq!(set.len(), 2);
    }
}
