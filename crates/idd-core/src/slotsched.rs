//! The slot-aware suffix objective: what a candidate order *really* costs
//! on `k` concurrent build slots.
//!
//! [`ObjectiveEvaluator::evaluate_area`](crate::ObjectiveEvaluator::evaluate_area)
//! scores an order under the paper's serial model — one build at a time,
//! every build enjoying the interaction discounts of everything before it.
//! A concurrent runtime realizes a different cost: builds overlap, an index
//! dispatched before its helper *completes* forfeits the discount, and the
//! workload runtime integrates over the (shorter) overlapped wall-clock.
//! Ranking candidate suffixes by the serial area is therefore a proxy that
//! can disagree with the k-slot cost the runtime will actually pay.
//!
//! [`SlotScheduleEvaluator`] closes that gap: it list-schedules an order
//! onto `k` slots with exactly the deploy runtime's dispatch rules and
//! exactly the [`ObjectiveStepper`](crate::objective::ObjectiveStepper)
//! begin/accrue/complete arithmetic,
//! accumulating the realized area in an [`ExactSum`]. The result is not an
//! approximation of the runtime — on a quiet run (no events, no failures)
//! it *is* the runtime, bit for bit:
//!
//! * dispatch fills the lowest-numbered free slot first;
//! * under [`head-of-line`](SlotScheduleEvaluator::head_of_line) rules a
//!   pending head whose precedence prerequisite has not *completed* blocks
//!   every free slot behind it; under
//!   [`work-conserving`](SlotScheduleEvaluator::work_conserving) rules (the
//!   default) the first *eligible* pending index runs instead, without
//!   reordering the plan;
//! * each build is priced against the indexes completed at its start
//!   ([`ObjectiveStepper::begin_build`](crate::objective::ObjectiveStepper::begin_build)):
//!   an in-flight helper discounts
//!   nothing;
//! * completions land earliest-finish-first, dispatch order breaking ties,
//!   and each elapsed span accrues `runtime · duration` into the same
//!   [`ExactSum`] the runtime uses.
//!
//! With `k = 1` every order degenerates to the serial schedule and the
//! evaluator reproduces
//! [`ObjectiveEvaluator::evaluate_area`](crate::ObjectiveEvaluator::evaluate_area)
//! bit-for-bit — which is what lets a replanner switch between the serial
//! and slot-aware objectives without perturbing single-slot behavior.

use crate::accsum::ExactSum;
use crate::instance::ProblemInstance;
use crate::objective::ObjectiveEvaluator;
use crate::solution::Deployment;
use crate::types::IndexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// What one list-scheduled run of an order realized on `k` slots.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotScheduleValue {
    /// The realized k-slot objective area: workload runtime integrated over
    /// the schedule's wall-clock, canonically rounded once.
    pub area: f64,
    /// The schedule makespan (completion time of the last build).
    pub makespan: f64,
    /// Workload runtime once every index has completed.
    pub final_runtime: f64,
    /// Number of builds dispatched ahead of a blocked planned head (always
    /// `0` under head-of-line rules, where nothing may overtake).
    pub overtakes: usize,
}

/// List-schedules deployment orders onto `k` concurrent build slots and
/// returns the realized k-slot objective area. See the module docs for the
/// exact semantics and the bit-for-bit guarantees.
#[derive(Debug, Clone)]
pub struct SlotScheduleEvaluator<'a> {
    instance: &'a ProblemInstance,
    evaluator: ObjectiveEvaluator<'a>,
    slots: usize,
    work_conserving: bool,
    /// Offsets (from the schedule's t = 0) at which initially-occupied
    /// slots become free; empty = every slot free at once.
    busy_until: Vec<f64>,
}

/// What the completion queue is waiting on: a scheduled build finishing, or
/// an initially-occupied slot becoming free (a mid-flight replan's
/// in-flight build draining, seen from the suffix's t = 0).
#[derive(Debug, Clone, Copy, PartialEq)]
enum DoneEvent {
    Build(IndexId),
    SlotFree(usize),
}

/// Completion-queue key: earliest finish first, dispatch sequence breaking
/// ties — the same ordering the deploy runtime's event loop uses.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Done {
    finish: f64,
    seq: usize,
    event: DoneEvent,
}

impl Eq for Done {}

impl Ord for Done {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish
            .total_cmp(&other.finish)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Done {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> SlotScheduleEvaluator<'a> {
    /// A work-conserving evaluator over `slots` concurrent slots (`0` is
    /// treated as `1`, like the deploy runtime's `build_slots`).
    pub fn new(instance: &'a ProblemInstance, slots: usize) -> Self {
        Self {
            instance,
            evaluator: ObjectiveEvaluator::new(instance),
            slots: slots.max(1),
            work_conserving: true,
            busy_until: Vec::new(),
        }
    }

    /// Marks slots as initially occupied: `busy[i]` is the offset from the
    /// schedule's t = 0 at which the i-th occupied slot frees up. This is
    /// what a mid-flight replan sees — in-flight builds hold some slots
    /// past the replan point, so a candidate suffix that assumes all `k`
    /// slots are free at once is scored against a schedule that cannot
    /// happen. Non-finite or non-positive offsets count as free
    /// immediately; offsets beyond the slot count are ignored (there is
    /// nothing left to occupy).
    pub fn with_busy_until(mut self, busy: &[f64]) -> Self {
        self.busy_until = busy
            .iter()
            .copied()
            .map(|b| if b.is_finite() && b > 0.0 { b } else { 0.0 })
            .take(self.slots)
            .collect();
        self
    }

    /// Switches to head-of-line dispatch: a blocked planned head idles every
    /// free slot behind it (the deploy runtime's default dispatch policy).
    pub fn head_of_line(mut self) -> Self {
        self.work_conserving = false;
        self
    }

    /// Switches to work-conserving dispatch (the constructor default): the
    /// first eligible pending index runs whenever a slot is free.
    pub fn work_conserving(mut self) -> Self {
        self.work_conserving = true;
        self
    }

    /// The slot count this evaluator schedules onto.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// `true` when dispatch may overtake a blocked planned head.
    pub fn is_work_conserving(&self) -> bool {
        self.work_conserving
    }

    /// The realized k-slot objective area of `order` (no timeline detail).
    pub fn evaluate_area(&self, order: &Deployment) -> f64 {
        self.evaluate(order).area
    }

    /// List-schedules `order` and returns the realized area, makespan,
    /// final runtime and overtake count.
    ///
    /// `order` must be a valid deployment of the instance (a permutation
    /// satisfying the precedence closure — checked in debug builds): with a
    /// prerequisite scheduled *after* its dependent, no dispatch rule could
    /// ever clear the dependent and the schedule would wedge.
    pub fn evaluate(&self, order: &Deployment) -> SlotScheduleValue {
        debug_assert!(order.validate(self.instance).is_ok());
        let mut pending: VecDeque<IndexId> = order.order().iter().copied().collect();
        let mut stepper = self.evaluator.stepper();
        let mut realized = ExactSum::new();
        let mut completions: BinaryHeap<Reverse<Done>> = BinaryHeap::new();
        let mut free_slots: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
        // (index, slot, start, finish, cost) per in-flight build.
        let mut in_flight: Vec<(IndexId, usize, f64, f64, f64)> = Vec::new();
        let mut clock = 0.0_f64;
        let mut seq = 0usize;
        let mut overtakes = 0usize;

        // Slots carrying an initial occupancy free up via the completion
        // queue (like the in-flight builds they stand for); the rest are
        // free at once. With no occupancy this is every slot, bit-for-bit
        // the original behavior.
        for slot in 0..self.slots {
            match self.busy_until.get(slot) {
                Some(&b) if b > 0.0 => {
                    completions.push(Reverse(Done {
                        finish: b,
                        seq,
                        event: DoneEvent::SlotFree(slot),
                    }));
                    seq += 1;
                }
                _ => free_slots.push(Reverse(slot)),
            }
        }

        loop {
            // Dispatch into free slots. Eligibility (every precedence
            // prerequisite *completed*) cannot change while dispatching —
            // only completions complete things — so each scan is final for
            // this boundary.
            while !free_slots.is_empty() {
                let Some(pos) = self.next_dispatchable(&pending, stepper.built()) else {
                    break;
                };
                let next = pending.remove(pos).expect("position from scan");
                if pos > 0 {
                    overtakes += 1;
                }
                let slot = free_slots.pop().expect("checked non-empty").0;
                let cost = stepper.begin_build(next);
                let finish = clock + cost;
                completions.push(Reverse(Done {
                    finish,
                    seq,
                    event: DoneEvent::Build(next),
                }));
                in_flight.push((next, slot, clock, finish, cost));
                seq += 1;
            }

            // Once every pending index has completed, trailing slot-free
            // sentinels are irrelevant: they must not stretch the makespan
            // or accrue area past the last build.
            if pending.is_empty() && in_flight.is_empty() {
                break;
            }

            // Advance to the earliest completion; accrue the elapsed span
            // exactly the way the runtime does: when nothing has accrued
            // since this build started, use its own cost as the duration
            // (the serial bit-for-bit split), otherwise the remaining span.
            let Some(Reverse(done)) = completions.pop() else {
                break;
            };
            match done.event {
                DoneEvent::SlotFree(slot) => {
                    // An initially-occupied slot drains: the workload keeps
                    // running at the current rate until then, but nothing in
                    // the suffix completes.
                    if done.finish > clock {
                        let span = done.finish - clock;
                        realized.add_prod(stepper.runtime(), span);
                        stepper.accrue(span);
                        clock = done.finish;
                    }
                    free_slots.push(Reverse(slot));
                }
                DoneEvent::Build(index) => {
                    let pos = in_flight
                        .iter()
                        .position(|&(i, _, _, _, _)| i == index)
                        .expect("completion queue tracks in-flight builds");
                    let (index, slot, start, finish, cost) = in_flight.remove(pos);
                    let runtime = stepper.runtime();
                    if clock.to_bits() == start.to_bits() {
                        realized.add_prod(runtime, cost);
                        stepper.accrue(cost);
                    } else {
                        realized.add_prod(runtime, finish - clock);
                        stepper.accrue(finish - clock);
                    }
                    clock = finish;
                    stepper.complete_build(index);
                    free_slots.push(Reverse(slot));
                }
            }
        }

        debug_assert!(
            pending.is_empty(),
            "valid order wedged: head blocked with nothing in flight"
        );
        SlotScheduleValue {
            area: realized.value(),
            makespan: clock,
            final_runtime: stepper.runtime(),
            overtakes,
        }
    }

    /// Position in `pending` of the next index the dispatch rule admits,
    /// given the completed set. Head-of-line admits only an eligible head;
    /// work-conserving admits the first eligible index.
    fn next_dispatchable(&self, pending: &VecDeque<IndexId>, built: &[bool]) -> Option<usize> {
        let limit = if self.work_conserving {
            pending.len()
        } else {
            pending.len().min(1)
        };
        (0..limit).find(|&pos| self.eligible(pending[pos], built))
    }

    /// `true` when every precedence prerequisite of `index` has completed —
    /// the deploy runtime's dispatch gate.
    fn eligible(&self, index: IndexId, built: &[bool]) -> bool {
        self.instance
            .precedences()
            .iter()
            .all(|pr| pr.after != index || built[pr.before.raw()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ProblemInstance;

    /// The deploy runtime's hand-computed example: two queries, two
    /// build-interaction discounts.
    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("slotsched");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let i2 = b.add_index(3.0);
        let i3 = b.add_index(5.0);
        let q0 = b.add_query(30.0);
        b.add_plan(q0, vec![i0], 5.0);
        b.add_plan(q0, vec![i1], 20.0);
        let q1 = b.add_query(40.0);
        b.add_plan(q1, vec![i2], 8.0);
        b.add_plan(q1, vec![i2, i3], 25.0);
        b.add_build_interaction(i1, i0, 2.0);
        b.add_build_interaction(i3, i2, 1.5);
        b.build().unwrap()
    }

    #[test]
    fn one_slot_reproduces_the_serial_area_bit_for_bit() {
        let inst = instance();
        for order in [
            Deployment::from_raw([0, 1, 2, 3]),
            Deployment::from_raw([1, 0, 3, 2]),
            Deployment::from_raw([3, 2, 1, 0]),
        ] {
            let serial = ObjectiveEvaluator::new(&inst).evaluate(&order);
            for eval in [
                SlotScheduleEvaluator::new(&inst, 1),
                SlotScheduleEvaluator::new(&inst, 1).head_of_line(),
            ] {
                let value = eval.evaluate(&order);
                assert_eq!(value.area.to_bits(), serial.area.to_bits());
                assert_eq!(value.makespan.to_bits(), serial.deployment_time.to_bits());
                assert_eq!(value.final_runtime, serial.final_runtime);
                assert_eq!(value.overtakes, 0);
            }
        }
    }

    #[test]
    fn two_slot_timeline_matches_the_hand_computed_schedule() {
        // Same schedule as the deploy runtime's hand-computed test:
        //   slot 0: i0 [0,4]  i2 [4,7]
        //   slot 1: i1 [0,6]  i3 [6,11]
        //   realized = 70·4 + 65·2 + 50·1 + 42·4 = 628
        let inst = instance();
        let order = Deployment::from_raw([0, 1, 2, 3]);
        let value = SlotScheduleEvaluator::new(&inst, 2).evaluate(&order);
        assert!((value.area - 628.0).abs() < 1e-9);
        assert_eq!(value.makespan, 11.0);
        assert_eq!(value.final_runtime, 25.0);
        assert_eq!(value.overtakes, 0);
    }

    #[test]
    fn work_conserving_overtakes_a_blocked_head_and_head_of_line_idles() {
        let mut b = ProblemInstance::builder("gate");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let i2 = b.add_index(3.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![i0], 10.0);
        b.add_plan(q0, vec![i1], 30.0);
        b.add_plan(q0, vec![i2], 5.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let order = Deployment::from_raw([0, 1, 2]);

        // Head-of-line: i1 blocks slot 1 until i0 completes at t=4 (i2's
        // speed-up of 5 is dominated by i0's 10, so its completion at t=7
        // changes nothing): i0 [0,4], i1 [4,10], i2 [4,7]; runtime 50
        // →(i0@4) 40; area = 50·4 + 40·6 = 440, makespan 10.
        let hol = SlotScheduleEvaluator::new(&inst, 2)
            .head_of_line()
            .evaluate(&order);
        assert!((hol.area - 440.0).abs() < 1e-9);
        assert_eq!(hol.makespan, 10.0);
        assert_eq!(hol.overtakes, 0);

        // Work-conserving: i2 overtakes into slot 1 at t=0.
        //   i0 [0,4], i2 [0,3], i1 [4,10]; runtime 50 →(i2@3) 45 →(i0@4)
        //   40 →(i1@10) 20; area = 50·3 + 45·1 + 40·6 = 435, makespan 10.
        let wc = SlotScheduleEvaluator::new(&inst, 2).evaluate(&order);
        assert!((wc.area - 435.0).abs() < 1e-9);
        assert_eq!(wc.makespan, 10.0);
        assert_eq!(wc.overtakes, 1);
        assert!(wc.area < hol.area, "work conservation must not cost more");
    }

    #[test]
    fn busy_slots_delay_dispatch_and_accrue_the_occupied_span() {
        // busy = [3, 0]: slot 1 is free at once, slot 0 drains at t=3.
        //   slot 1: i0 [0,4]   i2 [4,7]   i3 [7,10.5] (i2 done → cost 3.5)
        //   slot 0: i1 [3,9]               (i0 in flight → full cost 6)
        // runtime 70 →(i0@4) 65 →(i2@7) 57 →(i1@9) 42 →(i3@10.5) 25
        // area = 70·3 + 70·1 + 65·3 + 57·2 + 42·1.5 = 652, makespan 10.5.
        let inst = instance();
        let order = Deployment::from_raw([0, 1, 2, 3]);
        let value = SlotScheduleEvaluator::new(&inst, 2)
            .with_busy_until(&[3.0, 0.0])
            .evaluate(&order);
        assert!((value.area - 652.0).abs() < 1e-9, "{}", value.area);
        assert_eq!(value.makespan, 10.5);
        assert_eq!(value.final_runtime, 25.0);
        assert_eq!(value.overtakes, 0);
    }

    #[test]
    fn empty_busy_and_clamped_busy_leave_the_schedule_bit_identical() {
        let inst = instance();
        let order = Deployment::from_raw([1, 0, 3, 2]);
        for slots in [1, 2, 4] {
            let plain = SlotScheduleEvaluator::new(&inst, slots).evaluate(&order);
            let empty = SlotScheduleEvaluator::new(&inst, slots)
                .with_busy_until(&[])
                .evaluate(&order);
            // Non-finite and non-positive offsets mean "free at once".
            let clamped = SlotScheduleEvaluator::new(&inst, slots)
                .with_busy_until(&[0.0, -2.0, f64::NAN, f64::INFINITY])
                .evaluate(&order);
            assert_eq!(empty.area.to_bits(), plain.area.to_bits());
            assert_eq!(clamped.area.to_bits(), plain.area.to_bits());
            assert_eq!(clamped.makespan.to_bits(), plain.makespan.to_bits());
        }
    }

    #[test]
    fn a_trailing_sentinel_does_not_stretch_the_makespan() {
        // One pending index, two slots, the second occupied far past the
        // schedule: the build runs on the free slot and the evaluator stops
        // at its completion, not at the sentinel.
        let mut b = ProblemInstance::builder("tail");
        let i0 = b.add_index(4.0);
        let q0 = b.add_query(10.0);
        b.add_plan(q0, vec![i0], 6.0);
        let inst = b.build().unwrap();
        let order = Deployment::from_raw([0]);
        let value = SlotScheduleEvaluator::new(&inst, 2)
            .with_busy_until(&[0.0, 100.0])
            .evaluate(&order);
        assert!((value.area - 40.0).abs() < 1e-9);
        assert_eq!(value.makespan, 4.0);
        assert_eq!(value.final_runtime, 4.0);
    }

    #[test]
    fn zero_slots_are_clamped_to_one() {
        let inst = instance();
        let order = Deployment::from_raw([2, 3, 0, 1]);
        let zero = SlotScheduleEvaluator::new(&inst, 0).evaluate_area(&order);
        let one = SlotScheduleEvaluator::new(&inst, 1).evaluate_area(&order);
        assert_eq!(zero.to_bits(), one.to_bits());
    }

    #[test]
    fn many_slots_run_everything_eligible_at_once() {
        let inst = instance();
        let order = Deployment::from_raw([0, 1, 2, 3]);
        // 4+ slots: all four builds start at t=0, no discounts at all.
        // Completions at 3 (i2), 4 (i0), 5 (i3), 6 (i1); runtime
        // 70 →(i2) 62 →(i0) 57 →(i3) 40 →(i1) 25.
        // area = 70·3 + 62·1 + 57·1 + 40·1 = 369, makespan 6.
        for slots in [4, 8] {
            let value = SlotScheduleEvaluator::new(&inst, slots).evaluate(&order);
            assert!((value.area - 369.0).abs() < 1e-9, "{}", value.area);
            assert_eq!(value.makespan, 6.0);
        }
    }
}
