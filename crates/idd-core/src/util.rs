//! Small numeric helpers shared by the evaluators and solvers.

/// Tolerance used when comparing objective values and runtimes.
///
/// Objective values are sums of products of runtimes and build costs, so a
/// relative tolerance is used for large magnitudes and an absolute tolerance
/// for values near zero.
pub const EPSILON: f64 = 1e-7;

/// Returns `true` when `a` and `b` are equal within [`EPSILON`] (relative for
/// large values, absolute near zero).
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= EPSILON {
        return true;
    }
    let largest = a.abs().max(b.abs());
    diff <= largest * EPSILON
}

/// Returns `true` when `a` is strictly less than `b` beyond the tolerance.
pub fn definitely_less(a: f64, b: f64) -> bool {
    a < b && !approx_eq(a, b)
}

/// Maximum of two floats treating `NaN` as the identity (never selected).
pub fn fmax(a: f64, b: f64) -> f64 {
    if a.is_nan() || (!b.is_nan() && b > a) {
        b
    } else {
        a
    }
}

/// Minimum of two floats treating `NaN` as the identity (never selected).
pub fn fmin(a: f64, b: f64) -> f64 {
    if a.is_nan() || (!b.is_nan() && b < a) {
        b
    } else {
        a
    }
}

/// Compares two floats for sorting, ordering `NaN` last.
pub fn fcmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        if a.is_nan() && b.is_nan() {
            std::cmp::Ordering::Equal
        } else if a.is_nan() {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Less
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_near_zero() {
        assert!(approx_eq(0.0, 1e-9));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-9)));
        assert!(!approx_eq(1e12, 1.001e12));
    }

    #[test]
    fn definitely_less_respects_tolerance() {
        assert!(definitely_less(1.0, 2.0));
        assert!(!definitely_less(1.0, 1.0 + 1e-12));
        assert!(!definitely_less(2.0, 1.0));
    }

    #[test]
    fn fmax_fmin_ignore_nan() {
        assert_eq!(fmax(f64::NAN, 3.0), 3.0);
        assert_eq!(fmax(3.0, f64::NAN), 3.0);
        assert_eq!(fmin(f64::NAN, 3.0), 3.0);
        assert_eq!(fmax(2.0, 3.0), 3.0);
        assert_eq!(fmin(2.0, 3.0), 2.0);
    }

    #[test]
    fn fcmp_orders_nan_last() {
        let mut v = [3.0, f64::NAN, 1.0, 2.0];
        v.sort_by(|a, b| fcmp(*a, *b));
        assert_eq!(&v[..3], &[1.0, 2.0, 3.0]);
        assert!(v[3].is_nan());
    }
}
