//! Typed deployment-journal records: the append-only execution log of a
//! deployment run.
//!
//! A deployment runtime (the `idd-deploy` crate) appends one record per
//! observable action — dispatching a build into a slot, a failed attempt, a
//! completion, an evolution event landing, a replan decision, a deferred
//! (debounced) replan — each stamped with the exact deployment clock and,
//! where it applies, the slot. The journal is the *ground truth* of what a
//! run did: replaying it against the seed instance and initial plan must
//! reconstruct the identical `DeploymentReport` bit-for-bit, which is why
//! every `f64` here is the exact value the runtime computed (no rounding,
//! no derived quantities that could drift).
//!
//! The record model lives in `idd-core` next to [`crate::evolution`] for the
//! same reason the evolution model does: a journal is part of the *problem
//! record* for evolving OLAP — what happened, when — not of any particular
//! runtime. The runtime-side container and replayer live in
//! `idd_deploy::journal`.
//!
//! Like [`crate::evolution::EventKind`], the record enum serializes as a
//! tagged single-key object (`{"dispatch": {...}}`), hand-rolled because the
//! vendored serde derive supports field-less enums only. Deserialization is
//! strict: unknown tags, multi-key or non-object payloads, and duplicate
//! fields are errors, never defaults.

use crate::evolution::EvolutionEvent;
use crate::types::IndexId;
use serde::{Deserialize, Serialize};

/// A build was dispatched into a free slot.
///
/// Carries everything replay needs to reconstruct the build's slot
/// occupancy without the scenario: the effective cost the runtime computed
/// at dispatch and the failure spec it looked up (`retries` failed attempts
/// of `waste_per_failure` clock each precede the successful attempt).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// Deployment clock at dispatch (the build's `start`).
    pub clock: f64,
    /// Slot the build occupies until completion.
    pub slot: usize,
    /// Dispatch sequence number (position in the realized order, 0-based).
    pub position: usize,
    /// The index being built.
    pub index: IndexId,
    /// How far into the pending suffix the dispatcher reached (0 = the
    /// planned head; `d > 0` = a work-conserving overtake past `d` blocked
    /// indexes).
    pub plan_offset: usize,
    /// Effective build cost, priced against the indexes *completed* at
    /// dispatch.
    pub cost: f64,
    /// Failed attempts this build suffers before succeeding.
    pub retries: u32,
    /// Clock wasted per failed attempt.
    pub waste_per_failure: f64,
}

/// One failed build attempt inside an occupied slot.
///
/// Redundant with the owning [`DispatchRecord`] by construction — replay
/// recomputes each attempt and cross-checks these stamps, so a journal
/// edited or corrupted mid-flight surfaces as divergence instead of a
/// silently different report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailRecord {
    /// Deployment clock at which this attempt started.
    pub clock: f64,
    /// Slot the failing build occupies.
    pub slot: usize,
    /// The index whose build attempt failed.
    pub index: IndexId,
    /// Attempt number, 1-based.
    pub attempt: u32,
    /// Clock this attempt wasted.
    pub wasted: f64,
}

/// A build completed and its index became available.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompleteRecord {
    /// Deployment clock at completion (the build's `finish`).
    pub clock: f64,
    /// Slot the build vacated.
    pub slot: usize,
    /// The index that became available.
    pub index: IndexId,
    /// Cumulative realized cost after integrating up to this completion —
    /// the exact accumulator rounded once, which is what a realized-cost-
    /// over-time polyline plots and what replay cross-checks bit-for-bit.
    pub realized: f64,
}

/// An evolution event landed at a completion boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Deployment clock when the event took effect (`max(clock, event.at)`:
    /// events land at the first boundary at or after their timestamp).
    pub clock: f64,
    /// The event, verbatim.
    pub event: EvolutionEvent,
}

/// A replan fired: the runtime chose a new pending suffix.
///
/// Stores the *decision* (the chosen order and the solver's scoring), not
/// the runtime's frozen-commitment snapshot — replay reconstructs that from
/// its own committed/in-flight state, so a journal whose suffix contradicts
/// the frozen prefix fails plan validation instead of replaying quietly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanDecision {
    /// Deployment clock at which the replan happened.
    pub clock: f64,
    /// What triggered it ("drift", "revision", "failure", or a `+`-joined
    /// batch).
    pub trigger: String,
    /// The chosen pending suffix, in execution order.
    pub pending: Vec<IndexId>,
    /// Residual objective of the order previously in flight, if it was
    /// still usable as a warm start.
    pub warm_start_objective: Option<f64>,
    /// Residual objective of the chosen suffix.
    pub objective: f64,
    /// Which solver produced the chosen order.
    pub solver: String,
    /// `true` when the replan strictly improved on the in-flight order.
    pub improved: bool,
}

/// A due replan was deferred: another event was scheduled inside the
/// debounce window and the clock could still advance toward it.
///
/// Informational — replay takes no action on it — but it makes debouncing
/// auditable: every deferral decision is on the record with the triggers it
/// batched and the event it waited for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DebounceRecord {
    /// Deployment clock at the deferral decision.
    pub clock: f64,
    /// The `+`-joined triggers accumulated so far.
    pub deferred: String,
    /// Timestamp of the queued event the deferral is batching toward.
    pub next_event_at: f64,
}

/// One record of a deployment journal, in the order the runtime acted.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A build was dispatched into a slot.
    Dispatch(DispatchRecord),
    /// A build attempt failed inside its slot.
    Fail(FailRecord),
    /// A build completed.
    Complete(CompleteRecord),
    /// An evolution event landed.
    EventLanded(EventRecord),
    /// A replan chose a new pending suffix.
    Replan(ReplanDecision),
    /// A due replan was deferred into the debounce window.
    Debounce(DebounceRecord),
}

impl JournalRecord {
    /// The deployment clock stamped on the record.
    pub fn clock(&self) -> f64 {
        match self {
            JournalRecord::Dispatch(r) => r.clock,
            JournalRecord::Fail(r) => r.clock,
            JournalRecord::Complete(r) => r.clock,
            JournalRecord::EventLanded(r) => r.clock,
            JournalRecord::Replan(r) => r.clock,
            JournalRecord::Debounce(r) => r.clock,
        }
    }

    /// The record's tag, as serialized ("dispatch", "fail", "complete",
    /// "event", "replan", "debounce").
    pub fn tag(&self) -> &'static str {
        match self {
            JournalRecord::Dispatch(_) => "dispatch",
            JournalRecord::Fail(_) => "fail",
            JournalRecord::Complete(_) => "complete",
            JournalRecord::EventLanded(_) => "event",
            JournalRecord::Replan(_) => "replan",
            JournalRecord::Debounce(_) => "debounce",
        }
    }
}

// The vendored serde derive supports field-less enums only, so the tagged
// representation (`{"dispatch": {...}}`, ...) is hand-rolled, exactly like
// `EventKind`'s.
impl Serialize for JournalRecord {
    fn to_value(&self) -> serde::Value {
        let (tag, value) = match self {
            JournalRecord::Dispatch(r) => ("dispatch", r.to_value()),
            JournalRecord::Fail(r) => ("fail", r.to_value()),
            JournalRecord::Complete(r) => ("complete", r.to_value()),
            JournalRecord::EventLanded(r) => ("event", r.to_value()),
            JournalRecord::Replan(r) => ("replan", r.to_value()),
            JournalRecord::Debounce(r) => ("debounce", r.to_value()),
        };
        serde::Value::Object(vec![(tag.to_string(), value)])
    }
}

impl Deserialize for JournalRecord {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v.as_object() {
            Some([(tag, value)]) => match tag.as_str() {
                "dispatch" => Ok(JournalRecord::Dispatch(Deserialize::from_value(value)?)),
                "fail" => Ok(JournalRecord::Fail(Deserialize::from_value(value)?)),
                "complete" => Ok(JournalRecord::Complete(Deserialize::from_value(value)?)),
                "event" => Ok(JournalRecord::EventLanded(Deserialize::from_value(value)?)),
                "replan" => Ok(JournalRecord::Replan(Deserialize::from_value(value)?)),
                "debounce" => Ok(JournalRecord::Debounce(Deserialize::from_value(value)?)),
                other => Err(serde::Error::custom(format!(
                    "unknown JournalRecord tag `{other}`"
                ))),
            },
            _ => Err(serde::Error::custom(
                "expected a single-key object for JournalRecord",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolution::{EventKind, WorkloadDrift};
    use crate::types::QueryId;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Dispatch(DispatchRecord {
                clock: 0.0,
                slot: 0,
                position: 0,
                index: IndexId::new(2),
                plan_offset: 1,
                cost: 4.5,
                retries: 2,
                waste_per_failure: 1.25,
            }),
            JournalRecord::Fail(FailRecord {
                clock: 0.0,
                slot: 0,
                index: IndexId::new(2),
                attempt: 1,
                wasted: 1.25,
            }),
            JournalRecord::Complete(CompleteRecord {
                clock: 7.0,
                slot: 0,
                index: IndexId::new(2),
                realized: 123.456,
            }),
            JournalRecord::EventLanded(EventRecord {
                clock: 7.0,
                event: EvolutionEvent {
                    at: 6.5,
                    kind: EventKind::Drift(WorkloadDrift {
                        weights: vec![(QueryId::new(1), 3.0)],
                    }),
                },
            }),
            JournalRecord::Replan(ReplanDecision {
                clock: 7.0,
                trigger: "drift+failure".into(),
                pending: vec![IndexId::new(1), IndexId::new(0)],
                warm_start_objective: Some(99.5),
                objective: 88.25,
                solver: "greedy".into(),
                improved: true,
            }),
            JournalRecord::Debounce(DebounceRecord {
                clock: 3.0,
                deferred: "drift".into(),
                next_event_at: 4.5,
            }),
        ]
    }

    #[test]
    fn every_record_round_trips_through_json() {
        for record in sample_records() {
            let json = serde_json::to_string(&record).unwrap();
            let back: JournalRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, record, "round trip of {json}");
            // The serialized form is the tagged single-key object.
            assert!(
                json.starts_with(&format!("{{\"{}\":", record.tag())),
                "{json}"
            );
        }
    }

    #[test]
    fn clock_and_tag_accessors_cover_every_variant() {
        let clocks: Vec<f64> = sample_records().iter().map(JournalRecord::clock).collect();
        assert_eq!(clocks, vec![0.0, 0.0, 7.0, 7.0, 7.0, 3.0]);
        let tags: Vec<&str> = sample_records().iter().map(JournalRecord::tag).collect();
        assert_eq!(
            tags,
            vec!["dispatch", "fail", "complete", "event", "replan", "debounce"]
        );
    }

    #[test]
    fn malformed_payloads_error_instead_of_defaulting() {
        use serde::Value;
        // Unknown tag.
        let unknown = Value::Object(vec![("retry".into(), Value::Object(vec![]))]);
        assert!(JournalRecord::from_value(&unknown).is_err());
        // Multi-key object is ambiguous, not first-wins.
        let multi = Value::Object(vec![
            ("debounce".into(), Value::Object(vec![])),
            ("dispatch".into(), Value::Object(vec![])),
        ]);
        assert!(JournalRecord::from_value(&multi).is_err());
        // Empty object and non-object payloads.
        assert!(JournalRecord::from_value(&Value::Object(vec![])).is_err());
        assert!(JournalRecord::from_value(&Value::String("dispatch".into())).is_err());
        // A tag whose payload is missing required fields.
        let hollow = Value::Object(vec![("complete".into(), Value::Object(vec![]))]);
        assert!(JournalRecord::from_value(&hollow).is_err());
    }
}
