//! Candidate solutions: index deployment orders.

use crate::error::{CoreError, Result};
use crate::instance::ProblemInstance;
use crate::types::IndexId;
use serde::{Deserialize, Serialize};

/// A deployment order — a permutation of the instance's indexes.
///
/// Position 0 is deployed first. This corresponds to the paper's decision
/// variable `T` (with `T_i` being the position of index `i`); we store the
/// inverse mapping (position → index) because that is what evaluators and
/// local-search moves consume, and expose `position_of` for the `T_i` view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    order: Vec<IndexId>,
}

impl Deployment {
    /// Creates a deployment from an explicit order (position → index).
    pub fn new(order: Vec<IndexId>) -> Self {
        Self { order }
    }

    /// The identity order `i0 → i1 → ... → i(n-1)`.
    pub fn identity(n: usize) -> Self {
        Self {
            order: (0..n).map(IndexId::new).collect(),
        }
    }

    /// Creates a deployment from raw positions (position → raw index id).
    pub fn from_raw(order: impl IntoIterator<Item = usize>) -> Self {
        Self {
            order: order.into_iter().map(IndexId::new).collect(),
        }
    }

    /// Number of indexes in the order.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` when the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The index deployed at `position` (0-based).
    pub fn at(&self, position: usize) -> IndexId {
        self.order[position]
    }

    /// The full order as a slice (position → index).
    pub fn order(&self) -> &[IndexId] {
        &self.order
    }

    /// The position of each index (`T_i` in the paper), as a vector keyed by
    /// raw index id.
    pub fn positions(&self) -> Vec<usize> {
        let mut pos = vec![usize::MAX; self.order.len()];
        for (p, &i) in self.order.iter().enumerate() {
            if i.raw() < pos.len() {
                pos[i.raw()] = p;
            }
        }
        pos
    }

    /// The position of one index, or `None` if it does not appear.
    pub fn position_of(&self, index: IndexId) -> Option<usize> {
        self.order.iter().position(|&i| i == index)
    }

    /// Swaps the indexes at two positions (a local-search move).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.order.swap(a, b);
    }

    /// Returns a copy with two positions swapped.
    pub fn with_swap(&self, a: usize, b: usize) -> Self {
        let mut c = self.clone();
        c.swap(a, b);
        c
    }

    /// Moves the index at position `from` to position `to`, shifting the
    /// intermediate indexes (an *insertion* move).
    pub fn relocate(&mut self, from: usize, to: usize) {
        let idx = self.order.remove(from);
        self.order.insert(to, idx);
    }

    /// Overwrites positions `at .. at + span.len()` with `span` (a local
    /// reordering, e.g. an LNS repair of a destroyed window).
    pub fn replace_span(&mut self, at: usize, span: &[IndexId]) {
        self.order[at..at + span.len()].copy_from_slice(span);
    }

    /// Concatenates a frozen prefix and a suffix into one order (mid-flight
    /// replanning: the built prefix is taken verbatim, never reordered).
    pub fn splice(prefix: &[IndexId], suffix: &[IndexId]) -> Self {
        let mut order = Vec::with_capacity(prefix.len() + suffix.len());
        order.extend_from_slice(prefix);
        order.extend_from_slice(suffix);
        Self { order }
    }

    /// `true` when this order begins with exactly `prefix` (the
    /// prefix-immutability check of the deployment runtime).
    pub fn starts_with(&self, prefix: &[IndexId]) -> bool {
        self.order.len() >= prefix.len() && self.order[..prefix.len()] == *prefix
    }

    /// Iterates over `(position, index)` pairs in deployment order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, IndexId)> + '_ {
        self.order.iter().copied().enumerate()
    }

    /// Checks that this deployment is a permutation of exactly the instance's
    /// indexes and respects every hard precedence constraint.
    pub fn validate(&self, instance: &ProblemInstance) -> Result<()> {
        let n = instance.num_indexes();
        if self.order.len() != n {
            return Err(CoreError::NotAPermutation {
                reason: format!("expected {n} indexes, got {}", self.order.len()),
            });
        }
        let mut seen = vec![false; n];
        for &i in &self.order {
            if i.raw() >= n {
                return Err(CoreError::NotAPermutation {
                    reason: format!("index {i} is out of range"),
                });
            }
            if seen[i.raw()] {
                return Err(CoreError::NotAPermutation {
                    reason: format!("index {i} appears twice"),
                });
            }
            seen[i.raw()] = true;
        }
        let positions = self.positions();
        for pr in instance.precedences() {
            if positions[pr.before.raw()] > positions[pr.after.raw()] {
                return Err(CoreError::PrecedenceViolated {
                    before: pr.before,
                    after: pr.after,
                });
            }
        }
        Ok(())
    }

    /// Returns `true` when [`Deployment::validate`] succeeds.
    pub fn is_valid_for(&self, instance: &ProblemInstance) -> bool {
        self.validate(instance).is_ok()
    }

    /// Renders the order in the paper's arrow notation, e.g. `"i3→i1→i2"`.
    pub fn arrow_notation(&self) -> String {
        self.order
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("→")
    }
}

impl From<Vec<IndexId>> for Deployment {
    fn from(order: Vec<IndexId>) -> Self {
        Self::new(order)
    }
}

impl std::ops::Index<usize> for Deployment {
    type Output = IndexId;

    fn index(&self, position: usize) -> &IndexId {
        &self.order[position]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("t");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let _i2 = b.add_index(1.0);
        let q = b.add_query(10.0);
        b.add_plan(q, vec![i0, i1], 5.0);
        b.add_precedence(i0, i1);
        b.build().unwrap()
    }

    #[test]
    fn identity_is_valid_when_precedence_agrees() {
        let inst = small_instance();
        let d = Deployment::identity(3);
        assert!(d.is_valid_for(&inst));
        assert_eq!(d.arrow_notation(), "i0→i1→i2");
    }

    #[test]
    fn precedence_violation_is_detected() {
        let inst = small_instance();
        let d = Deployment::from_raw([1, 0, 2]);
        assert!(matches!(
            d.validate(&inst),
            Err(CoreError::PrecedenceViolated { .. })
        ));
    }

    #[test]
    fn duplicate_and_wrong_length_are_rejected() {
        let inst = small_instance();
        assert!(!Deployment::from_raw([0, 0, 1]).is_valid_for(&inst));
        assert!(!Deployment::from_raw([0, 1]).is_valid_for(&inst));
        assert!(!Deployment::from_raw([0, 1, 5]).is_valid_for(&inst));
    }

    #[test]
    fn positions_are_the_inverse_of_order() {
        let d = Deployment::from_raw([2, 0, 1]);
        assert_eq!(d.positions(), vec![1, 2, 0]);
        assert_eq!(d.position_of(IndexId::new(2)), Some(0));
        assert_eq!(d.position_of(IndexId::new(7)), None);
    }

    #[test]
    fn swap_and_relocate_move_indexes() {
        let mut d = Deployment::from_raw([0, 1, 2, 3]);
        d.swap(0, 3);
        assert_eq!(d.order(), &[3, 1, 2, 0].map(IndexId::new));
        d.relocate(1, 3);
        assert_eq!(d.order(), &[3, 2, 0, 1].map(IndexId::new));
        let e = d.with_swap(0, 1);
        assert_eq!(e.at(0), IndexId::new(2));
        // Original untouched.
        assert_eq!(d.at(0), IndexId::new(3));
    }

    #[test]
    fn splice_keeps_the_prefix_verbatim() {
        let prefix = [IndexId::new(2), IndexId::new(0)];
        let suffix = [IndexId::new(1), IndexId::new(3)];
        let d = Deployment::splice(&prefix, &suffix);
        assert_eq!(d.order(), &[2, 0, 1, 3].map(IndexId::new));
        assert!(d.starts_with(&prefix));
        assert!(d.starts_with(&[]));
        assert!(!d.starts_with(&[IndexId::new(0)]));
        assert!(!Deployment::from_raw([1]).starts_with(&prefix));
    }

    #[test]
    fn serde_round_trip() {
        let d = Deployment::from_raw([2, 1, 0]);
        let json = serde_json::to_string(&d).unwrap();
        let back: Deployment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
