//! # idd-core — problem model for index deployment ordering
//!
//! This crate defines the mathematical model of the *index deployment order
//! problem* from "Optimizing Index Deployment Order for Evolving OLAP"
//! (EDBT 2012), Section 4:
//!
//! * [`IndexMeta`], [`QueryMeta`], [`QueryPlan`] — the workload artefacts
//!   produced by a physical-design advisor plus a what-if optimizer.
//! * [`BuildInteraction`] and [`Precedence`] — the build-time interactions and
//!   hard ordering constraints between indexes.
//! * [`ProblemInstance`] — the full "matrix file" of Figure 3: original query
//!   runtimes, plan speed-ups, index creation costs and interactions.
//! * [`Deployment`] — a candidate solution (a permutation of the indexes).
//! * [`ObjectiveEvaluator`] — computes the objective `Σ R_{i-1}·C_i`
//!   (the area under the improvement curve of Figure 4), both from scratch and
//!   incrementally for local search.
//! * [`InstanceStats`] — the statistics reported in Table 4 of the paper.
//! * [`reduce`](mod@crate::reduce) — the density reductions (low / mid /
//!   full) used by the exact-search experiments of Tables 5 and 6.
//!
//! The crate is deliberately free of any solver logic: solvers live in
//! `idd-solver`, workload generation in `idd-workloads` and the synthetic
//! DBMS substrate in `idd-whatif`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accsum;
pub mod curve;
pub mod error;
pub mod evolution;
pub mod index;
pub mod instance;
pub mod interaction;
pub mod journal;
pub mod matrix;
pub mod objective;
pub mod plan;
pub mod query;
pub mod reduce;
pub mod residual;
pub mod schedule;
pub mod slotsched;
pub mod solution;
pub mod stats;
pub mod types;
pub mod util;

pub mod prelude;

pub use accsum::ExactSum;
pub use curve::{
    benefit_steps, density_blocks, BenefitStep, CurvePoint, ImprovementCurve, ScheduleBlock,
};
pub use error::{CoreError, Result};
pub use evolution::{
    BuildFailure, DesignRevision, EventKind, EvolutionEvent, EvolutionScenario, IndexAddition,
    WorkloadDrift,
};
pub use index::IndexMeta;
pub use instance::{InstanceBuilder, ProblemInstance};
pub use interaction::{BuildInteraction, Precedence};
pub use journal::{
    CompleteRecord, DebounceRecord, DispatchRecord, EventRecord, FailRecord, JournalRecord,
    ReplanDecision,
};
pub use matrix::{MatrixFile, SoaView};
pub use objective::{
    DeltaEvaluator, ObjectiveEvaluator, ObjectiveStepper, ObjectiveValue, PrefixEvaluator,
    StepMetrics, SuffixReplayEvaluator,
};
pub use plan::QueryPlan;
pub use query::QueryMeta;
pub use reduce::{reduce, Density, ReduceOptions};
pub use residual::ResidualInstance;
pub use schedule::{DeploymentSchedule, ScheduledBuild};
pub use slotsched::{SlotScheduleEvaluator, SlotScheduleValue};
pub use solution::Deployment;
pub use stats::InstanceStats;
pub use types::{IndexId, PlanId, QueryId};
