//! Metadata describing a workload query.

use crate::types::QueryId;
use serde::{Deserialize, Serialize};

/// One query of the analytic workload.
///
/// Only [`QueryMeta::original_runtime`] (`qtime(q)` in the paper) and
/// [`QueryMeta::weight`] participate in the objective; the SQL-ish `text` is
/// informational and lets examples and reports show *why* a set of indexes
/// matters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryMeta {
    /// Dense identifier of this query within its [`crate::ProblemInstance`].
    pub id: QueryId,
    /// Human-readable name, e.g. `"Q7"` or `"rollup_by_country"`.
    pub name: String,
    /// Optional description or SQL text. Informational only.
    pub text: String,
    /// Relative importance of the query. The paper notes that weighting a
    /// query is equivalent to scaling its runtime; the evaluator multiplies
    /// `original_runtime` and all plan speed-ups by this factor.
    pub weight: f64,
    /// `qtime(q)`: runtime (seconds) of the query before any of the candidate
    /// indexes exist.
    pub original_runtime: f64,
}

impl QueryMeta {
    /// Creates a query with the given original runtime, unit weight and a
    /// generated name.
    pub fn simple(id: QueryId, original_runtime: f64) -> Self {
        Self {
            id,
            name: format!("q{}", id.raw()),
            text: String::new(),
            weight: 1.0,
            original_runtime,
        }
    }

    /// Creates a named query with unit weight.
    pub fn named(id: QueryId, name: impl Into<String>, original_runtime: f64) -> Self {
        Self {
            id,
            name: name.into(),
            text: String::new(),
            weight: 1.0,
            original_runtime,
        }
    }

    /// The runtime that actually enters the objective: `weight * qtime(q)`.
    pub fn weighted_runtime(&self) -> f64 {
        self.weight * self.original_runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_uses_unit_weight() {
        let q = QueryMeta::simple(QueryId::new(1), 30.0);
        assert_eq!(q.weight, 1.0);
        assert_eq!(q.weighted_runtime(), 30.0);
        assert_eq!(q.name, "q1");
    }

    #[test]
    fn weight_scales_runtime() {
        let mut q = QueryMeta::named(QueryId::new(0), "rollup", 10.0);
        q.weight = 2.5;
        assert_eq!(q.weighted_runtime(), 25.0);
    }

    #[test]
    fn serde_round_trip() {
        let q = QueryMeta::named(QueryId::new(3), "Q3", 12.0);
        let json = serde_json::to_string(&q).unwrap();
        let back: QueryMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
