//! Metadata describing a single candidate index.

use crate::types::IndexId;
use serde::{Deserialize, Serialize};

/// Descriptive metadata for one candidate index suggested by the design
/// advisor.
///
/// Only [`IndexMeta::creation_cost`] participates in the optimization model
/// (it is `ctime(i)` in the paper); the remaining fields describe *what* the
/// index is so that reports, examples and the what-if substrate can explain
/// interactions (e.g. "`i1(LANG, REGION)` builds faster after
/// `i2(LANG, AGE, REGION)` because it can scan the existing index").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexMeta {
    /// Dense identifier of this index within its [`crate::ProblemInstance`].
    pub id: IndexId,
    /// Human-readable name, e.g. `"IX_CUSTOMER_COUNTRY"`.
    pub name: String,
    /// Table the index is defined on.
    pub table: String,
    /// Key columns, in order.
    pub key_columns: Vec<String>,
    /// Included (covering) columns, if any.
    pub include_columns: Vec<String>,
    /// Whether this is the clustered index of its table (or of a materialized
    /// view). Clustered indexes typically precede their secondaries.
    pub clustered: bool,
    /// Estimated on-disk size in pages. Purely informational.
    pub size_pages: f64,
    /// `ctime(i)`: cost (seconds) of building this index from the base table
    /// with no helping interaction.
    pub creation_cost: f64,
}

impl IndexMeta {
    /// Creates a minimal index description with the given creation cost.
    ///
    /// The generated name is `idx{id}`; use the struct literal or
    /// [`IndexMeta::named`] for richer metadata.
    pub fn simple(id: IndexId, creation_cost: f64) -> Self {
        Self {
            id,
            name: format!("idx{}", id.raw()),
            table: String::new(),
            key_columns: Vec::new(),
            include_columns: Vec::new(),
            clustered: false,
            size_pages: 0.0,
            creation_cost,
        }
    }

    /// Creates an index description with a name, table and key columns.
    pub fn named(
        id: IndexId,
        name: impl Into<String>,
        table: impl Into<String>,
        key_columns: Vec<String>,
        creation_cost: f64,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            table: table.into(),
            key_columns,
            include_columns: Vec::new(),
            clustered: false,
            size_pages: 0.0,
            creation_cost,
        }
    }

    /// Returns the set of all columns touched by this index (keys then
    /// includes), useful for detecting build interactions by column overlap.
    pub fn all_columns(&self) -> impl Iterator<Item = &str> {
        self.key_columns
            .iter()
            .chain(self.include_columns.iter())
            .map(String::as_str)
    }

    /// Returns `true` when every key column of `other` appears among this
    /// index's columns — i.e. this index *covers* the columns `other` needs
    /// and can be scanned instead of the base table when building `other`.
    pub fn covers_columns_of(&self, other: &IndexMeta) -> bool {
        other
            .key_columns
            .iter()
            .all(|c| self.all_columns().any(|mine| mine == c))
    }

    /// Returns `true` when `other`'s key columns are a prefix of this index's
    /// key columns, the strongest form of build interaction (no re-sort
    /// needed).
    pub fn key_prefix_of(&self, other: &IndexMeta) -> bool {
        if other.key_columns.len() > self.key_columns.len() {
            return false;
        }
        self.key_columns
            .iter()
            .zip(other.key_columns.iter())
            .all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(id: usize, keys: &[&str], includes: &[&str]) -> IndexMeta {
        IndexMeta {
            id: IndexId::new(id),
            name: format!("idx{id}"),
            table: "T".into(),
            key_columns: keys.iter().map(|s| s.to_string()).collect(),
            include_columns: includes.iter().map(|s| s.to_string()).collect(),
            clustered: false,
            size_pages: 10.0,
            creation_cost: 5.0,
        }
    }

    #[test]
    fn simple_constructor_sets_cost() {
        let m = IndexMeta::simple(IndexId::new(2), 7.5);
        assert_eq!(m.creation_cost, 7.5);
        assert_eq!(m.name, "idx2");
        assert!(m.key_columns.is_empty());
    }

    #[test]
    fn covers_columns_detects_paper_example() {
        // i2(City, Salary) covers i1(City): building i1 can scan i2.
        let i1 = idx(1, &["City"], &[]);
        let i2 = idx(2, &["City", "Salary"], &[]);
        assert!(i2.covers_columns_of(&i1));
        assert!(!i1.covers_columns_of(&i2));
    }

    #[test]
    fn include_columns_count_for_coverage() {
        let narrow = idx(1, &["A"], &[]);
        let covering = idx(2, &["B"], &["A"]);
        assert!(covering.covers_columns_of(&narrow));
    }

    #[test]
    fn key_prefix_matches_leading_columns_only() {
        let wide = idx(1, &["LANG", "AGE", "REGION"], &[]);
        let narrow_prefix = idx(2, &["LANG", "AGE"], &[]);
        let narrow_not_prefix = idx(3, &["LANG", "REGION"], &[]);
        assert!(wide.key_prefix_of(&narrow_prefix));
        assert!(!wide.key_prefix_of(&narrow_not_prefix));
        assert!(!narrow_prefix.key_prefix_of(&wide));
    }

    #[test]
    fn all_columns_lists_keys_then_includes() {
        let m = idx(1, &["A", "B"], &["C"]);
        let cols: Vec<&str> = m.all_columns().collect();
        assert_eq!(cols, vec!["A", "B", "C"]);
    }

    #[test]
    fn serde_round_trip() {
        let m = idx(4, &["A"], &["B"]);
        let json = serde_json::to_string(&m).unwrap();
        let back: IndexMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
