//! Error types shared across the workspace's core model.

use crate::types::{IndexId, PlanId, QueryId};
use std::fmt;

/// Result alias used throughout `idd-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building, validating or (de)serializing problem
/// instances and deployments.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A plan refers to a query id that does not exist in the instance.
    UnknownQuery(QueryId),
    /// A plan or interaction refers to an index id that does not exist.
    UnknownIndex(IndexId),
    /// A reference to a plan id that does not exist.
    UnknownPlan(PlanId),
    /// A plan contains the same index more than once.
    DuplicateIndexInPlan {
        /// The offending plan.
        plan: PlanId,
        /// The duplicated index.
        index: IndexId,
    },
    /// A numeric field that must be non-negative was negative (costs,
    /// runtimes, speed-ups).
    NegativeValue {
        /// Human-readable description of the field.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A plan's speed-up exceeds the original runtime of its query, which
    /// would imply a negative query runtime.
    SpeedupExceedsRuntime {
        /// The offending plan.
        plan: PlanId,
        /// The plan's speed-up.
        speedup: f64,
        /// The query's original runtime.
        runtime: f64,
    },
    /// A build interaction's speed-up exceeds the base creation cost of the
    /// target index, which would imply a negative build cost.
    InteractionExceedsBuildCost {
        /// The index whose creation is sped up.
        target: IndexId,
        /// The speed-up claimed by the interaction.
        speedup: f64,
        /// The base creation cost of `target`.
        cost: f64,
    },
    /// A build interaction or precedence points an index at itself.
    SelfInteraction(IndexId),
    /// The precedence constraints contain a cycle, so no feasible deployment
    /// order exists.
    PrecedenceCycle {
        /// One index on the cycle (for diagnostics).
        witness: IndexId,
    },
    /// A deployment is not a permutation of the instance's indexes.
    NotAPermutation {
        /// What went wrong (missing index, duplicate, wrong length, ...).
        reason: String,
    },
    /// A deployment violates a hard precedence constraint.
    PrecedenceViolated {
        /// The index that must be built first.
        before: IndexId,
        /// The index that must be built later.
        after: IndexId,
    },
    /// The instance is empty (no indexes); every experiment needs at least one.
    EmptyInstance,
    /// Error produced while parsing or writing a matrix file.
    Io(String),
    /// Error produced while parsing a matrix file's JSON payload.
    Format(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownQuery(q) => write!(f, "unknown query {q}"),
            CoreError::UnknownIndex(i) => write!(f, "unknown index {i}"),
            CoreError::UnknownPlan(p) => write!(f, "unknown plan {p}"),
            CoreError::DuplicateIndexInPlan { plan, index } => {
                write!(f, "plan {plan} contains index {index} more than once")
            }
            CoreError::NegativeValue { what, value } => {
                write!(f, "{what} must be non-negative, got {value}")
            }
            CoreError::SpeedupExceedsRuntime {
                plan,
                speedup,
                runtime,
            } => write!(
                f,
                "plan {plan} speed-up {speedup} exceeds the query's original runtime {runtime}"
            ),
            CoreError::InteractionExceedsBuildCost {
                target,
                speedup,
                cost,
            } => write!(
                f,
                "build interaction on {target} speeds up by {speedup} which exceeds its creation cost {cost}"
            ),
            CoreError::SelfInteraction(i) => {
                write!(f, "index {i} cannot interact with or precede itself")
            }
            CoreError::PrecedenceCycle { witness } => {
                write!(f, "precedence constraints contain a cycle through {witness}")
            }
            CoreError::NotAPermutation { reason } => {
                write!(f, "deployment is not a permutation of the indexes: {reason}")
            }
            CoreError::PrecedenceViolated { before, after } => write!(
                f,
                "deployment builds {after} before {before}, violating a precedence constraint"
            ),
            CoreError::EmptyInstance => write!(f, "problem instance has no indexes"),
            CoreError::Io(msg) => write!(f, "I/O error: {msg}"),
            CoreError::Format(msg) => write!(f, "matrix file format error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e.to_string())
    }
}

impl From<serde_json::Error> for CoreError {
    fn from(e: serde_json::Error) -> Self {
        CoreError::Format(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_ids_involved() {
        let err = CoreError::PrecedenceViolated {
            before: IndexId::new(1),
            after: IndexId::new(2),
        };
        let msg = err.to_string();
        assert!(msg.contains("i1"));
        assert!(msg.contains("i2"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: CoreError = io.into();
        assert!(matches!(err, CoreError::Io(_)));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn errors_are_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptyInstance);
    }
}
