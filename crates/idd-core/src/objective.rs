//! Objective evaluation: the area under the improvement curve.
//!
//! The objective of the paper (Section 4.1) is
//!
//! ```text
//! minimize  Σ_i  R_{i-1} · C_i
//! ```
//!
//! where `R_{i-1}` is the total (weighted) workload runtime after the first
//! `i-1` indexes of the deployment order have been built and `C_i` is the
//! effective cost of building the i-th index, i.e. its base creation cost
//! minus the best build interaction among already-built indexes.
//!
//! Three evaluators are provided:
//!
//! * [`ObjectiveEvaluator`] — evaluates a [`Deployment`] from scratch in
//!   `O(Σ_p |p| + |Q| + |I|·avg_helpers)` time and optionally produces the
//!   full per-step trace used by reports and Figure 13.
//! * [`DeltaEvaluator`] — the local-search hot path: scores a move that
//!   rewrites the span `[a, b)` of a *base* order in `O(b - a)` — `O(1)` for
//!   an adjacent swap — over the [`SoaView`] layout,
//!   *bit-identical* to re-running [`ObjectiveEvaluator::evaluate`].
//!   [`PrefixEvaluator`] is a thin compatibility wrapper over it.
//! * [`SuffixReplayEvaluator`] — the previous checkpoint-and-replay
//!   incremental evaluator, kept as the easily-auditable reference the delta
//!   path is differentially tested against (and as the "before" baseline of
//!   the `table11` moves/sec benchmark).
//!
//! # Order-canonical arithmetic
//!
//! The objective is a sum of products; under naive left-to-right `f64`
//! accumulation its low bits depend on the order the terms are added in,
//! which makes a bit-for-bit `O(1)` move delta impossible (a swap perturbs
//! every later partial sum's rounding). All evaluators therefore accumulate
//! the area — and the workload-runtime level `R = R_∅ − Σ_q best_q` — in an
//! [`ExactSum`] and round **once** when a value is read. That makes both
//! quantities pure functions of the *set* of built indexes, so terms outside
//! a rewritten span are bitwise unchanged and a span-local delta reproduces
//! the from-scratch value exactly. The per-step trace ([`StepMetrics`]) and
//! the deployment clock keep their plain-`f64` semantics.

use crate::accsum::ExactSum;
use crate::instance::ProblemInstance;
use crate::matrix::SoaView;
use crate::solution::Deployment;
use crate::types::{IndexId, QueryId};
use serde::{Deserialize, Serialize};

/// Per-step metrics of a deployment, used for reports and Figure 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// The index built at this step.
    pub index: IndexId,
    /// Effective build cost of this step (after build interactions).
    pub build_cost: f64,
    /// Workload runtime while this index was being built (`R_{i-1}`).
    pub runtime_before: f64,
    /// Workload runtime once this index is available (`R_i`).
    pub runtime_after: f64,
    /// Deployment clock when this step started.
    pub elapsed_start: f64,
    /// Deployment clock when this step finished.
    pub elapsed_end: f64,
}

/// The value of the objective for one deployment order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValue {
    /// `Σ R_{i-1}·C_i`: the area under the improvement curve.
    pub area: f64,
    /// Total deployment time `Σ C_i` (with build interactions applied).
    pub deployment_time: f64,
    /// Workload runtime before any index exists (`R_∅`).
    pub baseline_runtime: f64,
    /// Workload runtime once every index exists.
    pub final_runtime: f64,
    /// Sum of base creation costs (no interactions) — the denominator of
    /// [`ObjectiveValue::normalized`] together with `baseline_runtime`.
    pub base_build_cost: f64,
    /// Per-step details, in deployment order. Empty when produced by the
    /// area-only fast path.
    pub steps: Vec<StepMetrics>,
}

impl ObjectiveValue {
    /// The objective scaled to a 0–100 range:
    /// `100 · area / (R_∅ · Σ ctime(i))`.
    ///
    /// The denominator is the "worst-case rectangle" — deploying with no
    /// build interaction exploited and no query speed-up until the very end.
    /// The paper's Table 7 and Figures 11/12 report objective values on a
    /// comparable normalized scale (TPC-H ≈ 44–66, TPC-DS ≈ 60–75).
    pub fn normalized(&self) -> f64 {
        let denom = self.baseline_runtime * self.base_build_cost;
        if denom <= 0.0 {
            0.0
        } else {
            100.0 * self.area / denom
        }
    }

    /// Average workload runtime over the deployment window, weighted by how
    /// long each runtime level lasted (`area / deployment_time`). This is the
    /// "Average Query Runtime" series of Figure 13 up to a `1/|Q|` factor.
    pub fn average_runtime_during_deployment(&self) -> f64 {
        if self.deployment_time <= 0.0 {
            self.baseline_runtime
        } else {
            self.area / self.deployment_time
        }
    }
}

/// Mutable evaluation state rolled forward one deployment step at a time.
#[derive(Debug, Clone)]
struct EvalState {
    /// Bitmap of already-built indexes, keyed by raw index id.
    built: Vec<bool>,
    /// For each plan, how many of its indexes are still missing.
    missing: Vec<u32>,
    /// For each query, the best speed-up among currently available plans.
    best_speedup: Vec<f64>,
    /// Current total workload runtime (`R` after the built prefix): the
    /// canonical rounding of `runtime_acc`, refreshed whenever a best
    /// speed-up improves.
    runtime: f64,
    /// Exact `R_∅ − Σ_q best_q`.
    runtime_acc: ExactSum,
    /// Exact accumulated objective area (`Σ R·C` terms, unrounded).
    area_acc: ExactSum,
    /// Accumulated deployment time (plain `f64`, matching the clock
    /// arithmetic of schedules and the deploy runtime).
    elapsed: f64,
    /// Number of indexes built so far.
    built_count: usize,
}

impl EvalState {
    fn initial(eval: &ObjectiveEvaluator<'_>) -> Self {
        let mut runtime_acc = ExactSum::new();
        runtime_acc.add(eval.baseline_runtime);
        EvalState {
            built: vec![false; eval.instance.num_indexes()],
            missing: eval.plan_width.clone(),
            best_speedup: vec![0.0; eval.instance.num_queries()],
            runtime: eval.baseline_runtime,
            runtime_acc,
            area_acc: ExactSum::new(),
            elapsed: 0.0,
            built_count: 0,
        }
    }

    /// The canonical (exactly rounded) objective area so far.
    fn area(&self) -> f64 {
        self.area_acc.value()
    }
}

/// Evaluates deployment orders against one [`ProblemInstance`].
///
/// The evaluator borrows the instance and precomputes flat arrays (plan
/// widths, weighted speed-ups, plan→query mapping) so the per-step work is a
/// handful of cache-friendly vector scans.
#[derive(Debug, Clone)]
pub struct ObjectiveEvaluator<'a> {
    instance: &'a ProblemInstance,
    /// Plan width (number of indexes) per plan.
    plan_width: Vec<u32>,
    /// Weighted speed-up per plan.
    plan_speedup: Vec<f64>,
    /// Owning query (raw id) per plan.
    plan_query: Vec<usize>,
    /// `R_∅`.
    baseline_runtime: f64,
    /// `Σ ctime(i)`.
    base_build_cost: f64,
}

impl<'a> ObjectiveEvaluator<'a> {
    /// Creates an evaluator for the given instance.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        let plan_width = instance.plans().iter().map(|p| p.width() as u32).collect();
        let plan_speedup = instance
            .plan_ids()
            .map(|p| instance.plan_speedup(p))
            .collect();
        let plan_query = instance.plans().iter().map(|p| p.query.raw()).collect();
        Self {
            instance,
            plan_width,
            plan_speedup,
            plan_query,
            baseline_runtime: instance.baseline_runtime(),
            base_build_cost: instance.total_base_build_cost(),
        }
    }

    /// The instance this evaluator is bound to.
    pub fn instance(&self) -> &'a ProblemInstance {
        self.instance
    }

    /// `R_∅`: total workload runtime with no candidate index built.
    pub fn baseline_runtime(&self) -> f64 {
        self.baseline_runtime
    }

    /// Applies one deployment step to `state`, returning the step metrics.
    fn apply_step(&self, state: &mut EvalState, index: IndexId) -> StepMetrics {
        let runtime_before = state.runtime;
        let build_cost = self.instance.effective_build_cost(index, &state.built);
        let elapsed_start = state.elapsed;

        state.area_acc.add_prod(runtime_before, build_cost);
        state.elapsed += build_cost;
        self.make_available(state, index);

        StepMetrics {
            index,
            build_cost,
            runtime_before,
            runtime_after: state.runtime,
            elapsed_start,
            elapsed_end: state.elapsed,
        }
    }

    /// Marks `index` built and drops the runtime by its newly available
    /// plans. Shared by the serial [`ObjectiveEvaluator::apply_step`] and
    /// the slot-aware [`ObjectiveStepper::complete_build`] so the
    /// `step ≡ begin_build; accrue; complete_build` identity holds by
    /// construction — same floating-point operations in the same order.
    fn make_available(&self, state: &mut EvalState, index: IndexId) {
        state.built[index.raw()] = true;
        state.built_count += 1;
        // Newly available plans can only improve each query's best speed-up.
        let mut changed = false;
        for &pid in self.instance.plans_using_index(index) {
            let p = pid.raw();
            state.missing[p] -= 1;
            if state.missing[p] == 0 {
                let q = self.plan_query[p];
                let s = self.plan_speedup[p];
                if s > state.best_speedup[q] {
                    state.runtime_acc.add(state.best_speedup[q]);
                    state.runtime_acc.sub(s);
                    state.best_speedup[q] = s;
                    changed = true;
                }
            }
        }
        if changed {
            // One canonical rounding per completed step: the runtime level
            // is a pure function of the built *set*, which is what lets the
            // delta evaluator splice spans bit-for-bit.
            state.runtime = state.runtime_acc.value();
        }
    }

    /// Evaluates a deployment and returns the full per-step trace.
    ///
    /// The deployment is assumed to be a permutation (checked in debug
    /// builds); call [`Deployment::validate`] first if it comes from an
    /// untrusted source.
    pub fn evaluate(&self, deployment: &Deployment) -> ObjectiveValue {
        debug_assert!(deployment.validate(self.instance).is_ok());
        let mut state = EvalState::initial(self);
        let mut steps = Vec::with_capacity(deployment.len());
        for (_, index) in deployment.iter() {
            steps.push(self.apply_step(&mut state, index));
        }
        ObjectiveValue {
            area: state.area(),
            deployment_time: state.elapsed,
            baseline_runtime: self.baseline_runtime,
            final_runtime: state.runtime,
            base_build_cost: self.base_build_cost,
            steps,
        }
    }

    /// Evaluates only the objective area of a deployment (no step trace).
    pub fn evaluate_area(&self, deployment: &Deployment) -> f64 {
        let mut state = EvalState::initial(self);
        for (_, index) in deployment.iter() {
            self.apply_step(&mut state, index);
        }
        state.area()
    }

    /// Evaluates the objective area of a *partial* prefix order (the
    /// remaining indexes are treated as never built). Used by search
    /// algorithms to compute lower-bound contributions of a fixed prefix.
    pub fn evaluate_prefix_area(&self, prefix: &[IndexId]) -> f64 {
        let mut state = EvalState::initial(self);
        for &index in prefix {
            self.apply_step(&mut state, index);
        }
        state.area()
    }

    /// Total workload runtime when exactly the indexes in `built` exist.
    ///
    /// Uses the same order-canonical rounding as the step-wise evaluators,
    /// so the result agrees bit-for-bit with [`ObjectiveStepper::runtime`]
    /// after stepping any order of the same set.
    pub fn runtime_with(&self, built: &[bool]) -> f64 {
        let mut best = vec![0.0_f64; self.instance.num_queries()];
        for (p, plan) in self.instance.plans().iter().enumerate() {
            if plan.available_in(built) {
                let q = self.plan_query[p];
                if self.plan_speedup[p] > best[q] {
                    best[q] = self.plan_speedup[p];
                }
            }
        }
        let mut acc = ExactSum::new();
        acc.add(self.baseline_runtime);
        for b in best {
            acc.sub(b);
        }
        acc.value()
    }

    /// The speed-up a single query currently enjoys given `built`.
    pub fn query_speedup_with(&self, query: QueryId, built: &[bool]) -> f64 {
        let mut best = 0.0_f64;
        for &pid in self.instance.plans_of_query(query) {
            let plan = self.instance.plan(pid);
            if plan.available_in(built) {
                let s = self.plan_speedup[pid.raw()];
                if s > best {
                    best = s;
                }
            }
        }
        best
    }
}

/// A re-entrant stepper over the evaluation state, for consumers that
/// *execute* a deployment one build at a time (the `idd-deploy` runtime)
/// rather than scoring a complete order.
///
/// Guarantee: applying a sequence of indexes through
/// [`ObjectiveStepper::step`] produces bit-for-bit the same `runtime`,
/// per-step metrics and canonical area as [`ObjectiveEvaluator::evaluate`]
/// on that order. An external accountant reproduces
/// [`ObjectiveStepper::area`] *exactly* by feeding every
/// `(runtime_before, build_cost)` pair into an [`ExactSum`] via
/// [`ExactSum::add_prod`] — the area is the once-rounded exact sum of those
/// products, independent of the order they accrue in.
///
/// # Overlapping builds
///
/// The serial [`ObjectiveStepper::step`] is a composition of three
/// slot-aware primitives that a concurrent runtime can drive independently:
///
/// 1. [`ObjectiveStepper::begin_build`] — prices the build against the
///    *completed* set (an in-flight helper contributes nothing yet) and
///    marks it in flight;
/// 2. [`ObjectiveStepper::accrue`] — integrates `runtime · duration` of
///    wall-clock into the area while the workload runs at the current
///    runtime level;
/// 3. [`ObjectiveStepper::complete_build`] — lands the finished index,
///    dropping the runtime by its newly available plans.
///
/// Builds may complete out of submission order; the runtime level only ever
/// reflects *completed* indexes. The serial identity
/// `step(i) ≡ begin_build(i); accrue(cost); complete_build(i)` holds
/// bit-for-bit (same floating-point operations in the same order), which is
/// what lets a one-slot concurrent scheduler reproduce
/// [`ObjectiveEvaluator::evaluate`] exactly.
#[derive(Debug, Clone)]
pub struct ObjectiveStepper<'a> {
    evaluator: ObjectiveEvaluator<'a>,
    state: EvalState,
    /// Bitmap of begun-but-not-completed indexes (parallel to `built`).
    in_flight: Vec<bool>,
    in_flight_count: usize,
}

impl<'a> ObjectiveStepper<'a> {
    /// Applies one deployment step (builds `index`) and returns its metrics.
    pub fn step(&mut self, index: IndexId) -> StepMetrics {
        self.evaluator.apply_step(&mut self.state, index)
    }

    /// Starts building `index`: marks it in flight and returns its effective
    /// build cost, priced against the *completed* set only — a helper that
    /// is itself still in flight discounts nothing.
    ///
    /// The cost is identical to what [`ObjectiveStepper::step`] would charge
    /// at this state; the returned value is the caller's to schedule (the
    /// stepper does not advance time).
    pub fn begin_build(&mut self, index: IndexId) -> f64 {
        debug_assert!(
            !self.state.built[index.raw()] && !self.in_flight[index.raw()],
            "{index} begun twice"
        );
        self.in_flight[index.raw()] = true;
        self.in_flight_count += 1;
        self.evaluator
            .instance
            .effective_build_cost(index, &self.state.built)
    }

    /// Integrates `duration` wall-clock seconds at the current runtime level
    /// into the objective area (one `runtime · duration` product) and
    /// advances the deployment clock. Returns the product, rounded once —
    /// identical to the plain `runtime * duration` an external accountant
    /// would compute.
    pub fn accrue(&mut self, duration: f64) -> f64 {
        self.state.area_acc.add_prod(self.state.runtime, duration);
        self.state.elapsed += duration;
        self.state.runtime * duration
    }

    /// Completes an in-flight build: the index becomes available, its plans
    /// unlock, and the workload runtime drops accordingly. Returns
    /// `(runtime_before, runtime_after)` around the completion.
    ///
    /// Completions may arrive in any order relative to
    /// [`ObjectiveStepper::begin_build`] calls — only relative to their own
    /// `begin_build`.
    pub fn complete_build(&mut self, index: IndexId) -> (f64, f64) {
        debug_assert!(self.in_flight[index.raw()], "{index} completed unbegun");
        self.in_flight[index.raw()] = false;
        self.in_flight_count -= 1;
        let runtime_before = self.state.runtime;
        self.evaluator.make_available(&mut self.state, index);
        (runtime_before, self.state.runtime)
    }

    /// `true` when `index` has been begun but not yet completed.
    pub fn is_in_flight(&self, index: IndexId) -> bool {
        self.in_flight[index.raw()]
    }

    /// Number of builds currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight_count
    }

    /// Current total workload runtime (after everything stepped so far).
    pub fn runtime(&self) -> f64 {
        self.state.runtime
    }

    /// Accumulated objective area so far (canonically rounded).
    pub fn area(&self) -> f64 {
        self.state.area()
    }

    /// Accumulated deployment time so far.
    pub fn elapsed(&self) -> f64 {
        self.state.elapsed
    }

    /// Bitmap of built indexes, keyed by raw index id.
    pub fn built(&self) -> &[bool] {
        &self.state.built
    }

    /// Number of indexes built so far.
    pub fn built_count(&self) -> usize {
        self.state.built_count
    }

    /// `true` when `index` has been stepped already.
    pub fn is_built(&self, index: IndexId) -> bool {
        self.state.built[index.raw()]
    }
}

impl<'a> ObjectiveEvaluator<'a> {
    /// Starts a fresh [`ObjectiveStepper`] (nothing built yet). The stepper
    /// owns a clone of this evaluator, so it stays usable after the borrow
    /// ends.
    pub fn stepper(&self) -> ObjectiveStepper<'a> {
        ObjectiveStepper {
            state: EvalState::initial(self),
            in_flight: vec![false; self.instance.num_indexes()],
            in_flight_count: 0,
            evaluator: self.clone(),
        }
    }
}

/// Checkpoint-and-replay incremental evaluator — the *reference* the delta
/// path is differentially tested against.
///
/// [`SuffixReplayEvaluator::set_base`] records a full state checkpoint after
/// every position; a move that changes the order from position `k` onward is
/// scored by cloning the checkpoint at `k` and replaying the whole suffix.
/// Correct by construction (it literally runs [`ObjectiveEvaluator`] steps)
/// but `O(n · step)` per move and `O(n²)` checkpoint memory churn — which is
/// why local search now runs on [`DeltaEvaluator`] instead. It remains the
/// "before" baseline of the `table11` moves/sec benchmark.
#[derive(Debug, Clone)]
pub struct SuffixReplayEvaluator<'a> {
    evaluator: ObjectiveEvaluator<'a>,
    base: Deployment,
    /// `checkpoints[k]` is the state after the first `k` indexes of `base`.
    checkpoints: Vec<EvalState>,
}

impl<'a> SuffixReplayEvaluator<'a> {
    /// Creates an incremental evaluator with the given base order.
    pub fn new(instance: &'a ProblemInstance, base: Deployment) -> Self {
        let evaluator = ObjectiveEvaluator::new(instance);
        let mut pe = Self {
            evaluator,
            base: Deployment::new(Vec::new()),
            checkpoints: Vec::new(),
        };
        pe.set_base(base);
        pe
    }

    /// The underlying full evaluator.
    pub fn evaluator(&self) -> &ObjectiveEvaluator<'a> {
        &self.evaluator
    }

    /// The current base order.
    pub fn base(&self) -> &Deployment {
        &self.base
    }

    /// The objective area of the current base order.
    pub fn base_area(&self) -> f64 {
        self.checkpoints.last().map(EvalState::area).unwrap_or(0.0)
    }

    /// Replaces the base order and rebuilds all checkpoints.
    pub fn set_base(&mut self, base: Deployment) {
        let n = base.len();
        let mut checkpoints = Vec::with_capacity(n + 1);
        let mut state = EvalState::initial(&self.evaluator);
        checkpoints.push(state.clone());
        for (_, index) in base.iter() {
            self.evaluator.apply_step(&mut state, index);
            checkpoints.push(state.clone());
        }
        self.base = base;
        self.checkpoints = checkpoints;
    }

    /// Evaluates the area of `order`, reusing the checkpoint of the longest
    /// common prefix with the base order.
    pub fn evaluate_order(&self, order: &Deployment) -> f64 {
        let n = self.base.len();
        debug_assert_eq!(order.len(), n);
        let mut common = 0;
        while common < n && order.at(common) == self.base.at(common) {
            common += 1;
        }
        let mut state = self.checkpoints[common].clone();
        for pos in common..n {
            self.evaluator.apply_step(&mut state, order.at(pos));
        }
        state.area()
    }

    /// Evaluates the area of the base order with positions `a` and `b`
    /// swapped, without materializing the swapped order.
    pub fn evaluate_swap(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return self.base_area();
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let n = self.base.len();
        let mut state = self.checkpoints[lo].clone();
        for pos in lo..n {
            let index = if pos == lo {
                self.base.at(hi)
            } else if pos == hi {
                self.base.at(lo)
            } else {
                self.base.at(pos)
            };
            self.evaluator.apply_step(&mut state, index);
        }
        state.area()
    }

    /// Applies a swap to the base order and refreshes checkpoints from the
    /// earlier of the two positions.
    pub fn commit_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, _hi) = if a < b { (a, b) } else { (b, a) };
        self.base.swap(a, b);
        // Recompute checkpoints from `lo` onward.
        let n = self.base.len();
        self.checkpoints.truncate(lo + 1);
        let mut state = self.checkpoints[lo].clone();
        for pos in lo..n {
            self.evaluator.apply_step(&mut state, self.base.at(pos));
            self.checkpoints.push(state.clone());
        }
    }

    /// Replaces the whole base order (alias of
    /// [`SuffixReplayEvaluator::set_base`] kept for readability at call
    /// sites that accept arbitrary moves).
    pub fn commit_order(&mut self, order: Deployment) {
        self.set_base(order);
    }
}

/// The move being scored by [`DeltaEvaluator::span_walk`]: how to read the
/// *new* element at an absolute position inside the rewritten span.
enum SpanMove<'s> {
    /// Positions `lo` and `hi` exchange elements; everything between keeps
    /// its element (but not necessarily its cost / runtime level).
    Swap { lo: usize, hi: usize },
    /// The element at `from` relocates to `to`
    /// ([`Deployment::relocate`] semantics: remove, then insert).
    Shift { from: usize, to: usize },
    /// Positions `a + k` take `slice[k]` (a permutation of the span's
    /// current elements) — the LNS repair-scoring shape.
    Slice(&'s [IndexId]),
    /// Positions take the corresponding element of a full replacement
    /// order.
    Order(&'s Deployment),
}

impl SpanMove<'_> {
    /// The new element at absolute position `p` (which must lie inside the
    /// rewritten span `[a, b)`).
    #[inline]
    fn elem(&self, base: &Deployment, a: usize, p: usize) -> usize {
        match *self {
            SpanMove::Swap { lo, hi } => {
                if p == lo {
                    base.at(hi).raw()
                } else if p == hi {
                    base.at(lo).raw()
                } else {
                    base.at(p).raw()
                }
            }
            SpanMove::Shift { from, to } => {
                if p == to {
                    base.at(from).raw()
                } else if from < to {
                    base.at(p + 1).raw() // left rotation of (from, to]
                } else {
                    base.at(p - 1).raw() // right rotation of [to, from)
                }
            }
            SpanMove::Slice(slice) => slice[p - a].raw(),
            SpanMove::Order(order) => order.at(p).raw(),
        }
    }
}

/// Delta evaluator: scores span-rewriting local-search moves against a base
/// order in `O(span)` — `O(1)` for adjacent swaps — bit-identical to
/// [`ObjectiveEvaluator::evaluate`] on the moved order.
///
/// # How
///
/// For the base order it stores, per position `p`: the effective build cost
/// `C_p`, the canonical runtime level `R_p` after `p` builds, and the exact
/// runtime accumulator behind `R_p`. Because both are pure functions of the
/// built *set* (see the module docs), a move that rewrites positions
/// `[a, b)` leaves every `R_{p}·C_p` term outside the span bitwise
/// unchanged. The evaluator therefore:
///
/// 1. copies the exact area accumulator and subtracts the span's old terms,
/// 2. walks the span's *new* ordering — re-pricing each build against the
///    prefix set via the [`SoaView`] adjacency arrays and re-deriving
///    runtime drops with lazily-initialized, generation-stamped scratch
///    state (no `O(n)` clearing between moves),
/// 3. rounds the patched accumulator once.
///
/// Step 2 walks exactly the positions in `[a, b)`: an adjacent swap touches
/// two, a shift only the rotated window, an LNS repair only the destroyed
/// span. Committing a move additionally writes the walked positions'
/// costs/runtimes back and updates plan completion positions — positions
/// `≥ b` are never touched.
#[derive(Debug, Clone)]
pub struct DeltaEvaluator<'a> {
    evaluator: ObjectiveEvaluator<'a>,
    soa: SoaView,
    base: Deployment,
    /// Base position of each index (inverse permutation).
    positions: Vec<u32>,
    /// Effective build cost of the step at each position.
    cost_at: Vec<f64>,
    /// Canonical runtime level after `p` builds (`runtime_at[0] = R_∅`).
    runtime_at: Vec<f64>,
    /// Exact accumulator behind each `runtime_at` entry.
    runtime_accs: Vec<ExactSum>,
    /// Per plan: number of builds after which it completes (1-based).
    complete_at: Vec<u32>,
    /// Exact area of the base order.
    area_acc: ExactSum,
    /// Canonical rounding of `area_acc`.
    area: f64,
    // Generation-stamped scratch (lazily re-initialized per walk).
    stamp: u64,
    new_pos: Vec<u32>,
    new_pos_stamp: Vec<u64>,
    scratch_missing: Vec<u32>,
    missing_stamp: Vec<u64>,
    scratch_best: Vec<f64>,
    best_stamp: Vec<u64>,
    scratch_area: ExactSum,
    scratch_runtime: ExactSum,
}

impl<'a> DeltaEvaluator<'a> {
    /// Creates a delta evaluator over `base`.
    pub fn new(instance: &'a ProblemInstance, base: Deployment) -> Self {
        let evaluator = ObjectiveEvaluator::new(instance);
        let soa = SoaView::new(instance);
        let n = instance.num_indexes();
        let np = soa.num_plans();
        let nq = soa.num_queries();
        let mut de = Self {
            evaluator,
            soa,
            base: Deployment::new(Vec::new()),
            positions: vec![0; n],
            cost_at: vec![0.0; n],
            runtime_at: vec![0.0; n + 1],
            runtime_accs: vec![ExactSum::new(); n + 1],
            complete_at: vec![u32::MAX; np],
            area_acc: ExactSum::new(),
            area: 0.0,
            stamp: 0,
            new_pos: vec![0; n],
            new_pos_stamp: vec![0; n],
            scratch_missing: vec![0; np],
            missing_stamp: vec![0; np],
            scratch_best: vec![0.0; nq],
            best_stamp: vec![0; nq],
            scratch_area: ExactSum::new(),
            scratch_runtime: ExactSum::new(),
        };
        de.set_base(base);
        de
    }

    /// The underlying full evaluator.
    pub fn evaluator(&self) -> &ObjectiveEvaluator<'a> {
        &self.evaluator
    }

    /// The SoA adjacency view the hot path runs on.
    pub fn soa(&self) -> &SoaView {
        &self.soa
    }

    /// The current base order.
    pub fn base(&self) -> &Deployment {
        &self.base
    }

    /// The objective area of the current base order.
    pub fn base_area(&self) -> f64 {
        self.area
    }

    /// Replaces the base order, rebuilding all per-position state in one
    /// `O(n · degree)` pass (no per-checkpoint state clones).
    pub fn set_base(&mut self, base: Deployment) {
        let n = base.len();
        debug_assert_eq!(n, self.positions.len());
        for (p, index) in base.iter() {
            self.positions[index.raw()] = p as u32;
        }
        self.runtime_accs[0].clear();
        self.runtime_accs[0].add(self.evaluator.baseline_runtime);
        self.runtime_at[0] = self.evaluator.baseline_runtime;
        self.area_acc.clear();
        self.base = base;
        let area = self.span_walk(0, n, &SpanMove::Swap { lo: 0, hi: 0 }, true, true);
        self.area = area;
    }

    /// Area of the base order with positions `a` and `b` swapped. `O(1)`
    /// when `a` and `b` are adjacent, `O(|a - b|)` otherwise.
    pub fn evaluate_swap(&mut self, a: usize, b: usize) -> f64 {
        if a == b {
            return self.area;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.span_walk(lo, hi + 1, &SpanMove::Swap { lo, hi }, false, false)
    }

    /// Area of the base order with the element at `from` relocated to `to`
    /// ([`Deployment::relocate`] semantics). `O(|from - to|)`.
    pub fn evaluate_shift(&mut self, from: usize, to: usize) -> f64 {
        if from == to {
            return self.area;
        }
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        self.span_walk(lo, hi + 1, &SpanMove::Shift { from, to }, false, false)
    }

    /// Area of the base order with positions `[a, a + span.len())` replaced
    /// by `span` — a permutation of the elements currently there (checked in
    /// debug builds). `O(span)`; the LNS repair-scoring entry point.
    pub fn evaluate_span(&mut self, a: usize, span: &[IndexId]) -> f64 {
        debug_assert!(self.span_is_permutation(a, span));
        if span.is_empty() {
            return self.area;
        }
        self.span_walk(a, a + span.len(), &SpanMove::Slice(span), false, false)
    }

    /// Area of an arbitrary full `order`, walking only the positions between
    /// its longest common prefix and suffix with the base order.
    pub fn evaluate_order(&mut self, order: &Deployment) -> f64 {
        let (a, b) = self.diff_window(order);
        if a == b {
            return self.area;
        }
        self.span_walk(a, b, &SpanMove::Order(order), false, false)
    }

    /// Commits the swap of positions `a` and `b` into the base order.
    pub fn commit_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let area = self.span_walk(lo, hi + 1, &SpanMove::Swap { lo, hi }, true, false);
        self.area = area;
        self.base.swap(a, b);
        self.refresh_positions(lo, hi + 1);
    }

    /// Commits the relocation of the element at `from` to position `to`.
    pub fn commit_shift(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let area = self.span_walk(lo, hi + 1, &SpanMove::Shift { from, to }, true, false);
        self.area = area;
        self.base.relocate(from, to);
        self.refresh_positions(lo, hi + 1);
    }

    /// Commits a span replacement (see [`DeltaEvaluator::evaluate_span`]).
    pub fn commit_span(&mut self, a: usize, span: &[IndexId]) {
        debug_assert!(self.span_is_permutation(a, span));
        if span.is_empty() {
            return;
        }
        let b = a + span.len();
        let area = self.span_walk(a, b, &SpanMove::Slice(span), true, false);
        self.area = area;
        self.base.replace_span(a, span);
        self.refresh_positions(a, b);
    }

    /// Replaces the whole base order, walking only the differing window.
    pub fn commit_order(&mut self, order: Deployment) {
        let (a, b) = self.diff_window(&order);
        if a == b {
            self.base = order;
            return;
        }
        let area = self.span_walk(a, b, &SpanMove::Order(&order), true, false);
        self.area = area;
        self.base = order;
        self.refresh_positions(a, b);
    }

    /// Longest-common-prefix / suffix window `[a, b)` where `order` differs
    /// from the base.
    fn diff_window(&self, order: &Deployment) -> (usize, usize) {
        let n = self.base.len();
        debug_assert_eq!(order.len(), n);
        let mut a = 0;
        while a < n && order.at(a) == self.base.at(a) {
            a += 1;
        }
        let mut b = n;
        while b > a && order.at(b - 1) == self.base.at(b - 1) {
            b -= 1;
        }
        (a, b)
    }

    fn refresh_positions(&mut self, a: usize, b: usize) {
        for p in a..b {
            self.positions[self.base.at(p).raw()] = p as u32;
        }
    }

    #[cfg(debug_assertions)]
    fn span_is_permutation(&self, a: usize, span: &[IndexId]) -> bool {
        let mut old: Vec<usize> = (a..a + span.len()).map(|p| self.base.at(p).raw()).collect();
        let mut new: Vec<usize> = span.iter().map(|i| i.raw()).collect();
        old.sort_unstable();
        new.sort_unstable();
        old == new
    }

    #[cfg(not(debug_assertions))]
    fn span_is_permutation(&self, _a: usize, _span: &[IndexId]) -> bool {
        true
    }

    /// Scores (and on `commit`, applies) the rewrite of positions `[a, b)`
    /// described by `mv`, returning the canonical area of the moved order.
    ///
    /// `fresh` marks the from-scratch rebuild of [`DeltaEvaluator::set_base`]
    /// (there are no old span terms to subtract, and stored per-position
    /// state is stale rather than authoritative).
    fn span_walk(
        &mut self,
        a: usize,
        b: usize,
        mv: &SpanMove<'_>,
        commit: bool,
        fresh: bool,
    ) -> f64 {
        self.stamp += 1;
        let stamp = self.stamp;

        // New positions of the span's elements, for prefix-membership tests.
        for p in a..b {
            let x = mv.elem(&self.base, a, p);
            self.new_pos[x] = p as u32;
            self.new_pos_stamp[x] = stamp;
        }

        // Patch the exact area: remove the span's old terms...
        self.scratch_area.assign_from(&self.area_acc);
        if !fresh {
            for p in a..b {
                self.scratch_area
                    .sub_prod(self.runtime_at[p], self.cost_at[p]);
            }
        }

        // ...and walk the new span ordering, adding its terms.
        self.scratch_runtime.assign_from(&self.runtime_accs[a]);
        let mut runtime = self.runtime_at[a];
        for p in a..b {
            let x = mv.elem(&self.base, a, p);

            // Effective build cost against the set built before `p` — the
            // same `max` fold as `ProblemInstance::effective_build_cost`.
            let (helper_ids, helper_savings) = self.soa.helpers(x);
            let mut best_saving = 0.0_f64;
            for (k, &h) in helper_ids.iter().enumerate() {
                let hpos = if self.new_pos_stamp[h as usize] == stamp {
                    self.new_pos[h as usize]
                } else {
                    self.positions[h as usize]
                };
                if (hpos as usize) < p {
                    best_saving = best_saving.max(helper_savings[k]);
                }
            }
            let cost = self.soa.creation_cost(x) - best_saving;
            self.scratch_area.add_prod(runtime, cost);
            if commit {
                self.cost_at[p] = cost;
            }

            // Newly available plans drop the runtime level.
            let mut changed = false;
            for &plan in self.soa.plans_using(x) {
                let pl = plan as usize;
                if self.missing_stamp[pl] != stamp {
                    self.missing_stamp[pl] = stamp;
                    // Members built before the span are not missing; members
                    // at `>= b` keep the plan incomplete for the whole walk.
                    let mut missing = 0u32;
                    for &m in self.soa.members(pl) {
                        if self.positions[m as usize] as usize >= a {
                            missing += 1;
                        }
                    }
                    self.scratch_missing[pl] = missing;
                }
                self.scratch_missing[pl] -= 1;
                if self.scratch_missing[pl] == 0 {
                    if commit {
                        self.complete_at[pl] = (p + 1) as u32;
                    }
                    let q = self.soa.query_of(pl);
                    if self.best_stamp[q] != stamp {
                        self.best_stamp[q] = stamp;
                        // Best speed-up among plans completed strictly
                        // before the span (positions `< a` are unchanged by
                        // the move, so the base's completion positions are
                        // authoritative there).
                        let mut best = 0.0_f64;
                        for &qp in self.soa.plans_of_query(q) {
                            if (self.complete_at[qp as usize] as usize) <= a {
                                best = best.max(self.soa.speedup(qp as usize));
                            }
                        }
                        self.scratch_best[q] = best;
                    }
                    let s = self.soa.speedup(pl);
                    if s > self.scratch_best[q] {
                        self.scratch_runtime.add(self.scratch_best[q]);
                        self.scratch_runtime.sub(s);
                        self.scratch_best[q] = s;
                        changed = true;
                    }
                }
            }
            if changed {
                runtime = self.scratch_runtime.value();
            }
            if commit {
                self.runtime_at[p + 1] = runtime;
                self.runtime_accs[p + 1].assign_from(&self.scratch_runtime);
            }
        }

        // The built set after `b` builds is move-invariant, so the walk must
        // land exactly on the stored level — the splice is seamless.
        debug_assert!(
            fresh || runtime.to_bits() == self.runtime_at[b].to_bits(),
            "span walk diverged from the base runtime level at {b}"
        );

        let area = self.scratch_area.value();
        if commit {
            self.area_acc.assign_from(&self.scratch_area);
        }
        area
    }
}

/// Incremental evaluator for local search over a *base* deployment order.
///
/// Since the delta-evaluation rework this is a thin wrapper over
/// [`DeltaEvaluator`] kept for call-site compatibility: moves cost
/// `O(span)` instead of `O(suffix)`, and committing no longer clones
/// per-position state checkpoints.
#[derive(Debug, Clone)]
pub struct PrefixEvaluator<'a> {
    inner: DeltaEvaluator<'a>,
}

impl<'a> PrefixEvaluator<'a> {
    /// Creates an incremental evaluator with the given base order.
    pub fn new(instance: &'a ProblemInstance, base: Deployment) -> Self {
        Self {
            inner: DeltaEvaluator::new(instance, base),
        }
    }

    /// The underlying full evaluator.
    pub fn evaluator(&self) -> &ObjectiveEvaluator<'a> {
        self.inner.evaluator()
    }

    /// The current base order.
    pub fn base(&self) -> &Deployment {
        self.inner.base()
    }

    /// The objective area of the current base order.
    pub fn base_area(&self) -> f64 {
        self.inner.base_area()
    }

    /// Replaces the base order and rebuilds the per-position state.
    pub fn set_base(&mut self, base: Deployment) {
        self.inner.set_base(base);
    }

    /// Evaluates the area of `order`, walking only the window where it
    /// differs from the base order.
    pub fn evaluate_order(&mut self, order: &Deployment) -> f64 {
        self.inner.evaluate_order(order)
    }

    /// Evaluates the area of the base order with positions `a` and `b`
    /// swapped, without materializing the swapped order.
    pub fn evaluate_swap(&mut self, a: usize, b: usize) -> f64 {
        self.inner.evaluate_swap(a, b)
    }

    /// Applies a swap to the base order.
    pub fn commit_swap(&mut self, a: usize, b: usize) {
        self.inner.commit_swap(a, b);
    }

    /// Replaces the whole base order (alias of [`PrefixEvaluator::set_base`]
    /// kept for readability at call sites that accept arbitrary moves).
    pub fn commit_order(&mut self, order: Deployment) {
        self.inner.commit_order(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section 4.2 competing-interaction example.
    fn competing_example() -> ProblemInstance {
        let mut b = ProblemInstance::builder("competing");
        let i_city = b.add_named_index("i(City)", 4.0);
        let i_cov = b.add_named_index("i(City,Salary)", 6.0);
        let q = b.add_named_query("avg_salary_by_city", 30.0);
        b.add_plan(q, vec![i_city], 5.0);
        b.add_plan(q, vec![i_cov], 20.0);
        b.add_build_interaction(i_city, i_cov, 3.0);
        b.add_build_interaction(i_cov, i_city, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn hand_computed_objective_order_01() {
        // Order i0 → i1:
        //   step 1: R_0 = 30, C = 4  → area 120; runtime drops to 25 (5s plan)
        //   step 2: R_1 = 25, C = 6-2 = 4 → area 100; runtime drops to 10
        // total area = 220, deployment time 8, final runtime 10.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        assert!((v.area - 220.0).abs() < 1e-9);
        assert!((v.deployment_time - 8.0).abs() < 1e-9);
        assert!((v.final_runtime - 10.0).abs() < 1e-9);
        assert_eq!(v.steps.len(), 2);
        assert!((v.steps[0].build_cost - 4.0).abs() < 1e-9);
        assert!((v.steps[1].build_cost - 4.0).abs() < 1e-9);
        assert!((v.steps[1].runtime_before - 25.0).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_objective_order_10() {
        // Order i1 → i0:
        //   step 1: R_0 = 30, C = 6 → area 180; runtime drops to 10 (20s plan)
        //   step 2: R_1 = 10, C = 4-3 = 1 → area 10; runtime stays 10
        // total area = 190, deployment time 7.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([1, 0]));
        assert!((v.area - 190.0).abs() < 1e-9);
        assert!((v.deployment_time - 7.0).abs() < 1e-9);
        assert!((v.final_runtime - 10.0).abs() < 1e-9);
        // The covering-index-first order is better, as the paper argues.
        assert!(v.area < eval.evaluate_area(&Deployment::from_raw([0, 1])));
    }

    #[test]
    fn competing_interaction_only_counts_marginal_speedup() {
        // After i1 (20s speed-up), adding i0 must not double count the 5s.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([1, 0]));
        assert!((v.steps[1].runtime_before - 10.0).abs() < 1e-9);
        assert!((v.steps[1].runtime_after - 10.0).abs() < 1e-9);
    }

    #[test]
    fn area_only_matches_full_evaluation() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0, 1], [1, 0]] {
            let d = Deployment::from_raw(order);
            assert_eq!(eval.evaluate(&d).area, eval.evaluate_area(&d));
        }
    }

    #[test]
    fn normalized_is_between_zero_and_hundred_for_sane_instances() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([1, 0]));
        let norm = v.normalized();
        assert!(norm > 0.0 && norm < 100.0, "normalized = {norm}");
    }

    #[test]
    fn runtime_with_reports_best_available_plan() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        assert_eq!(eval.runtime_with(&[false, false]), 30.0);
        assert_eq!(eval.runtime_with(&[true, false]), 25.0);
        assert_eq!(eval.runtime_with(&[false, true]), 10.0);
        assert_eq!(eval.runtime_with(&[true, true]), 10.0);
        assert_eq!(
            eval.query_speedup_with(QueryId::new(0), &[true, false]),
            5.0
        );
    }

    #[test]
    fn query_interaction_requires_all_indexes() {
        // Join query needs both i0 and i1 (paper's query-interaction example).
        let mut b = ProblemInstance::builder("join");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(2.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 40.0);
        let inst = b.build().unwrap();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        // No speed-up until both are built: area = 50*2 + 50*2 = 200.
        assert!((v.area - 200.0).abs() < 1e-9);
        assert!((v.final_runtime - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stepper_replays_evaluate_bit_for_bit() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0usize, 1], [1, 0]] {
            let d = Deployment::from_raw(order);
            let value = eval.evaluate(&d);
            let mut stepper = eval.stepper();
            assert_eq!(stepper.built_count(), 0);
            let mut realized = 0.0_f64;
            for (pos, index) in d.iter() {
                let step = stepper.step(index);
                assert_eq!(step, value.steps[pos]);
                realized += step.runtime_before * step.build_cost;
            }
            // Bit-for-bit, not approximately: same ops in the same order.
            assert_eq!(realized.to_bits(), value.area.to_bits());
            assert_eq!(stepper.area().to_bits(), value.area.to_bits());
            assert_eq!(stepper.runtime(), value.final_runtime);
            assert_eq!(stepper.elapsed(), value.deployment_time);
            assert!(stepper.is_built(IndexId::new(0)));
            assert_eq!(stepper.built(), &[true, true]);
        }
    }

    #[test]
    fn slot_decomposition_replays_step_bit_for_bit() {
        // step(i) ≡ begin_build(i); accrue(cost); complete_build(i) — the
        // identity the one-slot concurrent scheduler relies on.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0usize, 1], [1, 0]] {
            let d = Deployment::from_raw(order);
            let value = eval.evaluate(&d);
            let mut stepper = eval.stepper();
            for (pos, index) in d.iter() {
                let cost = stepper.begin_build(index);
                assert_eq!(cost.to_bits(), value.steps[pos].build_cost.to_bits());
                assert!(stepper.is_in_flight(index));
                assert_eq!(stepper.in_flight_count(), 1);
                let accrued = stepper.accrue(cost);
                assert_eq!(
                    accrued.to_bits(),
                    (value.steps[pos].runtime_before * value.steps[pos].build_cost).to_bits()
                );
                let (before, after) = stepper.complete_build(index);
                assert_eq!(before.to_bits(), value.steps[pos].runtime_before.to_bits());
                assert_eq!(after.to_bits(), value.steps[pos].runtime_after.to_bits());
                assert!(!stepper.is_in_flight(index));
            }
            assert_eq!(stepper.area().to_bits(), value.area.to_bits());
            assert_eq!(stepper.runtime().to_bits(), value.final_runtime.to_bits());
            assert_eq!(stepper.elapsed().to_bits(), value.deployment_time.to_bits());
        }
    }

    #[test]
    fn overlapping_builds_price_against_completed_indexes_only() {
        // Start i1 while i0 is still in flight: i0's build interaction on i1
        // (saving 2.0) must NOT apply, and the runtime only drops when each
        // build *completes*, in completion order.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let mut stepper = eval.stepper();
        let c0 = stepper.begin_build(IndexId::new(0));
        let c1 = stepper.begin_build(IndexId::new(1));
        assert_eq!(c0, 4.0);
        assert_eq!(c1, 6.0, "in-flight i0 must not discount i1");
        assert_eq!(stepper.in_flight_count(), 2);
        assert_eq!(stepper.runtime(), 30.0);

        // Both run concurrently; i0 completes at t=4, i1 at t=6.
        let first = stepper.accrue(4.0); // [0,4] at the baseline runtime
        assert_eq!(first, 30.0 * 4.0);
        let (_, after_i0) = stepper.complete_build(IndexId::new(0));
        assert_eq!(after_i0, 25.0); // 5s plan available
        let second = stepper.accrue(2.0); // [4,6] at the post-i0 runtime
        assert_eq!(second, 25.0 * 2.0);
        let (_, after_i1) = stepper.complete_build(IndexId::new(1));
        assert_eq!(after_i1, 10.0); // 20s plan available
        assert_eq!(stepper.area(), 120.0 + 50.0);
        assert_eq!(stepper.elapsed(), 6.0);
        assert_eq!(stepper.built(), &[true, true]);
        assert_eq!(stepper.in_flight_count(), 0);
    }

    #[test]
    fn out_of_order_completion_unlocks_plans_at_the_second_build() {
        // Query interaction: the plan needs both i0 and i1; completing them
        // in either order only unlocks the speed-up at the second
        // completion.
        let mut b = ProblemInstance::builder("join");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(6.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 40.0);
        let inst = b.build().unwrap();
        let eval = ObjectiveEvaluator::new(&inst);
        let mut stepper = eval.stepper();
        // Submission order i1 then i0; i0 (cheaper) completes first.
        stepper.begin_build(IndexId::new(1));
        stepper.begin_build(IndexId::new(0));
        stepper.accrue(2.0);
        let (_, after_first) = stepper.complete_build(IndexId::new(0));
        assert_eq!(after_first, 50.0, "half-available plan unlocks nothing");
        stepper.accrue(4.0);
        let (_, after_second) = stepper.complete_build(IndexId::new(1));
        assert_eq!(after_second, 10.0);
        assert_eq!(stepper.area(), 50.0 * 2.0 + 50.0 * 4.0);
        assert_eq!(stepper.elapsed(), 6.0);
    }

    #[test]
    fn prefix_evaluator_matches_full_evaluation_on_swaps() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let base = Deployment::from_raw([0, 1]);
        let mut pe = PrefixEvaluator::new(&inst, base.clone());
        assert_eq!(pe.base_area(), eval.evaluate_area(&base));
        let swapped = base.with_swap(0, 1);
        assert_eq!(pe.evaluate_swap(0, 1), eval.evaluate_area(&swapped));
        assert_eq!(pe.evaluate_order(&swapped), eval.evaluate_area(&swapped));
    }

    #[test]
    fn prefix_evaluator_commit_updates_base() {
        let inst = competing_example();
        let mut pe = PrefixEvaluator::new(&inst, Deployment::from_raw([0, 1]));
        let swapped_area = pe.evaluate_swap(0, 1);
        pe.commit_swap(0, 1);
        assert_eq!(pe.base_area(), swapped_area);
        assert_eq!(pe.base().order()[0], IndexId::new(1));
    }

    #[test]
    fn larger_random_instance_prefix_matches_full() {
        use std::collections::HashSet;
        // Deterministic pseudo-random instance without external crates.
        let mut b = ProblemInstance::builder("rand");
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (u32::MAX as f64 / 2.0)
        };
        let n = 10;
        for _ in 0..n {
            b.add_index(1.0 + next() * 5.0);
        }
        for q in 0..6 {
            let qid = b.add_query(20.0 + next() * 30.0);
            let mut used = HashSet::new();
            for _ in 0..3 {
                let w = 1 + (next() * 3.0) as usize;
                let idxs: Vec<IndexId> = (0..w)
                    .map(|k| IndexId::new((q * 3 + k * 2 + (next() * 10.0) as usize) % n))
                    .collect();
                let key: Vec<usize> = {
                    let mut v: Vec<usize> = idxs.iter().map(|i| i.raw()).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                if used.insert(key) {
                    b.add_plan(qid, idxs, 1.0 + next() * 10.0);
                }
            }
        }
        b.add_build_interaction(IndexId::new(0), IndexId::new(1), 0.5);
        b.add_build_interaction(IndexId::new(3), IndexId::new(2), 0.25);
        let inst = b.build().unwrap();
        let eval = ObjectiveEvaluator::new(&inst);
        let base = Deployment::identity(n);
        let mut pe = PrefixEvaluator::new(&inst, base.clone());
        for a in 0..n {
            for bpos in (a + 1)..n {
                let full = eval.evaluate_area(&base.with_swap(a, bpos));
                let fast = pe.evaluate_swap(a, bpos);
                assert_eq!(
                    full.to_bits(),
                    fast.to_bits(),
                    "swap ({a},{bpos}): {full} vs {fast}"
                );
            }
        }
    }

    /// A deterministic 12-index instance with interactions, multi-index
    /// plans and helper chains — rich enough to exercise every delta path.
    fn delta_instance(seed: u64) -> ProblemInstance {
        let mut b = ProblemInstance::builder("delta");
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 12;
        for _ in 0..n {
            b.add_index(1.0 + next() * 9.0);
        }
        for q in 0..8 {
            let runtime = 30.0 + next() * 70.0;
            let qid = b.add_query(runtime);
            let mut seen: Vec<Vec<usize>> = Vec::new();
            for _ in 0..4 {
                let w = 1 + (next() * 3.0) as usize;
                let mut ms: Vec<usize> = (0..w)
                    .map(|k| ((q * 5 + k * 3) + (next() * n as f64) as usize) % n)
                    .collect();
                ms.sort_unstable();
                ms.dedup();
                if seen.contains(&ms) {
                    continue;
                }
                seen.push(ms.clone());
                let speedup = (next() * runtime * 0.4).min(runtime * 0.9);
                b.add_plan(qid, ms.into_iter().map(IndexId::new).collect(), speedup);
            }
        }
        for t in 0..n {
            for h in 0..n {
                if t != h && next() < 0.2 {
                    b.add_build_interaction(IndexId::new(t), IndexId::new(h), next() * 0.8 + 0.05);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn delta_swap_is_bit_identical_to_full_evaluation() {
        for seed in 0..4 {
            let inst = delta_instance(seed);
            let n = inst.num_indexes();
            let eval = ObjectiveEvaluator::new(&inst);
            let base = Deployment::identity(n);
            let mut de = DeltaEvaluator::new(&inst, base.clone());
            assert_eq!(
                de.base_area().to_bits(),
                eval.evaluate_area(&base).to_bits()
            );
            for a in 0..n {
                for b in (a + 1)..n {
                    let full = eval.evaluate_area(&base.with_swap(a, b));
                    let fast = de.evaluate_swap(a, b);
                    assert_eq!(full.to_bits(), fast.to_bits(), "swap ({a},{b}) seed {seed}");
                }
            }
        }
    }

    #[test]
    fn delta_shift_is_bit_identical_to_full_evaluation() {
        let inst = delta_instance(7);
        let n = inst.num_indexes();
        let eval = ObjectiveEvaluator::new(&inst);
        let base = Deployment::identity(n);
        let mut de = DeltaEvaluator::new(&inst, base.clone());
        for from in 0..n {
            for to in 0..n {
                let mut moved = base.clone();
                moved.relocate(from, to);
                let full = eval.evaluate_area(&moved);
                let fast = de.evaluate_shift(from, to);
                assert_eq!(full.to_bits(), fast.to_bits(), "shift ({from},{to})");
            }
        }
    }

    #[test]
    fn delta_commit_chain_tracks_full_evaluation() {
        let inst = delta_instance(3);
        let n = inst.num_indexes();
        let eval = ObjectiveEvaluator::new(&inst);
        let mut order = Deployment::identity(n);
        let mut de = DeltaEvaluator::new(&inst, order.clone());
        // Interleave swap / shift / span commits and re-verify the base
        // area (and a probe move) after every commit.
        let moves: [(usize, usize, u8); 6] = [
            (0, 1, 0),
            (3, 9, 0),
            (10, 2, 1),
            (5, 8, 1),
            (2, 6, 2),
            (0, 11, 0),
        ];
        for &(x, y, kind) in &moves {
            match kind {
                0 => {
                    de.commit_swap(x, y);
                    order.swap(x, y);
                }
                1 => {
                    de.commit_shift(x, y);
                    order.relocate(x, y);
                }
                _ => {
                    // Reverse the span [x, y) — a Slice commit.
                    let mut span: Vec<IndexId> = (x..y).map(|p| order.at(p)).collect();
                    span.reverse();
                    de.commit_span(x, &span);
                    order.replace_span(x, &span);
                }
            }
            assert_eq!(de.base().order(), order.order(), "order after commit");
            let full = eval.evaluate_area(&order);
            assert_eq!(
                de.base_area().to_bits(),
                full.to_bits(),
                "area after commit"
            );
            // No stale caches: a probe evaluation still agrees.
            let probe = eval.evaluate_area(&order.with_swap(1, n - 2));
            assert_eq!(de.evaluate_swap(1, n - 2).to_bits(), probe.to_bits());
        }
    }

    #[test]
    fn delta_evaluate_order_walks_only_the_differing_window() {
        let inst = delta_instance(5);
        let n = inst.num_indexes();
        let eval = ObjectiveEvaluator::new(&inst);
        let base = Deployment::identity(n);
        let mut de = DeltaEvaluator::new(&inst, base.clone());
        // Same order: no walk at all.
        assert_eq!(de.evaluate_order(&base).to_bits(), de.base_area().to_bits());
        // A mid-order rotation.
        let mut moved = base.clone();
        moved.relocate(4, 8);
        assert_eq!(
            de.evaluate_order(&moved).to_bits(),
            eval.evaluate_area(&moved).to_bits()
        );
        de.commit_order(moved.clone());
        assert_eq!(de.base().order(), moved.order());
        assert_eq!(
            de.base_area().to_bits(),
            eval.evaluate_area(&moved).to_bits()
        );
    }

    #[test]
    fn delta_agrees_with_suffix_replay_reference() {
        let inst = delta_instance(11);
        let n = inst.num_indexes();
        let base = Deployment::identity(n);
        let reference = SuffixReplayEvaluator::new(&inst, base.clone());
        let mut de = DeltaEvaluator::new(&inst, base);
        assert_eq!(reference.base_area().to_bits(), de.base_area().to_bits());
        for a in 0..n - 1 {
            assert_eq!(
                reference.evaluate_swap(a, a + 1).to_bits(),
                de.evaluate_swap(a, a + 1).to_bits(),
                "adjacent swap at {a}"
            );
        }
    }
}
