//! Objective evaluation: the area under the improvement curve.
//!
//! The objective of the paper (Section 4.1) is
//!
//! ```text
//! minimize  Σ_i  R_{i-1} · C_i
//! ```
//!
//! where `R_{i-1}` is the total (weighted) workload runtime after the first
//! `i-1` indexes of the deployment order have been built and `C_i` is the
//! effective cost of building the i-th index, i.e. its base creation cost
//! minus the best build interaction among already-built indexes.
//!
//! Two evaluators are provided:
//!
//! * [`ObjectiveEvaluator`] — evaluates a [`Deployment`] from scratch in
//!   `O(Σ_p |p| + |Q| + |I|·avg_helpers)` time and optionally produces the
//!   full per-step trace used by reports and Figure 13.
//! * [`PrefixEvaluator`] — keeps per-position checkpoints of a *base* order so
//!   that local-search moves (swaps, relocations) are evaluated by replaying
//!   only the suffix that actually changes.

use crate::instance::ProblemInstance;
use crate::solution::Deployment;
use crate::types::{IndexId, QueryId};
use serde::{Deserialize, Serialize};

/// Per-step metrics of a deployment, used for reports and Figure 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// The index built at this step.
    pub index: IndexId,
    /// Effective build cost of this step (after build interactions).
    pub build_cost: f64,
    /// Workload runtime while this index was being built (`R_{i-1}`).
    pub runtime_before: f64,
    /// Workload runtime once this index is available (`R_i`).
    pub runtime_after: f64,
    /// Deployment clock when this step started.
    pub elapsed_start: f64,
    /// Deployment clock when this step finished.
    pub elapsed_end: f64,
}

/// The value of the objective for one deployment order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValue {
    /// `Σ R_{i-1}·C_i`: the area under the improvement curve.
    pub area: f64,
    /// Total deployment time `Σ C_i` (with build interactions applied).
    pub deployment_time: f64,
    /// Workload runtime before any index exists (`R_∅`).
    pub baseline_runtime: f64,
    /// Workload runtime once every index exists.
    pub final_runtime: f64,
    /// Sum of base creation costs (no interactions) — the denominator of
    /// [`ObjectiveValue::normalized`] together with `baseline_runtime`.
    pub base_build_cost: f64,
    /// Per-step details, in deployment order. Empty when produced by the
    /// area-only fast path.
    pub steps: Vec<StepMetrics>,
}

impl ObjectiveValue {
    /// The objective scaled to a 0–100 range:
    /// `100 · area / (R_∅ · Σ ctime(i))`.
    ///
    /// The denominator is the "worst-case rectangle" — deploying with no
    /// build interaction exploited and no query speed-up until the very end.
    /// The paper's Table 7 and Figures 11/12 report objective values on a
    /// comparable normalized scale (TPC-H ≈ 44–66, TPC-DS ≈ 60–75).
    pub fn normalized(&self) -> f64 {
        let denom = self.baseline_runtime * self.base_build_cost;
        if denom <= 0.0 {
            0.0
        } else {
            100.0 * self.area / denom
        }
    }

    /// Average workload runtime over the deployment window, weighted by how
    /// long each runtime level lasted (`area / deployment_time`). This is the
    /// "Average Query Runtime" series of Figure 13 up to a `1/|Q|` factor.
    pub fn average_runtime_during_deployment(&self) -> f64 {
        if self.deployment_time <= 0.0 {
            self.baseline_runtime
        } else {
            self.area / self.deployment_time
        }
    }
}

/// Mutable evaluation state rolled forward one deployment step at a time.
#[derive(Debug, Clone)]
struct EvalState {
    /// Bitmap of already-built indexes, keyed by raw index id.
    built: Vec<bool>,
    /// For each plan, how many of its indexes are still missing.
    missing: Vec<u32>,
    /// For each query, the best speed-up among currently available plans.
    best_speedup: Vec<f64>,
    /// Current total workload runtime (`R` after the built prefix).
    runtime: f64,
    /// Accumulated objective area.
    area: f64,
    /// Accumulated deployment time.
    elapsed: f64,
    /// Number of indexes built so far.
    built_count: usize,
}

impl EvalState {
    fn initial(eval: &ObjectiveEvaluator<'_>) -> Self {
        EvalState {
            built: vec![false; eval.instance.num_indexes()],
            missing: eval.plan_width.clone(),
            best_speedup: vec![0.0; eval.instance.num_queries()],
            runtime: eval.baseline_runtime,
            area: 0.0,
            elapsed: 0.0,
            built_count: 0,
        }
    }
}

/// Evaluates deployment orders against one [`ProblemInstance`].
///
/// The evaluator borrows the instance and precomputes flat arrays (plan
/// widths, weighted speed-ups, plan→query mapping) so the per-step work is a
/// handful of cache-friendly vector scans.
#[derive(Debug, Clone)]
pub struct ObjectiveEvaluator<'a> {
    instance: &'a ProblemInstance,
    /// Plan width (number of indexes) per plan.
    plan_width: Vec<u32>,
    /// Weighted speed-up per plan.
    plan_speedup: Vec<f64>,
    /// Owning query (raw id) per plan.
    plan_query: Vec<usize>,
    /// `R_∅`.
    baseline_runtime: f64,
    /// `Σ ctime(i)`.
    base_build_cost: f64,
}

impl<'a> ObjectiveEvaluator<'a> {
    /// Creates an evaluator for the given instance.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        let plan_width = instance.plans().iter().map(|p| p.width() as u32).collect();
        let plan_speedup = instance
            .plan_ids()
            .map(|p| instance.plan_speedup(p))
            .collect();
        let plan_query = instance.plans().iter().map(|p| p.query.raw()).collect();
        Self {
            instance,
            plan_width,
            plan_speedup,
            plan_query,
            baseline_runtime: instance.baseline_runtime(),
            base_build_cost: instance.total_base_build_cost(),
        }
    }

    /// The instance this evaluator is bound to.
    pub fn instance(&self) -> &'a ProblemInstance {
        self.instance
    }

    /// `R_∅`: total workload runtime with no candidate index built.
    pub fn baseline_runtime(&self) -> f64 {
        self.baseline_runtime
    }

    /// Applies one deployment step to `state`, returning the step metrics.
    fn apply_step(&self, state: &mut EvalState, index: IndexId) -> StepMetrics {
        let runtime_before = state.runtime;
        let build_cost = self.instance.effective_build_cost(index, &state.built);
        let elapsed_start = state.elapsed;

        state.area += runtime_before * build_cost;
        state.elapsed += build_cost;
        self.make_available(state, index);

        StepMetrics {
            index,
            build_cost,
            runtime_before,
            runtime_after: state.runtime,
            elapsed_start,
            elapsed_end: state.elapsed,
        }
    }

    /// Marks `index` built and drops the runtime by its newly available
    /// plans. Shared by the serial [`ObjectiveEvaluator::apply_step`] and
    /// the slot-aware [`ObjectiveStepper::complete_build`] so the
    /// `step ≡ begin_build; accrue; complete_build` identity holds by
    /// construction — same floating-point operations in the same order.
    fn make_available(&self, state: &mut EvalState, index: IndexId) {
        state.built[index.raw()] = true;
        state.built_count += 1;
        // Newly available plans can only improve each query's best speed-up.
        for &pid in self.instance.plans_using_index(index) {
            let p = pid.raw();
            state.missing[p] -= 1;
            if state.missing[p] == 0 {
                let q = self.plan_query[p];
                let s = self.plan_speedup[p];
                if s > state.best_speedup[q] {
                    state.runtime -= s - state.best_speedup[q];
                    state.best_speedup[q] = s;
                }
            }
        }
    }

    /// Evaluates a deployment and returns the full per-step trace.
    ///
    /// The deployment is assumed to be a permutation (checked in debug
    /// builds); call [`Deployment::validate`] first if it comes from an
    /// untrusted source.
    pub fn evaluate(&self, deployment: &Deployment) -> ObjectiveValue {
        debug_assert!(deployment.validate(self.instance).is_ok());
        let mut state = EvalState::initial(self);
        let mut steps = Vec::with_capacity(deployment.len());
        for (_, index) in deployment.iter() {
            steps.push(self.apply_step(&mut state, index));
        }
        ObjectiveValue {
            area: state.area,
            deployment_time: state.elapsed,
            baseline_runtime: self.baseline_runtime,
            final_runtime: state.runtime,
            base_build_cost: self.base_build_cost,
            steps,
        }
    }

    /// Evaluates only the objective area of a deployment (no step trace).
    pub fn evaluate_area(&self, deployment: &Deployment) -> f64 {
        let mut state = EvalState::initial(self);
        for (_, index) in deployment.iter() {
            self.apply_step(&mut state, index);
        }
        state.area
    }

    /// Evaluates the objective area of a *partial* prefix order (the
    /// remaining indexes are treated as never built). Used by search
    /// algorithms to compute lower-bound contributions of a fixed prefix.
    pub fn evaluate_prefix_area(&self, prefix: &[IndexId]) -> f64 {
        let mut state = EvalState::initial(self);
        for &index in prefix {
            self.apply_step(&mut state, index);
        }
        state.area
    }

    /// Total workload runtime when exactly the indexes in `built` exist.
    pub fn runtime_with(&self, built: &[bool]) -> f64 {
        let mut best = vec![0.0_f64; self.instance.num_queries()];
        for (p, plan) in self.instance.plans().iter().enumerate() {
            if plan.available_in(built) {
                let q = self.plan_query[p];
                if self.plan_speedup[p] > best[q] {
                    best[q] = self.plan_speedup[p];
                }
            }
        }
        self.baseline_runtime - best.iter().sum::<f64>()
    }

    /// The speed-up a single query currently enjoys given `built`.
    pub fn query_speedup_with(&self, query: QueryId, built: &[bool]) -> f64 {
        let mut best = 0.0_f64;
        for &pid in self.instance.plans_of_query(query) {
            let plan = self.instance.plan(pid);
            if plan.available_in(built) {
                let s = self.plan_speedup[pid.raw()];
                if s > best {
                    best = s;
                }
            }
        }
        best
    }
}

/// A re-entrant stepper over the evaluation state, for consumers that
/// *execute* a deployment one build at a time (the `idd-deploy` runtime)
/// rather than scoring a complete order.
///
/// Guarantee: applying a sequence of indexes through
/// [`ObjectiveStepper::step`] performs bit-for-bit the same floating-point
/// operations as [`ObjectiveEvaluator::evaluate`] on that order — a runtime
/// that accumulates `runtime_before · build_cost` per step reproduces the
/// offline objective *exactly*, not just within a tolerance.
///
/// # Overlapping builds
///
/// The serial [`ObjectiveStepper::step`] is a composition of three
/// slot-aware primitives that a concurrent runtime can drive independently:
///
/// 1. [`ObjectiveStepper::begin_build`] — prices the build against the
///    *completed* set (an in-flight helper contributes nothing yet) and
///    marks it in flight;
/// 2. [`ObjectiveStepper::accrue`] — integrates `runtime · duration` of
///    wall-clock into the area while the workload runs at the current
///    runtime level;
/// 3. [`ObjectiveStepper::complete_build`] — lands the finished index,
///    dropping the runtime by its newly available plans.
///
/// Builds may complete out of submission order; the runtime level only ever
/// reflects *completed* indexes. The serial identity
/// `step(i) ≡ begin_build(i); accrue(cost); complete_build(i)` holds
/// bit-for-bit (same floating-point operations in the same order), which is
/// what lets a one-slot concurrent scheduler reproduce
/// [`ObjectiveEvaluator::evaluate`] exactly.
#[derive(Debug, Clone)]
pub struct ObjectiveStepper<'a> {
    evaluator: ObjectiveEvaluator<'a>,
    state: EvalState,
    /// Bitmap of begun-but-not-completed indexes (parallel to `built`).
    in_flight: Vec<bool>,
    in_flight_count: usize,
}

impl<'a> ObjectiveStepper<'a> {
    /// Applies one deployment step (builds `index`) and returns its metrics.
    pub fn step(&mut self, index: IndexId) -> StepMetrics {
        self.evaluator.apply_step(&mut self.state, index)
    }

    /// Starts building `index`: marks it in flight and returns its effective
    /// build cost, priced against the *completed* set only — a helper that
    /// is itself still in flight discounts nothing.
    ///
    /// The cost is identical to what [`ObjectiveStepper::step`] would charge
    /// at this state; the returned value is the caller's to schedule (the
    /// stepper does not advance time).
    pub fn begin_build(&mut self, index: IndexId) -> f64 {
        debug_assert!(
            !self.state.built[index.raw()] && !self.in_flight[index.raw()],
            "{index} begun twice"
        );
        self.in_flight[index.raw()] = true;
        self.in_flight_count += 1;
        self.evaluator
            .instance
            .effective_build_cost(index, &self.state.built)
    }

    /// Integrates `duration` wall-clock seconds at the current runtime level
    /// into the objective area (one `runtime · duration` product) and
    /// advances the deployment clock.
    pub fn accrue(&mut self, duration: f64) -> f64 {
        let cost = self.state.runtime * duration;
        self.state.area += cost;
        self.state.elapsed += duration;
        cost
    }

    /// Completes an in-flight build: the index becomes available, its plans
    /// unlock, and the workload runtime drops accordingly. Returns
    /// `(runtime_before, runtime_after)` around the completion.
    ///
    /// Completions may arrive in any order relative to
    /// [`ObjectiveStepper::begin_build`] calls — only relative to their own
    /// `begin_build`.
    pub fn complete_build(&mut self, index: IndexId) -> (f64, f64) {
        debug_assert!(self.in_flight[index.raw()], "{index} completed unbegun");
        self.in_flight[index.raw()] = false;
        self.in_flight_count -= 1;
        let runtime_before = self.state.runtime;
        self.evaluator.make_available(&mut self.state, index);
        (runtime_before, self.state.runtime)
    }

    /// `true` when `index` has been begun but not yet completed.
    pub fn is_in_flight(&self, index: IndexId) -> bool {
        self.in_flight[index.raw()]
    }

    /// Number of builds currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight_count
    }

    /// Current total workload runtime (after everything stepped so far).
    pub fn runtime(&self) -> f64 {
        self.state.runtime
    }

    /// Accumulated objective area so far.
    pub fn area(&self) -> f64 {
        self.state.area
    }

    /// Accumulated deployment time so far.
    pub fn elapsed(&self) -> f64 {
        self.state.elapsed
    }

    /// Bitmap of built indexes, keyed by raw index id.
    pub fn built(&self) -> &[bool] {
        &self.state.built
    }

    /// Number of indexes built so far.
    pub fn built_count(&self) -> usize {
        self.state.built_count
    }

    /// `true` when `index` has been stepped already.
    pub fn is_built(&self, index: IndexId) -> bool {
        self.state.built[index.raw()]
    }
}

impl<'a> ObjectiveEvaluator<'a> {
    /// Starts a fresh [`ObjectiveStepper`] (nothing built yet). The stepper
    /// owns a clone of this evaluator, so it stays usable after the borrow
    /// ends.
    pub fn stepper(&self) -> ObjectiveStepper<'a> {
        ObjectiveStepper {
            state: EvalState::initial(self),
            in_flight: vec![false; self.instance.num_indexes()],
            in_flight_count: 0,
            evaluator: self.clone(),
        }
    }
}

/// Incremental evaluator for local search over a *base* deployment order.
///
/// [`PrefixEvaluator::set_base`] records a checkpoint of the evaluation state
/// after every position. Evaluating a move that only changes the order from
/// position `k` onward then costs `O((n-k) · step)` instead of a full
/// re-evaluation — the dominant saving for swap neighbourhoods where most
/// candidate moves touch late positions.
#[derive(Debug, Clone)]
pub struct PrefixEvaluator<'a> {
    evaluator: ObjectiveEvaluator<'a>,
    base: Deployment,
    /// `checkpoints[k]` is the state after the first `k` indexes of `base`.
    checkpoints: Vec<EvalState>,
}

impl<'a> PrefixEvaluator<'a> {
    /// Creates an incremental evaluator with the given base order.
    pub fn new(instance: &'a ProblemInstance, base: Deployment) -> Self {
        let evaluator = ObjectiveEvaluator::new(instance);
        let mut pe = Self {
            evaluator,
            base: Deployment::new(Vec::new()),
            checkpoints: Vec::new(),
        };
        pe.set_base(base);
        pe
    }

    /// The underlying full evaluator.
    pub fn evaluator(&self) -> &ObjectiveEvaluator<'a> {
        &self.evaluator
    }

    /// The current base order.
    pub fn base(&self) -> &Deployment {
        &self.base
    }

    /// The objective area of the current base order.
    pub fn base_area(&self) -> f64 {
        self.checkpoints.last().map(|s| s.area).unwrap_or(0.0)
    }

    /// Replaces the base order and rebuilds all checkpoints.
    pub fn set_base(&mut self, base: Deployment) {
        let n = base.len();
        let mut checkpoints = Vec::with_capacity(n + 1);
        let mut state = EvalState::initial(&self.evaluator);
        checkpoints.push(state.clone());
        for (_, index) in base.iter() {
            self.evaluator.apply_step(&mut state, index);
            checkpoints.push(state.clone());
        }
        self.base = base;
        self.checkpoints = checkpoints;
    }

    /// Evaluates the area of `order`, reusing the checkpoint of the longest
    /// common prefix with the base order.
    pub fn evaluate_order(&self, order: &Deployment) -> f64 {
        let n = self.base.len();
        debug_assert_eq!(order.len(), n);
        let mut common = 0;
        while common < n && order.at(common) == self.base.at(common) {
            common += 1;
        }
        let mut state = self.checkpoints[common].clone();
        for pos in common..n {
            self.evaluator.apply_step(&mut state, order.at(pos));
        }
        state.area
    }

    /// Evaluates the area of the base order with positions `a` and `b`
    /// swapped, without materializing the swapped order.
    pub fn evaluate_swap(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return self.base_area();
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let n = self.base.len();
        let mut state = self.checkpoints[lo].clone();
        for pos in lo..n {
            let index = if pos == lo {
                self.base.at(hi)
            } else if pos == hi {
                self.base.at(lo)
            } else {
                self.base.at(pos)
            };
            self.evaluator.apply_step(&mut state, index);
        }
        state.area
    }

    /// Applies a swap to the base order and refreshes checkpoints from the
    /// earlier of the two positions.
    pub fn commit_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, _hi) = if a < b { (a, b) } else { (b, a) };
        self.base.swap(a, b);
        // Recompute checkpoints from `lo` onward.
        let n = self.base.len();
        self.checkpoints.truncate(lo + 1);
        let mut state = self.checkpoints[lo].clone();
        for pos in lo..n {
            self.evaluator.apply_step(&mut state, self.base.at(pos));
            self.checkpoints.push(state.clone());
        }
    }

    /// Replaces the whole base order (alias of [`PrefixEvaluator::set_base`]
    /// kept for readability at call sites that accept arbitrary moves).
    pub fn commit_order(&mut self, order: Deployment) {
        self.set_base(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section 4.2 competing-interaction example.
    fn competing_example() -> ProblemInstance {
        let mut b = ProblemInstance::builder("competing");
        let i_city = b.add_named_index("i(City)", 4.0);
        let i_cov = b.add_named_index("i(City,Salary)", 6.0);
        let q = b.add_named_query("avg_salary_by_city", 30.0);
        b.add_plan(q, vec![i_city], 5.0);
        b.add_plan(q, vec![i_cov], 20.0);
        b.add_build_interaction(i_city, i_cov, 3.0);
        b.add_build_interaction(i_cov, i_city, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn hand_computed_objective_order_01() {
        // Order i0 → i1:
        //   step 1: R_0 = 30, C = 4  → area 120; runtime drops to 25 (5s plan)
        //   step 2: R_1 = 25, C = 6-2 = 4 → area 100; runtime drops to 10
        // total area = 220, deployment time 8, final runtime 10.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        assert!((v.area - 220.0).abs() < 1e-9);
        assert!((v.deployment_time - 8.0).abs() < 1e-9);
        assert!((v.final_runtime - 10.0).abs() < 1e-9);
        assert_eq!(v.steps.len(), 2);
        assert!((v.steps[0].build_cost - 4.0).abs() < 1e-9);
        assert!((v.steps[1].build_cost - 4.0).abs() < 1e-9);
        assert!((v.steps[1].runtime_before - 25.0).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_objective_order_10() {
        // Order i1 → i0:
        //   step 1: R_0 = 30, C = 6 → area 180; runtime drops to 10 (20s plan)
        //   step 2: R_1 = 10, C = 4-3 = 1 → area 10; runtime stays 10
        // total area = 190, deployment time 7.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([1, 0]));
        assert!((v.area - 190.0).abs() < 1e-9);
        assert!((v.deployment_time - 7.0).abs() < 1e-9);
        assert!((v.final_runtime - 10.0).abs() < 1e-9);
        // The covering-index-first order is better, as the paper argues.
        assert!(v.area < eval.evaluate_area(&Deployment::from_raw([0, 1])));
    }

    #[test]
    fn competing_interaction_only_counts_marginal_speedup() {
        // After i1 (20s speed-up), adding i0 must not double count the 5s.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([1, 0]));
        assert!((v.steps[1].runtime_before - 10.0).abs() < 1e-9);
        assert!((v.steps[1].runtime_after - 10.0).abs() < 1e-9);
    }

    #[test]
    fn area_only_matches_full_evaluation() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0, 1], [1, 0]] {
            let d = Deployment::from_raw(order);
            assert_eq!(eval.evaluate(&d).area, eval.evaluate_area(&d));
        }
    }

    #[test]
    fn normalized_is_between_zero_and_hundred_for_sane_instances() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([1, 0]));
        let norm = v.normalized();
        assert!(norm > 0.0 && norm < 100.0, "normalized = {norm}");
    }

    #[test]
    fn runtime_with_reports_best_available_plan() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        assert_eq!(eval.runtime_with(&[false, false]), 30.0);
        assert_eq!(eval.runtime_with(&[true, false]), 25.0);
        assert_eq!(eval.runtime_with(&[false, true]), 10.0);
        assert_eq!(eval.runtime_with(&[true, true]), 10.0);
        assert_eq!(
            eval.query_speedup_with(QueryId::new(0), &[true, false]),
            5.0
        );
    }

    #[test]
    fn query_interaction_requires_all_indexes() {
        // Join query needs both i0 and i1 (paper's query-interaction example).
        let mut b = ProblemInstance::builder("join");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(2.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 40.0);
        let inst = b.build().unwrap();
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::from_raw([0, 1]));
        // No speed-up until both are built: area = 50*2 + 50*2 = 200.
        assert!((v.area - 200.0).abs() < 1e-9);
        assert!((v.final_runtime - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stepper_replays_evaluate_bit_for_bit() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0usize, 1], [1, 0]] {
            let d = Deployment::from_raw(order);
            let value = eval.evaluate(&d);
            let mut stepper = eval.stepper();
            assert_eq!(stepper.built_count(), 0);
            let mut realized = 0.0_f64;
            for (pos, index) in d.iter() {
                let step = stepper.step(index);
                assert_eq!(step, value.steps[pos]);
                realized += step.runtime_before * step.build_cost;
            }
            // Bit-for-bit, not approximately: same ops in the same order.
            assert_eq!(realized.to_bits(), value.area.to_bits());
            assert_eq!(stepper.area().to_bits(), value.area.to_bits());
            assert_eq!(stepper.runtime(), value.final_runtime);
            assert_eq!(stepper.elapsed(), value.deployment_time);
            assert!(stepper.is_built(IndexId::new(0)));
            assert_eq!(stepper.built(), &[true, true]);
        }
    }

    #[test]
    fn slot_decomposition_replays_step_bit_for_bit() {
        // step(i) ≡ begin_build(i); accrue(cost); complete_build(i) — the
        // identity the one-slot concurrent scheduler relies on.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0usize, 1], [1, 0]] {
            let d = Deployment::from_raw(order);
            let value = eval.evaluate(&d);
            let mut stepper = eval.stepper();
            for (pos, index) in d.iter() {
                let cost = stepper.begin_build(index);
                assert_eq!(cost.to_bits(), value.steps[pos].build_cost.to_bits());
                assert!(stepper.is_in_flight(index));
                assert_eq!(stepper.in_flight_count(), 1);
                let accrued = stepper.accrue(cost);
                assert_eq!(
                    accrued.to_bits(),
                    (value.steps[pos].runtime_before * value.steps[pos].build_cost).to_bits()
                );
                let (before, after) = stepper.complete_build(index);
                assert_eq!(before.to_bits(), value.steps[pos].runtime_before.to_bits());
                assert_eq!(after.to_bits(), value.steps[pos].runtime_after.to_bits());
                assert!(!stepper.is_in_flight(index));
            }
            assert_eq!(stepper.area().to_bits(), value.area.to_bits());
            assert_eq!(stepper.runtime().to_bits(), value.final_runtime.to_bits());
            assert_eq!(stepper.elapsed().to_bits(), value.deployment_time.to_bits());
        }
    }

    #[test]
    fn overlapping_builds_price_against_completed_indexes_only() {
        // Start i1 while i0 is still in flight: i0's build interaction on i1
        // (saving 2.0) must NOT apply, and the runtime only drops when each
        // build *completes*, in completion order.
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let mut stepper = eval.stepper();
        let c0 = stepper.begin_build(IndexId::new(0));
        let c1 = stepper.begin_build(IndexId::new(1));
        assert_eq!(c0, 4.0);
        assert_eq!(c1, 6.0, "in-flight i0 must not discount i1");
        assert_eq!(stepper.in_flight_count(), 2);
        assert_eq!(stepper.runtime(), 30.0);

        // Both run concurrently; i0 completes at t=4, i1 at t=6.
        let first = stepper.accrue(4.0); // [0,4] at the baseline runtime
        assert_eq!(first, 30.0 * 4.0);
        let (_, after_i0) = stepper.complete_build(IndexId::new(0));
        assert_eq!(after_i0, 25.0); // 5s plan available
        let second = stepper.accrue(2.0); // [4,6] at the post-i0 runtime
        assert_eq!(second, 25.0 * 2.0);
        let (_, after_i1) = stepper.complete_build(IndexId::new(1));
        assert_eq!(after_i1, 10.0); // 20s plan available
        assert_eq!(stepper.area(), 120.0 + 50.0);
        assert_eq!(stepper.elapsed(), 6.0);
        assert_eq!(stepper.built(), &[true, true]);
        assert_eq!(stepper.in_flight_count(), 0);
    }

    #[test]
    fn out_of_order_completion_unlocks_plans_at_the_second_build() {
        // Query interaction: the plan needs both i0 and i1; completing them
        // in either order only unlocks the speed-up at the second
        // completion.
        let mut b = ProblemInstance::builder("join");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(6.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 40.0);
        let inst = b.build().unwrap();
        let eval = ObjectiveEvaluator::new(&inst);
        let mut stepper = eval.stepper();
        // Submission order i1 then i0; i0 (cheaper) completes first.
        stepper.begin_build(IndexId::new(1));
        stepper.begin_build(IndexId::new(0));
        stepper.accrue(2.0);
        let (_, after_first) = stepper.complete_build(IndexId::new(0));
        assert_eq!(after_first, 50.0, "half-available plan unlocks nothing");
        stepper.accrue(4.0);
        let (_, after_second) = stepper.complete_build(IndexId::new(1));
        assert_eq!(after_second, 10.0);
        assert_eq!(stepper.area(), 50.0 * 2.0 + 50.0 * 4.0);
        assert_eq!(stepper.elapsed(), 6.0);
    }

    #[test]
    fn prefix_evaluator_matches_full_evaluation_on_swaps() {
        let inst = competing_example();
        let eval = ObjectiveEvaluator::new(&inst);
        let base = Deployment::from_raw([0, 1]);
        let pe = PrefixEvaluator::new(&inst, base.clone());
        assert_eq!(pe.base_area(), eval.evaluate_area(&base));
        let swapped = base.with_swap(0, 1);
        assert_eq!(pe.evaluate_swap(0, 1), eval.evaluate_area(&swapped));
        assert_eq!(pe.evaluate_order(&swapped), eval.evaluate_area(&swapped));
    }

    #[test]
    fn prefix_evaluator_commit_updates_base() {
        let inst = competing_example();
        let mut pe = PrefixEvaluator::new(&inst, Deployment::from_raw([0, 1]));
        let swapped_area = pe.evaluate_swap(0, 1);
        pe.commit_swap(0, 1);
        assert_eq!(pe.base_area(), swapped_area);
        assert_eq!(pe.base().order()[0], IndexId::new(1));
    }

    #[test]
    fn larger_random_instance_prefix_matches_full() {
        use std::collections::HashSet;
        // Deterministic pseudo-random instance without external crates.
        let mut b = ProblemInstance::builder("rand");
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (u32::MAX as f64 / 2.0)
        };
        let n = 10;
        for _ in 0..n {
            b.add_index(1.0 + next() * 5.0);
        }
        for q in 0..6 {
            let qid = b.add_query(20.0 + next() * 30.0);
            let mut used = HashSet::new();
            for _ in 0..3 {
                let w = 1 + (next() * 3.0) as usize;
                let idxs: Vec<IndexId> = (0..w)
                    .map(|k| IndexId::new((q * 3 + k * 2 + (next() * 10.0) as usize) % n))
                    .collect();
                let key: Vec<usize> = {
                    let mut v: Vec<usize> = idxs.iter().map(|i| i.raw()).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                if used.insert(key) {
                    b.add_plan(qid, idxs, 1.0 + next() * 10.0);
                }
            }
        }
        b.add_build_interaction(IndexId::new(0), IndexId::new(1), 0.5);
        b.add_build_interaction(IndexId::new(3), IndexId::new(2), 0.25);
        let inst = b.build().unwrap();
        let eval = ObjectiveEvaluator::new(&inst);
        let base = Deployment::identity(n);
        let pe = PrefixEvaluator::new(&inst, base.clone());
        for a in 0..n {
            for bpos in (a + 1)..n {
                let full = eval.evaluate_area(&base.with_swap(a, bpos));
                let fast = pe.evaluate_swap(a, bpos);
                assert!(
                    (full - fast).abs() < 1e-9,
                    "swap ({a},{bpos}): {full} vs {fast}"
                );
            }
        }
    }
}
