//! The problem instance: everything the solvers need, nothing more.

use crate::error::{CoreError, Result};
use crate::index::IndexMeta;
use crate::interaction::{BuildInteraction, Precedence};
use crate::plan::QueryPlan;
use crate::query::QueryMeta;
use crate::types::{IndexId, PlanId, QueryId};
use serde::{Deserialize, Serialize};

/// A complete instance of the index deployment ordering problem — the
/// "matrix file" of the paper's Figure 3.
///
/// It bundles the constants of the mathematical model (Table 2):
/// `qtime(q)`, `qspdup(p, q)`, `ctime(i)`, `cspdup(i, j)`, the feasible plans
/// `plans(q)` and any hard precedence constraints, plus descriptive metadata
/// used by reports and examples.
///
/// The struct is immutable once built; use [`ProblemInstance::builder`] or
/// [`InstanceBuilder`] to construct one, which validates referential
/// integrity, value ranges and precedence acyclicity.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "RawInstance", into = "RawInstance")]
pub struct ProblemInstance {
    name: String,
    indexes: Vec<IndexMeta>,
    queries: Vec<QueryMeta>,
    plans: Vec<QueryPlan>,
    build_interactions: Vec<BuildInteraction>,
    precedences: Vec<Precedence>,

    // Derived lookup structures (rebuilt after deserialization, not stored).
    plans_by_query: Vec<Vec<PlanId>>,
    plans_by_index: Vec<Vec<PlanId>>,
    helpers_by_target: Vec<Vec<(IndexId, f64)>>,
    targets_by_helper: Vec<Vec<(IndexId, f64)>>,
}

/// Serialized form of [`ProblemInstance`] (no derived lookup tables).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RawInstance {
    name: String,
    indexes: Vec<IndexMeta>,
    queries: Vec<QueryMeta>,
    plans: Vec<QueryPlan>,
    build_interactions: Vec<BuildInteraction>,
    precedences: Vec<Precedence>,
}

impl From<ProblemInstance> for RawInstance {
    fn from(p: ProblemInstance) -> Self {
        RawInstance {
            name: p.name,
            indexes: p.indexes,
            queries: p.queries,
            plans: p.plans,
            build_interactions: p.build_interactions,
            precedences: p.precedences,
        }
    }
}

impl TryFrom<RawInstance> for ProblemInstance {
    type Error = CoreError;

    fn try_from(raw: RawInstance) -> Result<Self> {
        let mut b = InstanceBuilder::new(raw.name);
        for idx in raw.indexes {
            b.push_index(idx);
        }
        for q in raw.queries {
            b.push_query(q);
        }
        for p in raw.plans {
            b.push_plan(p);
        }
        for bi in raw.build_interactions {
            b.add_build_interaction(bi.target, bi.helper, bi.speedup);
        }
        for pr in raw.precedences {
            b.add_precedence(pr.before, pr.after);
        }
        b.build()
    }
}

impl ProblemInstance {
    /// Starts building a new instance with the given name.
    pub fn builder(name: impl Into<String>) -> InstanceBuilder {
        InstanceBuilder::new(name)
    }

    /// The instance name (e.g. `"tpch"`, `"tpcds"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of candidate indexes `|I|`.
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Number of workload queries `|Q|`.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of query plans (atomic configurations) `|P|`.
    pub fn num_plans(&self) -> usize {
        self.plans.len()
    }

    /// All index descriptions.
    pub fn indexes(&self) -> &[IndexMeta] {
        &self.indexes
    }

    /// All query descriptions.
    pub fn queries(&self) -> &[QueryMeta] {
        &self.queries
    }

    /// All query plans.
    pub fn plans(&self) -> &[QueryPlan] {
        &self.plans
    }

    /// All build interactions.
    pub fn build_interactions(&self) -> &[BuildInteraction] {
        &self.build_interactions
    }

    /// All hard precedence constraints.
    pub fn precedences(&self) -> &[Precedence] {
        &self.precedences
    }

    /// Metadata of one index.
    pub fn index_meta(&self, id: IndexId) -> &IndexMeta {
        &self.indexes[id.raw()]
    }

    /// Metadata of one query.
    pub fn query(&self, id: QueryId) -> &QueryMeta {
        &self.queries[id.raw()]
    }

    /// One query plan.
    pub fn plan(&self, id: PlanId) -> &QueryPlan {
        &self.plans[id.raw()]
    }

    /// `ctime(i)`: base creation cost of an index (no helpers available).
    pub fn creation_cost(&self, id: IndexId) -> f64 {
        self.indexes[id.raw()].creation_cost
    }

    /// Weighted original runtime of a query (`weight · qtime(q)`).
    pub fn query_runtime(&self, id: QueryId) -> f64 {
        self.queries[id.raw()].weighted_runtime()
    }

    /// Weighted speed-up of a plan (`weight(q) · qspdup(p, q)`).
    pub fn plan_speedup(&self, id: PlanId) -> f64 {
        let plan = &self.plans[id.raw()];
        plan.speedup * self.queries[plan.query.raw()].weight
    }

    /// `R_∅`: total weighted workload runtime before any index is built.
    pub fn baseline_runtime(&self) -> f64 {
        self.queries.iter().map(QueryMeta::weighted_runtime).sum()
    }

    /// Sum of base creation costs `Σ ctime(i)` — the deployment time if no
    /// build interaction is ever exploited.
    pub fn total_base_build_cost(&self) -> f64 {
        self.indexes.iter().map(|i| i.creation_cost).sum()
    }

    /// Plans belonging to one query (the `plans(q)` of the paper).
    pub fn plans_of_query(&self, q: QueryId) -> &[PlanId] {
        &self.plans_by_query[q.raw()]
    }

    /// Plans that use a given index.
    pub fn plans_using_index(&self, i: IndexId) -> &[PlanId] {
        &self.plans_by_index[i.raw()]
    }

    /// Build interactions that can speed up the creation of `target`,
    /// as `(helper, cspdup)` pairs.
    pub fn helpers_of(&self, target: IndexId) -> &[(IndexId, f64)] {
        &self.helpers_by_target[target.raw()]
    }

    /// Build interactions in the other direction: indexes whose creation
    /// `helper` can speed up, as `(target, cspdup)` pairs.
    pub fn helps(&self, helper: IndexId) -> &[(IndexId, f64)] {
        &self.targets_by_helper[helper.raw()]
    }

    /// `cspdup(target, helper)` or 0 when no interaction exists.
    pub fn build_speedup(&self, target: IndexId, helper: IndexId) -> f64 {
        self.helpers_by_target[target.raw()]
            .iter()
            .find(|(h, _)| *h == helper)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// The effective creation cost of `target` given a bitmap of already
    /// built indexes: `ctime(i) − max_{j built} cspdup(i, j)`.
    pub fn effective_build_cost(&self, target: IndexId, built: &[bool]) -> f64 {
        let base = self.creation_cost(target);
        let best = self.helpers_by_target[target.raw()]
            .iter()
            .filter(|(h, _)| built[h.raw()])
            .map(|(_, s)| *s)
            .fold(0.0_f64, f64::max);
        base - best
    }

    /// The best possible creation cost of `target` (every helper available).
    pub fn min_build_cost(&self, target: IndexId) -> f64 {
        let best = self.helpers_by_target[target.raw()]
            .iter()
            .map(|(_, s)| *s)
            .fold(0.0_f64, f64::max);
        self.creation_cost(target) - best
    }

    /// Iterator over all index ids.
    pub fn index_ids(&self) -> impl Iterator<Item = IndexId> + '_ {
        (0..self.indexes.len()).map(IndexId::new)
    }

    /// Iterator over all query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        (0..self.queries.len()).map(QueryId::new)
    }

    /// Iterator over all plan ids.
    pub fn plan_ids(&self) -> impl Iterator<Item = PlanId> + '_ {
        (0..self.plans.len()).map(PlanId::new)
    }

    /// Returns a builder pre-populated with this instance's content, useful
    /// for deriving reduced or modified instances.
    pub fn to_builder(&self) -> InstanceBuilder {
        let mut b = InstanceBuilder::new(self.name.clone());
        for idx in &self.indexes {
            b.push_index(idx.clone());
        }
        for q in &self.queries {
            b.push_query(q.clone());
        }
        for p in &self.plans {
            b.push_plan(p.clone());
        }
        for bi in &self.build_interactions {
            b.add_build_interaction(bi.target, bi.helper, bi.speedup);
        }
        for pr in &self.precedences {
            b.add_precedence(pr.before, pr.after);
        }
        b
    }
}

/// Builder for [`ProblemInstance`] with validation at [`InstanceBuilder::build`].
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    name: String,
    indexes: Vec<IndexMeta>,
    queries: Vec<QueryMeta>,
    plans: Vec<QueryPlan>,
    build_interactions: Vec<BuildInteraction>,
    precedences: Vec<Precedence>,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            indexes: Vec::new(),
            queries: Vec::new(),
            plans: Vec::new(),
            build_interactions: Vec::new(),
            precedences: Vec::new(),
        }
    }

    /// Adds an index with only a creation cost; returns its id.
    pub fn add_index(&mut self, creation_cost: f64) -> IndexId {
        let id = IndexId::new(self.indexes.len());
        self.indexes.push(IndexMeta::simple(id, creation_cost));
        id
    }

    /// Adds an index with a name and creation cost; returns its id.
    pub fn add_named_index(&mut self, name: impl Into<String>, creation_cost: f64) -> IndexId {
        let id = IndexId::new(self.indexes.len());
        self.indexes
            .push(IndexMeta::named(id, name, "", Vec::new(), creation_cost));
        id
    }

    /// Adds a fully described index; its `id` field is overwritten with the
    /// next dense id, which is returned.
    pub fn push_index(&mut self, mut meta: IndexMeta) -> IndexId {
        let id = IndexId::new(self.indexes.len());
        meta.id = id;
        self.indexes.push(meta);
        id
    }

    /// Adds a query with only an original runtime; returns its id.
    pub fn add_query(&mut self, original_runtime: f64) -> QueryId {
        let id = QueryId::new(self.queries.len());
        self.queries.push(QueryMeta::simple(id, original_runtime));
        id
    }

    /// Adds a named query; returns its id.
    pub fn add_named_query(&mut self, name: impl Into<String>, original_runtime: f64) -> QueryId {
        let id = QueryId::new(self.queries.len());
        self.queries
            .push(QueryMeta::named(id, name, original_runtime));
        id
    }

    /// Adds a fully described query; its `id` field is overwritten with the
    /// next dense id, which is returned.
    pub fn push_query(&mut self, mut meta: QueryMeta) -> QueryId {
        let id = QueryId::new(self.queries.len());
        meta.id = id;
        self.queries.push(meta);
        id
    }

    /// Overrides the weight of an already-added query (used by workload
    /// drift, where only the relative importance of queries moves).
    ///
    /// # Panics
    /// Panics when `query` has not been added yet.
    pub fn set_query_weight(&mut self, query: QueryId, weight: f64) {
        self.queries[query.raw()].weight = weight;
    }

    /// Adds a plan for `query` requiring `indexes` with the given speed-up;
    /// returns its id.
    pub fn add_plan(&mut self, query: QueryId, indexes: Vec<IndexId>, speedup: f64) -> PlanId {
        let id = PlanId::new(self.plans.len());
        self.plans.push(QueryPlan::new(id, query, indexes, speedup));
        id
    }

    /// Adds a pre-built plan; its `id` field is overwritten with the next
    /// dense id, which is returned.
    pub fn push_plan(&mut self, mut plan: QueryPlan) -> PlanId {
        let id = PlanId::new(self.plans.len());
        plan.id = id;
        self.plans.push(plan);
        id
    }

    /// Declares that building `target` is `speedup` seconds cheaper when
    /// `helper` already exists.
    pub fn add_build_interaction(&mut self, target: IndexId, helper: IndexId, speedup: f64) {
        self.build_interactions
            .push(BuildInteraction::new(target, helper, speedup));
    }

    /// Declares that `before` must be deployed before `after`.
    pub fn add_precedence(&mut self, before: IndexId, after: IndexId) {
        self.precedences.push(Precedence::new(before, after));
    }

    /// Number of indexes added so far.
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Number of queries added so far.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of plans added so far.
    pub fn num_plans(&self) -> usize {
        self.plans.len()
    }

    /// Validates the accumulated data and produces the immutable instance.
    pub fn build(self) -> Result<ProblemInstance> {
        let n = self.indexes.len();
        if n == 0 {
            return Err(CoreError::EmptyInstance);
        }

        for idx in &self.indexes {
            if idx.creation_cost < 0.0 {
                return Err(CoreError::NegativeValue {
                    what: format!("creation cost of {}", idx.id),
                    value: idx.creation_cost,
                });
            }
        }
        for q in &self.queries {
            if q.original_runtime < 0.0 {
                return Err(CoreError::NegativeValue {
                    what: format!("original runtime of {}", q.id),
                    value: q.original_runtime,
                });
            }
            if q.weight < 0.0 {
                return Err(CoreError::NegativeValue {
                    what: format!("weight of {}", q.id),
                    value: q.weight,
                });
            }
        }

        for plan in &self.plans {
            if plan.query.raw() >= self.queries.len() {
                return Err(CoreError::UnknownQuery(plan.query));
            }
            if plan.speedup < 0.0 {
                return Err(CoreError::NegativeValue {
                    what: format!("speed-up of {}", plan.id),
                    value: plan.speedup,
                });
            }
            let qtime = self.queries[plan.query.raw()].original_runtime;
            if plan.speedup > qtime + 1e-9 {
                return Err(CoreError::SpeedupExceedsRuntime {
                    plan: plan.id,
                    speedup: plan.speedup,
                    runtime: qtime,
                });
            }
            let mut seen = vec![false; n];
            for &i in &plan.indexes {
                if i.raw() >= n {
                    return Err(CoreError::UnknownIndex(i));
                }
                if seen[i.raw()] {
                    return Err(CoreError::DuplicateIndexInPlan {
                        plan: plan.id,
                        index: i,
                    });
                }
                seen[i.raw()] = true;
            }
        }

        for bi in &self.build_interactions {
            if bi.target.raw() >= n {
                return Err(CoreError::UnknownIndex(bi.target));
            }
            if bi.helper.raw() >= n {
                return Err(CoreError::UnknownIndex(bi.helper));
            }
            if bi.target == bi.helper {
                return Err(CoreError::SelfInteraction(bi.target));
            }
            if bi.speedup < 0.0 {
                return Err(CoreError::NegativeValue {
                    what: format!("build interaction speed-up on {}", bi.target),
                    value: bi.speedup,
                });
            }
            let cost = self.indexes[bi.target.raw()].creation_cost;
            if bi.speedup > cost + 1e-9 {
                return Err(CoreError::InteractionExceedsBuildCost {
                    target: bi.target,
                    speedup: bi.speedup,
                    cost,
                });
            }
        }

        for pr in &self.precedences {
            if pr.before.raw() >= n {
                return Err(CoreError::UnknownIndex(pr.before));
            }
            if pr.after.raw() >= n {
                return Err(CoreError::UnknownIndex(pr.after));
            }
            if pr.before == pr.after {
                return Err(CoreError::SelfInteraction(pr.before));
            }
        }
        check_precedence_acyclic(n, &self.precedences)?;

        // Derived lookups.
        let mut plans_by_query = vec![Vec::new(); self.queries.len()];
        let mut plans_by_index = vec![Vec::new(); n];
        for plan in &self.plans {
            plans_by_query[plan.query.raw()].push(plan.id);
            for &i in &plan.indexes {
                plans_by_index[i.raw()].push(plan.id);
            }
        }
        let mut helpers_by_target = vec![Vec::new(); n];
        let mut targets_by_helper = vec![Vec::new(); n];
        for bi in &self.build_interactions {
            helpers_by_target[bi.target.raw()].push((bi.helper, bi.speedup));
            targets_by_helper[bi.helper.raw()].push((bi.target, bi.speedup));
        }

        Ok(ProblemInstance {
            name: self.name,
            indexes: self.indexes,
            queries: self.queries,
            plans: self.plans,
            build_interactions: self.build_interactions,
            precedences: self.precedences,
            plans_by_query,
            plans_by_index,
            helpers_by_target,
            targets_by_helper,
        })
    }
}

/// Verifies the precedence graph has no cycle via Kahn's algorithm.
fn check_precedence_acyclic(n: usize, precedences: &[Precedence]) -> Result<()> {
    let mut indegree = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for pr in precedences {
        adj[pr.before.raw()].push(pr.after.raw());
        indegree[pr.after.raw()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut visited = 0usize;
    while let Some(v) = queue.pop() {
        visited += 1;
        for &w in &adj[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    if visited != n {
        let witness = indegree
            .iter()
            .position(|&d| d > 0)
            .map(IndexId::new)
            .unwrap_or(IndexId::new(0));
        return Err(CoreError::PrecedenceCycle { witness });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Section 4.2 running example:
    /// i0 = i1(City), i1 = i2(City, Salary); a query sped up 5s by {i0} and
    /// 20s by {i1}; i0 builds 3s faster given i1, i1 builds 2s faster given i0.
    pub(crate) fn competing_example() -> ProblemInstance {
        let mut b = ProblemInstance::builder("competing");
        let i_city = b.add_named_index("i(City)", 4.0);
        let i_cov = b.add_named_index("i(City,Salary)", 6.0);
        let q = b.add_named_query("avg_salary_by_city", 30.0);
        b.add_plan(q, vec![i_city], 5.0);
        b.add_plan(q, vec![i_cov], 20.0);
        b.add_build_interaction(i_city, i_cov, 3.0);
        b.add_build_interaction(i_cov, i_city, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_lookups() {
        let inst = competing_example();
        assert_eq!(inst.num_indexes(), 2);
        assert_eq!(inst.num_queries(), 1);
        assert_eq!(inst.num_plans(), 2);
        assert_eq!(inst.plans_of_query(QueryId::new(0)).len(), 2);
        assert_eq!(inst.plans_using_index(IndexId::new(0)).len(), 1);
        assert_eq!(inst.baseline_runtime(), 30.0);
        assert_eq!(inst.total_base_build_cost(), 10.0);
    }

    #[test]
    fn build_speedup_lookup() {
        let inst = competing_example();
        assert_eq!(inst.build_speedup(IndexId::new(0), IndexId::new(1)), 3.0);
        assert_eq!(inst.build_speedup(IndexId::new(1), IndexId::new(0)), 2.0);
        assert_eq!(inst.build_speedup(IndexId::new(0), IndexId::new(0)), 0.0);
    }

    #[test]
    fn effective_build_cost_uses_best_available_helper() {
        let inst = competing_example();
        // Nothing built: base cost.
        assert_eq!(
            inst.effective_build_cost(IndexId::new(0), &[false, false]),
            4.0
        );
        // Helper built: cost drops by cspdup.
        assert_eq!(
            inst.effective_build_cost(IndexId::new(0), &[false, true]),
            1.0
        );
        assert_eq!(inst.min_build_cost(IndexId::new(0)), 1.0);
    }

    #[test]
    fn rejects_plan_with_unknown_index() {
        let mut b = ProblemInstance::builder("bad");
        let q = b.add_query(10.0);
        b.add_index(1.0);
        b.add_plan(q, vec![IndexId::new(5)], 1.0);
        assert!(matches!(b.build(), Err(CoreError::UnknownIndex(_))));
    }

    #[test]
    fn rejects_speedup_larger_than_runtime() {
        let mut b = ProblemInstance::builder("bad");
        let q = b.add_query(10.0);
        let i = b.add_index(1.0);
        b.add_plan(q, vec![i], 11.0);
        assert!(matches!(
            b.build(),
            Err(CoreError::SpeedupExceedsRuntime { .. })
        ));
    }

    #[test]
    fn rejects_build_interaction_exceeding_cost() {
        let mut b = ProblemInstance::builder("bad");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(2.0);
        b.add_build_interaction(i0, i1, 1.5);
        assert!(matches!(
            b.build(),
            Err(CoreError::InteractionExceedsBuildCost { .. })
        ));
    }

    #[test]
    fn rejects_precedence_cycle() {
        let mut b = ProblemInstance::builder("bad");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(1.0);
        b.add_precedence(i0, i1);
        b.add_precedence(i1, i2);
        b.add_precedence(i2, i0);
        assert!(matches!(b.build(), Err(CoreError::PrecedenceCycle { .. })));
    }

    #[test]
    fn accepts_acyclic_precedence_chain() {
        let mut b = ProblemInstance::builder("ok");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(1.0);
        b.add_precedence(i0, i1);
        b.add_precedence(i1, i2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_empty_instance() {
        let b = ProblemInstance::builder("empty");
        assert!(matches!(b.build(), Err(CoreError::EmptyInstance)));
    }

    #[test]
    fn rejects_self_interaction() {
        let mut b = ProblemInstance::builder("bad");
        let i0 = b.add_index(1.0);
        b.add_build_interaction(i0, i0, 0.5);
        assert!(matches!(b.build(), Err(CoreError::SelfInteraction(_))));
    }

    #[test]
    fn weighted_runtime_and_speedup_scale_with_weight() {
        let mut b = ProblemInstance::builder("weighted");
        let i0 = b.add_index(1.0);
        let mut q = QueryMeta::simple(QueryId::new(0), 10.0);
        q.weight = 3.0;
        let q = b.push_query(q);
        b.add_plan(q, vec![i0], 4.0);
        let inst = b.build().unwrap();
        assert_eq!(inst.query_runtime(QueryId::new(0)), 30.0);
        assert_eq!(inst.plan_speedup(PlanId::new(0)), 12.0);
        assert_eq!(inst.baseline_runtime(), 30.0);
    }

    #[test]
    fn serde_round_trip_rebuilds_lookups() {
        let inst = competing_example();
        let json = serde_json::to_string(&inst).unwrap();
        let back: ProblemInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_plans(), inst.num_plans());
        assert_eq!(back.plans_using_index(IndexId::new(1)).len(), 1);
        assert_eq!(back.build_speedup(IndexId::new(0), IndexId::new(1)), 3.0);
    }

    #[test]
    fn to_builder_round_trips() {
        let inst = competing_example();
        let rebuilt = inst.to_builder().build().unwrap();
        assert_eq!(rebuilt.num_indexes(), inst.num_indexes());
        assert_eq!(rebuilt.num_plans(), inst.num_plans());
        assert_eq!(rebuilt.baseline_runtime(), inst.baseline_runtime());
    }
}
