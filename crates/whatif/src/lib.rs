//! # idd-whatif — a synthetic DBMS substrate with a what-if optimizer
//!
//! The paper obtains its problem instances by asking a commercial DBMS's
//! *what-if* interface to evaluate hypothetical indexes against a workload:
//! the query optimizer reports, for each query, the best *atomic
//! configuration* (the set of hypothetical indexes its best plan would use)
//! and the estimated cost, and a separate pass estimates index creation costs
//! and build interactions. This crate is a self-contained replacement for that
//! machinery:
//!
//! * [`catalog`] — tables, columns and their statistics (row counts, widths,
//!   distinct values) for a star-schema data warehouse.
//! * [`query`] — a simplified analytic query description: a fact table,
//!   dimension joins, filter predicates, group-by columns and aggregates.
//! * [`physical`] — candidate indexes and physical configurations.
//! * [`cost`] — a textbook cost model (sequential/random page I/O, per-tuple
//!   CPU, sort cost, hash and index-nested-loop joins) with selectivity
//!   estimation.
//! * [`optimizer`] — picks the cheapest access path / join strategy for a
//!   query under a given physical configuration and reports which indexes the
//!   winning plan uses.
//! * [`whatif`] — the what-if driver: repeatedly optimizes each query while
//!   removing the indexes of the best plan, producing the competing atomic
//!   configurations of the paper (Section 8).
//! * [`advisor`] — a small index advisor that enumerates and selects candidate
//!   indexes from the workload, standing in for the commercial design tool.
//! * [`build_cost`] — index creation costs and pair-wise build interactions
//!   (scan-an-existing-index / skip-the-sort savings).
//! * [`extract`] — glues everything together and emits an
//!   [`idd_core::ProblemInstance`].
//!
//! The substitution is documented in `DESIGN.md`: the ordering problem only
//! consumes the matrix of costs/benefits/interactions, so any cost model that
//! produces structurally equivalent matrices (multi-index plans, competing
//! plans, build interactions) exercises the same downstream code paths.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod build_cost;
pub mod catalog;
pub mod cost;
pub mod error;
pub mod extract;
pub mod optimizer;
pub mod physical;
pub mod query;
pub mod whatif;

pub mod prelude;

pub use advisor::{Advisor, AdvisorConfig};
pub use catalog::{Catalog, Column, Table};
pub use error::{Result, WhatIfError};
pub use extract::{extract_instance, ExtractionConfig};
pub use optimizer::{Optimizer, PlanChoice};
pub use physical::{CandidateIndex, PhysicalConfig};
pub use query::{Aggregate, ColumnRef, JoinEdge, Predicate, QuerySpec, Workload};
pub use whatif::{AtomicConfiguration, WhatIfOptimizer, WhatIfOptions};
