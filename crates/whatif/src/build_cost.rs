//! Index creation costs and build interactions.
//!
//! Building a B-tree index requires (a) a source scan producing the key and
//! include columns, (b) a sort on the key columns, and (c) writing the index
//! pages. The paper's *build interactions* arise because an existing index can
//! replace the source scan (when it stores every column the new index needs)
//! and can even remove the sort (when the new index's keys are a prefix of the
//! existing index's keys). We model both effects, which is how "a good
//! deployment order can reduce the build cost of an index up to 80%".

use crate::catalog::Catalog;
use crate::cost::model::CostModel;
use crate::cost::params::CostParams;
use crate::physical::CandidateIndex;

/// Computes creation costs and build interactions for candidate indexes.
#[derive(Debug, Clone, Default)]
pub struct BuildCostModel {
    model: CostModel,
}

impl BuildCostModel {
    /// Creates a build-cost model with the given parameters.
    pub fn new(params: CostParams) -> Self {
        Self {
            model: CostModel::new(params),
        }
    }

    /// Cost parameters in use.
    pub fn params(&self) -> &CostParams {
        self.model.params()
    }

    /// Cost (in cost units) of building `index` when the indexes in
    /// `existing` are already materialized.
    pub fn creation_cost_units(
        &self,
        catalog: &Catalog,
        index: &CandidateIndex,
        existing: &[&CandidateIndex],
    ) -> f64 {
        let params = self.params();
        let table = match catalog.table(&index.table) {
            Some(t) => t,
            None => return 0.0,
        };
        let needed: Vec<String> = index.all_columns().map(str::to_string).collect();

        // Source scan: the base table, or the cheapest existing index on the
        // same table that stores every column we need.
        let table_scan = table.pages() * params.seq_page_cost + table.rows * params.cpu_tuple_cost;
        let mut best_scan = table_scan;
        let mut best_source: Option<&CandidateIndex> = None;
        for other in existing {
            if other.table != index.table || other.name == index.name {
                continue;
            }
            if !other.covers(&needed) {
                continue;
            }
            let scan = other.size_pages(catalog) * params.seq_page_cost
                + table.rows * params.cpu_index_tuple_cost;
            if scan < best_scan {
                best_scan = scan;
                best_source = Some(other);
            }
        }

        // Sort: skipped when the source index already delivers the keys in
        // order (the new index's keys are a prefix of the source's keys).
        let sort_needed = match best_source {
            Some(src) => !keys_are_prefix(&index.key_columns, &src.key_columns),
            None => true,
        };
        let sort = if sort_needed {
            self.model.sort_cost(table.rows, index.entry_width(catalog))
        } else {
            0.0
        };

        // Write out the new index pages.
        let write = index.size_pages(catalog) * params.seq_page_cost * params.page_write_factor;

        best_scan + sort + write
    }

    /// Base creation cost in seconds (`ctime(i)`): no helper available.
    pub fn base_creation_cost(&self, catalog: &Catalog, index: &CandidateIndex) -> f64 {
        self.params()
            .to_seconds(self.creation_cost_units(catalog, index, &[]))
    }

    /// Creation cost in seconds when one helper index exists.
    pub fn creation_cost_with_helper(
        &self,
        catalog: &Catalog,
        index: &CandidateIndex,
        helper: &CandidateIndex,
    ) -> f64 {
        self.params()
            .to_seconds(self.creation_cost_units(catalog, index, &[helper]))
    }

    /// `cspdup(index, helper)`: seconds saved off the base creation cost when
    /// `helper` already exists (zero when the helper does not help).
    pub fn build_speedup(
        &self,
        catalog: &Catalog,
        index: &CandidateIndex,
        helper: &CandidateIndex,
    ) -> f64 {
        let base = self.base_creation_cost(catalog, index);
        let helped = self.creation_cost_with_helper(catalog, index, helper);
        (base - helped).max(0.0)
    }

    /// All pair-wise build interactions among `candidates` whose relative
    /// saving is at least `min_ratio` of the base cost. Returns
    /// `(target_position, helper_position, seconds_saved)` triples.
    pub fn all_interactions(
        &self,
        catalog: &Catalog,
        candidates: &[CandidateIndex],
        min_ratio: f64,
    ) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for (ti, target) in candidates.iter().enumerate() {
            let base = self.base_creation_cost(catalog, target);
            if base <= 0.0 {
                continue;
            }
            for (hi, helper) in candidates.iter().enumerate() {
                if ti == hi || helper.table != target.table {
                    continue;
                }
                let saving = self.build_speedup(catalog, target, helper);
                if saving > 0.0 && saving / base >= min_ratio {
                    out.push((ti, hi, saving));
                }
            }
        }
        out
    }
}

/// Returns `true` when `wanted` is a prefix of `have`.
fn keys_are_prefix(wanted: &[String], have: &[String]) -> bool {
    wanted.len() <= have.len() && wanted.iter().zip(have.iter()).all(|(a, b)| a == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "PEOPLE",
            2_000_000.0,
            vec![
                Column::string("LANG", 8.0, 50.0),
                Column::int_key("AGE", 100.0),
                Column::string("REGION", 12.0, 500.0),
                Column::new("SALARY", 8.0, 50_000.0),
            ],
        ))
        .unwrap();
        c
    }

    #[test]
    fn wider_index_costs_more_to_build() {
        let cat = catalog();
        let model = BuildCostModel::default();
        let narrow = CandidateIndex::new("PEOPLE", vec!["LANG".into()]);
        let wide =
            CandidateIndex::new("PEOPLE", vec!["LANG".into(), "AGE".into(), "REGION".into()]);
        assert!(model.base_creation_cost(&cat, &wide) > model.base_creation_cost(&cat, &narrow));
    }

    #[test]
    fn paper_example_wide_index_helps_narrow_one() {
        // i1(LANG, REGION) should build faster after i2(LANG, AGE, REGION).
        let cat = catalog();
        let model = BuildCostModel::default();
        let i1 = CandidateIndex::new("PEOPLE", vec!["LANG".into(), "REGION".into()]);
        let i2 = CandidateIndex::new("PEOPLE", vec!["LANG".into(), "AGE".into(), "REGION".into()]);
        let saving = model.build_speedup(&cat, &i1, &i2);
        assert!(saving > 0.0);
        // The narrow index cannot help building the wide one by as much
        // (it lacks AGE, so it cannot even serve as the source).
        let reverse = model.build_speedup(&cat, &i2, &i1);
        assert!(reverse < saving);
    }

    #[test]
    fn prefix_helper_also_skips_the_sort() {
        let cat = catalog();
        let model = BuildCostModel::default();
        // Helper with the same leading keys in the same order.
        let target = CandidateIndex::new("PEOPLE", vec!["LANG".into()]);
        let prefix_helper = CandidateIndex::new("PEOPLE", vec!["LANG".into(), "AGE".into()]);
        let nonprefix_helper = CandidateIndex::new("PEOPLE", vec!["AGE".into(), "LANG".into()]);
        let with_prefix = model.creation_cost_with_helper(&cat, &target, &prefix_helper);
        let with_nonprefix = model.creation_cost_with_helper(&cat, &target, &nonprefix_helper);
        assert!(
            with_prefix < with_nonprefix,
            "prefix helper {with_prefix} should beat non-prefix helper {with_nonprefix}"
        );
    }

    #[test]
    fn savings_can_reach_large_fractions() {
        // The paper observes build-cost reductions of up to ~80%.
        let cat = catalog();
        let model = BuildCostModel::default();
        let target = CandidateIndex::new("PEOPLE", vec!["LANG".into()]);
        let helper = CandidateIndex::new("PEOPLE", vec!["LANG".into(), "AGE".into()]);
        let base = model.base_creation_cost(&cat, &target);
        let saving = model.build_speedup(&cat, &target, &helper);
        assert!(saving / base > 0.3, "saving ratio {}", saving / base);
        assert!(saving / base <= 1.0);
    }

    #[test]
    fn unrelated_index_gives_no_saving() {
        let cat = catalog();
        let model = BuildCostModel::default();
        let target = CandidateIndex::new("PEOPLE", vec!["LANG".into()]);
        let unrelated = CandidateIndex::new("PEOPLE", vec!["SALARY".into()]);
        assert_eq!(model.build_speedup(&cat, &target, &unrelated), 0.0);
    }

    #[test]
    fn all_interactions_filters_by_ratio_and_table() {
        let cat = catalog();
        let model = BuildCostModel::default();
        let candidates = vec![
            CandidateIndex::new("PEOPLE", vec!["LANG".into()]),
            CandidateIndex::new("PEOPLE", vec!["LANG".into(), "AGE".into()]),
            CandidateIndex::new("PEOPLE", vec!["SALARY".into()]),
        ];
        let interactions = model.all_interactions(&cat, &candidates, 0.05);
        // The wide LANG,AGE index helps the narrow LANG index.
        assert!(interactions
            .iter()
            .any(|&(t, h, s)| t == 0 && h == 1 && s > 0.0));
        // No interaction should involve the unrelated SALARY index as target.
        assert!(!interactions.iter().any(|&(t, _, _)| t == 2));
        // A 100% threshold filters everything out.
        assert!(model.all_interactions(&cat, &candidates, 1.1).is_empty());
    }

    #[test]
    fn keys_are_prefix_helper() {
        assert!(keys_are_prefix(&["A".into()], &["A".into(), "B".into()]));
        assert!(!keys_are_prefix(&["B".into()], &["A".into(), "B".into()]));
        assert!(!keys_are_prefix(
            &["A".into(), "B".into(), "C".into()],
            &["A".into(), "B".into()]
        ));
    }
}
