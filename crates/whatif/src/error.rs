//! Error type for the what-if substrate.

use std::fmt;

/// Result alias used throughout `idd-whatif`.
pub type Result<T> = std::result::Result<T, WhatIfError>;

/// Errors raised while describing schemas, workloads or extracting problem
/// instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhatIfError {
    /// A query or index refers to a table not present in the catalog.
    UnknownTable(String),
    /// A query or index refers to a column not present on its table.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A table was added twice to a catalog.
    DuplicateTable(String),
    /// A column was added twice to a table.
    DuplicateColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// An index has no key columns.
    EmptyIndex(String),
    /// The workload has no queries.
    EmptyWorkload,
    /// Converting the extraction output into a core `ProblemInstance` failed.
    Core(String),
}

impl fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhatIfError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            WhatIfError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{table}.{column}`")
            }
            WhatIfError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            WhatIfError::DuplicateColumn { table, column } => {
                write!(f, "column `{table}.{column}` already exists")
            }
            WhatIfError::EmptyIndex(name) => write!(f, "index `{name}` has no key columns"),
            WhatIfError::EmptyWorkload => write!(f, "workload contains no queries"),
            WhatIfError::Core(msg) => write!(f, "failed to build problem instance: {msg}"),
        }
    }
}

impl std::error::Error for WhatIfError {}

impl From<idd_core::CoreError> for WhatIfError {
    fn from(e: idd_core::CoreError) -> Self {
        WhatIfError::Core(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WhatIfError::UnknownColumn {
            table: "CUSTOMER".into(),
            column: "COUNTRY".into(),
        };
        assert!(e.to_string().contains("CUSTOMER.COUNTRY"));
    }

    #[test]
    fn core_errors_convert() {
        let core_err = idd_core::CoreError::EmptyInstance;
        let e: WhatIfError = core_err.into();
        assert!(matches!(e, WhatIfError::Core(_)));
    }
}
