//! Candidate indexes and physical configurations.

use crate::catalog::{Catalog, PAGE_SIZE_BYTES};
use crate::error::{Result, WhatIfError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A candidate (possibly hypothetical) B-tree index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateIndex {
    /// Index name.
    pub name: String,
    /// Table the index is defined on.
    pub table: String,
    /// Key columns in order.
    pub key_columns: Vec<String>,
    /// Included (covering-only) columns.
    pub include_columns: Vec<String>,
    /// Whether this would be the table's clustered index.
    pub clustered: bool,
}

impl CandidateIndex {
    /// Creates a secondary index on `table(key_columns)`.
    pub fn new(table: impl Into<String>, key_columns: Vec<String>) -> Self {
        let table = table.into();
        let name = format!(
            "ix_{}_{}",
            table.to_lowercase(),
            key_columns.join("_").to_lowercase()
        );
        Self {
            name,
            table,
            key_columns,
            include_columns: Vec::new(),
            clustered: false,
        }
    }

    /// Adds include columns (builder style).
    pub fn with_includes(mut self, include_columns: Vec<String>) -> Self {
        self.include_columns = include_columns;
        if !self.include_columns.is_empty() {
            self.name = format!(
                "{}_incl_{}",
                self.name,
                self.include_columns.join("_").to_lowercase()
            );
        }
        self
    }

    /// Marks the index clustered (builder style).
    pub fn as_clustered(mut self) -> Self {
        self.clustered = true;
        self.name = format!("{}_cl", self.name);
        self
    }

    /// The leading key column.
    pub fn leading_column(&self) -> Option<&str> {
        self.key_columns.first().map(String::as_str)
    }

    /// All columns stored in the index (keys then includes).
    pub fn all_columns(&self) -> impl Iterator<Item = &str> {
        self.key_columns
            .iter()
            .chain(self.include_columns.iter())
            .map(String::as_str)
    }

    /// `true` when the index stores every column in `needed` — a covering
    /// index for a query needing exactly those columns of this table.
    pub fn covers(&self, needed: &[String]) -> bool {
        needed.iter().all(|n| self.all_columns().any(|c| c == n))
    }

    /// Validates the index against a catalog (table and columns must exist,
    /// keys must be non-empty and duplicate-free).
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        if self.key_columns.is_empty() {
            return Err(WhatIfError::EmptyIndex(self.name.clone()));
        }
        let mut seen = BTreeSet::new();
        for c in self.all_columns() {
            catalog.require_column(&self.table, c)?;
            if !seen.insert(c.to_string()) {
                return Err(WhatIfError::DuplicateColumn {
                    table: self.table.clone(),
                    column: c.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Average entry width in bytes (keys + includes + row pointer).
    pub fn entry_width(&self, catalog: &Catalog) -> f64 {
        const ROW_POINTER_BYTES: f64 = 8.0;
        let table = match catalog.table(&self.table) {
            Some(t) => t,
            None => return ROW_POINTER_BYTES,
        };
        self.all_columns()
            .filter_map(|c| table.column(c))
            .map(|c| c.width_bytes)
            .sum::<f64>()
            + ROW_POINTER_BYTES
    }

    /// Estimated index size in pages.
    pub fn size_pages(&self, catalog: &Catalog) -> f64 {
        let rows = catalog.table(&self.table).map(|t| t.rows).unwrap_or(1.0);
        (rows * self.entry_width(catalog) / PAGE_SIZE_BYTES).max(1.0)
    }

    /// Combined distinct count of the key prefix, used to estimate how many
    /// rows an equality seek on all key columns returns.
    pub fn key_distinct_values(&self, catalog: &Catalog) -> f64 {
        let table = match catalog.table(&self.table) {
            Some(t) => t,
            None => return 1.0,
        };
        let mut distinct = 1.0_f64;
        for c in &self.key_columns {
            if let Some(col) = table.column(c) {
                distinct *= col.distinct_values;
            }
        }
        distinct.min(table.rows).max(1.0)
    }
}

/// A physical configuration: the set of indexes assumed to exist.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhysicalConfig {
    indexes: Vec<CandidateIndex>,
}

impl PhysicalConfig {
    /// The empty configuration (heap tables only).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a configuration from a list of indexes.
    pub fn with_indexes(indexes: Vec<CandidateIndex>) -> Self {
        Self { indexes }
    }

    /// Adds an index.
    pub fn add(&mut self, index: CandidateIndex) {
        if !self.indexes.contains(&index) {
            self.indexes.push(index);
        }
    }

    /// Removes an index by name; returns `true` when something was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i.name != name);
        self.indexes.len() != before
    }

    /// All indexes in the configuration.
    pub fn indexes(&self) -> &[CandidateIndex] {
        &self.indexes
    }

    /// Indexes defined on one table.
    pub fn indexes_on<'a>(
        &'a self,
        table: &'a str,
    ) -> impl Iterator<Item = &'a CandidateIndex> + 'a {
        self.indexes.iter().filter(move |i| i.table == table)
    }

    /// Looks up an index by name.
    pub fn index(&self, name: &str) -> Option<&CandidateIndex> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// `true` when no index exists.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "PEOPLE",
            100_000.0,
            vec![
                Column::int_key("EMPID", 100_000.0),
                Column::string("CITY", 16.0, 500.0),
                Column::new("SALARY", 8.0, 5_000.0),
                Column::int_key("REPORTTO", 20_000.0),
            ],
        ))
        .unwrap();
        c
    }

    #[test]
    fn name_generation_and_builders() {
        let ix = CandidateIndex::new("PEOPLE", vec!["CITY".into()]);
        assert_eq!(ix.name, "ix_people_city");
        let cov =
            CandidateIndex::new("PEOPLE", vec!["CITY".into()]).with_includes(vec!["SALARY".into()]);
        assert!(cov.name.contains("incl_salary"));
        let cl = CandidateIndex::new("PEOPLE", vec!["EMPID".into()]).as_clustered();
        assert!(cl.clustered);
        assert!(cl.name.ends_with("_cl"));
    }

    #[test]
    fn covers_requires_all_columns() {
        let cov =
            CandidateIndex::new("PEOPLE", vec!["CITY".into()]).with_includes(vec!["SALARY".into()]);
        assert!(cov.covers(&["CITY".into(), "SALARY".into()]));
        assert!(!cov.covers(&["CITY".into(), "EMPID".into()]));
        assert_eq!(cov.leading_column(), Some("CITY"));
    }

    #[test]
    fn validation_checks_catalog() {
        let cat = catalog();
        assert!(CandidateIndex::new("PEOPLE", vec!["CITY".into()])
            .validate(&cat)
            .is_ok());
        assert!(CandidateIndex::new("PEOPLE", vec![])
            .validate(&cat)
            .is_err());
        assert!(CandidateIndex::new("PEOPLE", vec!["NOPE".into()])
            .validate(&cat)
            .is_err());
        assert!(CandidateIndex::new("NOPE", vec!["CITY".into()])
            .validate(&cat)
            .is_err());
        assert!(
            CandidateIndex::new("PEOPLE", vec!["CITY".into(), "CITY".into()])
                .validate(&cat)
                .is_err()
        );
    }

    #[test]
    fn size_estimates_scale_with_columns() {
        let cat = catalog();
        let narrow = CandidateIndex::new("PEOPLE", vec!["CITY".into()]);
        let wide = CandidateIndex::new("PEOPLE", vec!["CITY".into(), "SALARY".into()]);
        assert!(wide.size_pages(&cat) > narrow.size_pages(&cat));
        assert!(narrow.size_pages(&cat) >= 1.0);
        // Distinct count of composite keys is capped by table rows.
        let k = wide.key_distinct_values(&cat);
        assert!(k <= 100_000.0);
        assert!(k >= 500.0);
    }

    #[test]
    fn config_add_remove_lookup() {
        let mut cfg = PhysicalConfig::empty();
        assert!(cfg.is_empty());
        let ix = CandidateIndex::new("PEOPLE", vec!["CITY".into()]);
        cfg.add(ix.clone());
        cfg.add(ix.clone()); // duplicate ignored
        assert_eq!(cfg.len(), 1);
        assert!(cfg.index("ix_people_city").is_some());
        assert_eq!(cfg.indexes_on("PEOPLE").count(), 1);
        assert_eq!(cfg.indexes_on("OTHER").count(), 0);
        assert!(cfg.remove("ix_people_city"));
        assert!(!cfg.remove("ix_people_city"));
        assert!(cfg.is_empty());
    }
}
