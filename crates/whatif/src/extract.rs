//! End-to-end extraction: workload → [`idd_core::ProblemInstance`].
//!
//! This is the "Evaluate Hypothetical Indexes → Matrix File" stage of the
//! paper's Figure 3: run the advisor, evaluate atomic configurations for every
//! query with the what-if optimizer, compute index creation costs and build
//! interactions, and assemble everything into the core problem instance the
//! solvers consume.

use crate::advisor::{Advisor, AdvisorConfig};
use crate::build_cost::BuildCostModel;
use crate::error::Result;
use crate::optimizer::Optimizer;
use crate::query::Workload;
use crate::whatif::{WhatIfOptimizer, WhatIfOptions};
use idd_core::{IndexId, IndexMeta, ProblemInstance, QueryMeta};

/// Configuration of the extraction pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionConfig {
    /// Advisor configuration (how many indexes to suggest, which candidate
    /// shapes to enumerate).
    pub advisor: AdvisorConfig,
    /// What-if options (plan iterations per query, singleton probing).
    pub whatif: WhatIfOptions,
    /// Minimum relative build-interaction effect to record
    /// (`cspdup / ctime ≥ min_build_interaction_ratio`).
    pub min_build_interaction_ratio: f64,
    /// Keep only the strongest `max_helpers_per_target` build interactions
    /// per target index. Real instances have roughly one helper per index
    /// (the paper's TPC-H has 31 interactions for 31 indexes).
    pub max_helpers_per_target: usize,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self {
            advisor: AdvisorConfig::default(),
            whatif: WhatIfOptions::default(),
            min_build_interaction_ratio: 0.05,
            max_helpers_per_target: 2,
        }
    }
}

impl ExtractionConfig {
    /// Extraction bounded to a design of `max_indexes` indexes.
    pub fn with_budget(max_indexes: usize) -> Self {
        Self {
            advisor: AdvisorConfig::with_budget(max_indexes),
            ..Self::default()
        }
    }
}

/// Runs the full pipeline and produces a problem instance.
///
/// The instance's indexes are the advisor's suggestions (best first), its
/// queries are the workload queries with their unindexed baseline runtimes,
/// its plans are the extracted atomic configurations, and its build
/// interactions come from the build-cost model.
pub fn extract_instance(workload: &Workload, config: ExtractionConfig) -> Result<ProblemInstance> {
    let advisor = Advisor::new(config.advisor);
    let suggested = advisor.suggest(workload);
    let candidates: Vec<_> = suggested.iter().map(|s| s.index.clone()).collect();

    let optimizer = Optimizer::new(workload.catalog.clone());
    let params = *optimizer.params();
    let whatif = WhatIfOptimizer::new(optimizer);
    let build_model = BuildCostModel::new(params);

    let mut builder = ProblemInstance::builder(workload.name.clone());

    // Indexes with their metadata and base creation costs.
    for (pos, cand) in candidates.iter().enumerate() {
        let creation_cost = build_model.base_creation_cost(&workload.catalog, cand);
        let meta = IndexMeta {
            id: IndexId::new(pos),
            name: cand.name.clone(),
            table: cand.table.clone(),
            key_columns: cand.key_columns.clone(),
            include_columns: cand.include_columns.clone(),
            clustered: cand.clustered,
            size_pages: cand.size_pages(&workload.catalog),
            creation_cost,
        };
        builder.push_index(meta);
    }

    // Queries with their baseline runtimes, and their plans.
    for query in &workload.queries {
        let baseline = whatif.baseline_seconds(query);
        let mut meta = QueryMeta::named(idd_core::QueryId::new(0), query.name.clone(), baseline);
        meta.weight = query.weight;
        meta.text = query.text.clone();
        let qid = builder.push_query(meta);

        for cfg in whatif.atomic_configurations(query, &candidates, config.whatif) {
            let indexes: Vec<IndexId> = cfg
                .candidate_positions
                .iter()
                .map(|&p| IndexId::new(p))
                .collect();
            // Clamp defensively: the speed-up can never exceed the baseline.
            let speedup = cfg.speedup_seconds.min(baseline);
            builder.add_plan(qid, indexes, speedup);
        }
    }

    // Build interactions, keeping only the strongest few helpers per target.
    let mut interactions = build_model.all_interactions(
        &workload.catalog,
        &candidates,
        config.min_build_interaction_ratio,
    );
    interactions.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
    });
    let mut kept_per_target = vec![0usize; candidates.len()];
    for (target, helper, saving) in interactions {
        if kept_per_target[target] >= config.max_helpers_per_target {
            continue;
        }
        kept_per_target[target] += 1;
        builder.add_build_interaction(IndexId::new(target), IndexId::new(helper), saving);
    }

    // Precedence constraints: secondary indexes on a table whose clustered
    // index is also part of the design must follow that clustered index
    // (the paper's materialized-view example).
    for (pos, cand) in candidates.iter().enumerate() {
        if !cand.clustered {
            continue;
        }
        for (other_pos, other) in candidates.iter().enumerate() {
            if other_pos != pos && !other.clustered && other.table == cand.table {
                builder.add_precedence(IndexId::new(pos), IndexId::new(other_pos));
            }
        }
    }

    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Column, Table};
    use crate::query::{Aggregate, ColumnRef, Predicate, QuerySpec};
    use idd_core::{Deployment, InstanceStats, ObjectiveEvaluator};

    fn workload() -> Workload {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "SALES",
            3_000_000.0,
            vec![
                Column::int_key("CUST_ID", 300_000.0),
                Column::int_key("ITEM_ID", 50_000.0),
                Column::int_key("DATE_ID", 2_000.0),
                Column::new("AMOUNT", 8.0, 100_000.0),
                Column::new("QUANTITY", 4.0, 100.0),
            ],
        ))
        .unwrap();
        c.add_table(Table::new(
            "CUSTOMER",
            300_000.0,
            vec![
                Column::int_key("CUSTID", 300_000.0),
                Column::string("COUNTRY", 16.0, 150.0),
                Column::string("SEGMENT", 16.0, 5.0),
            ],
        ))
        .unwrap();
        c.add_table(Table::new(
            "ITEM",
            50_000.0,
            vec![
                Column::int_key("ITEMID", 50_000.0),
                Column::string("CATEGORY", 16.0, 50.0),
                Column::string("BRAND", 16.0, 500.0),
            ],
        ))
        .unwrap();

        let q1 = QuerySpec::new("country_rollup", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .group(ColumnRef::new("CUSTOMER", "COUNTRY"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT")));
        let q2 = QuerySpec::new("brand_report", "SALES")
            .join(
                ColumnRef::new("SALES", "ITEM_ID"),
                ColumnRef::new("ITEM", "ITEMID"),
            )
            .filter(Predicate::equality(ColumnRef::new("ITEM", "CATEGORY")))
            .group(ColumnRef::new("ITEM", "BRAND"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "QUANTITY")));
        let q3 = QuerySpec::new("segment_country", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .join(
                ColumnRef::new("SALES", "ITEM_ID"),
                ColumnRef::new("ITEM", "ITEMID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "SEGMENT")))
            .filter(Predicate::equality(ColumnRef::new("ITEM", "CATEGORY")))
            .group(ColumnRef::new("CUSTOMER", "SEGMENT"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT")));
        Workload::new("mini", c, vec![q1, q2, q3])
    }

    #[test]
    fn extraction_produces_a_valid_instance() {
        let inst = extract_instance(&workload(), ExtractionConfig::with_budget(12)).unwrap();
        assert_eq!(inst.num_queries(), 3);
        assert!(inst.num_indexes() > 0 && inst.num_indexes() <= 12);
        assert!(inst.num_plans() > 0);
        // Every deployment order can be evaluated.
        let eval = ObjectiveEvaluator::new(&inst);
        let v = eval.evaluate(&Deployment::identity(inst.num_indexes()));
        assert!(v.area > 0.0);
        assert!(v.final_runtime < v.baseline_runtime);
    }

    #[test]
    fn extraction_finds_interactions() {
        let inst = extract_instance(&workload(), ExtractionConfig::with_budget(16)).unwrap();
        let stats = InstanceStats::of(&inst);
        // Star joins guarantee multi-index plans; covering/narrow pairs on the
        // same table guarantee build interactions.
        assert!(
            stats.num_query_interactions > 0,
            "expected multi-index plans, stats: {stats:?}"
        );
        assert!(
            stats.num_build_interactions > 0,
            "expected build interactions, stats: {stats:?}"
        );
        assert!(stats.largest_plan >= 2);
    }

    #[test]
    fn plan_speedups_never_exceed_baselines() {
        let inst = extract_instance(&workload(), ExtractionConfig::with_budget(16)).unwrap();
        for q in inst.query_ids() {
            let baseline = inst.query(q).original_runtime;
            for &p in inst.plans_of_query(q) {
                assert!(inst.plan(p).speedup <= baseline + 1e-9);
            }
        }
    }

    #[test]
    fn smaller_budget_means_fewer_indexes() {
        let small = extract_instance(&workload(), ExtractionConfig::with_budget(4)).unwrap();
        let large = extract_instance(&workload(), ExtractionConfig::with_budget(20)).unwrap();
        assert!(small.num_indexes() <= 4);
        assert!(large.num_indexes() >= small.num_indexes());
    }
}
