//! The query optimizer: picks the cheapest plan under a physical
//! configuration and reports which indexes that plan uses.
//!
//! Plans are costed at the granularity the ordering problem needs:
//!
//! * each joined dimension chooses a sequential scan or an index access path;
//! * the fact table chooses among a sequential scan, a predicate-driven index
//!   scan, or an index-nested-loop join driven by one joined dimension through
//!   a fact foreign-key index (the star-join pattern that creates the paper's
//!   multi-index *query interactions*);
//! * the remaining joins are hash joins; group-by adds a sort of the result.
//!
//! The set of indexes used by the winning alternative is the *atomic
//! configuration* the what-if driver records.

use crate::catalog::Catalog;
use crate::cost::model::CostModel;
use crate::cost::params::CostParams;
use crate::cost::selectivity::{selectivity_of_columns, table_selectivity};
use crate::physical::PhysicalConfig;
use crate::query::QuerySpec;

/// The optimizer's answer for one query under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// Estimated plan cost in cost units.
    pub cost: f64,
    /// Names of the configuration indexes the plan uses (deduplicated,
    /// sorted for determinism).
    pub used_indexes: Vec<String>,
    /// Short human-readable description of the plan shape.
    pub description: String,
}

impl PlanChoice {
    fn normalize(mut self) -> Self {
        self.used_indexes.sort();
        self.used_indexes.dedup();
        self
    }
}

/// Cost-based query optimizer over a [`Catalog`].
#[derive(Debug, Clone)]
pub struct Optimizer {
    catalog: Catalog,
    model: CostModel,
}

impl Optimizer {
    /// Creates an optimizer with default cost parameters.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_params(catalog, CostParams::default())
    }

    /// Creates an optimizer with explicit cost parameters.
    pub fn with_params(catalog: Catalog, params: CostParams) -> Self {
        Self {
            catalog,
            model: CostModel::new(params),
        }
    }

    /// The catalog the optimizer plans against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Cost parameters.
    pub fn params(&self) -> &CostParams {
        self.model.params()
    }

    /// Estimated cost (in seconds) of a query under a configuration.
    pub fn cost_seconds(&self, query: &QuerySpec, config: &PhysicalConfig) -> f64 {
        self.params().to_seconds(self.optimize(query, config).cost)
    }

    /// Finds the cheapest plan for `query` under `config`.
    pub fn optimize(&self, query: &QuerySpec, config: &PhysicalConfig) -> PlanChoice {
        let cat = &self.catalog;
        let model = &self.model;
        let params = self.params();

        let fact_table = match cat.table(&query.fact_table) {
            Some(t) => t,
            None => {
                return PlanChoice {
                    cost: 0.0,
                    used_indexes: Vec::new(),
                    description: "unknown fact table".into(),
                }
            }
        };
        let fact_sel = table_selectivity(cat, query, &query.fact_table);

        // Access paths for each joined dimension (chosen once; reused by every
        // fact alternative).
        struct DimAccess {
            table: String,
            fact_column: String,
            cost: f64,
            index: Option<String>,
            output_rows: f64,
            selectivity: f64,
        }
        let mut dims: Vec<DimAccess> = Vec::new();
        for join in &query.joins {
            let dtable = join.dimension_table().to_string();
            let path = model.best_access_path(cat, query, &dtable, config);
            let selectivity = table_selectivity(cat, query, &dtable);
            dims.push(DimAccess {
                table: dtable,
                fact_column: join.fact_column.column.clone(),
                cost: path.cost,
                index: path.index,
                output_rows: path.output_rows,
                selectivity,
            });
        }
        let dim_total_access: f64 = dims.iter().map(|d| d.cost).sum();
        let dim_sel_product: f64 = dims.iter().map(|d| d.selectivity).product();
        let final_rows = (fact_table.rows * fact_sel * dim_sel_product).max(1.0);
        let result_width = 32.0;
        let group_cost = if query.group_by.is_empty() {
            0.0
        } else {
            model.sort_cost(final_rows, result_width)
        };

        let mut alternatives: Vec<PlanChoice> = Vec::new();

        // Alternative 1: fact accessed by scan or a predicate-driven fact
        // index; every join is a hash join.
        {
            let fact_path = model.best_access_path(cat, query, &query.fact_table, config);
            let mut used: Vec<String> = fact_path.index.iter().cloned().collect();
            used.extend(dims.iter().filter_map(|d| d.index.clone()));
            let hash_cost: f64 = dims
                .iter()
                .map(|d| model.hash_build_cost(d.output_rows))
                .sum::<f64>()
                + model.hash_probe_cost(fact_path.output_rows) * dims.len().max(1) as f64;
            let cost = fact_path.cost + dim_total_access + hash_cost + group_cost;
            let description = match &fact_path.index {
                Some(ix) => format!("fact index scan ({ix}) + hash joins"),
                None => "fact seq scan + hash joins".to_string(),
            };
            alternatives.push(PlanChoice {
                cost,
                used_indexes: used,
                description,
            });
        }

        // Alternative 2: index-nested-loop join driven by one dimension
        // through a fact index whose leading key is that join's foreign key.
        for (d_pos, dim) in dims.iter().enumerate() {
            for fact_ix in config.indexes_on(&query.fact_table) {
                if fact_ix.leading_column() != Some(dim.fact_column.as_str()) {
                    continue;
                }
                // Rows of the fact table reached through the driving dimension.
                let reached = (fact_table.rows * dim.selectivity).max(1.0);
                // Extra sargable columns of the fact index filter further.
                let extra_sel =
                    selectivity_of_columns(cat, query, &query.fact_table, &fact_ix.key_columns);
                let fetched = (reached * extra_sel).max(1.0);
                let needed = query.referenced_columns(&query.fact_table);
                let covering = fact_ix.covers(&needed);

                let descents =
                    dim.output_rows * params.btree_descent_pages * params.random_page_cost;
                let leaf = fetched * params.cpu_index_tuple_cost
                    + fact_ix.size_pages(cat) * dim.selectivity * params.seq_page_cost;
                let heap = if covering {
                    0.0
                } else {
                    (fetched * params.random_page_cost)
                        .min(fact_table.pages() * params.seq_page_cost)
                };

                // Remaining dimensions joined by hash on the reduced stream.
                let others_hash: f64 = dims
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != d_pos)
                    .map(|(_, d)| model.hash_build_cost(d.output_rows))
                    .sum::<f64>()
                    + model.hash_probe_cost(fetched * fact_sel)
                        * dims.len().saturating_sub(1).max(1) as f64;

                let cost = dim_total_access + descents + leaf + heap + others_hash + group_cost;
                let mut used: Vec<String> = vec![fact_ix.name.clone()];
                used.extend(dims.iter().filter_map(|d| d.index.clone()));
                alternatives.push(PlanChoice {
                    cost,
                    used_indexes: used,
                    description: format!(
                        "index nested loop via {} driven by {}",
                        fact_ix.name, dim.table
                    ),
                });
            }
        }

        alternatives
            .into_iter()
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(PlanChoice::normalize)
            .unwrap_or(PlanChoice {
                cost: 0.0,
                used_indexes: Vec::new(),
                description: "empty".into(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Table};
    use crate::physical::CandidateIndex;
    use crate::query::{Aggregate, ColumnRef, Predicate};

    /// A small star schema: SALES fact, CUSTOMER and DATE_DIM dimensions.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "SALES",
            5_000_000.0,
            vec![
                Column::int_key("SALE_ID", 5_000_000.0),
                Column::int_key("CUST_ID", 500_000.0),
                Column::int_key("DATE_ID", 2_000.0),
                Column::new("AMOUNT", 8.0, 100_000.0),
            ],
        ))
        .unwrap();
        c.add_table(Table::new(
            "CUSTOMER",
            500_000.0,
            vec![
                Column::int_key("CUSTID", 500_000.0),
                Column::string("COUNTRY", 16.0, 200.0),
                Column::string("NAME", 32.0, 450_000.0),
            ],
        ))
        .unwrap();
        c.add_table(Table::new(
            "DATE_DIM",
            2_000.0,
            vec![
                Column::int_key("DATEID", 2_000.0),
                Column::int_key("YEAR", 6.0),
                Column::int_key("MONTH", 12.0),
            ],
        ))
        .unwrap();
        c
    }

    fn star_query() -> QuerySpec {
        QuerySpec::new("star", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .join(
                ColumnRef::new("SALES", "DATE_ID"),
                ColumnRef::new("DATE_DIM", "DATEID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .filter(Predicate::equality(ColumnRef::new("DATE_DIM", "YEAR")))
            .group(ColumnRef::new("CUSTOMER", "COUNTRY"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT")))
    }

    #[test]
    fn empty_config_costs_more_than_indexed_config() {
        let opt = Optimizer::new(catalog());
        let q = star_query();
        let empty = opt.optimize(&q, &PhysicalConfig::empty());
        assert!(empty.used_indexes.is_empty());

        let mut cfg = PhysicalConfig::empty();
        cfg.add(CandidateIndex::new("CUSTOMER", vec!["COUNTRY".into()]));
        cfg.add(CandidateIndex::new("SALES", vec!["CUST_ID".into()]));
        let indexed = opt.optimize(&q, &cfg);
        assert!(indexed.cost < empty.cost);
        assert!(!indexed.used_indexes.is_empty());
    }

    #[test]
    fn star_join_uses_multiple_indexes_together() {
        let opt = Optimizer::new(catalog());
        let q = star_query();
        let mut cfg = PhysicalConfig::empty();
        cfg.add(CandidateIndex::new("CUSTOMER", vec!["COUNTRY".into()]));
        cfg.add(CandidateIndex::new("DATE_DIM", vec!["YEAR".into()]));
        cfg.add(
            CandidateIndex::new("SALES", vec!["CUST_ID".into()])
                .with_includes(vec!["DATE_ID".into(), "AMOUNT".into()]),
        );
        let plan = opt.optimize(&q, &cfg);
        // The winning plan should combine at least two indexes — the paper's
        // "query interaction".
        assert!(
            plan.used_indexes.len() >= 2,
            "expected a multi-index plan, got {:?}",
            plan.used_indexes
        );
    }

    #[test]
    fn plan_cost_is_monotone_in_configuration() {
        // Adding indexes can only help (the optimizer can ignore them).
        let opt = Optimizer::new(catalog());
        let q = star_query();
        let mut cfg = PhysicalConfig::empty();
        let mut last = opt.optimize(&q, &cfg).cost;
        for ix in [
            CandidateIndex::new("CUSTOMER", vec!["COUNTRY".into()]),
            CandidateIndex::new("DATE_DIM", vec!["YEAR".into()]),
            CandidateIndex::new("SALES", vec!["CUST_ID".into()]),
        ] {
            cfg.add(ix);
            let cost = opt.optimize(&q, &cfg).cost;
            assert!(cost <= last + 1e-9, "cost increased: {cost} > {last}");
            last = cost;
        }
    }

    #[test]
    fn cost_seconds_uses_params_scale() {
        let opt = Optimizer::new(catalog());
        let q = star_query();
        let plan = opt.optimize(&q, &PhysicalConfig::empty());
        let secs = opt.cost_seconds(&q, &PhysicalConfig::empty());
        assert!((secs - plan.cost / opt.params().cost_to_seconds).abs() < 1e-9);
    }

    #[test]
    fn used_indexes_are_sorted_and_unique() {
        let opt = Optimizer::new(catalog());
        let q = star_query();
        let mut cfg = PhysicalConfig::empty();
        cfg.add(CandidateIndex::new("CUSTOMER", vec!["COUNTRY".into()]));
        cfg.add(CandidateIndex::new("DATE_DIM", vec!["YEAR".into()]));
        cfg.add(CandidateIndex::new("SALES", vec!["CUST_ID".into()]));
        let plan = opt.optimize(&q, &cfg);
        let mut sorted = plan.used_indexes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(plan.used_indexes, sorted);
    }

    #[test]
    fn query_without_joins_is_planned() {
        let opt = Optimizer::new(catalog());
        let q = QuerySpec::new("simple", "CUSTOMER")
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .aggregate(Aggregate::avg(ColumnRef::new("CUSTOMER", "CUSTID")));
        let empty_cost = opt.optimize(&q, &PhysicalConfig::empty()).cost;
        let mut cfg = PhysicalConfig::empty();
        cfg.add(CandidateIndex::new("CUSTOMER", vec!["COUNTRY".into()]));
        let plan = opt.optimize(&q, &cfg);
        assert!(plan.cost < empty_cost);
        assert_eq!(plan.used_indexes.len(), 1);
    }
}
