//! Selectivity estimation under the usual independence assumption.

use crate::catalog::Catalog;
use crate::query::{Predicate, PredicateKind, QuerySpec};

/// Selectivity of a single predicate, looked up against catalog statistics.
///
/// * Equality: `1 / NDV` of the column.
/// * Range: the fraction recorded on the predicate.
/// * IN-list of `k` values: `k / NDV`, capped at 1.
///
/// Unknown columns fall back to a conservative 10% selectivity so a partially
/// described workload still costs out sensibly.
pub fn predicate_selectivity(catalog: &Catalog, predicate: &Predicate) -> f64 {
    let ndv = catalog
        .table(&predicate.column.table)
        .and_then(|t| t.column(&predicate.column.column))
        .map(|c| c.distinct_values)
        .unwrap_or(10.0);
    let sel = match predicate.kind {
        PredicateKind::Equality => 1.0 / ndv,
        PredicateKind::Range => predicate.parameter,
        PredicateKind::InList => predicate.parameter / ndv,
    };
    sel.clamp(1e-9, 1.0)
}

/// Combined selectivity of all of a query's predicates on one table
/// (independence assumption: the product of individual selectivities).
pub fn table_selectivity(catalog: &Catalog, query: &QuerySpec, table: &str) -> f64 {
    query
        .predicates_on(table)
        .iter()
        .map(|p| predicate_selectivity(catalog, p))
        .product::<f64>()
        .clamp(1e-9, 1.0)
}

/// Combined selectivity of the subset of a table's predicates whose columns
/// appear in `columns` (used for the sargable prefix of an index).
pub fn selectivity_of_columns(
    catalog: &Catalog,
    query: &QuerySpec,
    table: &str,
    columns: &[String],
) -> f64 {
    query
        .predicates_on(table)
        .iter()
        .filter(|p| columns.contains(&p.column.column))
        .map(|p| predicate_selectivity(catalog, p))
        .product::<f64>()
        .clamp(1e-9, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Table};
    use crate::query::ColumnRef;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "PEOPLE",
            10_000.0,
            vec![
                Column::string("CITY", 16.0, 100.0),
                Column::new("SALARY", 8.0, 1_000.0),
                Column::new("AGE", 4.0, 80.0),
            ],
        ))
        .unwrap();
        c
    }

    #[test]
    fn equality_is_one_over_ndv() {
        let cat = catalog();
        let p = Predicate::equality(ColumnRef::new("PEOPLE", "CITY"));
        assert!((predicate_selectivity(&cat, &p) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn range_uses_recorded_fraction() {
        let cat = catalog();
        let p = Predicate::range(ColumnRef::new("PEOPLE", "AGE"), 0.25);
        assert_eq!(predicate_selectivity(&cat, &p), 0.25);
    }

    #[test]
    fn in_list_scales_with_k() {
        let cat = catalog();
        let p = Predicate::in_list(ColumnRef::new("PEOPLE", "CITY"), 5);
        assert!((predicate_selectivity(&cat, &p) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn unknown_column_falls_back() {
        let cat = catalog();
        let p = Predicate::equality(ColumnRef::new("PEOPLE", "NOPE"));
        assert!((predicate_selectivity(&cat, &p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn table_selectivity_multiplies_predicates() {
        let cat = catalog();
        let q = QuerySpec::new("q", "PEOPLE")
            .filter(Predicate::equality(ColumnRef::new("PEOPLE", "CITY")))
            .filter(Predicate::range(ColumnRef::new("PEOPLE", "AGE"), 0.5));
        assert!((table_selectivity(&cat, &q, "PEOPLE") - 0.005).abs() < 1e-12);
        // Other tables are unfiltered.
        assert_eq!(table_selectivity(&cat, &q, "OTHER"), 1.0);
    }

    #[test]
    fn column_restricted_selectivity() {
        let cat = catalog();
        let q = QuerySpec::new("q", "PEOPLE")
            .filter(Predicate::equality(ColumnRef::new("PEOPLE", "CITY")))
            .filter(Predicate::range(ColumnRef::new("PEOPLE", "AGE"), 0.5));
        let s = selectivity_of_columns(&cat, &q, "PEOPLE", &["CITY".to_string()]);
        assert!((s - 0.01).abs() < 1e-12);
        let s_none = selectivity_of_columns(&cat, &q, "PEOPLE", &["SALARY".to_string()]);
        assert_eq!(s_none, 1.0);
    }
}
