//! The cost model: parameters, selectivity estimation and operator costs.
//!
//! The model follows the shape of textbook / PostgreSQL-style costing:
//! sequential and random page I/O, per-tuple CPU, B-tree descent, sort and
//! hash costs. Absolute numbers are not meant to match any particular engine;
//! what matters for the reproduction is that the *relative* costs create the
//! same structure the paper relies on — covering indexes beat narrow ones,
//! multi-index star-join plans beat single-index plans, and wide indexes make
//! narrow ones cheap to build.

pub mod model;
pub mod params;
pub mod selectivity;

pub use model::CostModel;
pub use params::CostParams;
pub use selectivity::{predicate_selectivity, table_selectivity};
