//! Tunable constants of the cost model.

use serde::{Deserialize, Serialize};

/// Cost-model constants, in abstract "cost units" per page / tuple.
///
/// Defaults mirror the familiar PostgreSQL ratios (random I/O four times the
/// cost of sequential I/O, CPU two orders of magnitude below I/O).
/// [`CostParams::cost_to_seconds`] converts optimizer cost units to the
/// wall-clock seconds used by the ordering model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of reading one page sequentially.
    pub seq_page_cost: f64,
    /// Cost of reading one page at a random location.
    pub random_page_cost: f64,
    /// CPU cost of processing one heap tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of one operator / comparison evaluation.
    pub cpu_operator_cost: f64,
    /// Extra CPU cost per tuple inserted into a hash table.
    pub hash_build_cost: f64,
    /// Number of page reads charged for one B-tree descent (root→leaf).
    pub btree_descent_pages: f64,
    /// Cost units per second of wall-clock time: query runtimes and index
    /// build times handed to the ordering problem are `cost / cost_to_seconds`.
    pub cost_to_seconds: f64,
    /// Write amplification factor charged when materializing index pages
    /// during a build (writes are more expensive than reads).
    pub page_write_factor: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            hash_build_cost: 0.02,
            btree_descent_pages: 3.0,
            cost_to_seconds: 1000.0,
            page_write_factor: 2.0,
        }
    }
}

impl CostParams {
    /// Converts optimizer cost units into seconds.
    pub fn to_seconds(&self, cost: f64) -> f64 {
        cost / self.cost_to_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_postgres_ratios() {
        let p = CostParams::default();
        assert_eq!(p.random_page_cost / p.seq_page_cost, 4.0);
        assert!(p.cpu_tuple_cost < p.seq_page_cost);
        assert!(p.cpu_index_tuple_cost < p.cpu_tuple_cost);
    }

    #[test]
    fn seconds_conversion() {
        let p = CostParams::default();
        assert_eq!(p.to_seconds(2000.0), 2.0);
    }
}
