//! Operator-level cost formulas and per-table access-path selection.

use crate::catalog::{Catalog, Table};
use crate::cost::params::CostParams;
use crate::cost::selectivity::{selectivity_of_columns, table_selectivity};
use crate::physical::{CandidateIndex, PhysicalConfig};
use crate::query::QuerySpec;

/// The chosen access path for one table inside one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPath {
    /// Cost of producing the table's filtered rows.
    pub cost: f64,
    /// Name of the index used, or `None` for a sequential scan.
    pub index: Option<String>,
    /// Estimated number of rows the access path emits (after this table's
    /// predicates).
    pub output_rows: f64,
}

/// The cost model: turns catalog statistics and configurations into costs.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    params: CostParams,
}

impl CostModel {
    /// Creates a cost model with the given parameters.
    pub fn new(params: CostParams) -> Self {
        Self { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Cost of a full sequential scan of a table.
    pub fn seq_scan_cost(&self, table: &Table) -> f64 {
        table.pages() * self.params.seq_page_cost + table.rows * self.params.cpu_tuple_cost
    }

    /// Cost of sorting `rows` tuples of `width` bytes (`n log n` CPU plus a
    /// spill charge when the run exceeds memory-ish sizes — simplified to a
    /// linear page write term).
    pub fn sort_cost(&self, rows: f64, width_bytes: f64) -> f64 {
        if rows <= 1.0 {
            return 0.0;
        }
        let comparisons = rows * rows.log2().max(1.0);
        let pages = (rows * width_bytes / crate::catalog::PAGE_SIZE_BYTES).max(1.0);
        comparisons * self.params.cpu_operator_cost + pages * self.params.seq_page_cost
    }

    /// Cost of building a hash table over `rows` tuples.
    pub fn hash_build_cost(&self, rows: f64) -> f64 {
        rows * (self.params.cpu_tuple_cost + self.params.hash_build_cost)
    }

    /// Cost of probing a hash table with `rows` tuples.
    pub fn hash_probe_cost(&self, rows: f64) -> f64 {
        rows * self.params.cpu_operator_cost
    }

    /// Cost of accessing `table` through `index` for a query, given whether
    /// the index covers every column the query needs from this table.
    ///
    /// `sargable_selectivity` is the combined selectivity of the query
    /// predicates on the index's key columns (the fraction of the index that
    /// must be scanned); `residual_selectivity` is the combined selectivity of
    /// *all* predicates on the table (what survives into the output).
    pub fn index_access_cost(
        &self,
        catalog: &Catalog,
        table: &Table,
        index: &CandidateIndex,
        sargable_selectivity: f64,
        residual_selectivity: f64,
        covering: bool,
    ) -> f64 {
        let p = &self.params;
        let matched = table.rows * sargable_selectivity;
        let descent = p.btree_descent_pages * p.random_page_cost;
        let leaf_pages = index.size_pages(catalog) * sargable_selectivity;
        let index_io = descent + leaf_pages * p.seq_page_cost;
        let index_cpu = matched * p.cpu_index_tuple_cost;
        let heap = if covering {
            0.0
        } else {
            // Random fetches for matched rows, capped by a full scan.
            (matched * p.random_page_cost).min(table.pages() * p.seq_page_cost)
        };
        let residual_cpu = matched * p.cpu_operator_cost;
        let _ = residual_selectivity;
        index_io + index_cpu + heap + residual_cpu
    }

    /// Returns `true` when `index` is usable as an access path for `query` on
    /// its table: its leading key column carries a predicate of the query, or
    /// is a join column of the query.
    pub fn index_matches_query(&self, query: &QuerySpec, index: &CandidateIndex) -> bool {
        let leading = match index.leading_column() {
            Some(c) => c,
            None => return false,
        };
        let table = &index.table;
        let filtered = query
            .predicates_on(table)
            .iter()
            .any(|p| p.column.column == leading);
        let joined = query.joins.iter().any(|j| {
            (j.fact_column.table == *table && j.fact_column.column == leading)
                || (j.dimension_column.table == *table && j.dimension_column.column == leading)
        });
        filtered || joined
    }

    /// Chooses the cheapest way to produce the filtered rows of one table for
    /// a query under `config`: a sequential scan or any *usable* index.
    ///
    /// An index is usable when its leading key column carries one of the
    /// query's predicates on that table. Join-driven index lookups on the
    /// fact table are handled separately by the optimizer because their cost
    /// depends on the joined dimension.
    pub fn best_access_path(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        table_name: &str,
        config: &PhysicalConfig,
    ) -> AccessPath {
        let table = match catalog.table(table_name) {
            Some(t) => t,
            None => {
                return AccessPath {
                    cost: 0.0,
                    index: None,
                    output_rows: 0.0,
                }
            }
        };
        let residual = table_selectivity(catalog, query, table_name);
        let output_rows = (table.rows * residual).max(1.0);
        let needed = query.referenced_columns(table_name);

        let mut best = AccessPath {
            cost: self.seq_scan_cost(table),
            index: None,
            output_rows,
        };

        for ix in config.indexes_on(table_name) {
            let leading_has_predicate = ix
                .leading_column()
                .map(|lead| {
                    query
                        .predicates_on(table_name)
                        .iter()
                        .any(|p| p.column.column == lead)
                })
                .unwrap_or(false);
            let covering = ix.covers(&needed);
            // A covering index with no sargable predicate can still replace a
            // heap scan by an index-only scan (narrower pages).
            if !leading_has_predicate && !covering {
                continue;
            }
            let sargable = if leading_has_predicate {
                selectivity_of_columns(catalog, query, table_name, &ix.key_columns)
            } else {
                1.0
            };
            let cost = self.index_access_cost(catalog, table, ix, sargable, residual, covering);
            if cost < best.cost {
                best = AccessPath {
                    cost,
                    index: Some(ix.name.clone()),
                    output_rows,
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Table};
    use crate::query::{ColumnRef, Predicate};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "PEOPLE",
            1_000_000.0,
            vec![
                Column::int_key("EMPID", 1_000_000.0),
                Column::string("CITY", 16.0, 1_000.0),
                Column::new("SALARY", 8.0, 10_000.0),
                Column::int_key("REPORTTO", 100_000.0),
            ],
        ))
        .unwrap();
        c
    }

    fn salary_query() -> QuerySpec {
        QuerySpec::new("q", "PEOPLE")
            .filter(Predicate::equality(ColumnRef::new("PEOPLE", "CITY")))
            .aggregate(crate::query::Aggregate::avg(ColumnRef::new(
                "PEOPLE", "SALARY",
            )))
    }

    #[test]
    fn seq_scan_scales_with_pages_and_rows() {
        let cat = catalog();
        let model = CostModel::default();
        let t = cat.table("PEOPLE").unwrap();
        let cost = model.seq_scan_cost(t);
        assert!(cost > t.pages());
        assert!(cost > t.rows * model.params().cpu_tuple_cost);
    }

    #[test]
    fn selective_index_beats_seq_scan() {
        let cat = catalog();
        let model = CostModel::default();
        let q = salary_query();
        let mut config = PhysicalConfig::empty();
        config.add(CandidateIndex::new("PEOPLE", vec!["CITY".into()]));
        let path = model.best_access_path(&cat, &q, "PEOPLE", &config);
        assert!(path.index.is_some());
        let seq = model.seq_scan_cost(cat.table("PEOPLE").unwrap());
        assert!(path.cost < seq);
    }

    #[test]
    fn covering_index_beats_non_covering() {
        let cat = catalog();
        let model = CostModel::default();
        let q = salary_query();
        let narrow = {
            let mut c = PhysicalConfig::empty();
            c.add(CandidateIndex::new("PEOPLE", vec!["CITY".into()]));
            model.best_access_path(&cat, &q, "PEOPLE", &c).cost
        };
        let covering = {
            let mut c = PhysicalConfig::empty();
            c.add(
                CandidateIndex::new("PEOPLE", vec!["CITY".into()])
                    .with_includes(vec!["SALARY".into()]),
            );
            model.best_access_path(&cat, &q, "PEOPLE", &c).cost
        };
        assert!(covering < narrow, "covering {covering} vs narrow {narrow}");
    }

    #[test]
    fn irrelevant_index_is_ignored() {
        let cat = catalog();
        let model = CostModel::default();
        let q = salary_query();
        let mut config = PhysicalConfig::empty();
        config.add(CandidateIndex::new("PEOPLE", vec!["REPORTTO".into()]));
        let path = model.best_access_path(&cat, &q, "PEOPLE", &config);
        assert!(path.index.is_none());
    }

    #[test]
    fn index_matches_query_checks_leading_column() {
        let model = CostModel::default();
        let q = salary_query();
        let city = CandidateIndex::new("PEOPLE", vec!["CITY".into(), "SALARY".into()]);
        let salary_first = CandidateIndex::new("PEOPLE", vec!["SALARY".into(), "CITY".into()]);
        assert!(model.index_matches_query(&q, &city));
        assert!(!model.index_matches_query(&q, &salary_first));
    }

    #[test]
    fn sort_cost_grows_superlinearly() {
        let model = CostModel::default();
        let small = model.sort_cost(1_000.0, 16.0);
        let big = model.sort_cost(100_000.0, 16.0);
        assert!(big > 100.0 * small * 0.9);
        assert_eq!(model.sort_cost(1.0, 16.0), 0.0);
    }

    #[test]
    fn unknown_table_access_is_free_and_empty() {
        let cat = catalog();
        let model = CostModel::default();
        let q = salary_query();
        let path = model.best_access_path(&cat, &q, "MISSING", &PhysicalConfig::empty());
        assert_eq!(path.cost, 0.0);
        assert_eq!(path.output_rows, 0.0);
    }
}
