//! Convenience re-exports of the most commonly used what-if types.

pub use crate::advisor::{Advisor, AdvisorConfig, ScoredCandidate};
pub use crate::build_cost::BuildCostModel;
pub use crate::catalog::{Catalog, Column, Table};
pub use crate::cost::{CostModel, CostParams};
pub use crate::error::{Result as WhatIfResult, WhatIfError};
pub use crate::extract::{extract_instance, ExtractionConfig};
pub use crate::optimizer::{Optimizer, PlanChoice};
pub use crate::physical::{CandidateIndex, PhysicalConfig};
pub use crate::query::{
    Aggregate, ColumnRef, JoinEdge, Predicate, PredicateKind, QuerySpec, Workload,
};
pub use crate::whatif::{AtomicConfiguration, WhatIfOptimizer, WhatIfOptions};
