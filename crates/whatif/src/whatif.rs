//! The what-if driver: hypothetical indexes and atomic configurations.
//!
//! This is the crate's stand-in for the commercial DBMS's what-if interface
//! ([Chaudhuri & Narasayya, SIGMOD'98]): candidate indexes are evaluated
//! *hypothetically* — the optimizer is asked what plan it would choose if
//! they existed — and the answer is the *atomic configuration*: the subset of
//! candidates the winning plan uses, plus its estimated cost.
//!
//! Following Section 8 of the paper, competing plans for a query are obtained
//! by iteratively removing the hypothetical indexes of the best atomic
//! configuration and re-optimizing, yielding progressively weaker plans until
//! no candidate index helps anymore.

use crate::optimizer::Optimizer;
use crate::physical::{CandidateIndex, PhysicalConfig};
use crate::query::QuerySpec;

/// One atomic configuration for one query: the candidate indexes a plan uses
/// and the speed-up it yields over the unindexed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicConfiguration {
    /// Positions (into the candidate slice) of the indexes the plan uses.
    pub candidate_positions: Vec<usize>,
    /// Plan cost in seconds.
    pub cost_seconds: f64,
    /// Seconds saved compared to the query's unindexed baseline.
    pub speedup_seconds: f64,
}

/// Options controlling atomic-configuration extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIfOptions {
    /// Maximum number of remove-and-reoptimize iterations per query.
    pub max_iterations: usize,
    /// Also evaluate each index of a multi-index configuration on its own,
    /// producing the single-index competing plans the paper's *competing
    /// interactions* need.
    pub probe_singletons: bool,
    /// Minimum speed-up (as a fraction of the query's baseline runtime) for a
    /// configuration to be recorded.
    pub min_speedup_ratio: f64,
}

impl Default for WhatIfOptions {
    fn default() -> Self {
        Self {
            max_iterations: 8,
            probe_singletons: true,
            min_speedup_ratio: 0.001,
        }
    }
}

/// Hypothetical-index evaluation driver over an [`Optimizer`].
#[derive(Debug, Clone)]
pub struct WhatIfOptimizer {
    optimizer: Optimizer,
}

impl WhatIfOptimizer {
    /// Creates a what-if driver.
    pub fn new(optimizer: Optimizer) -> Self {
        Self { optimizer }
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// Baseline cost of a query (no candidate index exists), in seconds.
    pub fn baseline_seconds(&self, query: &QuerySpec) -> f64 {
        self.optimizer.cost_seconds(query, &PhysicalConfig::empty())
    }

    /// Cost of a query in seconds when exactly the candidates at
    /// `positions` are hypothetically materialized.
    pub fn cost_with(
        &self,
        query: &QuerySpec,
        candidates: &[CandidateIndex],
        positions: &[usize],
    ) -> f64 {
        let config = PhysicalConfig::with_indexes(
            positions.iter().map(|&p| candidates[p].clone()).collect(),
        );
        self.optimizer.cost_seconds(query, &config)
    }

    /// Extracts the competing atomic configurations of one query.
    pub fn atomic_configurations(
        &self,
        query: &QuerySpec,
        candidates: &[CandidateIndex],
        options: WhatIfOptions,
    ) -> Vec<AtomicConfiguration> {
        let baseline = self.baseline_seconds(query);
        let min_speedup = baseline * options.min_speedup_ratio;
        let name_to_pos: std::collections::HashMap<&str, usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();

        let mut results: Vec<AtomicConfiguration> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
        let mut config = PhysicalConfig::with_indexes(candidates.to_vec());

        let record = |positions: Vec<usize>,
                      cost: f64,
                      results: &mut Vec<AtomicConfiguration>,
                      seen: &mut std::collections::HashSet<Vec<usize>>| {
            let speedup = baseline - cost;
            if positions.is_empty() || speedup < min_speedup {
                return;
            }
            let mut key = positions.clone();
            key.sort_unstable();
            if seen.insert(key.clone()) {
                results.push(AtomicConfiguration {
                    candidate_positions: key,
                    cost_seconds: cost,
                    speedup_seconds: speedup,
                });
            }
        };

        for _ in 0..options.max_iterations {
            if config.is_empty() {
                break;
            }
            let plan = self.optimizer.optimize(query, &config);
            let cost = self.optimizer.params().to_seconds(plan.cost);
            if plan.used_indexes.is_empty() || baseline - cost < min_speedup {
                break;
            }
            let positions: Vec<usize> = plan
                .used_indexes
                .iter()
                .filter_map(|n| name_to_pos.get(n.as_str()).copied())
                .collect();
            record(positions.clone(), cost, &mut results, &mut seen);

            if options.probe_singletons && positions.len() > 1 {
                for &p in &positions {
                    let cost_single = self.cost_with(query, candidates, &[p]);
                    record(vec![p], cost_single, &mut results, &mut seen);
                }
            }

            // Remove the used indexes and look for the next-best plan.
            for name in &plan.used_indexes {
                config.remove(name);
            }
        }

        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Column, Table};
    use crate::query::{Aggregate, ColumnRef, Predicate, QuerySpec};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "SALES",
            5_000_000.0,
            vec![
                Column::int_key("CUST_ID", 500_000.0),
                Column::int_key("DATE_ID", 2_000.0),
                Column::new("AMOUNT", 8.0, 100_000.0),
            ],
        ))
        .unwrap();
        c.add_table(Table::new(
            "CUSTOMER",
            500_000.0,
            vec![
                Column::int_key("CUSTID", 500_000.0),
                Column::string("COUNTRY", 16.0, 200.0),
            ],
        ))
        .unwrap();
        c
    }

    fn query() -> QuerySpec {
        QuerySpec::new("q", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .group(ColumnRef::new("CUSTOMER", "COUNTRY"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT")))
    }

    fn candidates() -> Vec<CandidateIndex> {
        vec![
            CandidateIndex::new("CUSTOMER", vec!["COUNTRY".into()]),
            CandidateIndex::new("SALES", vec!["CUST_ID".into()])
                .with_includes(vec!["AMOUNT".into()]),
            CandidateIndex::new("SALES", vec!["DATE_ID".into()]),
        ]
    }

    #[test]
    fn baseline_is_positive() {
        let wi = WhatIfOptimizer::new(Optimizer::new(catalog()));
        assert!(wi.baseline_seconds(&query()) > 0.0);
    }

    #[test]
    fn atomic_configurations_are_deduplicated_and_beneficial() {
        let wi = WhatIfOptimizer::new(Optimizer::new(catalog()));
        let cands = candidates();
        let configs = wi.atomic_configurations(&query(), &cands, WhatIfOptions::default());
        assert!(!configs.is_empty());
        let mut seen = std::collections::HashSet::new();
        for c in &configs {
            assert!(c.speedup_seconds > 0.0);
            assert!(seen.insert(c.candidate_positions.clone()));
            // Positions refer to real candidates.
            for &p in &c.candidate_positions {
                assert!(p < cands.len());
            }
        }
    }

    #[test]
    fn competing_plans_include_multi_and_single_index_plans() {
        let wi = WhatIfOptimizer::new(Optimizer::new(catalog()));
        let cands = candidates();
        let configs = wi.atomic_configurations(&query(), &cands, WhatIfOptions::default());
        let has_multi = configs.iter().any(|c| c.candidate_positions.len() >= 2);
        let has_single = configs.iter().any(|c| c.candidate_positions.len() == 1);
        assert!(has_multi || has_single, "no plans extracted at all");
        // With singleton probing on a star query we expect both kinds.
        if has_multi {
            assert!(has_single);
        }
    }

    #[test]
    fn irrelevant_candidate_never_appears() {
        let wi = WhatIfOptimizer::new(Optimizer::new(catalog()));
        let cands = candidates();
        let configs = wi.atomic_configurations(&query(), &cands, WhatIfOptions::default());
        // DATE_ID index (position 2) is useless for this query.
        assert!(configs.iter().all(|c| !c.candidate_positions.contains(&2)));
    }

    #[test]
    fn zero_iterations_returns_nothing() {
        let wi = WhatIfOptimizer::new(Optimizer::new(catalog()));
        let cands = candidates();
        let configs = wi.atomic_configurations(
            &query(),
            &cands,
            WhatIfOptions {
                max_iterations: 0,
                ..WhatIfOptions::default()
            },
        );
        assert!(configs.is_empty());
    }
}
