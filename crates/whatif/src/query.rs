//! Analytic query descriptions.
//!
//! Queries are modelled at the level a cost-based optimizer cares about:
//! which fact table is scanned, which dimensions are joined on which foreign
//! keys, which filter predicates apply (and how selective they are), and which
//! columns feed group-by / aggregation. That is enough to decide access paths,
//! join strategies and thus which *indexes* a plan would use — SQL text is
//! kept only for documentation.

use serde::{Deserialize, Serialize};

/// A reference to `table.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates a column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Kind of filter predicate; only the selectivity model differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateKind {
    /// Equality against a constant (`col = ?`): selectivity `1 / NDV`.
    Equality,
    /// Range (`col BETWEEN ? AND ?`): selectivity given explicitly.
    Range,
    /// IN-list of `k` constants: selectivity `k / NDV`.
    InList,
}

/// A filter predicate on one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// The filtered column.
    pub column: ColumnRef,
    /// Predicate kind.
    pub kind: PredicateKind,
    /// For [`PredicateKind::Range`], the fraction of rows selected; for
    /// [`PredicateKind::InList`], the number of constants; ignored for
    /// equality.
    pub parameter: f64,
}

impl Predicate {
    /// Equality predicate `column = ?`.
    pub fn equality(column: ColumnRef) -> Self {
        Self {
            column,
            kind: PredicateKind::Equality,
            parameter: 0.0,
        }
    }

    /// Range predicate selecting `fraction` of the rows.
    pub fn range(column: ColumnRef, fraction: f64) -> Self {
        Self {
            column,
            kind: PredicateKind::Range,
            parameter: fraction.clamp(0.0, 1.0),
        }
    }

    /// IN-list predicate with `k` constants.
    pub fn in_list(column: ColumnRef, k: usize) -> Self {
        Self {
            column,
            kind: PredicateKind::InList,
            parameter: k as f64,
        }
    }
}

/// A join between a fact-side foreign key and a dimension primary key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Foreign-key column on the fact (or bridging) table.
    pub fact_column: ColumnRef,
    /// Primary-key column on the dimension table.
    pub dimension_column: ColumnRef,
}

impl JoinEdge {
    /// Creates a join edge.
    pub fn new(fact_column: ColumnRef, dimension_column: ColumnRef) -> Self {
        Self {
            fact_column,
            dimension_column,
        }
    }

    /// The dimension table name.
    pub fn dimension_table(&self) -> &str {
        &self.dimension_column.table
    }
}

/// An aggregate expression (only the input column matters for costing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Aggregated column.
    pub column: ColumnRef,
    /// Function name (informational): SUM, AVG, COUNT, ...
    pub function: String,
}

impl Aggregate {
    /// `SUM(column)`.
    pub fn sum(column: ColumnRef) -> Self {
        Self {
            column,
            function: "SUM".into(),
        }
    }

    /// `AVG(column)`.
    pub fn avg(column: ColumnRef) -> Self {
        Self {
            column,
            function: "AVG".into(),
        }
    }
}

/// One analytic query of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Query name, e.g. `"Q7"`.
    pub name: String,
    /// Optional SQL-ish text, informational only.
    pub text: String,
    /// Relative frequency / weight of the query in the workload.
    pub weight: f64,
    /// The driving (fact) table.
    pub fact_table: String,
    /// Joins from the fact table to dimensions.
    pub joins: Vec<JoinEdge>,
    /// Filter predicates (on the fact table or on dimensions).
    pub predicates: Vec<Predicate>,
    /// Group-by columns.
    pub group_by: Vec<ColumnRef>,
    /// Aggregates.
    pub aggregates: Vec<Aggregate>,
}

impl QuerySpec {
    /// Creates an empty query over a fact table.
    pub fn new(name: impl Into<String>, fact_table: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            text: String::new(),
            weight: 1.0,
            fact_table: fact_table.into(),
            joins: Vec::new(),
            predicates: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
        }
    }

    /// Adds a dimension join (builder style).
    pub fn join(mut self, fact_column: ColumnRef, dimension_column: ColumnRef) -> Self {
        self.joins
            .push(JoinEdge::new(fact_column, dimension_column));
        self
    }

    /// Adds a predicate (builder style).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Adds a group-by column (builder style).
    pub fn group(mut self, column: ColumnRef) -> Self {
        self.group_by.push(column);
        self
    }

    /// Adds an aggregate (builder style).
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.aggregates.push(agg);
        self
    }

    /// Sets the weight (builder style).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// All tables the query touches: the fact table plus joined dimensions.
    pub fn tables(&self) -> Vec<&str> {
        let mut tables = vec![self.fact_table.as_str()];
        for j in &self.joins {
            let d = j.dimension_table();
            if !tables.contains(&d) {
                tables.push(d);
            }
        }
        tables
    }

    /// Predicates applying to one table.
    pub fn predicates_on(&self, table: &str) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.column.table == table)
            .collect()
    }

    /// Columns of `table` referenced anywhere in the query (predicates,
    /// joins, group-by, aggregates) — the columns a covering index on that
    /// table would need.
    pub fn referenced_columns(&self, table: &str) -> Vec<String> {
        let mut cols: Vec<String> = Vec::new();
        let mut push = |c: &ColumnRef| {
            if c.table == table && !cols.contains(&c.column) {
                cols.push(c.column.clone());
            }
        };
        for p in &self.predicates {
            push(&p.column);
        }
        for j in &self.joins {
            push(&j.fact_column);
            push(&j.dimension_column);
        }
        for g in &self.group_by {
            push(g);
        }
        for a in &self.aggregates {
            push(&a.column);
        }
        cols
    }
}

/// A workload: a catalog plus a set of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name (e.g. `"tpch"`).
    pub name: String,
    /// The schema and statistics.
    pub catalog: crate::catalog::Catalog,
    /// The queries.
    pub queries: Vec<QuerySpec>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(
        name: impl Into<String>,
        catalog: crate::catalog::Catalog,
        queries: Vec<QuerySpec>,
    ) -> Self {
        Self {
            name: name.into(),
            catalog,
            queries,
        }
    }

    /// Number of queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> QuerySpec {
        QuerySpec::new("Q1", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .filter(Predicate::range(ColumnRef::new("SALES", "DATE"), 0.1))
            .group(ColumnRef::new("CUSTOMER", "COUNTRY"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT")))
    }

    #[test]
    fn tables_lists_fact_then_dimensions_once() {
        let q = sample_query().join(
            ColumnRef::new("SALES", "CUST_ID"),
            ColumnRef::new("CUSTOMER", "CUSTID"),
        );
        assert_eq!(q.tables(), vec!["SALES", "CUSTOMER"]);
    }

    #[test]
    fn predicates_on_filters_by_table() {
        let q = sample_query();
        assert_eq!(q.predicates_on("CUSTOMER").len(), 1);
        assert_eq!(q.predicates_on("SALES").len(), 1);
        assert_eq!(q.predicates_on("ITEM").len(), 0);
    }

    #[test]
    fn referenced_columns_cover_all_clauses() {
        let q = sample_query();
        let sales_cols = q.referenced_columns("SALES");
        assert!(sales_cols.contains(&"CUST_ID".to_string()));
        assert!(sales_cols.contains(&"DATE".to_string()));
        assert!(sales_cols.contains(&"AMOUNT".to_string()));
        let cust_cols = q.referenced_columns("CUSTOMER");
        assert!(cust_cols.contains(&"COUNTRY".to_string()));
        assert!(cust_cols.contains(&"CUSTID".to_string()));
    }

    #[test]
    fn predicate_constructors_clamp_and_record() {
        let p = Predicate::range(ColumnRef::new("T", "C"), 2.0);
        assert_eq!(p.parameter, 1.0);
        let p = Predicate::in_list(ColumnRef::new("T", "C"), 3);
        assert_eq!(p.kind, PredicateKind::InList);
        assert_eq!(p.parameter, 3.0);
    }

    #[test]
    fn display_of_column_ref() {
        assert_eq!(ColumnRef::new("A", "B").to_string(), "A.B");
    }

    #[test]
    fn workload_counts_queries() {
        let w = Workload::new("w", crate::catalog::Catalog::new(), vec![sample_query()]);
        assert_eq!(w.num_queries(), 1);
    }
}
