//! A small index advisor — the stand-in for the commercial design tool.
//!
//! The paper's pipeline starts from "a set of suggested indexes" produced by
//! the DBMS's physical design tool (148 indexes for TPC-DS). This advisor
//! reproduces the *shape* of such a design: per-query candidates are
//! syntactically enumerated (single-column, multi-column and covering
//! indexes over predicate, join and group-by columns), deduplicated across the
//! workload, scored with the what-if optimizer, and the best
//! [`AdvisorConfig::max_indexes`] are kept.

use crate::optimizer::Optimizer;
use crate::physical::{CandidateIndex, PhysicalConfig};
use crate::query::{QuerySpec, Workload};
use crate::whatif::WhatIfOptimizer;

/// Configuration of the advisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvisorConfig {
    /// Maximum number of indexes in the suggested design.
    pub max_indexes: usize,
    /// Generate covering indexes (keys + INCLUDE columns) in addition to
    /// key-only indexes.
    pub include_covering: bool,
    /// Generate multi-column indexes combining a table's predicate columns.
    pub include_multi_column: bool,
    /// Minimum benefit (seconds summed over the workload) for a candidate to
    /// be considered at all.
    pub min_total_benefit: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            max_indexes: 64,
            include_covering: true,
            include_multi_column: true,
            min_total_benefit: 1e-6,
        }
    }
}

impl AdvisorConfig {
    /// Advisor configuration bounded to `max_indexes` suggestions.
    pub fn with_budget(max_indexes: usize) -> Self {
        Self {
            max_indexes,
            ..Self::default()
        }
    }
}

/// A suggested candidate with its estimated workload benefit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    /// The candidate index.
    pub index: CandidateIndex,
    /// Total benefit (seconds) summed over every query, evaluated with the
    /// candidate as the only hypothetical index.
    pub total_benefit: f64,
}

/// Max-heap entry for the lazy-greedy selection in [`Advisor::suggest`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    benefit: f64,
    generation: usize,
    candidate: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.benefit
            .partial_cmp(&other.benefit)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.candidate.cmp(&other.candidate).reverse())
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The index advisor.
#[derive(Debug, Clone, Default)]
pub struct Advisor {
    config: AdvisorConfig,
}

impl Advisor {
    /// Creates an advisor.
    pub fn new(config: AdvisorConfig) -> Self {
        Self { config }
    }

    /// Enumerates syntactic candidates for one query.
    ///
    /// For each table the query touches:
    /// * a single-column index per predicate column;
    /// * a single-column index per join column (fact foreign keys and
    ///   dimension keys);
    /// * a multi-column index over all predicate columns of the table
    ///   (most selective first — approximated by declaration order);
    /// * a covering variant adding the table's other referenced columns as
    ///   INCLUDE columns;
    /// * a fact-side index keyed on a join foreign key covering the fact
    ///   columns the query reads (the classic star-join support index).
    pub fn candidates_for_query(&self, query: &QuerySpec) -> Vec<CandidateIndex> {
        let mut out: Vec<CandidateIndex> = Vec::new();
        let mut push = |ix: CandidateIndex| {
            if !out.contains(&ix) {
                out.push(ix);
            }
        };

        for table in query.tables() {
            let referenced = query.referenced_columns(table);
            let pred_cols: Vec<String> = query
                .predicates_on(table)
                .iter()
                .map(|p| p.column.column.clone())
                .collect();

            for col in &pred_cols {
                push(CandidateIndex::new(table, vec![col.clone()]));
            }

            if self.config.include_multi_column && pred_cols.len() >= 2 {
                let mut keys = pred_cols.clone();
                keys.dedup();
                push(CandidateIndex::new(table, keys.clone()));
                if self.config.include_covering {
                    let includes: Vec<String> = referenced
                        .iter()
                        .filter(|c| !keys.contains(c))
                        .cloned()
                        .collect();
                    if !includes.is_empty() {
                        push(CandidateIndex::new(table, keys).with_includes(includes));
                    }
                }
            }

            if self.config.include_covering && pred_cols.len() == 1 {
                let keys = pred_cols.clone();
                let includes: Vec<String> = referenced
                    .iter()
                    .filter(|c| !keys.contains(c))
                    .cloned()
                    .collect();
                if !includes.is_empty() {
                    push(CandidateIndex::new(table, keys).with_includes(includes));
                }
            }
        }

        // Join-support indexes.
        for join in &query.joins {
            // Dimension key index.
            push(CandidateIndex::new(
                join.dimension_column.table.clone(),
                vec![join.dimension_column.column.clone()],
            ));
            // Fact foreign-key index, plain and covering.
            let fact_table = &join.fact_column.table;
            push(CandidateIndex::new(
                fact_table.clone(),
                vec![join.fact_column.column.clone()],
            ));
            if self.config.include_covering {
                let referenced = query.referenced_columns(fact_table);
                let includes: Vec<String> = referenced
                    .iter()
                    .filter(|c| **c != join.fact_column.column)
                    .cloned()
                    .collect();
                if !includes.is_empty() {
                    push(
                        CandidateIndex::new(
                            fact_table.clone(),
                            vec![join.fact_column.column.clone()],
                        )
                        .with_includes(includes),
                    );
                }
            }
        }

        out
    }

    /// Enumerates and deduplicates candidates across the whole workload.
    pub fn enumerate(&self, workload: &Workload) -> Vec<CandidateIndex> {
        let mut out: Vec<CandidateIndex> = Vec::new();
        for q in &workload.queries {
            for c in self.candidates_for_query(q) {
                if c.validate(&workload.catalog).is_ok() && !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Selects a design of at most `max_indexes` indexes with a lazy-greedy
    /// (CELF-style) marginal-benefit search, the strategy commercial design
    /// tools use: at each step the candidate whose addition reduces the
    /// workload's total estimated runtime the most — *given everything already
    /// selected* — is added. Marginal selection is what gives the design its
    /// diversity (dimension indexes are picked once the dominating fact
    /// indexes are in, which is what later produces multi-index plans).
    ///
    /// Returns the selected candidates in selection order, each annotated with
    /// the marginal benefit it contributed when selected.
    pub fn suggest(&self, workload: &Workload) -> Vec<ScoredCandidate> {
        let optimizer = Optimizer::new(workload.catalog.clone());
        let whatif = WhatIfOptimizer::new(optimizer);
        let candidates = self.enumerate(workload);
        if candidates.is_empty() || workload.queries.is_empty() {
            return Vec::new();
        }

        // Queries that could possibly be affected by each candidate (same
        // table is touched) — restricting the what-if calls to these makes the
        // greedy loop tractable.
        let relevant: Vec<Vec<usize>> = candidates
            .iter()
            .map(|c| {
                workload
                    .queries
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.tables().contains(&c.table.as_str()))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        // Current best cost of every query under the selected design.
        let mut current_cost: Vec<f64> = workload
            .queries
            .iter()
            .map(|q| whatif.baseline_seconds(q))
            .collect();

        // Marginal benefit of one candidate given the current design.
        let marginal = |cand: usize,
                        selected: &PhysicalConfig,
                        current_cost: &[f64]|
         -> (f64, Vec<(usize, f64)>) {
            let mut trial = selected.clone();
            trial.add(candidates[cand].clone());
            let mut total = 0.0;
            let mut new_costs = Vec::new();
            for &qi in &relevant[cand] {
                let q = &workload.queries[qi];
                let cost = whatif.optimizer().cost_seconds(q, &trial);
                let delta = (current_cost[qi] - cost).max(0.0) * q.weight;
                if delta > 0.0 {
                    total += delta;
                    new_costs.push((qi, cost));
                }
            }
            (total, new_costs)
        };

        // Lazy-greedy priority queue: (benefit upper bound, generation it was
        // computed at, candidate position).
        let mut selected_config = PhysicalConfig::empty();
        let mut result: Vec<ScoredCandidate> = Vec::new();
        let mut heap: std::collections::BinaryHeap<HeapEntry> = (0..candidates.len())
            .map(|c| {
                let (benefit, _) = marginal(c, &selected_config, &current_cost);
                HeapEntry {
                    benefit,
                    generation: 0,
                    candidate: c,
                }
            })
            .collect();

        let mut generation = 0usize;
        while result.len() < self.config.max_indexes {
            let top = match heap.pop() {
                Some(t) => t,
                None => break,
            };
            if top.benefit < self.config.min_total_benefit {
                break;
            }
            if top.generation == generation {
                // Benefit is up to date: accept.
                let (benefit, new_costs) = marginal(top.candidate, &selected_config, &current_cost);
                // Recompute once more for exactness (the stored value was
                // computed at this generation, so it is already exact; this
                // keeps the invariant obvious and cheap).
                for (qi, cost) in new_costs {
                    current_cost[qi] = cost;
                }
                selected_config.add(candidates[top.candidate].clone());
                result.push(ScoredCandidate {
                    index: candidates[top.candidate].clone(),
                    total_benefit: benefit,
                });
                generation += 1;
            } else {
                // Stale: recompute against the current design and reinsert.
                let (benefit, _) = marginal(top.candidate, &selected_config, &current_cost);
                if benefit >= self.config.min_total_benefit {
                    heap.push(HeapEntry {
                        benefit,
                        generation,
                        candidate: top.candidate,
                    });
                }
            }
        }

        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Column, Table};
    use crate::query::{Aggregate, ColumnRef, Predicate};

    fn workload() -> Workload {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "SALES",
            2_000_000.0,
            vec![
                Column::int_key("CUST_ID", 200_000.0),
                Column::int_key("DATE_ID", 2_000.0),
                Column::new("AMOUNT", 8.0, 50_000.0),
            ],
        ))
        .unwrap();
        c.add_table(Table::new(
            "CUSTOMER",
            200_000.0,
            vec![
                Column::int_key("CUSTID", 200_000.0),
                Column::string("COUNTRY", 16.0, 100.0),
                Column::string("SEGMENT", 16.0, 5.0),
            ],
        ))
        .unwrap();
        let q1 = QuerySpec::new("q1", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .group(ColumnRef::new("CUSTOMER", "COUNTRY"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT")));
        let q2 = QuerySpec::new("q2", "CUSTOMER")
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "SEGMENT")))
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .aggregate(Aggregate::avg(ColumnRef::new("CUSTOMER", "CUSTID")));
        Workload::new("test", c, vec![q1, q2])
    }

    #[test]
    fn candidates_cover_predicates_joins_and_covering_variants() {
        let advisor = Advisor::default();
        let w = workload();
        let cands = advisor.candidates_for_query(&w.queries[0]);
        let names: Vec<&str> = cands.iter().map(|c| c.name.as_str()).collect();
        // Predicate column on the dimension.
        assert!(names.iter().any(|n| n.contains("customer_country")));
        // Fact foreign key.
        assert!(names.iter().any(|n| n.contains("sales_cust_id")));
        // A covering variant exists somewhere.
        assert!(names.iter().any(|n| n.contains("incl")));
    }

    #[test]
    fn multi_column_candidate_for_multi_predicate_query() {
        let advisor = Advisor::default();
        let w = workload();
        let cands = advisor.candidates_for_query(&w.queries[1]);
        assert!(cands
            .iter()
            .any(|c| c.table == "CUSTOMER" && c.key_columns.len() >= 2));
    }

    #[test]
    fn enumerate_dedupes_across_queries() {
        let advisor = Advisor::default();
        let w = workload();
        let all = advisor.enumerate(&w);
        let mut names: Vec<&str> = all.iter().map(|c| c.name.as_str()).collect();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn suggest_respects_budget_and_picks_beneficial_indexes() {
        let advisor = Advisor::new(AdvisorConfig::with_budget(3));
        let w = workload();
        let suggested = advisor.suggest(&w);
        assert!(suggested.len() <= 3);
        assert!(!suggested.is_empty());
        for s in &suggested {
            assert!(s.total_benefit > 0.0);
        }
        // No duplicates in the selected design.
        let mut names: Vec<&str> = suggested.iter().map(|s| s.index.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn greedy_selection_diversifies_across_tables() {
        // With a generous budget the design should not be a single table's
        // near-duplicate covering indexes: both CUSTOMER and SALES appear.
        let advisor = Advisor::new(AdvisorConfig::with_budget(6));
        let w = workload();
        let suggested = advisor.suggest(&w);
        let tables: std::collections::HashSet<&str> =
            suggested.iter().map(|s| s.index.table.as_str()).collect();
        assert!(tables.len() >= 2, "design uses only {tables:?}");
    }

    #[test]
    fn useless_candidates_are_dropped() {
        let advisor = Advisor::default();
        let w = workload();
        let suggested = advisor.suggest(&w);
        // DATE_ID never appears in any query, so no suggested index should
        // lead with it.
        assert!(suggested
            .iter()
            .all(|s| s.index.leading_column() != Some("DATE_ID")));
    }
}
