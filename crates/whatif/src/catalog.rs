//! Catalog: tables, columns and their statistics.
//!
//! The cost model only needs coarse statistics — row counts, row/column widths
//! and the number of distinct values per column — exactly the statistics a
//! real optimizer keeps in its system catalog.

use crate::error::{Result, WhatIfError};
use serde::{Deserialize, Serialize};

/// Default page size used to convert byte sizes into page counts.
pub const PAGE_SIZE_BYTES: f64 = 8192.0;

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Average width in bytes.
    pub width_bytes: f64,
    /// Number of distinct values (used for equality selectivity `1/NDV`).
    pub distinct_values: f64,
}

impl Column {
    /// Creates a column description.
    pub fn new(name: impl Into<String>, width_bytes: f64, distinct_values: f64) -> Self {
        Self {
            name: name.into(),
            width_bytes,
            distinct_values: distinct_values.max(1.0),
        }
    }

    /// A 4-byte integer key column with the given distinct count.
    pub fn int_key(name: impl Into<String>, distinct_values: f64) -> Self {
        Self::new(name, 4.0, distinct_values)
    }

    /// A fixed-width string column.
    pub fn string(name: impl Into<String>, width_bytes: f64, distinct_values: f64) -> Self {
        Self::new(name, width_bytes, distinct_values)
    }
}

/// One table of the warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Number of rows.
    pub rows: f64,
    /// Columns, in declaration order.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table with the given rows and columns.
    pub fn new(name: impl Into<String>, rows: f64, columns: Vec<Column>) -> Self {
        Self {
            name: name.into(),
            rows: rows.max(1.0),
            columns,
        }
    }

    /// Total row width in bytes.
    pub fn row_width(&self) -> f64 {
        self.columns
            .iter()
            .map(|c| c.width_bytes)
            .sum::<f64>()
            .max(1.0)
    }

    /// Heap size in pages.
    pub fn pages(&self) -> f64 {
        (self.rows * self.row_width() / PAGE_SIZE_BYTES).max(1.0)
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Returns `true` when the table has a column with this name.
    pub fn has_column(&self, name: &str) -> bool {
        self.column(name).is_some()
    }
}

/// The schema + statistics of a warehouse.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table, failing on duplicate names or duplicate column names.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        if self.table(&table.name).is_some() {
            return Err(WhatIfError::DuplicateTable(table.name));
        }
        for (i, c) in table.columns.iter().enumerate() {
            if table.columns[..i].iter().any(|other| other.name == c.name) {
                return Err(WhatIfError::DuplicateColumn {
                    table: table.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
        self.tables.push(table);
        Ok(())
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Looks up a table, returning an error when missing.
    pub fn require_table(&self, name: &str) -> Result<&Table> {
        self.table(name)
            .ok_or_else(|| WhatIfError::UnknownTable(name.to_string()))
    }

    /// Looks up a column, returning an error when the table or column is
    /// missing.
    pub fn require_column(&self, table: &str, column: &str) -> Result<&Column> {
        let t = self.require_table(table)?;
        t.column(column).ok_or_else(|| WhatIfError::UnknownColumn {
            table: table.to_string(),
            column: column.to_string(),
        })
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> Table {
        Table::new(
            "CUSTOMER",
            1_000_000.0,
            vec![
                Column::int_key("CUSTID", 1_000_000.0),
                Column::string("NAME", 32.0, 900_000.0),
                Column::string("COUNTRY", 16.0, 200.0),
            ],
        )
    }

    #[test]
    fn table_statistics_derive_pages() {
        let t = customer();
        assert_eq!(t.row_width(), 52.0);
        let expected_pages = 1_000_000.0 * 52.0 / PAGE_SIZE_BYTES;
        assert!((t.pages() - expected_pages).abs() < 1e-6);
        assert!(t.has_column("COUNTRY"));
        assert!(!t.has_column("REGION"));
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut c = Catalog::new();
        c.add_table(customer()).unwrap();
        assert!(matches!(
            c.add_table(customer()),
            Err(WhatIfError::DuplicateTable(_))
        ));
        let dup_col = Table::new(
            "T",
            10.0,
            vec![Column::int_key("A", 10.0), Column::int_key("A", 10.0)],
        );
        assert!(matches!(
            c.add_table(dup_col),
            Err(WhatIfError::DuplicateColumn { .. })
        ));
    }

    #[test]
    fn lookups_work_and_fail_cleanly() {
        let mut c = Catalog::new();
        c.add_table(customer()).unwrap();
        assert!(c.require_table("CUSTOMER").is_ok());
        assert!(c.require_table("ORDERS").is_err());
        assert!(c.require_column("CUSTOMER", "COUNTRY").is_ok());
        assert!(c.require_column("CUSTOMER", "REGION").is_err());
        assert_eq!(c.num_tables(), 1);
    }

    #[test]
    fn distinct_values_clamped_to_one() {
        let col = Column::new("X", 4.0, 0.0);
        assert_eq!(col.distinct_values, 1.0);
        let t = Table::new("EMPTY", 0.0, vec![]);
        assert_eq!(t.rows, 1.0);
        assert_eq!(t.pages(), 1.0);
    }
}
