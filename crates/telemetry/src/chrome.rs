//! Chrome trace-event JSON exporter.
//!
//! Renders a [`TraceStream`] into the [Trace Event
//! Format] consumed by `chrome://tracing` and [Perfetto] (ui.perfetto.dev →
//! "Open trace file"). The export is a JSON array of event objects; this is
//! the *profiling* view, so wall-clock timestamps and shared-incumbent
//! epochs — both nondeterministic — are included deliberately. Golden tests
//! must use [`summary::render`](crate::summary::render) instead.
//!
//! Mapping:
//!
//! | [`EventKind`]         | phase  | timestamp source                      |
//! |-----------------------|--------|---------------------------------------|
//! | `Span` (logical)      | `"X"`  | logical clock × 1e6 (1 s = 1 "µs" s)  |
//! | `SpanBegin`/`SpanEnd` | `"B"`/`"E"` | `wall_us`                        |
//! | `Counter` / `Gauge`   | `"C"`  | `wall_us` (logical clock in args)     |
//! | `Mark`                | `"i"`  | logical clock if present, else wall   |
//!
//! Logical-clock spans and wall-clock spans are emitted under different
//! process ids (`pid` 1 = logical timeline, `pid` 2 = wall timeline) so the
//! two time bases never share a lane; each track gets a `thread_name`
//! metadata record in both processes.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::{Event, EventKind, TraceStream};
use serde::Value;

/// `pid` for the logical-clock (deployment seconds) timeline.
const PID_LOGICAL: i64 = 1;
/// `pid` for the wall-clock timeline.
const PID_WALL: i64 = 2;

/// Renders the stream as Chrome trace-event JSON (an array of event
/// objects). The output parses back with `serde_json::parse_value` and
/// loads in Perfetto / `chrome://tracing`.
pub fn render(stream: &TraceStream) -> String {
    let mut events: Vec<Value> = Vec::new();

    for (id, name) in stream.tracks.iter().enumerate() {
        for pid in [PID_LOGICAL, PID_WALL] {
            events.push(thread_name(pid, id as i64, name));
        }
    }

    for event in &stream.events {
        events.push(render_event(event));
    }

    serde_json::to_string(&Value::Array(events)).expect("Value serialization is infallible")
}

fn thread_name(pid: i64, tid: i64, name: &str) -> Value {
    obj(vec![
        ("name", Value::String("thread_name".into())),
        ("ph", Value::String("M".into())),
        ("pid", Value::Int(pid)),
        ("tid", Value::Int(tid)),
        ("args", obj(vec![("name", Value::String(name.to_string()))])),
    ])
}

fn render_event(event: &Event) -> Value {
    let tid = Value::Int(event.track as i64);
    match &event.kind {
        EventKind::Span { name, start, end } => obj(vec![
            ("name", Value::String(name.clone())),
            ("ph", Value::String("X".into())),
            ("ts", micros(*start)),
            ("dur", micros(end - start)),
            ("pid", Value::Int(PID_LOGICAL)),
            ("tid", tid),
            ("args", args(event)),
        ]),
        EventKind::SpanBegin { name } | EventKind::SpanEnd { name } => {
            let ph = match event.kind {
                EventKind::SpanBegin { .. } => "B",
                _ => "E",
            };
            obj(vec![
                ("name", Value::String(name.clone())),
                ("ph", Value::String(ph.into())),
                ("ts", Value::UInt(event.wall_us)),
                ("pid", Value::Int(PID_WALL)),
                ("tid", tid),
                ("args", args(event)),
            ])
        }
        EventKind::Counter { name, value } => obj(vec![
            ("name", Value::String(name.clone())),
            ("ph", Value::String("C".into())),
            ("ts", Value::UInt(event.wall_us)),
            ("pid", Value::Int(PID_WALL)),
            ("tid", tid),
            ("args", obj(vec![(name.as_str(), Value::UInt(*value))])),
        ]),
        EventKind::Gauge { name, value } => {
            let (pid, ts) = timestamp(event);
            obj(vec![
                ("name", Value::String(name.clone())),
                ("ph", Value::String("C".into())),
                ("ts", ts),
                ("pid", Value::Int(pid)),
                ("tid", tid),
                ("args", obj(vec![(name.as_str(), Value::Float(*value))])),
            ])
        }
        EventKind::Mark { name, detail } => {
            let (pid, ts) = timestamp(event);
            let mut entries = vec![("detail", Value::String(detail.clone()))];
            if let Some(epoch) = event.epoch {
                entries.push(("epoch", Value::UInt(epoch)));
            }
            obj(vec![
                ("name", Value::String(name.clone())),
                ("ph", Value::String("i".into())),
                ("ts", ts),
                ("pid", Value::Int(pid)),
                ("tid", tid),
                ("s", Value::String("t".into())),
                ("args", obj(entries)),
            ])
        }
    }
}

/// Events stamped with a logical clock go on the logical timeline at that
/// clock; everything else goes on the wall timeline at `wall_us`.
fn timestamp(event: &Event) -> (i64, Value) {
    match event.clock {
        Some(clock) => (PID_LOGICAL, micros(clock)),
        None => (PID_WALL, Value::UInt(event.wall_us)),
    }
}

fn args(event: &Event) -> Value {
    let mut entries = Vec::new();
    if let Some(clock) = event.clock {
        entries.push(("clock", Value::Float(clock)));
    }
    if let Some(epoch) = event.epoch {
        entries.push(("epoch", Value::UInt(epoch)));
    }
    entries.push(("seq", Value::UInt(event.seq)));
    obj(entries)
}

/// One logical second maps to 1e6 trace "microseconds" so Perfetto's ruler
/// reads deployment seconds directly.
fn micros(seconds: f64) -> Value {
    Value::Float(seconds * 1e6)
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    /// JSON round-trips normalize number forms (`3.0` may parse back as an
    /// integer), so tests compare numerically rather than by `Value` arm.
    fn as_f64(value: Option<&Value>) -> f64 {
        match value {
            Some(Value::Int(n)) => *n as f64,
            Some(Value::UInt(n)) => *n as f64,
            Some(Value::Float(n)) => *n,
            other => panic!("expected a number, got {other:?}"),
        }
    }

    fn sample_stream() -> TraceStream {
        let telemetry = Telemetry::recording();
        let solver = telemetry.register("solver/00-vns");
        let slot = telemetry.register("deploy/slot0");
        let mut rs = solver.recorder();
        rs.span_begin("run");
        rs.mark_epoch("publish", "objective=4.2500", 3);
        rs.counter("iterations", 128);
        rs.span_end("run");
        drop(rs);
        let mut rd = slot.recorder();
        rd.mark_at(0.0, "dispatch", "index=i0");
        rd.span("busy", 0.0, 2.5);
        rd.gauge_at(2.5, "pending", 1.0);
        drop(rd);
        telemetry.drain()
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let json = render(&sample_stream());
        let value = serde_json::parse_value(&json).expect("export must parse as JSON");
        let events = value.as_array().expect("top level must be an array");
        // 2 tracks × 2 pids metadata + 7 events.
        assert_eq!(events.len(), 11);
        for event in events {
            let obj = event.as_object().expect("each event is an object");
            for key in ["name", "ph", "pid", "tid"] {
                assert!(event.get(key).is_some(), "event missing `{key}`: {obj:?}");
            }
            let ph = match event.get("ph") {
                Some(Value::String(ph)) => ph.as_str(),
                other => panic!("ph must be a string, got {other:?}"),
            };
            assert!(matches!(ph, "M" | "X" | "B" | "E" | "C" | "i"));
            if ph != "M" {
                assert!(event.get("ts").is_some(), "non-metadata event missing ts");
            }
        }
    }

    #[test]
    fn logical_spans_land_on_the_logical_timeline() {
        let json = render(&sample_stream());
        let value = serde_json::parse_value(&json).unwrap();
        let busy = value
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name") == Some(&Value::String("busy".into())))
            .expect("busy span exported");
        assert_eq!(busy.get("ph"), Some(&Value::String("X".into())));
        assert_eq!(busy.get("pid"), Some(&Value::Int(PID_LOGICAL)));
        assert_eq!(as_f64(busy.get("ts")), 0.0);
        assert_eq!(as_f64(busy.get("dur")), 2.5e6);
    }

    #[test]
    fn marks_carry_detail_and_epoch() {
        let json = render(&sample_stream());
        let value = serde_json::parse_value(&json).unwrap();
        let publish = value
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name") == Some(&Value::String("publish".into())))
            .expect("publish mark exported");
        let args = publish.get("args").expect("instant events carry args");
        assert_eq!(
            args.get("detail"),
            Some(&Value::String("objective=4.2500".into()))
        );
        assert_eq!(as_f64(args.get("epoch")), 3.0);
    }
}
