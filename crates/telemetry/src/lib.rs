//! # idd-telemetry — unified search/runtime tracing
//!
//! The solver portfolio and the deployment runtime are judged by end-state
//! artifacts (`SolveResult`, `DeploymentReport`, the journal); this crate
//! records *where time went*: which member published which incumbent, how
//! long each build slot sat idle, when a replan fired and what it decided.
//! It is a deliberately small, hand-rolled tracing core — the offline build
//! environment rules out the `tracing` ecosystem (see `vendor/README.md`) —
//! built around three ideas:
//!
//! 1. **Per-thread lock-free buffers.** A [`TrackRecorder`] owns a plain
//!    `Vec<Event>`; recording an event is a `push`, with no atomics and no
//!    locks on the hot path. The buffer is submitted to the shared
//!    [`Collector`] exactly once, when the recorder drops — mirroring the
//!    scoped-thread shape of the portfolio runner, where every member
//!    joins before the race reports.
//! 2. **Deterministic merged order.** [`Telemetry::drain`] sorts the
//!    submitted buffers by `(track, seq)` — a key assigned at *emission*,
//!    not at submission — so the merged [`TraceStream`] is independent of
//!    thread scheduling. Everything nondeterministic (wall-clock
//!    microseconds, shared-incumbent epochs observed across threads) lives
//!    in dedicated [`Event`] fields that the deterministic exporter
//!    ignores.
//! 3. **Two exporters.** [`summary::render`] produces a golden-stable text
//!    summary (logical clocks and counters only); [`chrome::render`]
//!    produces Chrome trace-event JSON loadable in Perfetto or
//!    `chrome://tracing`, wall-clock and epochs included.
//!
//! [`Telemetry`] defaults to **off**: every handle degenerates to a no-op
//! that records nothing and allocates nothing, so instrumented code paths
//! are bit-identical to their pre-telemetry selves unless a caller opts in
//! with [`Telemetry::recording`].
//!
//! Code that cannot thread a recorder through its signatures (the solver
//! trait's `run` is fixed) emits through an *installed* recorder instead:
//! [`TrackHandle::install`] parks the recorder in a thread-local slot, and
//! the free functions ([`mark`], [`counter`], ...) write to whatever is
//! installed on the current thread — or do nothing at all.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod summary;

use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifies one *track* (a timeline lane): a portfolio member, the
/// deployment event loop, or one build slot. Assigned by registration
/// order, so registering tracks deterministically (e.g. on the main thread,
/// in member order) keys the merged stream deterministically.
pub type TrackId = usize;

/// What one telemetry event records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A wall-clock span opened (closed by a matching [`EventKind::SpanEnd`]
    /// on the same track). Durations are wall-clock only, so begin/end pairs
    /// appear in the Chrome export but carry no deterministic timing.
    SpanBegin {
        /// Span label ("run", ...).
        name: String,
    },
    /// Closes the innermost [`EventKind::SpanBegin`] with the same name.
    SpanEnd {
        /// Span label.
        name: String,
    },
    /// A complete span on the *logical* clock: `[start, end]` in
    /// deployment-clock seconds. Fully deterministic.
    Span {
        /// Span label ("busy", "idle", ...).
        name: String,
        /// Logical-clock start.
        start: f64,
        /// Logical-clock end (`>= start`).
        end: f64,
    },
    /// A monotone counter total (emitted once, at the end of the producing
    /// phase).
    Counter {
        /// Counter name ("iterations", "restarts", ...).
        name: String,
        /// The total.
        value: u64,
    },
    /// An instantaneous gauge sample ("queue depth is 3 now").
    Gauge {
        /// Gauge name ("pending", ...).
        name: String,
        /// The sampled value.
        value: f64,
    },
    /// A point event ("incumbent published", "dispatch", "replan", ...).
    Mark {
        /// Event name.
        name: String,
        /// Deterministic detail string (objective, index, trigger, ...).
        detail: String,
    },
}

impl EventKind {
    /// The event's name label, whatever its shape.
    pub fn name(&self) -> &str {
        match self {
            EventKind::SpanBegin { name }
            | EventKind::SpanEnd { name }
            | EventKind::Span { name, .. }
            | EventKind::Counter { name, .. }
            | EventKind::Gauge { name, .. }
            | EventKind::Mark { name, .. } => name,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The track this event belongs to.
    pub track: TrackId,
    /// Per-track emission sequence number (0-based): the deterministic sort
    /// key within a track.
    pub seq: u64,
    /// Logical (deployment) clock at emission, when the producer has one.
    /// `None` for solver-side events, which have no logical clock.
    pub clock: Option<f64>,
    /// Wall-clock microseconds since the collector was created.
    /// **Nondeterministic** — excluded from the deterministic exporter and
    /// from [`Event::deterministic_view`].
    pub wall_us: u64,
    /// Shared-incumbent epoch observed at emission, where applicable.
    /// **Nondeterministic** under concurrency (epochs count cross-thread
    /// publications) — excluded like `wall_us`.
    pub epoch: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The deterministic projection of this event: everything except
    /// `wall_us` and `epoch`, with the logical clock by bit pattern. Two
    /// runs of the same seeded workload produce identical projections
    /// regardless of thread count or scheduling.
    pub fn deterministic_view(&self) -> (TrackId, u64, Option<u64>, EventKind) {
        (
            self.track,
            self.seq,
            self.clock.map(f64::to_bits),
            self.kind.clone(),
        )
    }
}

/// The shared sink: registered track names plus every submitted buffer.
#[derive(Debug)]
pub struct Collector {
    start: Instant,
    inner: Mutex<CollectorState>,
}

#[derive(Debug, Default)]
struct CollectorState {
    tracks: Vec<String>,
    buffers: Vec<Vec<Event>>,
}

impl Collector {
    fn new() -> Self {
        Self {
            start: Instant::now(),
            inner: Mutex::new(CollectorState::default()),
        }
    }

    fn register(&self, name: String) -> TrackId {
        let mut state = self.lock();
        state.tracks.push(name);
        state.tracks.len() - 1
    }

    fn submit(&self, buffer: Vec<Event>) {
        if !buffer.is_empty() {
            self.lock().buffers.push(buffer);
        }
    }

    fn wall_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CollectorState> {
        // A recorder never panics between related writes (buffers are
        // submitted wholesale), so a poisoned lock only reflects a peer's
        // unrelated panic: recover rather than cascade.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The telemetry handle: either **off** (the default — every operation is a
/// no-op) or **recording** into a shared [`Collector`]. Cloning shares the
/// collector; handles are cheap to pass around and `Send + Sync`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    collector: Option<Arc<Collector>>,
}

impl Telemetry {
    /// The no-op handle (the default): nothing is recorded, nothing is
    /// allocated, instrumented code behaves bit-identically to
    /// uninstrumented code.
    pub fn off() -> Self {
        Self::default()
    }

    /// A recording handle with a fresh collector.
    pub fn recording() -> Self {
        Self {
            collector: Some(Arc::new(Collector::new())),
        }
    }

    /// `true` when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Registers a track and returns its handle. Track ids follow
    /// registration order — register on one thread, in a deterministic
    /// order, to key the merged stream deterministically. Off handles
    /// return a no-op track.
    pub fn register(&self, name: impl Into<String>) -> TrackHandle {
        match &self.collector {
            Some(collector) => TrackHandle {
                track: collector.register(name.into()),
                collector: Some(Arc::clone(collector)),
            },
            None => TrackHandle {
                track: 0,
                collector: None,
            },
        }
    }

    /// Merges every submitted buffer into one [`TraceStream`], ordered by
    /// `(track, seq)`. Call after all recorders have dropped (e.g. after
    /// the scoped threads joined) — events still sitting in a live recorder
    /// are not included. Draining an off handle yields an empty stream.
    pub fn drain(&self) -> TraceStream {
        let Some(collector) = &self.collector else {
            return TraceStream::default();
        };
        let mut state = collector.lock();
        let tracks = state.tracks.clone();
        let mut events: Vec<Event> = std::mem::take(&mut state.buffers)
            .into_iter()
            .flatten()
            .collect();
        drop(state);
        events.sort_by(|a, b| a.track.cmp(&b.track).then(a.seq.cmp(&b.seq)));
        TraceStream { tracks, events }
    }
}

/// A registered track: the factory for its [`TrackRecorder`].
#[derive(Debug, Clone)]
pub struct TrackHandle {
    collector: Option<Arc<Collector>>,
    track: TrackId,
}

impl TrackHandle {
    /// This track's id (0 for no-op handles).
    pub fn id(&self) -> TrackId {
        self.track
    }

    /// An owned recorder for this track. Recording is a plain `Vec` push;
    /// the buffer is submitted to the collector when the recorder drops.
    pub fn recorder(&self) -> TrackRecorder {
        TrackRecorder {
            collector: self.collector.clone(),
            track: self.track,
            seq: 0,
            buffer: Vec::new(),
        }
    }

    /// Installs a recorder for this track into the current thread's slot
    /// and returns the guard that uninstalls (and submits) it on drop.
    /// While installed, the free functions ([`mark`], [`counter`],
    /// [`span_begin`], ...) on this thread record here. Installs nest: the
    /// guard restores whatever was installed before it.
    pub fn install(&self) -> RecorderGuard {
        let recorder = self.collector.is_some().then(|| self.recorder());
        let prev = ACTIVE.with(|slot| slot.replace(recorder));
        RecorderGuard {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }
}

/// An owned per-thread event buffer for one track. All emission methods are
/// lock-free (`Vec::push`); the buffer is submitted wholesale when the
/// recorder drops. A recorder created from an off [`Telemetry`] records
/// nothing.
#[derive(Debug)]
pub struct TrackRecorder {
    collector: Option<Arc<Collector>>,
    track: TrackId,
    seq: u64,
    buffer: Vec<Event>,
}

impl TrackRecorder {
    fn push(&mut self, clock: Option<f64>, epoch: Option<u64>, kind: EventKind) {
        let Some(collector) = &self.collector else {
            return;
        };
        let seq = self.seq;
        self.seq += 1;
        self.buffer.push(Event {
            track: self.track,
            seq,
            clock,
            wall_us: collector.wall_us(),
            epoch,
            kind,
        });
    }

    /// Records a point event without a logical clock.
    pub fn mark(&mut self, name: &str, detail: impl Into<String>) {
        self.push(
            None,
            None,
            EventKind::Mark {
                name: name.to_string(),
                detail: detail.into(),
            },
        );
    }

    /// Records a point event stamped with the logical clock.
    pub fn mark_at(&mut self, clock: f64, name: &str, detail: impl Into<String>) {
        self.push(
            Some(clock),
            None,
            EventKind::Mark {
                name: name.to_string(),
                detail: detail.into(),
            },
        );
    }

    /// Records a point event tagged with a shared-incumbent epoch (the
    /// epoch is excluded from deterministic exports).
    pub fn mark_epoch(&mut self, name: &str, detail: impl Into<String>, epoch: u64) {
        self.push(
            None,
            Some(epoch),
            EventKind::Mark {
                name: name.to_string(),
                detail: detail.into(),
            },
        );
    }

    /// Records a counter total.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.push(
            None,
            None,
            EventKind::Counter {
                name: name.to_string(),
                value,
            },
        );
    }

    /// Records a gauge sample at the logical clock.
    pub fn gauge_at(&mut self, clock: f64, name: &str, value: f64) {
        self.push(
            Some(clock),
            None,
            EventKind::Gauge {
                name: name.to_string(),
                value,
            },
        );
    }

    /// Records a complete logical-clock span (`end` is clamped up to
    /// `start`: a negative-length span is a caller bug that must not poison
    /// duration sums).
    pub fn span(&mut self, name: &str, start: f64, end: f64) {
        self.push(
            Some(start),
            None,
            EventKind::Span {
                name: name.to_string(),
                start,
                end: end.max(start),
            },
        );
    }

    /// Opens a wall-clock span.
    pub fn span_begin(&mut self, name: &str) {
        self.push(
            None,
            None,
            EventKind::SpanBegin {
                name: name.to_string(),
            },
        );
    }

    /// Closes the innermost wall-clock span with this name.
    pub fn span_end(&mut self, name: &str) {
        self.push(
            None,
            None,
            EventKind::SpanEnd {
                name: name.to_string(),
            },
        );
    }

    /// Number of events buffered (0 for no-op recorders).
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

impl Drop for TrackRecorder {
    fn drop(&mut self) {
        if let Some(collector) = &self.collector {
            collector.submit(std::mem::take(&mut self.buffer));
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<TrackRecorder>> = const { RefCell::new(None) };
}

/// Uninstalls (and thereby submits) the thread's recorder on drop,
/// restoring whatever was installed before. Deliberately `!Send`: the guard
/// must drop on the thread that installed it.
#[derive(Debug)]
pub struct RecorderGuard {
    prev: Option<TrackRecorder>,
    // The guard must drop on the installing thread (it swaps a
    // thread-local); a raw pointer makes it !Send without runtime cost.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        // Swap the previous recorder back in; the one we installed drops
        // here, submitting its buffer.
        let prev = self.prev.take();
        ACTIVE.with(|slot| slot.replace(prev));
    }
}

/// Runs `f` on the thread's installed recorder, if any. The no-recorder
/// path is a thread-local read and a branch.
pub fn with_active<F: FnOnce(&mut TrackRecorder)>(f: F) {
    ACTIVE.with(|slot| {
        if let Some(recorder) = slot.borrow_mut().as_mut() {
            f(recorder);
        }
    });
}

/// [`TrackRecorder::mark`] on the thread's installed recorder (no-op
/// without one).
pub fn mark(name: &str, detail: impl Into<String>) {
    let detail = detail.into();
    with_active(|r| r.mark(name, detail));
}

/// [`TrackRecorder::mark_epoch`] on the thread's installed recorder.
pub fn mark_epoch(name: &str, detail: impl Into<String>, epoch: u64) {
    let detail = detail.into();
    with_active(|r| r.mark_epoch(name, detail, epoch));
}

/// [`TrackRecorder::counter`] on the thread's installed recorder.
pub fn counter(name: &str, value: u64) {
    with_active(|r| r.counter(name, value));
}

/// [`TrackRecorder::span_begin`] on the thread's installed recorder.
pub fn span_begin(name: &str) {
    with_active(|r| r.span_begin(name));
}

/// [`TrackRecorder::span_end`] on the thread's installed recorder.
pub fn span_end(name: &str) {
    with_active(|r| r.span_end(name));
}

/// The merged, `(track, seq)`-ordered event stream of one collector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStream {
    /// Track names, indexed by [`TrackId`].
    pub tracks: Vec<String>,
    /// Every event, sorted by `(track, seq)`.
    pub events: Vec<Event>,
}

impl TraceStream {
    /// The name of a track (`"?"` for an id no track was registered for —
    /// events from no-op recorders never reach a stream, so this only
    /// happens on caller error).
    pub fn track_name(&self, track: TrackId) -> &str {
        self.tracks.get(track).map(String::as_str).unwrap_or("?")
    }

    /// The events of one track, in emission order.
    pub fn events_for(&self, track: TrackId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.track == track)
    }

    /// Sums every [`EventKind::Counter`] with this name across all tracks.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Counter { name: n, value } if n == name => *value,
                _ => 0,
            })
            .sum()
    }

    /// Sums the durations of every logical-clock [`EventKind::Span`] with
    /// this name on this track.
    pub fn span_total(&self, track: TrackId, name: &str) -> f64 {
        self.events_for(track)
            .map(|e| match &e.kind {
                EventKind::Span {
                    name: n,
                    start,
                    end,
                } if n == name => end - start,
                _ => 0.0,
            })
            .sum()
    }

    /// The deterministic projection of the whole stream (see
    /// [`Event::deterministic_view`]): identical across runs and thread
    /// counts for the same seeded workload.
    pub fn deterministic_view(&self) -> Vec<(TrackId, u64, Option<u64>, EventKind)> {
        self.events.iter().map(Event::deterministic_view).collect()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handles_record_nothing() {
        let telemetry = Telemetry::off();
        assert!(!telemetry.is_enabled());
        let track = telemetry.register("solver/vns");
        let mut recorder = track.recorder();
        recorder.mark("publish", "objective=1.0");
        recorder.counter("iterations", 42);
        assert!(recorder.is_empty());
        drop(recorder);
        let _guard = track.install();
        mark("publish", "objective=2.0");
        counter("iterations", 7);
        drop(_guard);
        assert!(telemetry.drain().is_empty());
    }

    #[test]
    fn recorded_events_merge_in_track_seq_order() {
        let telemetry = Telemetry::recording();
        assert!(telemetry.is_enabled());
        let a = telemetry.register("a");
        let b = telemetry.register("b");
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);

        // Submit b's buffer *before* a's: the drain must still order by
        // (track, seq), not by submission.
        let mut rb = b.recorder();
        rb.mark_at(2.0, "dispatch", "i0");
        rb.span("busy", 0.0, 2.0);
        drop(rb);
        let mut ra = a.recorder();
        ra.counter("iterations", 3);
        ra.mark("publish", "objective=9.5");
        drop(ra);

        let stream = telemetry.drain();
        assert_eq!(stream.tracks, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(stream.len(), 4);
        assert_eq!(stream.events[0].track, 0);
        assert_eq!(stream.events[0].seq, 0);
        assert_eq!(stream.events[1].kind.name(), "publish");
        assert_eq!(stream.events[2].track, 1);
        assert_eq!(stream.events[2].clock, Some(2.0));
        assert_eq!(stream.counter_total("iterations"), 3);
        assert!((stream.span_total(1, "busy") - 2.0).abs() < 1e-12);
        // A second drain finds the buffers consumed.
        assert!(telemetry.drain().is_empty());
    }

    #[test]
    fn installed_recorders_nest_and_restore() {
        let telemetry = Telemetry::recording();
        let outer = telemetry.register("outer");
        let inner = telemetry.register("inner");
        {
            let _outer_guard = outer.install();
            mark("outer-mark", "");
            {
                let _inner_guard = inner.install();
                mark("inner-mark", "");
            }
            // The outer recorder is active again.
            mark("outer-mark-2", "");
        }
        let stream = telemetry.drain();
        let outer_events: Vec<_> = stream.events_for(0).map(|e| e.kind.name()).collect();
        let inner_events: Vec<_> = stream.events_for(1).map(|e| e.kind.name()).collect();
        assert_eq!(outer_events, vec!["outer-mark", "outer-mark-2"]);
        assert_eq!(inner_events, vec!["inner-mark"]);
    }

    #[test]
    fn deterministic_view_hides_wall_clock_and_epoch() {
        let telemetry = Telemetry::recording();
        let track = telemetry.register("t");
        let mut r = track.recorder();
        r.mark_epoch("incumbent", "objective=4.0", 17);
        drop(r);
        let stream = telemetry.drain();
        assert_eq!(stream.events[0].epoch, Some(17));
        let (track_id, seq, clock, kind) = stream.events[0].deterministic_view().clone();
        assert_eq!((track_id, seq, clock), (0, 0, None));
        assert_eq!(
            kind,
            EventKind::Mark {
                name: "incumbent".into(),
                detail: "objective=4.0".into()
            }
        );
    }

    #[test]
    fn spans_clamp_negative_durations() {
        let telemetry = Telemetry::recording();
        let track = telemetry.register("slot0");
        let mut r = track.recorder();
        r.span("busy", 5.0, 3.0);
        drop(r);
        let stream = telemetry.drain();
        assert_eq!(stream.span_total(0, "busy"), 0.0);
    }

    #[test]
    fn cross_thread_buffers_merge_deterministically() {
        let telemetry = Telemetry::recording();
        let tracks: Vec<TrackHandle> = (0..4)
            .map(|k| telemetry.register(format!("member{k}")))
            .collect();
        std::thread::scope(|scope| {
            for track in &tracks {
                scope.spawn(move || {
                    let _guard = track.install();
                    for i in 0..50u64 {
                        mark("step", format!("i={i}"));
                    }
                    counter("iterations", 50);
                });
            }
        });
        let stream = telemetry.drain();
        assert_eq!(stream.len(), 4 * 51);
        assert_eq!(stream.counter_total("iterations"), 200);
        // Per-track order is emission order regardless of interleaving.
        for t in 0..4 {
            let seqs: Vec<u64> = stream.events_for(t).map(|e| e.seq).collect();
            assert_eq!(seqs, (0..51).collect::<Vec<_>>());
        }
    }
}
