//! Deterministic text summary exporter.
//!
//! The golden-stable view of a [`TraceStream`]: only
//! the deterministic event fields (track, sequence, logical clock, kind)
//! are rendered — wall-clock microseconds and shared-incumbent epochs are
//! omitted entirely, so under fixed seeds and budgets two runs render
//! byte-identical summaries regardless of scheduling. This is the exporter
//! the `trace --tiny` golden pins.

use crate::{EventKind, TraceStream};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the stream as a deterministic text summary: one section per
/// track (in track-id order, which is registration order), one line per
/// event (in emission order), then an aggregate section totalling every
/// counter name across tracks.
pub fn render(stream: &TraceStream) -> String {
    let mut out = String::new();
    for (id, name) in stream.tracks.iter().enumerate() {
        let events: Vec<_> = stream.events_for(id).collect();
        let _ = writeln!(out, "track {id}: {name} ({} events)", events.len());
        for event in events {
            let _ = write!(out, "  #{:03}", event.seq);
            if let Some(clock) = event.clock {
                let _ = write!(out, " @{clock:.2}");
            }
            match &event.kind {
                EventKind::SpanBegin { name } => {
                    let _ = writeln!(out, " begin {name}");
                }
                EventKind::SpanEnd { name } => {
                    let _ = writeln!(out, " end   {name}");
                }
                EventKind::Span { name, start, end } => {
                    let _ = writeln!(
                        out,
                        " span  {name} [{start:.2}, {end:.2}] dur={:.2}",
                        end - start
                    );
                }
                EventKind::Counter { name, value } => {
                    let _ = writeln!(out, " count {name} = {value}");
                }
                EventKind::Gauge { name, value } => {
                    let _ = writeln!(out, " gauge {name} = {value:.2}");
                }
                EventKind::Mark { name, detail } => {
                    if detail.is_empty() {
                        let _ = writeln!(out, " mark  {name}");
                    } else {
                        let _ = writeln!(out, " mark  {name} {detail}");
                    }
                }
            }
        }
    }

    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for event in &stream.events {
        if let EventKind::Counter { name, value } = &event.kind {
            *totals.entry(name.as_str()).or_insert(0) += value;
        }
    }
    let _ = writeln!(out, "counter totals:");
    if totals.is_empty() {
        let _ = writeln!(out, "  (none)");
    } else {
        for (name, total) in totals {
            let _ = writeln!(out, "  {name} = {total}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn summary_is_deterministic_and_omits_wall_clock() {
        let build = || {
            let telemetry = Telemetry::recording();
            let a = telemetry.register("solver/00-lns");
            let b = telemetry.register("deploy/slot0");
            let mut ra = a.recorder();
            ra.mark_epoch("publish", "objective=7.5000", 42);
            ra.counter("iterations", 10);
            drop(ra);
            let mut rb = b.recorder();
            rb.span("busy", 1.0, 3.0);
            rb.gauge_at(3.0, "pending", 2.0);
            rb.counter("iterations", 5);
            drop(rb);
            render(&telemetry.drain())
        };
        let first = build();
        // Sleep-free but temporally distinct second run: wall_us differs,
        // the summary must not.
        let second = build();
        assert_eq!(first, second);
        assert!(first.contains("track 0: solver/00-lns (2 events)"));
        assert!(first.contains("mark  publish objective=7.5000"));
        assert!(first.contains("span  busy [1.00, 3.00] dur=2.00"));
        assert!(first.contains("  iterations = 15"));
        assert!(!first.contains("42"), "epoch must not leak into summary");
    }

    #[test]
    fn empty_stream_renders_counter_placeholder() {
        let rendered = render(&Telemetry::off().drain());
        assert_eq!(rendered, "counter totals:\n  (none)\n");
    }
}
