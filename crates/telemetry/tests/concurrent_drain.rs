//! Property tests for concurrent draining (ISSUE 9, satellite 3): the
//! merged telemetry stream, keyed by logical order `(track, seq)`, is
//! identical no matter how many threads emitted it — the exact guarantee
//! the portfolio relies on when racing 1, 2, or 4 members over the same
//! seeded workload.

use idd_telemetry::{mark, span_begin, span_end, with_active, Telemetry, TrackHandle};
use proptest::prelude::*;

/// A deterministic per-track emission script derived from the test inputs:
/// the same `(track, len, seed)` always emits the same event sequence.
fn emit_script(track: usize, len: usize, seed: u64) {
    for i in 0..len {
        match (seed as usize + track * 31 + i) % 5 {
            0 => mark("publish", format!("objective={}.{i:02}", track + 1)),
            1 => with_active(|r| r.counter("iterations", (track * 100 + i) as u64)),
            2 => with_active(|r| r.span("busy", i as f64, i as f64 + 0.5)),
            3 => span_begin("run"),
            _ => span_end("run"),
        }
    }
}

/// Runs the scripts for `tracks` tracks distributed round-robin over
/// `threads` worker threads and returns the drained stream's deterministic
/// projection.
fn run_with_threads(
    tracks: usize,
    lens: &[usize],
    seed: u64,
    threads: usize,
) -> Vec<(usize, u64, Option<u64>, idd_telemetry::EventKind)> {
    let telemetry = Telemetry::recording();
    // Registration happens on this thread, in track order: ids are stable
    // regardless of worker count, exactly like the portfolio registering
    // member tracks before spawning.
    let handles: Vec<TrackHandle> = (0..tracks)
        .map(|t| telemetry.register(format!("member{t:02}")))
        .collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let handles = &handles;
            let lens = &lens;
            scope.spawn(move || {
                for t in (worker..tracks).step_by(threads) {
                    let _guard = handles[t].install();
                    emit_script(t, lens[t], seed);
                }
            });
        }
    });
    telemetry.drain().deterministic_view()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 1-, 2-, and 4-thread runs of the same scripts produce identical
    /// merged streams under the logical `(track, seq)` key.
    #[test]
    fn merged_stream_is_independent_of_thread_count(
        (tracks, seed, len_seed) in (1usize..8, 0u64..1000, 0u64..1000)
    ) {
        let lens: Vec<usize> = (0..tracks)
            .map(|t| (len_seed as usize + t * 7) % 20)
            .collect();
        let single = run_with_threads(tracks, &lens, seed, 1);
        let dual = run_with_threads(tracks, &lens, seed, 2);
        let quad = run_with_threads(tracks, &lens, seed, 4);
        prop_assert_eq!(&single, &dual);
        prop_assert_eq!(&single, &quad);

        // And the stream is complete: every scripted event arrived.
        let expected: usize = lens.iter().sum();
        prop_assert_eq!(single.len(), expected);
    }
}
