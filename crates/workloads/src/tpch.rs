//! A TPC-H-like workload: 8 tables, 22 analytic queries.
//!
//! The schema follows TPC-H's tables and cardinality ratios (scale factor
//! ~10). Queries are *patterned on* Q1–Q22: same driving tables, join
//! partners, predicate columns and aggregation targets, but expressed in the
//! star-shaped form the `idd-whatif` query model uses — join chains such as
//! `LINEITEM → ORDERS → CUSTOMER → NATION → REGION` are flattened into direct
//! fact-to-dimension joins, and region-level filters become equivalent-
//! selectivity filters on `NATION.REGIONKEY`. The flattening preserves what
//! matters for index selection and ordering: which columns are filtered,
//! joined and aggregated, and therefore which (multi-)index plans exist.

use idd_whatif::{
    AdvisorConfig, Aggregate, Catalog, Column, ColumnRef, ExtractionConfig, Predicate, QuerySpec,
    Table, WhatIfOptions, Workload,
};

/// Scale factor the cardinalities are modelled after.
pub const SCALE_FACTOR: f64 = 10.0;

/// Builds the TPC-H-like catalog.
pub fn catalog() -> Catalog {
    let sf = SCALE_FACTOR;
    let mut c = Catalog::new();
    c.add_table(Table::new(
        "REGION",
        5.0,
        vec![
            Column::int_key("REGIONKEY", 5.0),
            Column::string("R_NAME", 16.0, 5.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "NATION",
        25.0,
        vec![
            Column::int_key("NATIONKEY", 25.0),
            Column::string("N_NAME", 16.0, 25.0),
            Column::int_key("REGIONKEY", 5.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "SUPPLIER",
        10_000.0 * sf,
        vec![
            Column::int_key("SUPPKEY", 10_000.0 * sf),
            Column::int_key("S_NATIONKEY", 25.0),
            Column::new("S_ACCTBAL", 8.0, 9_000.0),
            Column::string("S_COMMENT", 60.0, 10_000.0 * sf),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "CUSTOMER",
        150_000.0 * sf,
        vec![
            Column::int_key("CUSTKEY", 150_000.0 * sf),
            Column::int_key("C_NATIONKEY", 25.0),
            Column::string("C_MKTSEGMENT", 12.0, 5.0),
            Column::new("C_ACCTBAL", 8.0, 100_000.0),
            Column::string("C_PHONE", 16.0, 150_000.0 * sf),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "PART",
        200_000.0 * sf,
        vec![
            Column::int_key("PARTKEY", 200_000.0 * sf),
            Column::string("P_BRAND", 12.0, 25.0),
            Column::string("P_TYPE", 24.0, 150.0),
            Column::int_key("P_SIZE", 50.0),
            Column::string("P_CONTAINER", 12.0, 40.0),
            Column::string("P_NAME", 32.0, 180_000.0 * sf),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "PARTSUPP",
        800_000.0 * sf,
        vec![
            Column::int_key("PS_PARTKEY", 200_000.0 * sf),
            Column::int_key("PS_SUPPKEY", 10_000.0 * sf),
            Column::new("PS_SUPPLYCOST", 8.0, 100_000.0),
            Column::new("PS_AVAILQTY", 4.0, 10_000.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "ORDERS",
        1_500_000.0 * sf,
        vec![
            Column::int_key("ORDERKEY", 1_500_000.0 * sf),
            Column::int_key("O_CUSTKEY", 150_000.0 * sf),
            Column::string("O_ORDERSTATUS", 2.0, 3.0),
            Column::new("O_TOTALPRICE", 8.0, 1_000_000.0),
            Column::new("O_ORDERDATE", 4.0, 2_400.0),
            Column::string("O_ORDERPRIORITY", 16.0, 5.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "LINEITEM",
        6_000_000.0 * sf,
        vec![
            Column::int_key("L_ORDERKEY", 1_500_000.0 * sf),
            Column::int_key("L_PARTKEY", 200_000.0 * sf),
            Column::int_key("L_SUPPKEY", 10_000.0 * sf),
            Column::new("L_QUANTITY", 4.0, 50.0),
            Column::new("L_EXTENDEDPRICE", 8.0, 1_000_000.0),
            Column::new("L_DISCOUNT", 8.0, 11.0),
            Column::new("L_TAX", 8.0, 9.0),
            Column::string("L_RETURNFLAG", 2.0, 3.0),
            Column::string("L_LINESTATUS", 2.0, 2.0),
            Column::new("L_SHIPDATE", 4.0, 2_500.0),
            Column::new("L_COMMITDATE", 4.0, 2_500.0),
            Column::new("L_RECEIPTDATE", 4.0, 2_500.0),
            Column::string("L_SHIPMODE", 12.0, 7.0),
            Column::string("L_SHIPINSTRUCT", 24.0, 4.0),
        ],
    ))
    .unwrap();
    c
}

fn col(table: &str, column: &str) -> ColumnRef {
    ColumnRef::new(table, column)
}

/// Builds the 22 TPC-H-like queries.
// One `push` per query keeps each query's paper reference as a standalone
// commented block; collapsing into `vec![]` would bury them.
#[allow(clippy::vec_init_then_push)]
pub fn queries() -> Vec<QuerySpec> {
    let mut qs = Vec::with_capacity(22);

    // Q1: pricing summary report — scan lineitem with a shipdate range.
    qs.push(
        QuerySpec::new("Q1", "LINEITEM")
            .filter(Predicate::range(col("LINEITEM", "L_SHIPDATE"), 0.97))
            .group(col("LINEITEM", "L_RETURNFLAG"))
            .group(col("LINEITEM", "L_LINESTATUS"))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_QUANTITY")))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q2: minimum cost supplier — partsupp joined to part and supplier.
    qs.push(
        QuerySpec::new("Q2", "PARTSUPP")
            .join(col("PARTSUPP", "PS_PARTKEY"), col("PART", "PARTKEY"))
            .join(col("PARTSUPP", "PS_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .filter(Predicate::equality(col("PART", "P_SIZE")))
            .filter(Predicate::equality(col("PART", "P_TYPE")))
            .filter(Predicate::equality(col("SUPPLIER", "S_NATIONKEY")))
            .group(col("SUPPLIER", "S_ACCTBAL"))
            .aggregate(Aggregate::sum(col("PARTSUPP", "PS_SUPPLYCOST"))),
    );

    // Q3: shipping priority — orders of one segment before a date.
    qs.push(
        QuerySpec::new("Q3", "ORDERS")
            .join(col("ORDERS", "O_CUSTKEY"), col("CUSTOMER", "CUSTKEY"))
            .filter(Predicate::equality(col("CUSTOMER", "C_MKTSEGMENT")))
            .filter(Predicate::range(col("ORDERS", "O_ORDERDATE"), 0.48))
            .group(col("ORDERS", "O_ORDERDATE"))
            .aggregate(Aggregate::sum(col("ORDERS", "O_TOTALPRICE"))),
    );

    // Q4: order priority checking.
    qs.push(
        QuerySpec::new("Q4", "ORDERS")
            .filter(Predicate::range(col("ORDERS", "O_ORDERDATE"), 0.033))
            .group(col("ORDERS", "O_ORDERPRIORITY"))
            .aggregate(Aggregate::sum(col("ORDERS", "O_TOTALPRICE"))),
    );

    // Q5: local supplier volume — orders joined to customer and nation.
    qs.push(
        QuerySpec::new("Q5", "ORDERS")
            .join(col("ORDERS", "O_CUSTKEY"), col("CUSTOMER", "CUSTKEY"))
            .filter(Predicate::equality(col("CUSTOMER", "C_NATIONKEY")))
            .filter(Predicate::range(col("ORDERS", "O_ORDERDATE"), 0.15))
            .group(col("CUSTOMER", "C_NATIONKEY"))
            .aggregate(Aggregate::sum(col("ORDERS", "O_TOTALPRICE"))),
    );

    // Q6: forecasting revenue change — highly selective lineitem scan.
    qs.push(
        QuerySpec::new("Q6", "LINEITEM")
            .filter(Predicate::range(col("LINEITEM", "L_SHIPDATE"), 0.15))
            .filter(Predicate::equality(col("LINEITEM", "L_DISCOUNT")))
            .filter(Predicate::range(col("LINEITEM", "L_QUANTITY"), 0.48))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q7: volume shipping — lineitem joined to supplier and orders.
    qs.push(
        QuerySpec::new("Q7", "LINEITEM")
            .join(col("LINEITEM", "L_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .join(col("LINEITEM", "L_ORDERKEY"), col("ORDERS", "ORDERKEY"))
            .filter(Predicate::equality(col("SUPPLIER", "S_NATIONKEY")))
            .filter(Predicate::range(col("LINEITEM", "L_SHIPDATE"), 0.30))
            .group(col("SUPPLIER", "S_NATIONKEY"))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q8: national market share — lineitem with part, supplier, orders.
    qs.push(
        QuerySpec::new("Q8", "LINEITEM")
            .join(col("LINEITEM", "L_PARTKEY"), col("PART", "PARTKEY"))
            .join(col("LINEITEM", "L_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .join(col("LINEITEM", "L_ORDERKEY"), col("ORDERS", "ORDERKEY"))
            .filter(Predicate::equality(col("PART", "P_TYPE")))
            .filter(Predicate::range(col("ORDERS", "O_ORDERDATE"), 0.30))
            .group(col("SUPPLIER", "S_NATIONKEY"))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q9: product type profit measure.
    qs.push(
        QuerySpec::new("Q9", "LINEITEM")
            .join(col("LINEITEM", "L_PARTKEY"), col("PART", "PARTKEY"))
            .join(col("LINEITEM", "L_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .join(col("LINEITEM", "L_ORDERKEY"), col("ORDERS", "ORDERKEY"))
            .filter(Predicate::range(col("PART", "P_NAME"), 0.054))
            .group(col("SUPPLIER", "S_NATIONKEY"))
            .group(col("ORDERS", "O_ORDERDATE"))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE")))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_QUANTITY"))),
    );

    // Q10: returned item reporting.
    qs.push(
        QuerySpec::new("Q10", "ORDERS")
            .join(col("ORDERS", "O_CUSTKEY"), col("CUSTOMER", "CUSTKEY"))
            .filter(Predicate::range(col("ORDERS", "O_ORDERDATE"), 0.08))
            .group(col("CUSTOMER", "C_NATIONKEY"))
            .aggregate(Aggregate::sum(col("ORDERS", "O_TOTALPRICE"))),
    );

    // Q11: important stock identification.
    qs.push(
        QuerySpec::new("Q11", "PARTSUPP")
            .join(col("PARTSUPP", "PS_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .filter(Predicate::equality(col("SUPPLIER", "S_NATIONKEY")))
            .group(col("PARTSUPP", "PS_PARTKEY"))
            .aggregate(Aggregate::sum(col("PARTSUPP", "PS_SUPPLYCOST"))),
    );

    // Q12: shipping modes and order priority.
    qs.push(
        QuerySpec::new("Q12", "LINEITEM")
            .join(col("LINEITEM", "L_ORDERKEY"), col("ORDERS", "ORDERKEY"))
            .filter(Predicate::in_list(col("LINEITEM", "L_SHIPMODE"), 2))
            .filter(Predicate::range(col("LINEITEM", "L_RECEIPTDATE"), 0.15))
            .group(col("LINEITEM", "L_SHIPMODE"))
            .aggregate(Aggregate::sum(col("ORDERS", "O_TOTALPRICE"))),
    );

    // Q13: customer distribution.
    qs.push(
        QuerySpec::new("Q13", "ORDERS")
            .join(col("ORDERS", "O_CUSTKEY"), col("CUSTOMER", "CUSTKEY"))
            .group(col("ORDERS", "O_CUSTKEY"))
            .aggregate(Aggregate::sum(col("ORDERS", "O_TOTALPRICE"))),
    );

    // Q14: promotion effect.
    qs.push(
        QuerySpec::new("Q14", "LINEITEM")
            .join(col("LINEITEM", "L_PARTKEY"), col("PART", "PARTKEY"))
            .filter(Predicate::range(col("LINEITEM", "L_SHIPDATE"), 0.012))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q15: top supplier.
    qs.push(
        QuerySpec::new("Q15", "LINEITEM")
            .join(col("LINEITEM", "L_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .filter(Predicate::range(col("LINEITEM", "L_SHIPDATE"), 0.04))
            .group(col("LINEITEM", "L_SUPPKEY"))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q16: parts/supplier relationship.
    qs.push(
        QuerySpec::new("Q16", "PARTSUPP")
            .join(col("PARTSUPP", "PS_PARTKEY"), col("PART", "PARTKEY"))
            .filter(Predicate::equality(col("PART", "P_BRAND")))
            .filter(Predicate::in_list(col("PART", "P_SIZE"), 8))
            .group(col("PART", "P_BRAND"))
            .group(col("PART", "P_TYPE"))
            .aggregate(Aggregate::sum(col("PARTSUPP", "PS_AVAILQTY"))),
    );

    // Q17: small-quantity-order revenue.
    qs.push(
        QuerySpec::new("Q17", "LINEITEM")
            .join(col("LINEITEM", "L_PARTKEY"), col("PART", "PARTKEY"))
            .filter(Predicate::equality(col("PART", "P_BRAND")))
            .filter(Predicate::equality(col("PART", "P_CONTAINER")))
            .filter(Predicate::range(col("LINEITEM", "L_QUANTITY"), 0.2))
            .aggregate(Aggregate::avg(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q18: large volume customer.
    qs.push(
        QuerySpec::new("Q18", "ORDERS")
            .join(col("ORDERS", "O_CUSTKEY"), col("CUSTOMER", "CUSTKEY"))
            .filter(Predicate::range(col("ORDERS", "O_TOTALPRICE"), 0.02))
            .group(col("ORDERS", "O_CUSTKEY"))
            .group(col("ORDERS", "O_ORDERDATE"))
            .aggregate(Aggregate::sum(col("ORDERS", "O_TOTALPRICE"))),
    );

    // Q19: discounted revenue — part/brand/container combinations.
    qs.push(
        QuerySpec::new("Q19", "LINEITEM")
            .join(col("LINEITEM", "L_PARTKEY"), col("PART", "PARTKEY"))
            .filter(Predicate::in_list(col("PART", "P_BRAND"), 3))
            .filter(Predicate::in_list(col("PART", "P_CONTAINER"), 12))
            .filter(Predicate::range(col("LINEITEM", "L_QUANTITY"), 0.4))
            .filter(Predicate::in_list(col("LINEITEM", "L_SHIPMODE"), 2))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_EXTENDEDPRICE"))),
    );

    // Q20: potential part promotion.
    qs.push(
        QuerySpec::new("Q20", "PARTSUPP")
            .join(col("PARTSUPP", "PS_PARTKEY"), col("PART", "PARTKEY"))
            .join(col("PARTSUPP", "PS_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .filter(Predicate::range(col("PART", "P_NAME"), 0.01))
            .filter(Predicate::equality(col("SUPPLIER", "S_NATIONKEY")))
            .aggregate(Aggregate::sum(col("PARTSUPP", "PS_AVAILQTY"))),
    );

    // Q21: suppliers who kept orders waiting.
    qs.push(
        QuerySpec::new("Q21", "LINEITEM")
            .join(col("LINEITEM", "L_SUPPKEY"), col("SUPPLIER", "SUPPKEY"))
            .join(col("LINEITEM", "L_ORDERKEY"), col("ORDERS", "ORDERKEY"))
            .filter(Predicate::equality(col("SUPPLIER", "S_NATIONKEY")))
            .filter(Predicate::equality(col("ORDERS", "O_ORDERSTATUS")))
            .filter(Predicate::range(col("LINEITEM", "L_RECEIPTDATE"), 0.5))
            .group(col("LINEITEM", "L_SUPPKEY"))
            .aggregate(Aggregate::sum(col("LINEITEM", "L_QUANTITY"))),
    );

    // Q22: global sales opportunity.
    qs.push(
        QuerySpec::new("Q22", "CUSTOMER")
            .filter(Predicate::in_list(col("CUSTOMER", "C_PHONE"), 7))
            .filter(Predicate::range(col("CUSTOMER", "C_ACCTBAL"), 0.5))
            .group(col("CUSTOMER", "C_NATIONKEY"))
            .aggregate(Aggregate::sum(col("CUSTOMER", "C_ACCTBAL"))),
    );

    qs
}

/// The full TPC-H-like workload (catalog + 22 queries).
pub fn workload() -> Workload {
    Workload::new("tpch", catalog(), queries())
}

/// Extraction configuration matching the paper's TPC-H design size
/// (31 suggested indexes) and plan density (~10 plans per query).
pub fn extraction_config() -> ExtractionConfig {
    ExtractionConfig {
        advisor: AdvisorConfig::with_budget(31),
        whatif: WhatIfOptions {
            max_iterations: 10,
            probe_singletons: true,
            min_speedup_ratio: 0.001,
        },
        min_build_interaction_ratio: 0.02,
        max_helpers_per_target: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eight_tables_with_tpch_ratios() {
        let c = catalog();
        assert_eq!(c.num_tables(), 8);
        let lineitem = c.table("LINEITEM").unwrap();
        let orders = c.table("ORDERS").unwrap();
        assert!((lineitem.rows / orders.rows - 4.0).abs() < 0.5);
        assert!(c.table("REGION").unwrap().rows < 10.0);
    }

    #[test]
    fn there_are_22_queries_and_all_reference_valid_columns() {
        let w = workload();
        assert_eq!(w.queries.len(), 22);
        for q in &w.queries {
            for t in q.tables() {
                assert!(w.catalog.table(t).is_some(), "{} references {t}", q.name);
            }
            for p in &q.predicates {
                assert!(
                    w.catalog
                        .require_column(&p.column.table, &p.column.column)
                        .is_ok(),
                    "{} filters unknown column {}",
                    q.name,
                    p.column
                );
            }
            for j in &q.joins {
                assert!(w
                    .catalog
                    .require_column(&j.fact_column.table, &j.fact_column.column)
                    .is_ok());
                assert!(w
                    .catalog
                    .require_column(&j.dimension_column.table, &j.dimension_column.column)
                    .is_ok());
            }
        }
    }

    #[test]
    fn query_names_are_unique() {
        let qs = queries();
        let mut names: Vec<&str> = qs.iter().map(|q| q.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn extraction_config_matches_paper_budget() {
        assert_eq!(extraction_config().advisor.max_indexes, 31);
    }
}
