//! Seeded evolution-scenario generators: how a workload drifts, how a
//! design is revised, how builds fail — the "evolving" half of evolving
//! OLAP, packaged as deterministic [`EvolutionScenario`]s for the
//! `idd-deploy` runtime and the `table9` experiment.
//!
//! Every generator takes the instance it will evolve plus an
//! [`EvolutionConfig`] and produces the same scenario for the same seed on
//! every machine. Event timestamps are placed as fractions of the
//! *no-interaction deployment length* (`Σ ctime(i)`), so scenarios scale
//! with the instance instead of hard-coding clock values.

use idd_core::{
    BuildFailure, DesignRevision, EventKind, EvolutionEvent, EvolutionScenario, IndexAddition,
    IndexId, ProblemInstance, QueryId, WorkloadDrift,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters of the scenario generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// RNG seed; same seed, same scenario.
    pub seed: u64,
    /// Number of drift events ([`drift_scenario`]) or revisions
    /// ([`revision_scenario`]).
    pub num_events: usize,
    /// Fraction of the queries whose weight moves per drift event.
    pub drift_fraction: f64,
    /// Strongest up-weight factor a drifting query can receive (hot
    /// queries); cooling queries drop towards zero symmetrically.
    pub drift_magnitude: f64,
    /// Indexes added per revision event.
    pub additions_per_revision: usize,
    /// Indexes dropped per revision event.
    pub drops_per_revision: usize,
    /// Number of failing builds ([`failure_scenario`]).
    pub num_failures: usize,
    /// Fraction of the effective build cost wasted per failed attempt.
    pub waste_fraction: f64,
    /// Event window: events land uniformly in
    /// `[0, horizon_fraction · Σ ctime(i)]`, i.e. while the deployment is
    /// still in flight.
    pub horizon_fraction: f64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            num_events: 2,
            drift_fraction: 0.3,
            drift_magnitude: 6.0,
            additions_per_revision: 1,
            drops_per_revision: 1,
            num_failures: 1,
            waste_fraction: 0.5,
            horizon_fraction: 0.6,
        }
    }
}

fn rng_for(cfg: &EvolutionConfig, salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt),
    )
}

fn event_times(
    instance: &ProblemInstance,
    cfg: &EvolutionConfig,
    rng: &mut ChaCha8Rng,
) -> Vec<f64> {
    let horizon = instance.total_base_build_cost() * cfg.horizon_fraction.max(0.0);
    let mut times: Vec<f64> = (0..cfg.num_events)
        .map(|_| rng.gen_range(0.0..horizon.max(1e-9)))
        .collect();
    times.sort_by(f64::total_cmp);
    times
}

/// A pure workload-drift scenario: `num_events` re-weighting events, each
/// heating a random subset of queries (weight × up to `drift_magnitude`) and
/// cooling another (weight ÷ up to `drift_magnitude`). The total workload
/// importance therefore shifts *between* queries — exactly the situation
/// where the order chosen offline stops being the right one.
pub fn drift_scenario(instance: &ProblemInstance, cfg: &EvolutionConfig) -> EvolutionScenario {
    let mut rng = rng_for(cfg, 0xD81F);
    let num_queries = instance.num_queries();
    let per_event =
        ((num_queries as f64 * cfg.drift_fraction).ceil() as usize).clamp(1, num_queries.max(1));
    let events = event_times(instance, cfg, &mut rng)
        .into_iter()
        .map(|at| {
            let mut ids: Vec<usize> = (0..num_queries).collect();
            ids.shuffle(&mut rng);
            let mut weights = Vec::with_capacity(per_event);
            for (k, &q) in ids.iter().take(per_event).enumerate() {
                let current = instance.query(QueryId::new(q)).weight;
                let factor = rng.gen_range(1.5..cfg.drift_magnitude.max(1.6));
                // Alternate heating and cooling so drift moves importance
                // around rather than only inflating it.
                let new_weight = if k % 2 == 0 {
                    current * factor
                } else {
                    current / factor
                };
                weights.push((QueryId::new(q), new_weight));
            }
            EvolutionEvent {
                at,
                kind: EventKind::Drift(WorkloadDrift { weights }),
            }
        })
        .collect();
    EvolutionScenario {
        name: format!("drift-{}", cfg.seed),
        events,
        failures: Vec::new(),
    }
}

/// A design-revision scenario: each event retracts `drops_per_revision`
/// random candidate indexes (the advisor changed its mind) and adds
/// `additions_per_revision` fresh ones, each speeding up an existing query
/// through a plan that pairs it with an existing index, helped by an
/// existing index on the build side.
pub fn revision_scenario(instance: &ProblemInstance, cfg: &EvolutionConfig) -> EvolutionScenario {
    let mut rng = rng_for(cfg, 0x4E51 ^ 0xBEEF);
    let n = instance.num_indexes();
    let events = event_times(instance, cfg, &mut rng)
        .into_iter()
        .enumerate()
        .map(|(event_idx, at)| {
            let mut add = Vec::with_capacity(cfg.additions_per_revision);
            for k in 0..cfg.additions_per_revision {
                let query = QueryId::new(rng.gen_range(0..instance.num_queries()));
                let runtime = instance.query(query).original_runtime;
                let partner = IndexId::new(rng.gen_range(0..n));
                let helper = IndexId::new(rng.gen_range(0..n));
                let creation_cost = rng.gen_range(2.0..30.0);
                add.push(IndexAddition {
                    name: format!("rev{event_idx}_ix{k}"),
                    creation_cost,
                    plans: vec![(query, vec![partner], runtime * rng.gen_range(0.3..0.7))],
                    helped_by: vec![(helper, creation_cost * rng.gen_range(0.1..0.6))],
                    helps: Vec::new(),
                    after: Vec::new(),
                });
            }
            let mut drop = Vec::new();
            let mut candidates: Vec<usize> = (0..n).collect();
            candidates.shuffle(&mut rng);
            for &raw in candidates.iter().take(cfg.drops_per_revision) {
                drop.push(IndexId::new(raw));
            }
            EvolutionEvent {
                at,
                kind: EventKind::Revision(DesignRevision { add, drop }),
            }
        })
        .collect();
    EvolutionScenario {
        name: format!("revision-{}", cfg.seed),
        events,
        failures: Vec::new(),
    }
}

/// A build-failure scenario: `num_failures` random indexes fail once (or
/// twice for every third pick) before succeeding, wasting
/// `waste_fraction` of their effective build cost per attempt.
pub fn failure_scenario(instance: &ProblemInstance, cfg: &EvolutionConfig) -> EvolutionScenario {
    let mut rng = rng_for(cfg, 0xFA11);
    let mut candidates: Vec<usize> = (0..instance.num_indexes()).collect();
    candidates.shuffle(&mut rng);
    let failures = candidates
        .into_iter()
        .take(cfg.num_failures)
        .enumerate()
        .map(|(k, raw)| BuildFailure {
            index: IndexId::new(raw),
            failures: if k % 3 == 2 { 2 } else { 1 },
            waste_fraction: cfg.waste_fraction.clamp(0.0, 1.0),
        })
        .collect();
    EvolutionScenario {
        name: format!("failure-{}", cfg.seed),
        events: Vec::new(),
        failures,
    }
}

/// Everything at once: drift events interleaved with revisions, plus build
/// failures — the adversarial soak scenario.
pub fn mixed_scenario(instance: &ProblemInstance, cfg: &EvolutionConfig) -> EvolutionScenario {
    let drift = drift_scenario(instance, cfg);
    let revision = revision_scenario(instance, cfg);
    let failure = failure_scenario(instance, cfg);
    let mut events = drift.events;
    events.extend(revision.events);
    events.sort_by(|a, b| a.at.total_cmp(&b.at));
    EvolutionScenario {
        name: format!("mixed-{}", cfg.seed),
        events,
        failures: failure.failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    fn base() -> ProblemInstance {
        generate(SyntheticConfig::small(7))
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let inst = base();
        let cfg = EvolutionConfig::default();
        assert_eq!(drift_scenario(&inst, &cfg), drift_scenario(&inst, &cfg));
        assert_eq!(
            revision_scenario(&inst, &cfg),
            revision_scenario(&inst, &cfg)
        );
        assert_eq!(failure_scenario(&inst, &cfg), failure_scenario(&inst, &cfg));
        assert_eq!(mixed_scenario(&inst, &cfg), mixed_scenario(&inst, &cfg));
        let other = EvolutionConfig {
            seed: 43,
            ..EvolutionConfig::default()
        };
        assert_ne!(drift_scenario(&inst, &cfg), drift_scenario(&inst, &other));
    }

    #[test]
    fn drift_events_land_inside_the_horizon_and_reference_real_queries() {
        let inst = base();
        let cfg = EvolutionConfig {
            num_events: 4,
            ..EvolutionConfig::default()
        };
        let scenario = drift_scenario(&inst, &cfg);
        assert_eq!(scenario.events.len(), 4);
        let horizon = inst.total_base_build_cost() * cfg.horizon_fraction;
        for event in &scenario.events {
            assert!(event.at >= 0.0 && event.at <= horizon);
            let EventKind::Drift(drift) = &event.kind else {
                panic!("drift scenario produced a non-drift event");
            };
            assert!(!drift.weights.is_empty());
            for &(q, w) in &drift.weights {
                assert!(q.raw() < inst.num_queries());
                assert!(w >= 0.0);
            }
            // Applying the drift must yield a consistent instance.
            assert!(drift.apply_to(&inst).is_ok());
        }
    }

    #[test]
    fn revisions_apply_cleanly_to_their_instance() {
        let inst = base();
        let cfg = EvolutionConfig {
            num_events: 3,
            additions_per_revision: 2,
            drops_per_revision: 1,
            ..EvolutionConfig::default()
        };
        let scenario = revision_scenario(&inst, &cfg);
        assert_eq!(scenario.events.len(), 3);
        for event in &scenario.events {
            let EventKind::Revision(revision) = &event.kind else {
                panic!("revision scenario produced a non-revision event");
            };
            assert_eq!(revision.add.len(), 2);
            assert_eq!(revision.drop.len(), 1);
            let (revised, new_ids) = revision.apply_additions(&inst).unwrap();
            assert_eq!(revised.num_indexes(), inst.num_indexes() + 2);
            assert_eq!(new_ids.len(), 2);
        }
    }

    #[test]
    fn failures_reference_distinct_real_indexes() {
        let inst = base();
        let cfg = EvolutionConfig {
            num_failures: 3,
            ..EvolutionConfig::default()
        };
        let scenario = failure_scenario(&inst, &cfg);
        assert_eq!(scenario.failures.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for f in &scenario.failures {
            assert!(f.index.raw() < inst.num_indexes());
            assert!(seen.insert(f.index));
            assert!(f.failures >= 1);
            assert!((0.0..=1.0).contains(&f.waste_fraction));
        }
    }

    #[test]
    fn mixed_scenarios_interleave_sorted_events() {
        let inst = base();
        let scenario = mixed_scenario(&inst, &EvolutionConfig::default());
        assert!(!scenario.is_quiet());
        for pair in scenario.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(!scenario.failures.is_empty());
    }
}
