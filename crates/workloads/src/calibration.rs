//! Calibration against the paper's Table 4.
//!
//! The generated workloads cannot reproduce the paper's instances bit-for-bit
//! (the commercial design tool and benchmark data are unavailable — see
//! DESIGN.md), so instead we check that the *shape* matches: index counts,
//! plan counts, plan width and interaction counts must land in the same
//! regime. [`CalibrationReport`] performs those checks and renders the
//! side-by-side comparison printed by the Table-4 harness.

use idd_core::{InstanceStats, ProblemInstance};
use serde::{Deserialize, Serialize};

/// The Table-4 numbers reported in the paper for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTargets {
    /// `|Q|`.
    pub num_queries: usize,
    /// `|I|`.
    pub num_indexes: usize,
    /// `|P|`.
    pub num_plans: usize,
    /// Widest plan.
    pub largest_plan: usize,
    /// Build interactions.
    pub num_build_interactions: usize,
    /// Query interactions.
    pub num_query_interactions: usize,
}

impl PaperTargets {
    /// Table 4, TPC-H row.
    pub fn tpch() -> Self {
        Self {
            num_queries: 22,
            num_indexes: 31,
            num_plans: 221,
            largest_plan: 5,
            num_build_interactions: 31,
            num_query_interactions: 80,
        }
    }

    /// Table 4, TPC-DS row.
    pub fn tpcds() -> Self {
        Self {
            num_queries: 102,
            num_indexes: 148,
            num_plans: 3386,
            largest_plan: 13,
            num_build_interactions: 243,
            num_query_interactions: 1363,
        }
    }
}

/// Outcome of comparing a generated instance with the paper's targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Statistics of the generated instance.
    pub measured: InstanceStats,
    /// The paper's numbers.
    pub target: PaperTargets,
    /// Whether each measured quantity is within the accepted band of its
    /// target (same order of magnitude / same regime).
    pub within_band: bool,
    /// Human-readable notes on any quantity outside its band.
    pub notes: Vec<String>,
}

/// Acceptance band: a measured count is "in regime" when it is within a
/// factor of `factor` of the paper's number (and exact-match is required for
/// the query count, which we control directly).
fn in_band(measured: usize, target: usize, factor: f64) -> bool {
    if target == 0 {
        return measured == 0;
    }
    let ratio = measured as f64 / target as f64;
    ratio >= 1.0 / factor && ratio <= factor
}

impl CalibrationReport {
    /// Compares an instance against the paper targets.
    pub fn compare(instance: &ProblemInstance, target: PaperTargets) -> Self {
        let measured = InstanceStats::of(instance);
        let mut notes = Vec::new();

        if measured.num_queries != target.num_queries {
            notes.push(format!(
                "query count {} differs from paper's {}",
                measured.num_queries, target.num_queries
            ));
        }
        if !in_band(measured.num_indexes, target.num_indexes, 1.5) {
            notes.push(format!(
                "index count {} outside 1.5x band of paper's {}",
                measured.num_indexes, target.num_indexes
            ));
        }
        if !in_band(measured.num_plans, target.num_plans, 3.0) {
            notes.push(format!(
                "plan count {} outside 3x band of paper's {}",
                measured.num_plans, target.num_plans
            ));
        }
        if !in_band(measured.largest_plan, target.largest_plan, 2.0) {
            notes.push(format!(
                "largest plan {} outside 2x band of paper's {}",
                measured.largest_plan, target.largest_plan
            ));
        }
        if !in_band(
            measured.num_build_interactions,
            target.num_build_interactions,
            4.0,
        ) {
            notes.push(format!(
                "build interactions {} outside 4x band of paper's {}",
                measured.num_build_interactions, target.num_build_interactions
            ));
        }
        if !in_band(
            measured.num_query_interactions,
            target.num_query_interactions,
            4.0,
        ) {
            notes.push(format!(
                "query interactions {} outside 4x band of paper's {}",
                measured.num_query_interactions, target.num_query_interactions
            ));
        }

        CalibrationReport {
            within_band: notes.is_empty(),
            measured,
            target,
            notes,
        }
    }

    /// Renders a side-by-side paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>10} {:>10}\n",
            "quantity", "paper", "measured"
        ));
        let rows = [
            (
                "|Q| queries",
                self.target.num_queries,
                self.measured.num_queries,
            ),
            (
                "|I| indexes",
                self.target.num_indexes,
                self.measured.num_indexes,
            ),
            ("|P| plans", self.target.num_plans, self.measured.num_plans),
            (
                "largest plan",
                self.target.largest_plan,
                self.measured.largest_plan,
            ),
            (
                "build interactions",
                self.target.num_build_interactions,
                self.measured.num_build_interactions,
            ),
            (
                "query interactions",
                self.target.num_query_interactions,
                self.measured.num_query_interactions,
            ),
        ];
        for (name, paper, measured) in rows {
            out.push_str(&format!("{name:<22} {paper:>10} {measured:>10}\n"));
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for n in &self.notes {
                out.push_str(&format!("  - {n}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    #[test]
    fn paper_targets_match_table4() {
        let h = PaperTargets::tpch();
        assert_eq!(h.num_indexes, 31);
        assert_eq!(h.num_plans, 221);
        let ds = PaperTargets::tpcds();
        assert_eq!(ds.num_indexes, 148);
        assert_eq!(ds.largest_plan, 13);
    }

    #[test]
    fn in_band_accepts_same_regime_only() {
        assert!(in_band(100, 100, 1.5));
        assert!(in_band(140, 100, 1.5));
        assert!(!in_band(200, 100, 1.5));
        assert!(!in_band(10, 100, 3.0));
        assert!(in_band(0, 0, 2.0));
    }

    #[test]
    fn synthetic_large_instance_is_roughly_tpcds_shaped() {
        let inst = generate(SyntheticConfig::large(5));
        let report = CalibrationReport::compare(&inst, PaperTargets::tpcds());
        // The synthetic generator targets the right counts; the render output
        // should mention both columns either way.
        let text = report.render();
        assert!(text.contains("paper"));
        assert!(text.contains("148"));
    }

    #[test]
    fn mismatch_produces_notes() {
        let inst = generate(SyntheticConfig::small(1));
        let report = CalibrationReport::compare(&inst, PaperTargets::tpcds());
        assert!(!report.within_band);
        assert!(!report.notes.is_empty());
    }
}
