//! A TPC-DS-like workload: a snowflake retail schema and 102 generated
//! analytic queries.
//!
//! TPC-DS queries are far wider than TPC-H's — the paper reports plans using
//! up to 13 indexes together and 3386 extracted plans for 102 queries. To
//! reproduce that regime without the original query text, this module pairs a
//! TPC-DS-shaped schema (sales/returns/inventory facts, a dozen-plus
//! dimensions) with a *deterministic query generator*: each of the 102
//! queries picks a fact table, joins a handful-to-a-dozen dimensions, filters
//! several of them, and aggregates fact measures grouped by dimension
//! attributes. The generator is seeded, so the workload — and therefore the
//! extracted problem instance — is identical on every run.

use idd_whatif::{
    AdvisorConfig, Aggregate, Catalog, Column, ColumnRef, ExtractionConfig, Predicate, QuerySpec,
    Table, WhatIfOptions, Workload,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Seed of the deterministic query generator.
pub const QUERY_SEED: u64 = 0x1DD2012;

/// Number of generated queries (matches the paper's TPC-DS workload).
pub const NUM_QUERIES: usize = 102;

/// Description of a fact table's join structure used by the generator.
struct FactSpec {
    name: &'static str,
    /// `(fact FK column, dimension table, dimension PK column)`.
    joins: &'static [(&'static str, &'static str, &'static str)],
    /// Numeric measure columns.
    measures: &'static [&'static str],
    /// Relative probability of a query using this fact table.
    weight: f64,
}

/// Filterable / groupable attributes per dimension table.
struct DimSpec {
    name: &'static str,
    /// `(column, kind)` where kind is 'e' equality, 'r' range, 'i' in-list.
    attributes: &'static [(&'static str, char)],
}

const FACTS: &[FactSpec] = &[
    FactSpec {
        name: "STORE_SALES",
        joins: &[
            ("SS_SOLD_DATE_SK", "DATE_DIM", "D_DATE_SK"),
            ("SS_SOLD_TIME_SK", "TIME_DIM", "T_TIME_SK"),
            ("SS_ITEM_SK", "ITEM", "I_ITEM_SK"),
            ("SS_CUSTOMER_SK", "CUSTOMER", "C_CUSTOMER_SK"),
            ("SS_CDEMO_SK", "CUSTOMER_DEMOGRAPHICS", "CD_DEMO_SK"),
            ("SS_HDEMO_SK", "HOUSEHOLD_DEMOGRAPHICS", "HD_DEMO_SK"),
            ("SS_ADDR_SK", "CUSTOMER_ADDRESS", "CA_ADDRESS_SK"),
            ("SS_STORE_SK", "STORE", "S_STORE_SK"),
            ("SS_PROMO_SK", "PROMOTION", "P_PROMO_SK"),
        ],
        measures: &[
            "SS_QUANTITY",
            "SS_SALES_PRICE",
            "SS_EXT_SALES_PRICE",
            "SS_NET_PROFIT",
        ],
        weight: 0.40,
    },
    FactSpec {
        name: "CATALOG_SALES",
        joins: &[
            ("CS_SOLD_DATE_SK", "DATE_DIM", "D_DATE_SK"),
            ("CS_SHIP_DATE_SK", "DATE_DIM", "D_DATE_SK"),
            ("CS_ITEM_SK", "ITEM", "I_ITEM_SK"),
            ("CS_BILL_CUSTOMER_SK", "CUSTOMER", "C_CUSTOMER_SK"),
            ("CS_BILL_CDEMO_SK", "CUSTOMER_DEMOGRAPHICS", "CD_DEMO_SK"),
            ("CS_BILL_HDEMO_SK", "HOUSEHOLD_DEMOGRAPHICS", "HD_DEMO_SK"),
            ("CS_BILL_ADDR_SK", "CUSTOMER_ADDRESS", "CA_ADDRESS_SK"),
            ("CS_CALL_CENTER_SK", "CALL_CENTER", "CC_CALL_CENTER_SK"),
            ("CS_CATALOG_PAGE_SK", "CATALOG_PAGE", "CP_CATALOG_PAGE_SK"),
            ("CS_SHIP_MODE_SK", "SHIP_MODE", "SM_SHIP_MODE_SK"),
            ("CS_WAREHOUSE_SK", "WAREHOUSE", "W_WAREHOUSE_SK"),
            ("CS_PROMO_SK", "PROMOTION", "P_PROMO_SK"),
        ],
        measures: &[
            "CS_QUANTITY",
            "CS_SALES_PRICE",
            "CS_EXT_SALES_PRICE",
            "CS_NET_PROFIT",
        ],
        weight: 0.25,
    },
    FactSpec {
        name: "WEB_SALES",
        joins: &[
            ("WS_SOLD_DATE_SK", "DATE_DIM", "D_DATE_SK"),
            ("WS_ITEM_SK", "ITEM", "I_ITEM_SK"),
            ("WS_BILL_CUSTOMER_SK", "CUSTOMER", "C_CUSTOMER_SK"),
            ("WS_BILL_CDEMO_SK", "CUSTOMER_DEMOGRAPHICS", "CD_DEMO_SK"),
            ("WS_BILL_ADDR_SK", "CUSTOMER_ADDRESS", "CA_ADDRESS_SK"),
            ("WS_WEB_SITE_SK", "WEB_SITE", "WEB_SITE_SK"),
            ("WS_WEB_PAGE_SK", "WEB_PAGE", "WP_WEB_PAGE_SK"),
            ("WS_SHIP_MODE_SK", "SHIP_MODE", "SM_SHIP_MODE_SK"),
            ("WS_WAREHOUSE_SK", "WAREHOUSE", "W_WAREHOUSE_SK"),
            ("WS_PROMO_SK", "PROMOTION", "P_PROMO_SK"),
        ],
        measures: &[
            "WS_QUANTITY",
            "WS_SALES_PRICE",
            "WS_EXT_SALES_PRICE",
            "WS_NET_PROFIT",
        ],
        weight: 0.18,
    },
    FactSpec {
        name: "STORE_RETURNS",
        joins: &[
            ("SR_RETURNED_DATE_SK", "DATE_DIM", "D_DATE_SK"),
            ("SR_ITEM_SK", "ITEM", "I_ITEM_SK"),
            ("SR_CUSTOMER_SK", "CUSTOMER", "C_CUSTOMER_SK"),
            ("SR_CDEMO_SK", "CUSTOMER_DEMOGRAPHICS", "CD_DEMO_SK"),
            ("SR_ADDR_SK", "CUSTOMER_ADDRESS", "CA_ADDRESS_SK"),
            ("SR_STORE_SK", "STORE", "S_STORE_SK"),
            ("SR_REASON_SK", "REASON", "R_REASON_SK"),
        ],
        measures: &["SR_RETURN_QUANTITY", "SR_RETURN_AMT", "SR_NET_LOSS"],
        weight: 0.10,
    },
    FactSpec {
        name: "INVENTORY",
        joins: &[
            ("INV_DATE_SK", "DATE_DIM", "D_DATE_SK"),
            ("INV_ITEM_SK", "ITEM", "I_ITEM_SK"),
            ("INV_WAREHOUSE_SK", "WAREHOUSE", "W_WAREHOUSE_SK"),
        ],
        measures: &["INV_QUANTITY_ON_HAND"],
        weight: 0.07,
    },
];

const DIMS: &[DimSpec] = &[
    DimSpec {
        name: "DATE_DIM",
        attributes: &[
            ("D_YEAR", 'e'),
            ("D_MOY", 'e'),
            ("D_QOY", 'e'),
            ("D_DOW", 'e'),
        ],
    },
    DimSpec {
        name: "TIME_DIM",
        attributes: &[("T_HOUR", 'e'), ("T_MEAL_TIME", 'e')],
    },
    DimSpec {
        name: "ITEM",
        attributes: &[
            ("I_CATEGORY", 'e'),
            ("I_BRAND", 'e'),
            ("I_CLASS", 'e'),
            ("I_MANUFACT_ID", 'i'),
            ("I_COLOR", 'i'),
        ],
    },
    DimSpec {
        name: "CUSTOMER",
        attributes: &[("C_BIRTH_COUNTRY", 'e'), ("C_PREFERRED_CUST_FLAG", 'e')],
    },
    DimSpec {
        name: "CUSTOMER_DEMOGRAPHICS",
        attributes: &[
            ("CD_GENDER", 'e'),
            ("CD_MARITAL_STATUS", 'e'),
            ("CD_EDUCATION_STATUS", 'e'),
        ],
    },
    DimSpec {
        name: "HOUSEHOLD_DEMOGRAPHICS",
        attributes: &[("HD_BUY_POTENTIAL", 'e'), ("HD_DEP_COUNT", 'e')],
    },
    DimSpec {
        name: "CUSTOMER_ADDRESS",
        attributes: &[("CA_STATE", 'i'), ("CA_GMT_OFFSET", 'e'), ("CA_CITY", 'i')],
    },
    DimSpec {
        name: "STORE",
        attributes: &[("S_STATE", 'i'), ("S_COUNTY", 'e')],
    },
    DimSpec {
        name: "PROMOTION",
        attributes: &[("P_CHANNEL_EMAIL", 'e'), ("P_CHANNEL_TV", 'e')],
    },
    DimSpec {
        name: "WAREHOUSE",
        attributes: &[("W_STATE", 'e')],
    },
    DimSpec {
        name: "SHIP_MODE",
        attributes: &[("SM_TYPE", 'e'), ("SM_CARRIER", 'e')],
    },
    DimSpec {
        name: "WEB_SITE",
        attributes: &[("WEB_CLASS", 'e')],
    },
    DimSpec {
        name: "WEB_PAGE",
        attributes: &[("WP_TYPE", 'e')],
    },
    DimSpec {
        name: "CALL_CENTER",
        attributes: &[("CC_CLASS", 'e')],
    },
    DimSpec {
        name: "CATALOG_PAGE",
        attributes: &[("CP_TYPE", 'e')],
    },
    DimSpec {
        name: "REASON",
        attributes: &[("R_REASON_DESC", 'e')],
    },
];

/// Builds the TPC-DS-like catalog (scale ~100 cardinality ratios).
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();

    // Dimensions.
    c.add_table(Table::new(
        "DATE_DIM",
        73_049.0,
        vec![
            Column::int_key("D_DATE_SK", 73_049.0),
            Column::int_key("D_YEAR", 200.0),
            Column::int_key("D_MOY", 12.0),
            Column::int_key("D_QOY", 4.0),
            Column::int_key("D_DOW", 7.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "TIME_DIM",
        86_400.0,
        vec![
            Column::int_key("T_TIME_SK", 86_400.0),
            Column::int_key("T_HOUR", 24.0),
            Column::string("T_MEAL_TIME", 12.0, 4.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "ITEM",
        204_000.0,
        vec![
            Column::int_key("I_ITEM_SK", 204_000.0),
            Column::string("I_CATEGORY", 16.0, 10.0),
            Column::string("I_BRAND", 24.0, 700.0),
            Column::string("I_CLASS", 16.0, 100.0),
            Column::int_key("I_MANUFACT_ID", 1_000.0),
            Column::string("I_COLOR", 12.0, 90.0),
            Column::new("I_CURRENT_PRICE", 8.0, 10_000.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "CUSTOMER",
        2_000_000.0,
        vec![
            Column::int_key("C_CUSTOMER_SK", 2_000_000.0),
            Column::string("C_BIRTH_COUNTRY", 20.0, 200.0),
            Column::string("C_PREFERRED_CUST_FLAG", 2.0, 2.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "CUSTOMER_DEMOGRAPHICS",
        1_920_800.0,
        vec![
            Column::int_key("CD_DEMO_SK", 1_920_800.0),
            Column::string("CD_GENDER", 2.0, 2.0),
            Column::string("CD_MARITAL_STATUS", 2.0, 5.0),
            Column::string("CD_EDUCATION_STATUS", 16.0, 7.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "HOUSEHOLD_DEMOGRAPHICS",
        7_200.0,
        vec![
            Column::int_key("HD_DEMO_SK", 7_200.0),
            Column::string("HD_BUY_POTENTIAL", 12.0, 6.0),
            Column::int_key("HD_DEP_COUNT", 10.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "CUSTOMER_ADDRESS",
        1_000_000.0,
        vec![
            Column::int_key("CA_ADDRESS_SK", 1_000_000.0),
            Column::string("CA_STATE", 4.0, 51.0),
            Column::new("CA_GMT_OFFSET", 4.0, 7.0),
            Column::string("CA_CITY", 16.0, 1_000.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "STORE",
        402.0,
        vec![
            Column::int_key("S_STORE_SK", 402.0),
            Column::string("S_STATE", 4.0, 30.0),
            Column::string("S_COUNTY", 24.0, 100.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "PROMOTION",
        1_000.0,
        vec![
            Column::int_key("P_PROMO_SK", 1_000.0),
            Column::string("P_CHANNEL_EMAIL", 2.0, 2.0),
            Column::string("P_CHANNEL_TV", 2.0, 2.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "WAREHOUSE",
        15.0,
        vec![
            Column::int_key("W_WAREHOUSE_SK", 15.0),
            Column::string("W_STATE", 4.0, 10.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "SHIP_MODE",
        20.0,
        vec![
            Column::int_key("SM_SHIP_MODE_SK", 20.0),
            Column::string("SM_TYPE", 12.0, 6.0),
            Column::string("SM_CARRIER", 16.0, 20.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "WEB_SITE",
        24.0,
        vec![
            Column::int_key("WEB_SITE_SK", 24.0),
            Column::string("WEB_CLASS", 12.0, 5.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "WEB_PAGE",
        2_040.0,
        vec![
            Column::int_key("WP_WEB_PAGE_SK", 2_040.0),
            Column::string("WP_TYPE", 12.0, 7.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "CALL_CENTER",
        30.0,
        vec![
            Column::int_key("CC_CALL_CENTER_SK", 30.0),
            Column::string("CC_CLASS", 12.0, 3.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "CATALOG_PAGE",
        20_400.0,
        vec![
            Column::int_key("CP_CATALOG_PAGE_SK", 20_400.0),
            Column::string("CP_TYPE", 12.0, 3.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "REASON",
        55.0,
        vec![
            Column::int_key("R_REASON_SK", 55.0),
            Column::string("R_REASON_DESC", 24.0, 55.0),
        ],
    ))
    .unwrap();

    // Fact tables (scale-100-like row counts, scaled down one order of
    // magnitude to keep extraction fast).
    c.add_table(Table::new(
        "STORE_SALES",
        28_800_000.0,
        vec![
            Column::int_key("SS_SOLD_DATE_SK", 1_800.0),
            Column::int_key("SS_SOLD_TIME_SK", 43_200.0),
            Column::int_key("SS_ITEM_SK", 204_000.0),
            Column::int_key("SS_CUSTOMER_SK", 2_000_000.0),
            Column::int_key("SS_CDEMO_SK", 1_920_800.0),
            Column::int_key("SS_HDEMO_SK", 7_200.0),
            Column::int_key("SS_ADDR_SK", 1_000_000.0),
            Column::int_key("SS_STORE_SK", 402.0),
            Column::int_key("SS_PROMO_SK", 1_000.0),
            Column::new("SS_QUANTITY", 4.0, 100.0),
            Column::new("SS_SALES_PRICE", 8.0, 20_000.0),
            Column::new("SS_EXT_SALES_PRICE", 8.0, 1_000_000.0),
            Column::new("SS_NET_PROFIT", 8.0, 1_000_000.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "CATALOG_SALES",
        14_400_000.0,
        vec![
            Column::int_key("CS_SOLD_DATE_SK", 1_800.0),
            Column::int_key("CS_SHIP_DATE_SK", 1_800.0),
            Column::int_key("CS_ITEM_SK", 204_000.0),
            Column::int_key("CS_BILL_CUSTOMER_SK", 2_000_000.0),
            Column::int_key("CS_BILL_CDEMO_SK", 1_920_800.0),
            Column::int_key("CS_BILL_HDEMO_SK", 7_200.0),
            Column::int_key("CS_BILL_ADDR_SK", 1_000_000.0),
            Column::int_key("CS_CALL_CENTER_SK", 30.0),
            Column::int_key("CS_CATALOG_PAGE_SK", 20_400.0),
            Column::int_key("CS_SHIP_MODE_SK", 20.0),
            Column::int_key("CS_WAREHOUSE_SK", 15.0),
            Column::int_key("CS_PROMO_SK", 1_000.0),
            Column::new("CS_QUANTITY", 4.0, 100.0),
            Column::new("CS_SALES_PRICE", 8.0, 20_000.0),
            Column::new("CS_EXT_SALES_PRICE", 8.0, 1_000_000.0),
            Column::new("CS_NET_PROFIT", 8.0, 1_000_000.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "WEB_SALES",
        7_200_000.0,
        vec![
            Column::int_key("WS_SOLD_DATE_SK", 1_800.0),
            Column::int_key("WS_ITEM_SK", 204_000.0),
            Column::int_key("WS_BILL_CUSTOMER_SK", 2_000_000.0),
            Column::int_key("WS_BILL_CDEMO_SK", 1_920_800.0),
            Column::int_key("WS_BILL_ADDR_SK", 1_000_000.0),
            Column::int_key("WS_WEB_SITE_SK", 24.0),
            Column::int_key("WS_WEB_PAGE_SK", 2_040.0),
            Column::int_key("WS_SHIP_MODE_SK", 20.0),
            Column::int_key("WS_WAREHOUSE_SK", 15.0),
            Column::int_key("WS_PROMO_SK", 1_000.0),
            Column::new("WS_QUANTITY", 4.0, 100.0),
            Column::new("WS_SALES_PRICE", 8.0, 20_000.0),
            Column::new("WS_EXT_SALES_PRICE", 8.0, 1_000_000.0),
            Column::new("WS_NET_PROFIT", 8.0, 1_000_000.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "STORE_RETURNS",
        2_880_000.0,
        vec![
            Column::int_key("SR_RETURNED_DATE_SK", 1_800.0),
            Column::int_key("SR_ITEM_SK", 204_000.0),
            Column::int_key("SR_CUSTOMER_SK", 2_000_000.0),
            Column::int_key("SR_CDEMO_SK", 1_920_800.0),
            Column::int_key("SR_ADDR_SK", 1_000_000.0),
            Column::int_key("SR_STORE_SK", 402.0),
            Column::int_key("SR_REASON_SK", 55.0),
            Column::new("SR_RETURN_QUANTITY", 4.0, 100.0),
            Column::new("SR_RETURN_AMT", 8.0, 100_000.0),
            Column::new("SR_NET_LOSS", 8.0, 100_000.0),
        ],
    ))
    .unwrap();
    c.add_table(Table::new(
        "INVENTORY",
        11_700_000.0,
        vec![
            Column::int_key("INV_DATE_SK", 261.0),
            Column::int_key("INV_ITEM_SK", 204_000.0),
            Column::int_key("INV_WAREHOUSE_SK", 15.0),
            Column::new("INV_QUANTITY_ON_HAND", 4.0, 1_000.0),
        ],
    ))
    .unwrap();

    c
}

fn dim_spec(name: &str) -> &'static DimSpec {
    DIMS.iter()
        .find(|d| d.name == name)
        .expect("dimension spec missing")
}

fn make_predicate(rng: &mut ChaCha8Rng, table: &str, column: &str, kind: char) -> Predicate {
    let cref = ColumnRef::new(table, column);
    match kind {
        'r' => Predicate::range(cref, rng.gen_range(0.02..0.4)),
        'i' => Predicate::in_list(cref, rng.gen_range(2..8)),
        _ => Predicate::equality(cref),
    }
}

/// Generates the 102 deterministic TPC-DS-like queries.
pub fn queries() -> Vec<QuerySpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(QUERY_SEED);
    let total_weight: f64 = FACTS.iter().map(|f| f.weight).sum();
    let mut out = Vec::with_capacity(NUM_QUERIES);

    for qnum in 0..NUM_QUERIES {
        // Pick the fact table.
        let mut pick = rng.gen_range(0.0..total_weight);
        let fact = FACTS
            .iter()
            .find(|f| {
                if pick < f.weight {
                    true
                } else {
                    pick -= f.weight;
                    false
                }
            })
            .unwrap_or(&FACTS[0]);

        let mut q = QuerySpec::new(format!("DSQ{:03}", qnum + 1), fact.name);

        // Pick how many dimensions to join: mostly 2–5, occasionally nearly
        // all of them (these produce the very wide plans of the paper).
        let max_dims = fact.joins.len();
        let num_dims = if qnum % 17 == 0 {
            max_dims
        } else if qnum % 5 == 0 {
            (max_dims * 2 / 3).max(3).min(max_dims)
        } else {
            rng.gen_range(2..=4.min(max_dims))
        };
        let mut join_order: Vec<usize> = (0..max_dims).collect();
        join_order.shuffle(&mut rng);
        let chosen = &join_order[..num_dims];

        let mut filtered_dims = 0usize;
        for &j in chosen {
            let (fk, dim_table, dim_pk) = fact.joins[j];
            q = q.join(
                ColumnRef::new(fact.name, fk),
                ColumnRef::new(dim_table, dim_pk),
            );
            let spec = dim_spec(dim_table);
            // Filter most joined dimensions (wide queries filter many dims,
            // which is what makes their best plans use many indexes).
            let filter_probability = if num_dims >= 6 { 0.85 } else { 0.6 };
            if rng.gen_bool(filter_probability) && !spec.attributes.is_empty() {
                let (col_name, kind) = spec.attributes[rng.gen_range(0..spec.attributes.len())];
                q = q.filter(make_predicate(&mut rng, dim_table, col_name, kind));
                filtered_dims += 1;
                // Occasionally add a second predicate on the same dimension.
                if rng.gen_bool(0.25) && spec.attributes.len() > 1 {
                    let (c2, k2) = spec.attributes[rng.gen_range(0..spec.attributes.len())];
                    if c2 != col_name {
                        q = q.filter(make_predicate(&mut rng, dim_table, c2, k2));
                    }
                }
            }
        }
        // Ensure at least one dimension is filtered so the query benefits
        // from indexes at all.
        if filtered_dims == 0 {
            let (_, dim_table, _) = fact.joins[chosen[0]];
            let spec = dim_spec(dim_table);
            let (col_name, kind) = spec.attributes[0];
            q = q.filter(make_predicate(&mut rng, dim_table, col_name, kind));
        }

        // Group by one or two attributes of the joined dimensions.
        let group_count = rng.gen_range(1..=2);
        for g in 0..group_count {
            let &j = &chosen[g % chosen.len()];
            let (_, dim_table, _) = fact.joins[j];
            let spec = dim_spec(dim_table);
            let (col_name, _) = spec.attributes[g % spec.attributes.len()];
            q = q.group(ColumnRef::new(dim_table, col_name));
        }

        // Aggregate one or two fact measures.
        let agg_count = rng.gen_range(1..=2.min(fact.measures.len()));
        for a in 0..agg_count {
            q = q.aggregate(Aggregate::sum(ColumnRef::new(fact.name, fact.measures[a])));
        }

        out.push(q);
    }

    out
}

/// The full TPC-DS-like workload.
pub fn workload() -> Workload {
    Workload::new("tpcds", catalog(), queries())
}

/// Extraction configuration matching the paper's TPC-DS design size
/// (148 suggested indexes) and plan density (~33 plans per query).
pub fn extraction_config() -> ExtractionConfig {
    ExtractionConfig {
        advisor: AdvisorConfig::with_budget(148),
        whatif: WhatIfOptions {
            max_iterations: 16,
            probe_singletons: true,
            min_speedup_ratio: 0.0005,
        },
        min_build_interaction_ratio: 0.05,
        max_helpers_per_target: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_facts_and_dimensions() {
        let c = catalog();
        assert!(c.num_tables() >= 17);
        assert!(c.table("STORE_SALES").unwrap().rows > c.table("STORE").unwrap().rows);
        // Every join edge of every fact spec is resolvable.
        for f in FACTS {
            for (fk, dim, pk) in f.joins {
                assert!(c.require_column(f.name, fk).is_ok(), "{}.{fk}", f.name);
                assert!(c.require_column(dim, pk).is_ok(), "{dim}.{pk}");
            }
            for m in f.measures {
                assert!(c.require_column(f.name, m).is_ok());
            }
        }
        for d in DIMS {
            for (col, _) in d.attributes {
                assert!(c.require_column(d.name, col).is_ok(), "{}.{col}", d.name);
            }
        }
    }

    #[test]
    fn generates_102_deterministic_queries() {
        let a = queries();
        let b = queries();
        assert_eq!(a.len(), NUM_QUERIES);
        assert_eq!(a, b, "query generation must be deterministic");
    }

    #[test]
    fn queries_reference_valid_columns_and_include_wide_joins() {
        let w = workload();
        let mut widest = 0usize;
        for q in &w.queries {
            for p in &q.predicates {
                assert!(w
                    .catalog
                    .require_column(&p.column.table, &p.column.column)
                    .is_ok());
            }
            for j in &q.joins {
                assert!(w
                    .catalog
                    .require_column(&j.fact_column.table, &j.fact_column.column)
                    .is_ok());
                assert!(w
                    .catalog
                    .require_column(&j.dimension_column.table, &j.dimension_column.column)
                    .is_ok());
            }
            assert!(!q.predicates.is_empty(), "{} has no filter", q.name);
            widest = widest.max(q.joins.len());
        }
        // The paper's widest TPC-DS plan uses 13 indexes; our widest queries
        // join enough dimensions to make such plans possible.
        assert!(widest >= 9, "widest join count {widest}");
    }

    #[test]
    fn extraction_config_matches_paper_budget() {
        assert_eq!(extraction_config().advisor.max_indexes, 148);
    }
}
