//! Direct synthetic instance generation.
//!
//! The TPC-H-like / TPC-DS-like pipelines go through the full what-if
//! substrate; this module instead generates [`ProblemInstance`]s directly with
//! controllable size and interaction density. It is used by solver unit
//! tests, property-based tests and micro-benchmarks where the exact workload
//! semantics do not matter but determinism, speed and parameter sweeps do.

use idd_core::{IndexId, InstanceBuilder, ProblemInstance};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of candidate indexes.
    pub num_indexes: usize,
    /// Number of queries.
    pub num_queries: usize,
    /// Plans generated per query (before deduplication).
    pub plans_per_query: usize,
    /// Maximum indexes per plan.
    pub max_plan_width: usize,
    /// Probability that a pair of same-"table" indexes has a build
    /// interaction.
    pub build_interaction_probability: f64,
    /// Number of index "tables" (groups within which build interactions can
    /// occur).
    pub num_tables: usize,
    /// Probability of adding a precedence constraint between two indexes of
    /// the same group (kept low; most instances have none).
    pub precedence_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_indexes: 20,
            num_queries: 12,
            plans_per_query: 6,
            max_plan_width: 4,
            build_interaction_probability: 0.15,
            num_tables: 5,
            precedence_probability: 0.0,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// A small instance (8 indexes) suitable for exact-search tests.
    pub fn small(seed: u64) -> Self {
        Self {
            num_indexes: 8,
            num_queries: 6,
            plans_per_query: 4,
            max_plan_width: 3,
            seed,
            ..Self::default()
        }
    }

    /// A TPC-H-scale instance (~30 indexes).
    pub fn medium(seed: u64) -> Self {
        Self {
            num_indexes: 31,
            num_queries: 22,
            plans_per_query: 10,
            max_plan_width: 5,
            num_tables: 8,
            seed,
            ..Self::default()
        }
    }

    /// A TPC-DS-scale instance (~150 indexes).
    pub fn large(seed: u64) -> Self {
        Self {
            num_indexes: 148,
            num_queries: 102,
            plans_per_query: 33,
            max_plan_width: 13,
            num_tables: 20,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic random instance generator.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
}

impl SyntheticGenerator {
    /// Creates a generator.
    pub fn new(config: SyntheticConfig) -> Self {
        Self { config }
    }

    /// Generates the instance.
    pub fn generate(&self) -> ProblemInstance {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut b = InstanceBuilder::new(format!("synthetic-{}", cfg.seed));

        // Indexes: creation costs spread over an order of magnitude, grouped
        // into "tables" for build interactions.
        let mut table_of: Vec<usize> = Vec::with_capacity(cfg.num_indexes);
        let mut cost_of: Vec<f64> = Vec::with_capacity(cfg.num_indexes);
        for i in 0..cfg.num_indexes {
            let cost = rng.gen_range(2.0..40.0);
            let id = b.add_named_index(format!("syn_ix{i}"), cost);
            debug_assert_eq!(id.raw(), i);
            table_of.push(rng.gen_range(0..cfg.num_tables.max(1)));
            cost_of.push(cost);
        }

        // Queries and plans.
        for q in 0..cfg.num_queries {
            let runtime = rng.gen_range(50.0..400.0);
            let qid = b.add_named_query(format!("syn_q{q}"), runtime);
            let mut remaining_speedup = runtime * rng.gen_range(0.5..0.95);
            let mut seen: Vec<Vec<usize>> = Vec::new();
            for _ in 0..cfg.plans_per_query {
                let width = rng.gen_range(1..=cfg.max_plan_width.max(1));
                let mut members: Vec<usize> = (0..cfg.num_indexes).collect();
                members.shuffle(&mut rng);
                let mut plan: Vec<usize> = members.into_iter().take(width).collect();
                plan.sort_unstable();
                plan.dedup();
                if seen.contains(&plan) {
                    continue;
                }
                seen.push(plan.clone());
                // Wider plans tend to be faster (they exist because they beat
                // the narrower alternatives).
                let speedup =
                    remaining_speedup * rng.gen_range(0.2..0.9) * (plan.len() as f64).sqrt()
                        / (cfg.max_plan_width as f64).sqrt();
                let speedup = speedup.min(runtime * 0.95);
                remaining_speedup = (remaining_speedup * 1.02).min(runtime * 0.95);
                b.add_plan(qid, plan.into_iter().map(IndexId::new).collect(), speedup);
            }
        }

        // Build interactions within the same "table".
        for target in 0..cfg.num_indexes {
            for helper in 0..cfg.num_indexes {
                if target == helper || table_of[target] != table_of[helper] {
                    continue;
                }
                if rng.gen_bool(cfg.build_interaction_probability) {
                    // Saving between 10% and 80% of the target's base cost,
                    // matching the "up to 80%" the paper observes on TPC-DS.
                    let ratio = rng.gen_range(0.1..0.8);
                    let saving = cost_of[target] * ratio;
                    b.add_build_interaction(IndexId::new(target), IndexId::new(helper), saving);
                }
            }
        }

        // Optional precedences within a table group (kept acyclic by only
        // pointing from lower to higher ids).
        if cfg.precedence_probability > 0.0 {
            for before in 0..cfg.num_indexes {
                for after in (before + 1)..cfg.num_indexes {
                    if table_of[before] == table_of[after]
                        && rng.gen_bool(cfg.precedence_probability)
                    {
                        b.add_precedence(IndexId::new(before), IndexId::new(after));
                    }
                }
            }
        }

        b.build()
            .expect("synthetic generator produced an invalid instance")
    }
}

/// Convenience: generate an instance from a config in one call.
pub fn generate(config: SyntheticConfig) -> ProblemInstance {
    SyntheticGenerator::new(config).generate()
}

/// Parameters of the block-structured generator: `num_blocks` independent
/// synthetic sub-instances fused into one, plus an optional layer of
/// cross-block "coupling" queries.
///
/// With `coupling_queries == 0` the blocks share *nothing* — no plan, query,
/// build interaction or precedence crosses a block boundary — so the
/// instance's coupling graph decomposes into at least `num_blocks`
/// components and shard-and-recombine solving is lossless. Each coupling
/// query adds one weak cross-block edge, letting benchmarks dial in how much
/// a cut-threshold decomposition must give up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStructuredConfig {
    /// Number of independent blocks.
    pub num_blocks: usize,
    /// Shape of each block (its `seed` is re-derived per block from the
    /// outer `seed`, its `num_indexes` is the block size).
    pub block: SyntheticConfig,
    /// Number of cross-block queries (0 ⇒ zero coupling).
    pub coupling_queries: usize,
    /// RNG seed (also re-seeds every block deterministically).
    pub seed: u64,
}

impl BlockStructuredConfig {
    /// `num_blocks` blocks of `block_size` indexes each, with sensible
    /// per-block query/plan counts scaled to the block size.
    pub fn blocks(
        num_blocks: usize,
        block_size: usize,
        coupling_queries: usize,
        seed: u64,
    ) -> Self {
        Self {
            num_blocks,
            block: SyntheticConfig {
                num_indexes: block_size,
                num_queries: (block_size * 3 / 4).max(2),
                plans_per_query: 5,
                max_plan_width: 3.min(block_size.max(1)),
                build_interaction_probability: 0.1,
                num_tables: (block_size / 4).max(1),
                precedence_probability: 0.0,
                seed,
            },
            coupling_queries,
            seed,
        }
    }

    /// Total number of indexes across all blocks.
    pub fn num_indexes(&self) -> usize {
        self.num_blocks * self.block.num_indexes
    }

    /// The contiguous id range `[start, end)` occupied by `block`.
    pub fn block_range(&self, block: usize) -> (usize, usize) {
        let start = block * self.block.num_indexes;
        (start, start + self.block.num_indexes)
    }
}

/// Generates a block-structured instance (see [`BlockStructuredConfig`]).
pub fn generate_block_structured(config: BlockStructuredConfig) -> ProblemInstance {
    let mut b = InstanceBuilder::new(format!(
        "blocks-{}x{}-c{}-{}",
        config.num_blocks, config.block.num_indexes, config.coupling_queries, config.seed
    ));

    // Fuse the per-block instances under a contiguous id offset per block.
    // Block k's indexes occupy ids [k*size, (k+1)*size).
    for block in 0..config.num_blocks {
        let mut block_cfg = config.block;
        block_cfg.seed = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(block as u64);
        let sub = SyntheticGenerator::new(block_cfg).generate();
        let offset = config.block_range(block).0;
        let remap = |i: IndexId| IndexId::new(i.raw() + offset);

        for i in sub.index_ids() {
            let mut meta = sub.index_meta(i).clone();
            meta.name = format!("b{block}_{}", meta.name);
            let id = b.push_index(meta);
            debug_assert_eq!(id, remap(i));
        }
        for q in sub.query_ids() {
            let mut meta = sub.query(q).clone();
            meta.name = format!("b{block}_{}", meta.name);
            let qid = b.push_query(meta);
            for &p in sub.plans_of_query(q) {
                let plan = sub.plan(p);
                b.add_plan(
                    qid,
                    plan.indexes.iter().copied().map(remap).collect(),
                    plan.speedup,
                );
            }
        }
        for bi in sub.build_interactions() {
            b.add_build_interaction(remap(bi.target), remap(bi.helper), bi.speedup);
        }
        for pr in sub.precedences() {
            b.add_precedence(remap(pr.before), remap(pr.after));
        }
    }

    // Coupling layer: each coupling query offers a single-index plan from
    // one block and a faster two-index plan spanning a second block, so the
    // pair picks up both a plan-co-occurrence and a query-competition edge.
    if config.coupling_queries > 0 && config.num_blocks >= 2 {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xB10C_C0DE);
        for k in 0..config.coupling_queries {
            let block_a = rng.gen_range(0..config.num_blocks);
            let mut block_b = rng.gen_range(0..config.num_blocks - 1);
            if block_b >= block_a {
                block_b += 1;
            }
            let (a_lo, a_hi) = config.block_range(block_a);
            let (b_lo, b_hi) = config.block_range(block_b);
            let a = IndexId::new(rng.gen_range(a_lo..a_hi));
            let bx = IndexId::new(rng.gen_range(b_lo..b_hi));
            let runtime = rng.gen_range(20.0..60.0);
            let qid = b.add_named_query(format!("coupling_q{k}"), runtime);
            let solo = runtime * rng.gen_range(0.1..0.3);
            b.add_plan(qid, vec![a], solo);
            b.add_plan(qid, vec![a, bx], solo + runtime * rng.gen_range(0.1..0.3));
        }
    }

    b.build()
        .expect("block-structured generator produced an invalid instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::{Deployment, InstanceStats, ObjectiveEvaluator};

    #[test]
    fn generation_is_deterministic() {
        let a = generate(SyntheticConfig::default());
        let b = generate(SyntheticConfig::default());
        assert_eq!(a.num_indexes(), b.num_indexes());
        assert_eq!(a.num_plans(), b.num_plans());
        let ea = ObjectiveEvaluator::new(&a);
        let eb = ObjectiveEvaluator::new(&b);
        let d = Deployment::identity(a.num_indexes());
        assert_eq!(ea.evaluate_area(&d), eb.evaluate_area(&d));
    }

    #[test]
    fn block_structured_zero_coupling_keeps_blocks_disjoint() {
        let cfg = BlockStructuredConfig::blocks(4, 8, 0, 7);
        let inst = generate_block_structured(cfg);
        assert_eq!(inst.num_indexes(), 32);
        let block_of = |i: idd_core::IndexId| i.raw() / cfg.block.num_indexes;
        for p in inst.plan_ids() {
            let plan = inst.plan(p);
            let b0 = block_of(plan.indexes[0]);
            assert!(
                plan.indexes.iter().all(|&i| block_of(i) == b0),
                "plan {p:?} crosses block boundaries in a zero-coupling instance"
            );
        }
        for bi in inst.build_interactions() {
            assert_eq!(block_of(bi.target), block_of(bi.helper));
        }

        // Determinism.
        let again = generate_block_structured(cfg);
        let d = Deployment::identity(inst.num_indexes());
        assert_eq!(
            ObjectiveEvaluator::new(&inst).evaluate_area(&d),
            ObjectiveEvaluator::new(&again).evaluate_area(&d)
        );
    }

    #[test]
    fn coupling_queries_add_cross_block_plans() {
        let cfg = BlockStructuredConfig::blocks(3, 6, 5, 9);
        let inst = generate_block_structured(cfg);
        let block_of = |i: idd_core::IndexId| i.raw() / cfg.block.num_indexes;
        let crossing = inst
            .plan_ids()
            .filter(|&p| {
                let plan = inst.plan(p);
                plan.indexes
                    .iter()
                    .any(|&i| block_of(i) != block_of(plan.indexes[0]))
            })
            .count();
        assert!(crossing > 0, "coupling layer must span blocks");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(SyntheticConfig {
            seed: 1,
            ..SyntheticConfig::default()
        });
        let b = generate(SyntheticConfig {
            seed: 2,
            ..SyntheticConfig::default()
        });
        let ea = ObjectiveEvaluator::new(&a).evaluate_area(&Deployment::identity(a.num_indexes()));
        let eb = ObjectiveEvaluator::new(&b).evaluate_area(&Deployment::identity(b.num_indexes()));
        assert_ne!(ea, eb);
    }

    #[test]
    fn sizes_match_config() {
        let cfg = SyntheticConfig::medium(7);
        let inst = generate(cfg);
        assert_eq!(inst.num_indexes(), 31);
        assert_eq!(inst.num_queries(), 22);
        let stats = InstanceStats::of(&inst);
        assert!(stats.num_plans > 0);
        assert!(stats.largest_plan <= 5);
    }

    #[test]
    fn large_config_has_interactions() {
        let inst = generate(SyntheticConfig::large(3));
        let stats = InstanceStats::of(&inst);
        assert!(stats.num_build_interactions > 0);
        assert!(stats.num_query_interactions > 100);
        assert_eq!(stats.num_indexes, 148);
    }

    #[test]
    fn precedences_are_acyclic_and_respected_by_identity() {
        let inst = generate(SyntheticConfig {
            precedence_probability: 0.2,
            ..SyntheticConfig::default()
        });
        // Builder would have rejected cycles; identity order satisfies
        // low-id → high-id precedences.
        let d = Deployment::identity(inst.num_indexes());
        assert!(d.is_valid_for(&inst));
    }

    #[test]
    fn every_plan_speedup_is_within_runtime() {
        let inst = generate(SyntheticConfig::large(11));
        for q in inst.query_ids() {
            let runtime = inst.query(q).original_runtime;
            for &p in inst.plans_of_query(q) {
                assert!(inst.plan(p).speedup <= runtime);
                assert!(inst.plan(p).speedup >= 0.0);
            }
        }
    }
}
