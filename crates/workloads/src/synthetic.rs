//! Direct synthetic instance generation.
//!
//! The TPC-H-like / TPC-DS-like pipelines go through the full what-if
//! substrate; this module instead generates [`ProblemInstance`]s directly with
//! controllable size and interaction density. It is used by solver unit
//! tests, property-based tests and micro-benchmarks where the exact workload
//! semantics do not matter but determinism, speed and parameter sweeps do.

use idd_core::{IndexId, InstanceBuilder, ProblemInstance};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of candidate indexes.
    pub num_indexes: usize,
    /// Number of queries.
    pub num_queries: usize,
    /// Plans generated per query (before deduplication).
    pub plans_per_query: usize,
    /// Maximum indexes per plan.
    pub max_plan_width: usize,
    /// Probability that a pair of same-"table" indexes has a build
    /// interaction.
    pub build_interaction_probability: f64,
    /// Number of index "tables" (groups within which build interactions can
    /// occur).
    pub num_tables: usize,
    /// Probability of adding a precedence constraint between two indexes of
    /// the same group (kept low; most instances have none).
    pub precedence_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_indexes: 20,
            num_queries: 12,
            plans_per_query: 6,
            max_plan_width: 4,
            build_interaction_probability: 0.15,
            num_tables: 5,
            precedence_probability: 0.0,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// A small instance (8 indexes) suitable for exact-search tests.
    pub fn small(seed: u64) -> Self {
        Self {
            num_indexes: 8,
            num_queries: 6,
            plans_per_query: 4,
            max_plan_width: 3,
            seed,
            ..Self::default()
        }
    }

    /// A TPC-H-scale instance (~30 indexes).
    pub fn medium(seed: u64) -> Self {
        Self {
            num_indexes: 31,
            num_queries: 22,
            plans_per_query: 10,
            max_plan_width: 5,
            num_tables: 8,
            seed,
            ..Self::default()
        }
    }

    /// A TPC-DS-scale instance (~150 indexes).
    pub fn large(seed: u64) -> Self {
        Self {
            num_indexes: 148,
            num_queries: 102,
            plans_per_query: 33,
            max_plan_width: 13,
            num_tables: 20,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic random instance generator.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
}

impl SyntheticGenerator {
    /// Creates a generator.
    pub fn new(config: SyntheticConfig) -> Self {
        Self { config }
    }

    /// Generates the instance.
    pub fn generate(&self) -> ProblemInstance {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut b = InstanceBuilder::new(format!("synthetic-{}", cfg.seed));

        // Indexes: creation costs spread over an order of magnitude, grouped
        // into "tables" for build interactions.
        let mut table_of: Vec<usize> = Vec::with_capacity(cfg.num_indexes);
        let mut cost_of: Vec<f64> = Vec::with_capacity(cfg.num_indexes);
        for i in 0..cfg.num_indexes {
            let cost = rng.gen_range(2.0..40.0);
            let id = b.add_named_index(format!("syn_ix{i}"), cost);
            debug_assert_eq!(id.raw(), i);
            table_of.push(rng.gen_range(0..cfg.num_tables.max(1)));
            cost_of.push(cost);
        }

        // Queries and plans.
        for q in 0..cfg.num_queries {
            let runtime = rng.gen_range(50.0..400.0);
            let qid = b.add_named_query(format!("syn_q{q}"), runtime);
            let mut remaining_speedup = runtime * rng.gen_range(0.5..0.95);
            let mut seen: Vec<Vec<usize>> = Vec::new();
            for _ in 0..cfg.plans_per_query {
                let width = rng.gen_range(1..=cfg.max_plan_width.max(1));
                let mut members: Vec<usize> = (0..cfg.num_indexes).collect();
                members.shuffle(&mut rng);
                let mut plan: Vec<usize> = members.into_iter().take(width).collect();
                plan.sort_unstable();
                plan.dedup();
                if seen.contains(&plan) {
                    continue;
                }
                seen.push(plan.clone());
                // Wider plans tend to be faster (they exist because they beat
                // the narrower alternatives).
                let speedup =
                    remaining_speedup * rng.gen_range(0.2..0.9) * (plan.len() as f64).sqrt()
                        / (cfg.max_plan_width as f64).sqrt();
                let speedup = speedup.min(runtime * 0.95);
                remaining_speedup = (remaining_speedup * 1.02).min(runtime * 0.95);
                b.add_plan(qid, plan.into_iter().map(IndexId::new).collect(), speedup);
            }
        }

        // Build interactions within the same "table".
        for target in 0..cfg.num_indexes {
            for helper in 0..cfg.num_indexes {
                if target == helper || table_of[target] != table_of[helper] {
                    continue;
                }
                if rng.gen_bool(cfg.build_interaction_probability) {
                    // Saving between 10% and 80% of the target's base cost,
                    // matching the "up to 80%" the paper observes on TPC-DS.
                    let ratio = rng.gen_range(0.1..0.8);
                    let saving = cost_of[target] * ratio;
                    b.add_build_interaction(IndexId::new(target), IndexId::new(helper), saving);
                }
            }
        }

        // Optional precedences within a table group (kept acyclic by only
        // pointing from lower to higher ids).
        if cfg.precedence_probability > 0.0 {
            for before in 0..cfg.num_indexes {
                for after in (before + 1)..cfg.num_indexes {
                    if table_of[before] == table_of[after]
                        && rng.gen_bool(cfg.precedence_probability)
                    {
                        b.add_precedence(IndexId::new(before), IndexId::new(after));
                    }
                }
            }
        }

        b.build()
            .expect("synthetic generator produced an invalid instance")
    }
}

/// Convenience: generate an instance from a config in one call.
pub fn generate(config: SyntheticConfig) -> ProblemInstance {
    SyntheticGenerator::new(config).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::{Deployment, InstanceStats, ObjectiveEvaluator};

    #[test]
    fn generation_is_deterministic() {
        let a = generate(SyntheticConfig::default());
        let b = generate(SyntheticConfig::default());
        assert_eq!(a.num_indexes(), b.num_indexes());
        assert_eq!(a.num_plans(), b.num_plans());
        let ea = ObjectiveEvaluator::new(&a);
        let eb = ObjectiveEvaluator::new(&b);
        let d = Deployment::identity(a.num_indexes());
        assert_eq!(ea.evaluate_area(&d), eb.evaluate_area(&d));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(SyntheticConfig {
            seed: 1,
            ..SyntheticConfig::default()
        });
        let b = generate(SyntheticConfig {
            seed: 2,
            ..SyntheticConfig::default()
        });
        let ea = ObjectiveEvaluator::new(&a).evaluate_area(&Deployment::identity(a.num_indexes()));
        let eb = ObjectiveEvaluator::new(&b).evaluate_area(&Deployment::identity(b.num_indexes()));
        assert_ne!(ea, eb);
    }

    #[test]
    fn sizes_match_config() {
        let cfg = SyntheticConfig::medium(7);
        let inst = generate(cfg);
        assert_eq!(inst.num_indexes(), 31);
        assert_eq!(inst.num_queries(), 22);
        let stats = InstanceStats::of(&inst);
        assert!(stats.num_plans > 0);
        assert!(stats.largest_plan <= 5);
    }

    #[test]
    fn large_config_has_interactions() {
        let inst = generate(SyntheticConfig::large(3));
        let stats = InstanceStats::of(&inst);
        assert!(stats.num_build_interactions > 0);
        assert!(stats.num_query_interactions > 100);
        assert_eq!(stats.num_indexes, 148);
    }

    #[test]
    fn precedences_are_acyclic_and_respected_by_identity() {
        let inst = generate(SyntheticConfig {
            precedence_probability: 0.2,
            ..SyntheticConfig::default()
        });
        // Builder would have rejected cycles; identity order satisfies
        // low-id → high-id precedences.
        let d = Deployment::identity(inst.num_indexes());
        assert!(d.is_valid_for(&inst));
    }

    #[test]
    fn every_plan_speedup_is_within_runtime() {
        let inst = generate(SyntheticConfig::large(11));
        for q in inst.query_ids() {
            let runtime = inst.query(q).original_runtime;
            for &p in inst.plans_of_query(q) {
                assert!(inst.plan(p).speedup <= runtime);
                assert!(inst.plan(p).speedup >= 0.0);
            }
        }
    }
}
