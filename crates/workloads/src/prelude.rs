//! Convenience re-exports of the workload generators.

pub use crate::calibration::{CalibrationReport, PaperTargets};
pub use crate::evolution::{
    drift_scenario, failure_scenario, mixed_scenario, revision_scenario, EvolutionConfig,
};
pub use crate::synthetic::{generate as generate_synthetic, SyntheticConfig, SyntheticGenerator};
pub use crate::{instance_with_budget, tpcds_instance, tpch_instance};
