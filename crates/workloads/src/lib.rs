//! # idd-workloads — benchmark workloads for the index ordering problem
//!
//! The paper evaluates on problem instances derived from TPC-H (22 queries,
//! 31 suggested indexes) and TPC-DS (102 queries, 148 suggested indexes) by a
//! commercial design tool plus a what-if optimizer. Neither the commercial
//! tool nor the original benchmark data is available here, so this crate
//! generates *TPC-H-like* and *TPC-DS-like* workloads — star/snowflake
//! schemas with realistic cardinalities and analytic query shapes — and runs
//! them through the `idd-whatif` substrate to produce instances whose Table-4
//! statistics (number of indexes, plans, interaction counts, widest plan) are
//! in the same regime as the paper's.
//!
//! * [`tpch`] — an 8-table schema and 22 queries patterned on TPC-H.
//! * [`tpcds`] — a 17-table schema and 102 generated queries patterned on
//!   TPC-DS (wider joins, many more plans and interactions).
//! * [`synthetic`] — a direct random-instance generator used for solver unit
//!   tests, property tests and micro-benchmarks (no what-if pass needed).
//! * [`calibration`] — compares generated instances against the paper's
//!   Table 4 and reports whether the shape matches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
pub mod evolution;
pub mod synthetic;
pub mod tpcds;
pub mod tpch;

pub mod prelude;

pub use calibration::{CalibrationReport, PaperTargets};
pub use evolution::{
    drift_scenario, failure_scenario, mixed_scenario, revision_scenario, EvolutionConfig,
};
pub use synthetic::{
    generate_block_structured, BlockStructuredConfig, SyntheticConfig, SyntheticGenerator,
};

use idd_core::ProblemInstance;
use idd_whatif::{extract_instance, ExtractionConfig};

/// Builds the TPC-H-like problem instance with the paper's index budget (31).
pub fn tpch_instance() -> idd_whatif::Result<ProblemInstance> {
    extract_instance(&tpch::workload(), tpch::extraction_config())
}

/// Builds the TPC-DS-like problem instance with the paper's index budget (148).
pub fn tpcds_instance() -> idd_whatif::Result<ProblemInstance> {
    extract_instance(&tpcds::workload(), tpcds::extraction_config())
}

/// Builds a problem instance for an arbitrary workload with a given index
/// budget — convenience wrapper used by examples.
pub fn instance_with_budget(
    workload: &idd_whatif::Workload,
    max_indexes: usize,
) -> idd_whatif::Result<ProblemInstance> {
    extract_instance(workload, ExtractionConfig::with_budget(max_indexes))
}
