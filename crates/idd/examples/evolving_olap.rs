//! The paper's motivating "iZunes Store" scenario (Section 1): a small schema
//! evolution — customers can now belong to several countries — forces a
//! drastically different physical design, and the order in which the new
//! indexes are deployed determines how quickly the analysts' reports become
//! fast again.
//!
//! Run with `cargo run --release --example evolving_olap`.

use idd::prelude::*;

/// Builds the warehouse after the schema evolution: `COUNTRY` moved out of
/// `CUSTOMER` into the n:n bridge table `CUST_COUNTRIES`.
fn evolved_workload() -> Workload {
    let mut catalog = Catalog::new();
    catalog
        .add_table(Table::new(
            "CUSTOMER",
            5_000_000.0,
            vec![
                Column::int_key("CUSTID", 5_000_000.0),
                Column::string("NAME", 32.0, 4_500_000.0),
                Column::string("SEGMENT", 16.0, 8.0),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "CUST_COUNTRIES",
            7_500_000.0,
            vec![
                Column::int_key("CUSTID", 5_000_000.0),
                Column::string("COUNTRY", 16.0, 200.0),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "PURCHASES",
            60_000_000.0,
            vec![
                Column::int_key("CUSTID", 5_000_000.0),
                Column::int_key("TRACK_ID", 2_000_000.0),
                Column::new("PRICE", 8.0, 500.0),
                Column::new("PURCHASE_DATE", 4.0, 2_000.0),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "TRACKS",
            2_000_000.0,
            vec![
                Column::int_key("TRACKID", 2_000_000.0),
                Column::string("GENRE", 16.0, 60.0),
            ],
        ))
        .unwrap();

    // The analysts' reports, all rewritten against the new bridge table.
    let queries = vec![
        QuerySpec::new("revenue_by_country", "PURCHASES")
            .join(
                ColumnRef::new("PURCHASES", "CUSTID"),
                ColumnRef::new("CUST_COUNTRIES", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new(
                "CUST_COUNTRIES",
                "COUNTRY",
            )))
            .group(ColumnRef::new("CUST_COUNTRIES", "COUNTRY"))
            .aggregate(Aggregate::sum(ColumnRef::new("PURCHASES", "PRICE"))),
        QuerySpec::new("genre_by_country", "PURCHASES")
            .join(
                ColumnRef::new("PURCHASES", "CUSTID"),
                ColumnRef::new("CUST_COUNTRIES", "CUSTID"),
            )
            .join(
                ColumnRef::new("PURCHASES", "TRACK_ID"),
                ColumnRef::new("TRACKS", "TRACKID"),
            )
            .filter(Predicate::equality(ColumnRef::new(
                "CUST_COUNTRIES",
                "COUNTRY",
            )))
            .filter(Predicate::equality(ColumnRef::new("TRACKS", "GENRE")))
            .group(ColumnRef::new("TRACKS", "GENRE"))
            .aggregate(Aggregate::sum(ColumnRef::new("PURCHASES", "PRICE"))),
        QuerySpec::new("recent_purchases_by_segment", "PURCHASES")
            .join(
                ColumnRef::new("PURCHASES", "CUSTID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "SEGMENT")))
            .filter(Predicate::range(
                ColumnRef::new("PURCHASES", "PURCHASE_DATE"),
                0.05,
            ))
            .group(ColumnRef::new("CUSTOMER", "SEGMENT"))
            .aggregate(Aggregate::sum(ColumnRef::new("PURCHASES", "PRICE"))),
        QuerySpec::new("country_track_matrix", "PURCHASES")
            .join(
                ColumnRef::new("PURCHASES", "CUSTID"),
                ColumnRef::new("CUST_COUNTRIES", "CUSTID"),
            )
            .join(
                ColumnRef::new("PURCHASES", "TRACK_ID"),
                ColumnRef::new("TRACKS", "TRACKID"),
            )
            .filter(Predicate::in_list(
                ColumnRef::new("CUST_COUNTRIES", "COUNTRY"),
                5,
            ))
            .group(ColumnRef::new("CUST_COUNTRIES", "COUNTRY"))
            .group(ColumnRef::new("TRACKS", "GENRE"))
            .aggregate(Aggregate::sum(ColumnRef::new("PURCHASES", "PRICE"))),
    ];

    Workload::new("izunes-evolved", catalog, queries)
}

fn main() {
    let workload = evolved_workload();
    println!(
        "iZunes Store after the schema evolution: {} tables, {} rewritten reports",
        workload.catalog.num_tables(),
        workload.num_queries()
    );

    // The old physical design is useless; the advisor proposes a new one.
    let instance = extract_instance(&workload, ExtractionConfig::with_budget(12))
        .expect("extraction succeeds");
    println!("\nproposed design ({} indexes):", instance.num_indexes());
    for meta in instance.indexes() {
        println!(
            "  {:<60} build {:>7.0}s on {}",
            meta.name, meta.creation_cost, meta.table
        );
    }

    let evaluator = ObjectiveEvaluator::new(&instance);

    // A naive DBA might deploy the indexes in the order the tool listed them.
    let naive = Deployment::identity(instance.num_indexes());
    // The IDD approach: greedy + VNS on the deployment-order problem.
    let greedy = GreedySolver::new().construct(&instance);
    let optimized = VnsSolver::new(SearchBudget::seconds(3.0))
        .solve(&instance, greedy)
        .deployment
        .unwrap();

    println!(
        "\n{:<22} {:>14} {:>18} {:>24}",
        "order", "objective", "deployment time", "runtime at 25% of deploy"
    );
    for (label, order) in [("as-listed", &naive), ("IDD-optimized", &optimized)] {
        let value = evaluator.evaluate(order);
        let curve = ImprovementCurve::from_objective(&value);
        let quarter = value.deployment_time * 0.25;
        println!(
            "{:<22} {:>14.0} {:>17.0}s {:>23.0}s",
            label,
            value.area,
            value.deployment_time,
            curve.runtime_at(quarter)
        );
    }

    let naive_value = evaluator.evaluate(&naive);
    let optimized_value = evaluator.evaluate(&optimized);
    println!(
        "\nThe optimized order cuts the objective by {:.0}% and the total deployment time by {:.0}%.",
        100.0 * (1.0 - optimized_value.area / naive_value.area),
        100.0 * (1.0 - optimized_value.deployment_time / naive_value.deployment_time)
    );
    println!("optimized deployment order: {}", optimized.arrow_notation());
}
