//! Race a 2-member solver portfolio against a 1-second deadline.
//!
//! Demonstrates the unified `Solver` trait and the concurrent anytime
//! portfolio: the members share a cancellation token, the *versioned*
//! incumbent cell (best objective + best deployment order) and the
//! destroy-neighbourhood hint deque. With `--coop warm` or `--coop steal`
//! the race becomes a team — stalled members re-seed from the shared best
//! deployment, and LNS steals relaxation hints that other members
//! published; with the default `--coop off` the members race independently.
//! An exact member proving optimality cancels the race either way, and the
//! member trajectories are merged into one portfolio curve.
//!
//! Run with `cargo run --release -p idd --example portfolio`
//! (`-- --time-limit <s>` to change the deadline, `--members <n>` to race
//! more solvers, `--coop off|warm|steal` to pick the cooperation policy).

use idd::core::reduce::{reduce, Density, ReduceOptions};
use idd::prelude::*;
use idd::solver::exact::{CpConfig, CpSolver};

fn main() {
    // Tiny argument handling: defaults match the CI smoke run (2 threads,
    // 1-second deadline).
    let mut seconds = 1.0;
    let mut members = 2usize;
    let mut cooperation = CooperationPolicy::Off;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--time-limit" => {
                if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                    seconds = v;
                }
            }
            "--members" => {
                if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                    members = v;
                }
            }
            "--coop" => {
                // Same strict vocabulary as `table8` (shared FromStr): a
                // typo aborts instead of silently running another policy.
                cooperation = args
                    .next()
                    .ok_or_else(|| "missing value after --coop".to_string())
                    .and_then(|v| v.parse())
                    .unwrap_or_else(|e| {
                        eprintln!("portfolio: {e}");
                        std::process::exit(2);
                    });
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let budget = SearchBudget::seconds(seconds);

    // A mid-density TPC-H reduction: small enough for CP+ to prove within
    // the deadline, large enough that the heuristics matter.
    let tpch = idd::workloads::tpch_instance().expect("workload generation failed");
    let instance = reduce(
        &tpch,
        ReduceOptions {
            density: Density::Low,
            max_indexes: Some(12),
        },
    )
    .expect("reduction failed");
    println!(
        "instance: {} indexes, {} queries, {} plans",
        instance.num_indexes(),
        instance.num_queries(),
        instance.num_plans()
    );

    // The first two members pair a hint *producer* (VNS) with the hint
    // *consumer* (LNS), so the 2-member CI smoke run exercises the full
    // warm-start + work-stealing path; CP+ joins at three members and adds
    // the optimality-proof cancellation story.
    let mut roster: Vec<Box<dyn Solver>> = vec![
        Box::new(VnsSolver::new(budget)),
        Box::new(LnsSolver::new(budget)),
        Box::new(CpSolver::with_config(CpConfig::with_properties(budget))),
        Box::new(GreedySolver::new()),
        Box::new(TabuSolver::new(SwapStrategy::Best, budget)),
    ];
    roster.truncate(members.max(1));
    let portfolio = PortfolioSolver::with_members(budget, roster).with_cooperation(cooperation);
    println!(
        "racing {} members {:?} against a {seconds}s deadline (coop {cooperation:?})\n",
        portfolio.num_members(),
        portfolio.member_names()
    );

    let outcome = portfolio.solve_detailed(&instance);

    println!("member results:");
    for member in &outcome.members {
        println!(
            "  {:<10} {:>12}  outcome {:<5}  {:.3}s  {} nodes  \
             {} restarts / {} adoptions / {} hints stolen / {} published",
            member.solver,
            if member.is_feasible() {
                format!("{:.2}", member.objective)
            } else {
                "-".to_string()
            },
            member.outcome.label(),
            member.elapsed_seconds,
            member.nodes,
            member.coop.restarts,
            member.coop.adoptions,
            member.coop.hints_stolen,
            member.coop.hints_published,
        );
    }

    let combined = &outcome.combined;
    println!(
        "\nportfolio: objective {:.2} ({}), winner {}, {} total nodes",
        combined.objective,
        combined.outcome.label(),
        outcome.winner().unwrap_or("none"),
        combined.nodes
    );
    println!("merged incumbent trajectory:");
    for point in combined.trajectory.points() {
        println!("  {:>8.4}s  {:.2}", point.elapsed_seconds, point.objective);
    }
    let deployment = combined
        .deployment
        .as_ref()
        .expect("portfolio found a deployment");
    println!("deploy in this order: {}", deployment.arrow_notation());
}
