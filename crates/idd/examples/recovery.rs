//! Real-time recovery (paper Section 1.1): a node of a distributed warehouse
//! fails and the indexes it hosted are gone. The DBA must rebuild them, and
//! the rebuild *order* decides how quickly the reporting workload recovers.
//!
//! This example loads the TPC-DS-like design, pretends a subset of its
//! indexes was lost, and compares three rebuild orders: the advisor's listing
//! order, the interaction-guided greedy, and greedy + VNS.
//!
//! Run with `cargo run --release --example recovery`.

use idd::core::reduce::{reduce, Density, ReduceOptions};
use idd::prelude::*;

fn main() {
    // The full design the warehouse ran before the failure.
    let full = idd::workloads::tpcds_instance().expect("TPC-DS-like extraction");
    println!(
        "warehouse design: {} indexes serving {} queries",
        full.num_indexes(),
        full.num_queries()
    );

    // The failed node hosted the 40 most beneficial indexes — exactly the
    // ones whose absence hurts the most. Restricting the instance to them
    // gives the recovery problem: all other indexes still exist, so their
    // plans keep working and are irrelevant to the rebuild schedule.
    let lost = reduce(
        &full,
        ReduceOptions {
            density: Density::Full,
            max_indexes: Some(40),
        },
    )
    .expect("reduction succeeds");
    println!(
        "lost on the failed node: {} indexes ({} plans depend on them)\n",
        lost.num_indexes(),
        lost.num_plans()
    );

    let evaluator = ObjectiveEvaluator::new(&lost);
    let listing_order = Deployment::identity(lost.num_indexes());
    let greedy = GreedySolver::new().construct(&lost);
    let vns = VnsSolver::new(SearchBudget::seconds(5.0))
        .solve(&lost, greedy.clone())
        .deployment
        .unwrap();

    println!(
        "{:<18} {:>16} {:>18} {:>26}",
        "rebuild order", "objective", "rebuild time [s]", "runtime halfway through [s]"
    );
    for (label, order) in [
        ("listing order", &listing_order),
        ("greedy", &greedy),
        ("greedy + VNS", &vns),
    ] {
        let value = evaluator.evaluate(order);
        let curve = ImprovementCurve::from_objective(&value);
        println!(
            "{:<18} {:>16.0} {:>18.0} {:>26.0}",
            label,
            value.area,
            value.deployment_time,
            curve.runtime_at(value.deployment_time * 0.5)
        );
    }

    let baseline = evaluator.evaluate(&listing_order);
    let best = evaluator.evaluate(&vns);
    println!(
        "\nThe optimized rebuild schedule reduces the recovery objective by {:.1}% \
         ({:.2e} vs {:.2e}) and finishes {:.0} seconds earlier.",
        100.0 * (1.0 - best.area / baseline.area),
        best.area,
        baseline.area,
        baseline.deployment_time - best.deployment_time
    );
    println!("first five indexes to rebuild: {}", {
        let names: Vec<String> = vns
            .order()
            .iter()
            .take(5)
            .map(|&i| lost.index_meta(i).name.clone())
            .collect();
        names.join(" → ")
    });
}
