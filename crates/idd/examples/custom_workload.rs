//! Building a problem instance by hand and comparing every solver on it.
//!
//! Sometimes the benefit matrix does not come from this crate's what-if
//! substrate at all — a DBA might export plan costs from a real DBMS's
//! what-if interface. This example shows the low-level `idd-core` builder API
//! (indexes, plans, build interactions, precedences) and then runs the full
//! solver toolbox on the instance, including an exact CP proof, so the
//! heuristics can be judged against the true optimum. The instance is also
//! saved to / reloaded from a matrix file, mirroring the paper's Figure 3
//! pipeline.
//!
//! Run with `cargo run --release --example custom_workload`.

use idd::prelude::*;

fn build_instance() -> idd::core::ProblemInstance {
    let mut b = idd::core::ProblemInstance::builder("hand-made");

    // Candidate indexes with their measured creation costs (seconds).
    let ix_country = b.add_named_index("ix_customer_country", 340.0);
    let ix_country_cov = b.add_named_index("ix_customer_country_incl_balance", 520.0);
    let ix_orders_date = b.add_named_index("ix_orders_date", 460.0);
    let ix_orders_cust = b.add_named_index("ix_orders_custkey", 420.0);
    let ix_lineitem_part = b.add_named_index("ix_lineitem_partkey", 900.0);
    let mv_sales_cl = b.add_named_index("mv_daily_sales_clustered", 1_500.0);
    let mv_sales_by_reg = b.add_named_index("mv_daily_sales_by_region", 380.0);

    // Workload queries with their current runtimes (seconds).
    let q_rollup = b.add_named_query("country_rollup", 900.0);
    let q_recent = b.add_named_query("recent_orders", 600.0);
    let q_parts = b.add_named_query("part_movement", 1_100.0);
    let q_daily = b.add_named_query("daily_dashboard", 750.0);

    // What-if measurements: which index sets speed up which query, by how much.
    b.add_plan(q_rollup, vec![ix_country], 250.0);
    b.add_plan(q_rollup, vec![ix_country_cov], 610.0);
    b.add_plan(q_rollup, vec![ix_country, ix_orders_cust], 480.0);
    b.add_plan(q_recent, vec![ix_orders_date], 380.0);
    b.add_plan(q_recent, vec![ix_orders_date, ix_orders_cust], 470.0);
    b.add_plan(q_parts, vec![ix_lineitem_part], 520.0);
    b.add_plan(q_parts, vec![ix_lineitem_part, ix_orders_date], 700.0);
    b.add_plan(q_daily, vec![mv_sales_cl], 600.0);
    b.add_plan(q_daily, vec![mv_sales_cl, mv_sales_by_reg], 720.0);

    // Build interactions: the covering country index can be built by scanning
    // the narrow one (and vice versa), the MV secondary scans the MV.
    b.add_build_interaction(ix_country, ix_country_cov, 260.0);
    b.add_build_interaction(ix_country_cov, ix_country, 120.0);
    b.add_build_interaction(ix_orders_cust, ix_orders_date, 90.0);
    b.add_build_interaction(mv_sales_by_reg, mv_sales_cl, 300.0);

    // Hard precedence: the materialized view's clustered index must exist
    // before its secondary index can be created.
    b.add_precedence(mv_sales_cl, mv_sales_by_reg);

    b.build().expect("hand-made instance is consistent")
}

fn main() {
    let instance = build_instance();

    // Round-trip through the matrix-file format (Figure 3's hand-off).
    let path = std::env::temp_dir().join("idd_custom_workload.json");
    MatrixFile::new(instance.clone(), "custom_workload example")
        .save(&path)
        .expect("matrix file written");
    let instance = MatrixFile::load(&path)
        .expect("matrix file read back")
        .instance;
    println!("{}", MatrixFile::new(instance.clone(), "reload").summary());

    let evaluator = ObjectiveEvaluator::new(&instance);
    let greedy = GreedySolver::new().construct(&instance);

    let mut results: Vec<(String, f64, String)> = Vec::new();

    let greedy_area = evaluator.evaluate_area(&greedy);
    results.push(("greedy".into(), greedy_area, greedy.arrow_notation()));

    let dp = DpSolver::new().construct(&instance);
    results.push((
        "dp".into(),
        evaluator.evaluate_area(&dp),
        dp.arrow_notation(),
    ));

    let random = RandomSolver::new(7).summarize(&instance, 100);
    results.push((
        "best of 100 random".into(),
        random.minimum,
        random.best.arrow_notation(),
    ));

    for (name, result) in [
        (
            "tabu (best swap)",
            TabuSolver::new(SwapStrategy::Best, SearchBudget::seconds(1.0))
                .solve(&instance, greedy.clone()),
        ),
        (
            "lns",
            LnsSolver::new(SearchBudget::seconds(1.0)).solve(&instance, greedy.clone()),
        ),
        (
            "vns",
            VnsSolver::new(SearchBudget::seconds(1.0)).solve(&instance, greedy.clone()),
        ),
    ] {
        let d = result
            .deployment
            .expect("local search returns a deployment");
        results.push((name.into(), result.objective, d.arrow_notation()));
    }

    // Exact optimum with proof (7 indexes: instant).
    let cp = CpSolver::with_config(CpConfig::with_properties(SearchBudget::seconds(30.0)))
        .solve(&instance);
    let optimal = cp.objective;
    results.push((
        format!("cp+ ({})", cp.outcome.label()),
        cp.objective,
        cp.deployment.as_ref().unwrap().arrow_notation(),
    ));

    println!("{:<20} {:>12} {:>10}  order", "solver", "objective", "gap");
    for (name, objective, order) in &results {
        println!(
            "{:<20} {:>12.0} {:>9.1}%  {}",
            name,
            objective,
            100.0 * (objective - optimal) / optimal,
            order
        );
    }

    std::fs::remove_file(&path).ok();
}
