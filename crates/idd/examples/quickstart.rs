//! Quickstart: describe a tiny warehouse, let the advisor suggest indexes,
//! and compute a good deployment order.
//!
//! Run with `cargo run --release --example quickstart`.

use idd::prelude::*;

fn main() {
    // 1. Describe the schema and its statistics (what a real deployment reads
    //    from the system catalog).
    let mut catalog = Catalog::new();
    catalog
        .add_table(Table::new(
            "SALES",
            4_000_000.0,
            vec![
                Column::int_key("CUST_ID", 400_000.0),
                Column::int_key("ITEM_ID", 60_000.0),
                Column::new("AMOUNT", 8.0, 100_000.0),
                Column::new("QUANTITY", 4.0, 100.0),
            ],
        ))
        .expect("valid table");
    catalog
        .add_table(Table::new(
            "CUSTOMER",
            400_000.0,
            vec![
                Column::int_key("CUSTID", 400_000.0),
                Column::string("COUNTRY", 16.0, 150.0),
                Column::string("SEGMENT", 16.0, 5.0),
            ],
        ))
        .expect("valid table");
    catalog
        .add_table(Table::new(
            "ITEM",
            60_000.0,
            vec![
                Column::int_key("ITEMID", 60_000.0),
                Column::string("CATEGORY", 16.0, 40.0),
            ],
        ))
        .expect("valid table");

    // 2. Describe the analytic workload.
    let queries = vec![
        QuerySpec::new("revenue_by_country", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "COUNTRY")))
            .group(ColumnRef::new("CUSTOMER", "COUNTRY"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT"))),
        QuerySpec::new("category_volume", "SALES")
            .join(
                ColumnRef::new("SALES", "ITEM_ID"),
                ColumnRef::new("ITEM", "ITEMID"),
            )
            .filter(Predicate::equality(ColumnRef::new("ITEM", "CATEGORY")))
            .group(ColumnRef::new("ITEM", "CATEGORY"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "QUANTITY"))),
        QuerySpec::new("segment_report", "SALES")
            .join(
                ColumnRef::new("SALES", "CUST_ID"),
                ColumnRef::new("CUSTOMER", "CUSTID"),
            )
            .filter(Predicate::equality(ColumnRef::new("CUSTOMER", "SEGMENT")))
            .group(ColumnRef::new("CUSTOMER", "SEGMENT"))
            .aggregate(Aggregate::sum(ColumnRef::new("SALES", "AMOUNT"))),
    ];
    let workload = Workload::new("quickstart", catalog, queries);

    // 3. Run the advisor + what-if pass to obtain the ordering problem
    //    instance (the "matrix file" of the paper's Figure 3).
    let instance = extract_instance(&workload, ExtractionConfig::with_budget(8))
        .expect("extraction succeeds on a well-formed workload");
    println!(
        "advisor suggested {} indexes, what-if extracted {} plans\n",
        instance.num_indexes(),
        instance.num_plans()
    );

    // 4. Compute deployment orders: greedy first, then improve with VNS.
    let evaluator = ObjectiveEvaluator::new(&instance);
    let greedy = GreedySolver::new().construct(&instance);
    let improved = VnsSolver::new(SearchBudget::seconds(2.0))
        .solve(&instance, greedy.clone())
        .deployment
        .expect("VNS always returns a deployment");

    for (label, order) in [("greedy", &greedy), ("greedy + VNS", &improved)] {
        let value = evaluator.evaluate(order);
        println!("{label:>13}: {}", order.arrow_notation());
        println!(
            "{:>13}  objective {:.0}, deployment takes {:.0}s, final workload runtime {:.0}s",
            "", value.area, value.deployment_time, value.final_runtime
        );
    }

    // 5. Show the improvement curve of the better order (Figure 2 / 4 of the
    //    paper): workload runtime as each index comes online.
    let value = evaluator.evaluate(&improved);
    let curve = ImprovementCurve::from_objective(&value);
    println!("\nimprovement curve (elapsed s → workload runtime s):");
    for point in curve.points().iter().step_by(2) {
        println!("  {:8.1} → {:8.1}", point.elapsed, point.runtime);
    }
}
