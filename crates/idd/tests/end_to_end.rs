//! Cross-crate integration tests: workload generation → what-if extraction →
//! solvers, exercised through the umbrella crate exactly as a downstream user
//! would.

use idd::core::reduce::{reduce, Density, ReduceOptions};
use idd::prelude::*;
use idd::solver::exact::{CpConfig, CpSolver};
use idd::solver::properties::{analyze, AnalysisOptions};

/// A small but non-trivial workload used by several tests (3 tables, 4
/// queries) so the full pipeline stays fast in debug builds.
fn small_workload() -> Workload {
    let mut catalog = Catalog::new();
    catalog
        .add_table(Table::new(
            "FACT",
            2_000_000.0,
            vec![
                Column::int_key("DIM1_ID", 50_000.0),
                Column::int_key("DIM2_ID", 2_000.0),
                Column::new("MEASURE", 8.0, 100_000.0),
                Column::new("MEASURE2", 8.0, 100_000.0),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "DIM1",
            50_000.0,
            vec![
                Column::int_key("ID", 50_000.0),
                Column::string("CATEGORY", 16.0, 40.0),
                Column::string("REGION", 16.0, 12.0),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "DIM2",
            2_000.0,
            vec![
                Column::int_key("ID", 2_000.0),
                Column::int_key("YEAR", 10.0),
            ],
        ))
        .unwrap();
    let q = |name: &str| QuerySpec::new(name, "FACT");
    let queries = vec![
        q("by_category")
            .join(
                ColumnRef::new("FACT", "DIM1_ID"),
                ColumnRef::new("DIM1", "ID"),
            )
            .filter(Predicate::equality(ColumnRef::new("DIM1", "CATEGORY")))
            .group(ColumnRef::new("DIM1", "CATEGORY"))
            .aggregate(Aggregate::sum(ColumnRef::new("FACT", "MEASURE"))),
        q("by_region_year")
            .join(
                ColumnRef::new("FACT", "DIM1_ID"),
                ColumnRef::new("DIM1", "ID"),
            )
            .join(
                ColumnRef::new("FACT", "DIM2_ID"),
                ColumnRef::new("DIM2", "ID"),
            )
            .filter(Predicate::equality(ColumnRef::new("DIM1", "REGION")))
            .filter(Predicate::equality(ColumnRef::new("DIM2", "YEAR")))
            .group(ColumnRef::new("DIM1", "REGION"))
            .aggregate(Aggregate::sum(ColumnRef::new("FACT", "MEASURE"))),
        q("yearly_total")
            .join(
                ColumnRef::new("FACT", "DIM2_ID"),
                ColumnRef::new("DIM2", "ID"),
            )
            .filter(Predicate::equality(ColumnRef::new("DIM2", "YEAR")))
            .group(ColumnRef::new("DIM2", "YEAR"))
            .aggregate(Aggregate::sum(ColumnRef::new("FACT", "MEASURE2"))),
        q("category_year")
            .join(
                ColumnRef::new("FACT", "DIM1_ID"),
                ColumnRef::new("DIM1", "ID"),
            )
            .join(
                ColumnRef::new("FACT", "DIM2_ID"),
                ColumnRef::new("DIM2", "ID"),
            )
            .filter(Predicate::in_list(ColumnRef::new("DIM1", "CATEGORY"), 3))
            .filter(Predicate::equality(ColumnRef::new("DIM2", "YEAR")))
            .group(ColumnRef::new("DIM1", "CATEGORY"))
            .aggregate(Aggregate::sum(ColumnRef::new("FACT", "MEASURE"))),
    ];
    Workload::new("integration", catalog, queries)
}

#[test]
fn pipeline_produces_a_consistent_instance() {
    let instance = extract_instance(&small_workload(), ExtractionConfig::with_budget(10)).unwrap();
    assert_eq!(instance.num_queries(), 4);
    assert!(instance.num_indexes() >= 3);
    assert!(instance.num_plans() >= instance.num_indexes() / 2);
    // Statistics agree with direct counting.
    let stats = InstanceStats::of(&instance);
    assert_eq!(stats.num_plans, instance.num_plans());
    assert!(stats.largest_plan >= 1);
}

#[test]
fn matrix_file_round_trip_preserves_solver_results() {
    let instance = extract_instance(&small_workload(), ExtractionConfig::with_budget(8)).unwrap();
    let json = MatrixFile::new(instance.clone(), "integration test")
        .to_json()
        .unwrap();
    let reloaded = MatrixFile::from_json(&json).unwrap().instance;

    let greedy_a = GreedySolver::new().construct(&instance);
    let greedy_b = GreedySolver::new().construct(&reloaded);
    assert_eq!(greedy_a, greedy_b);
    let area_a = ObjectiveEvaluator::new(&instance).evaluate_area(&greedy_a);
    let area_b = ObjectiveEvaluator::new(&reloaded).evaluate_area(&greedy_b);
    assert!((area_a - area_b).abs() < 1e-9);
}

#[test]
fn all_solvers_agree_with_the_exact_optimum_on_a_reduced_instance() {
    let instance = extract_instance(&small_workload(), ExtractionConfig::with_budget(7)).unwrap();
    let reduced = reduce(
        &instance,
        ReduceOptions {
            density: Density::Full,
            max_indexes: Some(6),
        },
    )
    .unwrap();
    let evaluator = ObjectiveEvaluator::new(&reduced);

    let exact = CpSolver::with_config(CpConfig::with_properties(SearchBudget::seconds(30.0)))
        .solve(&reduced);
    assert!(exact.is_optimal(), "6-index instance must be provable");
    let optimum = exact.objective;

    // Heuristics are never better than the proven optimum, and VNS reaches it.
    let greedy = GreedySolver::new().construct(&reduced);
    assert!(evaluator.evaluate_area(&greedy) >= optimum - 1e-6);
    let dp = DpSolver::new().construct(&reduced);
    assert!(evaluator.evaluate_area(&dp) >= optimum - 1e-6);
    let vns = VnsSolver::new(SearchBudget::seconds(2.0)).solve(&reduced, greedy);
    assert!(vns.objective >= optimum - 1e-6);
    assert!(
        (vns.objective - optimum) / optimum < 0.02,
        "VNS should be within 2% of the optimum, got {} vs {}",
        vns.objective,
        optimum
    );
}

#[test]
fn property_analysis_preserves_the_optimum_on_extracted_instances() {
    let instance = extract_instance(&small_workload(), ExtractionConfig::with_budget(7)).unwrap();
    let reduced = reduce(
        &instance,
        ReduceOptions {
            density: Density::Low,
            max_indexes: Some(7),
        },
    )
    .unwrap();
    let plain = CpSolver::with_config(CpConfig::plain(SearchBudget::seconds(60.0))).solve(&reduced);
    let plus = CpSolver::with_config(CpConfig::with_properties(SearchBudget::seconds(60.0)))
        .solve(&reduced);
    assert!(plain.is_optimal() && plus.is_optimal());
    assert!(
        (plain.objective - plus.objective).abs() < 1e-6,
        "plain {} vs plus {}",
        plain.objective,
        plus.objective
    );
    assert!(plus.nodes <= plain.nodes);
}

#[test]
fn analysis_reports_constraints_for_the_workload_instance() {
    let instance = extract_instance(&small_workload(), ExtractionConfig::with_budget(10)).unwrap();
    let report = analyze(&instance, AnalysisOptions::all());
    // The fixed point terminates and the resulting closure (which may well be
    // empty on a dense instance) must still admit a feasible order.
    assert!(report.rounds >= 1);
    assert!(
        report.converged,
        "the default round budget must reach a genuine fixed point on the \
         workload instance, not a clipped one"
    );
    let mut placed = vec![false; instance.num_indexes()];
    for _ in 0..instance.num_indexes() {
        let next = instance
            .index_ids()
            .find(|&i| !placed[i.raw()] && report.constraints.can_place(i, &placed))
            .expect("constraints admit a feasible order");
        placed[next.raw()] = true;
    }
}

#[test]
fn local_search_methods_improve_or_match_greedy_end_to_end() {
    let instance = extract_instance(&small_workload(), ExtractionConfig::with_budget(10)).unwrap();
    let evaluator = ObjectiveEvaluator::new(&instance);
    let greedy = GreedySolver::new().construct(&instance);
    let greedy_area = evaluator.evaluate_area(&greedy);

    for (name, result) in [
        (
            "tabu-best",
            TabuSolver::new(SwapStrategy::Best, SearchBudget::nodes(30))
                .solve(&instance, greedy.clone()),
        ),
        (
            "tabu-first",
            TabuSolver::new(SwapStrategy::First, SearchBudget::nodes(30))
                .solve(&instance, greedy.clone()),
        ),
        (
            "lns",
            LnsSolver::new(SearchBudget::nodes(30)).solve(&instance, greedy.clone()),
        ),
        (
            "vns",
            VnsSolver::new(SearchBudget::nodes(30)).solve(&instance, greedy.clone()),
        ),
    ] {
        assert!(
            result.objective <= greedy_area + 1e-9,
            "{name} worsened the greedy solution"
        );
        let deployment = result
            .deployment
            .expect("local search returns a deployment");
        deployment
            .validate(&instance)
            .unwrap_or_else(|e| panic!("{name} produced an invalid deployment: {e}"));
        assert!(
            (evaluator.evaluate_area(&deployment) - result.objective).abs() < 1e-6,
            "{name} reported an objective that does not match its deployment"
        );
    }
}
