//! Differential-oracle tests: every heuristic is cross-checked against the
//! exact CP solver on random instances small enough (≤ 8 indexes) for CP to
//! prove optimality, and the concurrent portfolio is cross-checked against
//! its own members.
//!
//! The oracle hierarchy:
//!
//! 1. CP with an unlimited budget *proves* the optimum.
//! 2. No heuristic may report an objective below a proven optimum (that
//!    would mean either the heuristic mis-evaluates or the "proof" is not
//!    one).
//! 3. Every solver must return a valid permutation of the indexes that
//!    satisfies the precedence closure in `OrderConstraints`.
//! 4. The portfolio combines its members, so it can never be worse than the
//!    best of them.

use idd::prelude::*;
use idd::solver::exact::{AStarConfig, AStarSolver, CpConfig, CpSolver, MipConfig, MipSolver};
use idd::solver::local::{LnsConfig, TabuConfig, VnsConfig};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A random consistent instance with 3–8 indexes, mixed plan widths, build
/// interactions and (sometimes) a hard precedence.
fn random_instance(seed: u64) -> ProblemInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(3..=8usize);
    let mut b = InstanceBuilder::new(format!("diff-{seed}"));
    let idx: Vec<IndexId> = (0..n)
        .map(|_| b.add_index(rng.gen_range(1.0..12.0)))
        .collect();
    let queries = rng.gen_range(2..=6usize);
    for _ in 0..queries {
        let runtime = rng.gen_range(30.0..150.0);
        let q = b.add_query(runtime);
        let plans = rng.gen_range(1..=3usize);
        let mut remaining = runtime * 0.9;
        for _ in 0..plans {
            let width = rng.gen_range(1..=3.min(n));
            let mut members: Vec<IndexId> = Vec::with_capacity(width);
            while members.len() < width {
                let candidate = idx[rng.gen_range(0..n)];
                if !members.contains(&candidate) {
                    members.push(candidate);
                }
            }
            let speedup = rng.gen_range(0.1..0.6) * remaining;
            remaining -= speedup * 0.5;
            b.add_plan(q, members, speedup);
        }
    }
    for _ in 0..rng.gen_range(0..=3usize) {
        let target = rng.gen_range(0..n);
        let helper = rng.gen_range(0..n);
        if target != helper {
            // Savings must stay below the target's base build cost.
            b.add_build_interaction(idx[target], idx[helper], rng.gen_range(0.05..0.5));
        }
    }
    if n >= 4 && rng.gen_bool(0.5) {
        // One hard precedence; (0, 1) can never form a cycle.
        b.add_precedence(idx[0], idx[1]);
    }
    b.build().expect("random instance is consistent")
}

/// Asserts the deployment is a valid permutation that satisfies both the
/// instance's hard precedences and the given constraint closure.
fn assert_valid(
    solver: &str,
    seed: u64,
    deployment: &Deployment,
    instance: &ProblemInstance,
    constraints: &OrderConstraints,
) {
    deployment
        .validate(instance)
        .unwrap_or_else(|e| panic!("{solver} (seed {seed}) returned an invalid deployment: {e}"));
    assert!(
        constraints.is_satisfied_by(deployment.order()),
        "{solver} (seed {seed}) violates the precedence closure: {deployment:?}"
    );
}

const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

#[test]
fn cp_optimum_is_a_lower_bound_for_every_heuristic() {
    for seed in SEEDS {
        let instance = random_instance(seed);
        let constraints = OrderConstraints::from_instance(&instance);
        let exact = CpSolver::with_config(CpConfig::with_properties(SearchBudget::unlimited()))
            .solve(&instance);
        assert!(
            exact.is_optimal(),
            "CP must prove ≤8-index instances (seed {seed})"
        );
        let optimum = exact.objective;
        assert_valid(
            "cp+",
            seed,
            exact.deployment.as_ref().unwrap(),
            &instance,
            &constraints,
        );

        let budget = SearchBudget::nodes(80);
        let heuristics: Vec<Box<dyn Solver>> = vec![
            Box::new(GreedySolver::new()),
            Box::new(DpSolver::new()),
            Box::new(RandomSolver::new(seed)),
            Box::new(TabuSolver::with_config(TabuConfig {
                strategy: SwapStrategy::Best,
                seed,
                ..TabuConfig::default()
            })),
            Box::new(TabuSolver::with_config(TabuConfig {
                strategy: SwapStrategy::First,
                seed,
                ..TabuConfig::default()
            })),
            Box::new(LnsSolver::with_config(LnsConfig {
                seed,
                ..LnsConfig::default()
            })),
            Box::new(VnsSolver::with_config(VnsConfig {
                seed,
                ..VnsConfig::default()
            })),
        ];
        let evaluator = ObjectiveEvaluator::new(&instance);
        for heuristic in &heuristics {
            let result = heuristic.run_standalone(&instance, budget);
            let name = heuristic.name();
            assert!(result.is_feasible(), "{name} found nothing (seed {seed})");
            assert!(
                result.objective >= optimum - 1e-6,
                "{name} (seed {seed}) beat the proven optimum: {} < {optimum}",
                result.objective
            );
            let deployment = result.deployment.as_ref().unwrap();
            assert_valid(name, seed, deployment, &instance, &constraints);
            assert!(
                (evaluator.evaluate_area(deployment) - result.objective).abs() < 1e-6,
                "{name} (seed {seed}) reported an objective that does not match its deployment"
            );
        }
    }
}

#[test]
fn exact_solvers_agree_on_the_optimum() {
    for seed in SEEDS.into_iter().take(6) {
        let instance = random_instance(seed);
        let cp = CpSolver::with_config(CpConfig::plain(SearchBudget::unlimited())).solve(&instance);
        let astar = AStarSolver::with_config(AStarConfig {
            budget: SearchBudget::unlimited(),
            ..AStarConfig::default()
        })
        .solve(&instance);
        assert!(cp.is_optimal() && astar.is_optimal(), "seed {seed}");
        assert!(
            (cp.objective - astar.objective).abs() < 1e-6,
            "seed {seed}: cp {} vs astar {}",
            cp.objective,
            astar.objective
        );
        // The MIP branches on a discretized time grid, so it may end within
        // discretization noise of the true optimum but never below it.
        let mip = MipSolver::with_config(MipConfig {
            budget: SearchBudget::unlimited(),
            ..MipConfig::default()
        })
        .solve(&instance);
        assert!(mip.is_feasible(), "seed {seed}");
        assert!(
            mip.objective >= cp.objective - 1e-6,
            "seed {seed}: mip {} below the proven optimum {}",
            mip.objective,
            cp.objective
        );
    }
}

#[test]
fn portfolio_is_never_worse_than_its_best_member() {
    for seed in SEEDS {
        let instance = random_instance(seed);
        let constraints = OrderConstraints::from_instance(&instance);
        let outcome =
            PortfolioSolver::recommended(SearchBudget::bounded(5.0, 200)).solve_detailed(&instance);
        assert!(outcome.combined.is_feasible(), "seed {seed}");
        let best_member = outcome.best_member_objective();
        assert!(
            outcome.combined.objective <= best_member + 1e-12,
            "seed {seed}: portfolio {} worse than best member {best_member}",
            outcome.combined.objective
        );
        assert_valid(
            "portfolio",
            seed,
            outcome.combined.deployment.as_ref().unwrap(),
            &instance,
            &constraints,
        );
    }
}

#[test]
fn cooperative_portfolio_matches_the_exact_optimum_and_cancels_all_members() {
    use idd::solver::{CooperationPolicy, PortfolioConfig, SolveContext};

    for seed in SEEDS.into_iter().take(5) {
        let instance = random_instance(seed);
        let constraints = OrderConstraints::from_instance(&instance);
        let exact = CpSolver::with_config(CpConfig::with_properties(SearchBudget::unlimited()))
            .solve(&instance);
        assert!(exact.is_optimal());

        // Full cooperation on: warm-starts + hint stealing. The CP member
        // still proves the optimum, the proof must agree with the standalone
        // one (cooperation may accelerate members but can never distort the
        // objective), and the race must end with every member cancelled.
        let budget = SearchBudget::seconds(30.0);
        let portfolio = PortfolioSolver::recommended(budget).with_config(PortfolioConfig {
            budget,
            cancel_on_optimal: true,
            cooperation: CooperationPolicy::WarmStartSteal,
        });
        let ctx = SolveContext::new();
        let combined = portfolio.run(&instance, budget, &ctx);
        assert!(combined.is_optimal(), "seed {seed}");
        assert!(
            (combined.objective - exact.objective).abs() < 1e-6,
            "seed {seed}: cooperative portfolio {} vs exact {}",
            combined.objective,
            exact.objective
        );
        assert_valid(
            "portfolio(coop)",
            seed,
            combined.deployment.as_ref().unwrap(),
            &instance,
            &constraints,
        );
        // The optimality proof cancelled the shared context, which is what
        // stopped the other members (the scoped threads have all joined by
        // the time `run` returns, so the flag being set proves they exited
        // through the cooperative-cancellation path).
        assert!(
            ctx.is_cancelled(),
            "seed {seed}: the proof must cancel the race"
        );
        // The shared cell's final deployment agrees with the proof.
        let snapshot = ctx
            .incumbent()
            .best_deployment()
            .expect("members published deployments");
        assert!(
            snapshot.objective >= combined.objective - 1e-6,
            "seed {seed}: published deployment beat the proven optimum"
        );
    }
}

#[test]
fn portfolio_with_proof_matches_the_exact_optimum() {
    for seed in SEEDS.into_iter().take(5) {
        let instance = random_instance(seed);
        let exact = CpSolver::with_config(CpConfig::with_properties(SearchBudget::unlimited()))
            .solve(&instance);
        assert!(exact.is_optimal());
        let combined = PortfolioSolver::recommended(SearchBudget::seconds(30.0)).solve(&instance);
        // CP+ sits in the recommended roster, so the race ends with a proof
        // — and the proof must agree with the standalone optimum.
        assert!(combined.is_optimal(), "seed {seed}");
        assert!(
            (combined.objective - exact.objective).abs() < 1e-6,
            "seed {seed}: portfolio {} vs exact {}",
            combined.objective,
            exact.objective
        );
    }
}
