//! Property-based tests (proptest) over randomly generated problem instances.
//!
//! These check the invariants the whole system leans on:
//!
//! * the incremental evaluators agree with the from-scratch evaluator on
//!   arbitrary orders and arbitrary swaps;
//! * the objective area always equals the area under the improvement curve;
//! * every solver returns a valid permutation that respects precedences;
//! * the Section-5 property analysis never removes all optimal solutions
//!   (CP with constraints finds the same optimum as plain CP);
//! * instance (de)serialization is lossless with respect to evaluation.

use idd::core::{
    Deployment, ImprovementCurve, InstanceBuilder, MatrixFile, ObjectiveEvaluator, PrefixEvaluator,
    ProblemInstance,
};
use idd::prelude::*;
use idd::solver::exact::{CpConfig, CpSolver};
use proptest::prelude::*;

/// Strategy: a random consistent problem instance with `n` indexes.
fn arb_instance(max_indexes: usize) -> impl Strategy<Value = ProblemInstance> {
    let n_range = 2..=max_indexes;
    n_range.prop_flat_map(move |n| {
        let costs = proptest::collection::vec(1.0f64..20.0, n);
        let queries = proptest::collection::vec(
            (
                20.0f64..200.0, // runtime
                proptest::collection::vec(
                    (
                        proptest::collection::vec(0..n, 1..=3.min(n)), // plan members
                        0.05f64..0.9,                                  // speed-up fraction
                    ),
                    1..=4,
                ),
            ),
            1..=6,
        );
        let interactions = proptest::collection::vec((0..n, 0..n, 0.05f64..0.8), 0..=4);
        (costs, queries, interactions).prop_map(move |(costs, queries, interactions)| {
            let mut b = InstanceBuilder::new("proptest");
            for c in &costs {
                b.add_index(*c);
            }
            for (runtime, plans) in queries {
                let q = b.add_query(runtime);
                for (members, fraction) in plans {
                    let ids: Vec<idd::core::IndexId> =
                        members.into_iter().map(idd::core::IndexId::new).collect();
                    b.add_plan(q, ids, runtime * fraction);
                }
            }
            for (target, helper, fraction) in interactions {
                if target != helper {
                    let saving = costs[target] * fraction;
                    b.add_build_interaction(
                        idd::core::IndexId::new(target),
                        idd::core::IndexId::new(helper),
                        saving,
                    );
                }
            }
            b.build().expect("generated instance is consistent")
        })
    })
}

/// Strategy: an instance plus a random permutation of its indexes.
fn arb_instance_and_order(
    max_indexes: usize,
) -> impl Strategy<Value = (ProblemInstance, Vec<usize>)> {
    arb_instance(max_indexes).prop_flat_map(|inst| {
        let n = inst.num_indexes();
        (
            Just(inst),
            Just(()).prop_perturb(move |_, mut rng| {
                let mut order: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = (rng.next_u64() as usize) % (i + 1);
                    order.swap(i, j);
                }
                order
            }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn objective_matches_curve_area((inst, order) in arb_instance_and_order(10)) {
        let evaluator = ObjectiveEvaluator::new(&inst);
        let deployment = Deployment::from_raw(order);
        let value = evaluator.evaluate(&deployment);
        let curve = ImprovementCurve::from_objective(&value);
        prop_assert!((curve.area() - value.area).abs() < 1e-6 * value.area.max(1.0));
        // Deployment time is the sum of the step costs and never exceeds the
        // base build cost.
        let step_sum: f64 = value.steps.iter().map(|s| s.build_cost).sum();
        prop_assert!((step_sum - value.deployment_time).abs() < 1e-6);
        prop_assert!(value.deployment_time <= inst.total_base_build_cost() + 1e-6);
        // Runtime never increases while deploying.
        for pair in value.steps.windows(2) {
            prop_assert!(pair[1].runtime_before <= pair[0].runtime_after + 1e-9);
        }
    }

    #[test]
    fn prefix_evaluator_agrees_on_all_swaps((inst, order) in arb_instance_and_order(8)) {
        let evaluator = ObjectiveEvaluator::new(&inst);
        let base = Deployment::from_raw(order);
        let mut prefix = PrefixEvaluator::new(&inst, base.clone());
        let n = inst.num_indexes();
        for a in 0..n {
            for b in (a + 1)..n {
                let expected = evaluator.evaluate_area(&base.with_swap(a, b));
                let got = prefix.evaluate_swap(a, b);
                // The delta path is exact, not merely close.
                prop_assert!(expected.to_bits() == got.to_bits(),
                    "swap {a},{b}: {expected} vs {got}");
            }
        }
    }

    #[test]
    fn greedy_dp_and_local_search_return_valid_orders(inst in arb_instance(12)) {
        let evaluator = ObjectiveEvaluator::new(&inst);
        let greedy = GreedySolver::new().construct(&inst);
        prop_assert!(greedy.validate(&inst).is_ok());
        let dp = DpSolver::new().construct(&inst);
        prop_assert!(dp.validate(&inst).is_ok());
        let vns = VnsSolver::new(SearchBudget::nodes(15)).solve(&inst, greedy.clone());
        let vns_deployment = vns.deployment.unwrap();
        prop_assert!(vns_deployment.validate(&inst).is_ok());
        prop_assert!(vns.objective <= evaluator.evaluate_area(&greedy) + 1e-9);
    }

    #[test]
    fn serialization_is_lossless_for_evaluation((inst, order) in arb_instance_and_order(9)) {
        let json = MatrixFile::new(inst.clone(), "proptest").to_json().unwrap();
        let reloaded = MatrixFile::from_json(&json).unwrap().instance;
        let deployment = Deployment::from_raw(order);
        let a = ObjectiveEvaluator::new(&inst).evaluate_area(&deployment);
        let b = ObjectiveEvaluator::new(&reloaded).evaluate_area(&deployment);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn property_analysis_never_cuts_off_the_optimum(inst in arb_instance(6)) {
        let plain = CpSolver::with_config(CpConfig::plain(SearchBudget::unlimited())).solve(&inst);
        let plus = CpSolver::with_config(CpConfig::with_properties(SearchBudget::unlimited()))
            .solve(&inst);
        prop_assert!(plain.is_optimal());
        prop_assert!(plus.is_optimal());
        prop_assert!((plain.objective - plus.objective).abs() < 1e-6 * plain.objective.max(1.0),
            "plain {} vs constrained {}", plain.objective, plus.objective);
    }

    #[test]
    fn trajectory_points_improve_strictly_and_in_time_order(
        events in proptest::collection::vec((0.0f64..100.0, 1.0f64..1000.0), 0..40)
    ) {
        let mut events = events;
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut t = Trajectory::new();
        for (elapsed, objective) in &events {
            t.record(*elapsed, *objective);
        }
        for pair in t.points().windows(2) {
            prop_assert!(pair[0].elapsed_seconds <= pair[1].elapsed_seconds,
                "points out of time order: {pair:?}");
            prop_assert!(pair[1].objective < pair[0].objective,
                "non-improving point kept: {pair:?}");
        }
        // objective_at is monotone non-increasing in time.
        let mut probe = 0.0;
        let mut previous = f64::INFINITY;
        while probe <= 110.0 {
            let now = t.objective_at(probe);
            prop_assert!(now <= previous, "objective_at increased at t={probe}");
            previous = now;
            probe += 3.7;
        }
        // The final objective is the minimum over every recorded event.
        let minimum = events.iter().map(|e| e.1).fold(f64::INFINITY, f64::min);
        if t.is_empty() {
            prop_assert!(events.is_empty());
        } else {
            prop_assert!((t.final_objective() - minimum).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectory_merge_is_the_pointwise_minimum(
        (a_events, b_events, probes) in (
            proptest::collection::vec((0.0f64..50.0, 1.0f64..500.0), 0..20),
            proptest::collection::vec((0.0f64..50.0, 1.0f64..500.0), 0..20),
            proptest::collection::vec(0.0f64..60.0, 1..30),
        )
    ) {
        let build = |events: &[(f64, f64)]| {
            let mut sorted = events.to_vec();
            sorted.sort_by(|x, y| x.0.total_cmp(&y.0));
            let mut t = Trajectory::new();
            for (elapsed, objective) in sorted {
                t.record(elapsed, objective);
            }
            t
        };
        let a = build(&a_events);
        let b = build(&b_events);
        let merged = a.merge(&b);
        // Merging is symmetric...
        prop_assert_eq!(&merged, &b.merge(&a));
        // ...absorbs the empty trajectory...
        prop_assert_eq!(&a.merge(&Trajectory::new()), &a);
        // ...and equals the pointwise minimum of the two step functions.
        for &t in &probes {
            let expected = a.objective_at(t).min(b.objective_at(t));
            let got = merged.objective_at(t);
            if expected.is_finite() {
                prop_assert!((got - expected).abs() < 1e-12,
                    "merge at t={t}: {got} vs min {expected}");
            } else {
                prop_assert!(got.is_infinite());
            }
        }
        // The merged points obey the same invariants as any trajectory.
        for pair in merged.points().windows(2) {
            prop_assert!(pair[0].elapsed_seconds <= pair[1].elapsed_seconds);
            prop_assert!(pair[1].objective < pair[0].objective);
        }
    }

    #[test]
    fn trajectory_merge_keeps_the_minimum_at_identical_timestamps(
        (a_events, b_events) in (
            proptest::collection::vec((0usize..6, 1.0f64..500.0), 0..16),
            proptest::collection::vec((0usize..6, 1.0f64..500.0), 0..16),
        )
    ) {
        // Regression for a PR 2 gap: timestamps drawn from a *coarse grid*
        // so identical timestamps across (and within) members are the norm,
        // not a measure-zero accident — several portfolio members publishing
        // within one timer tick is exactly what a real race produces. The
        // merged step function must keep the minimum at every tie.
        let build = |events: &[(usize, f64)]| {
            let mut sorted = events.to_vec();
            sorted.sort_by_key(|e| e.0);
            let mut t = Trajectory::new();
            for (tick, objective) in sorted {
                t.record(tick as f64 * 0.5, objective);
            }
            t
        };
        let a = build(&a_events);
        let b = build(&b_events);
        let merged = a.merge(&b);
        prop_assert_eq!(&merged, &b.merge(&a));
        // Probe every grid tick plus the midpoints between ticks.
        for half_tick in 0..14usize {
            let t = half_tick as f64 * 0.25;
            let expected = a.objective_at(t).min(b.objective_at(t));
            let got = merged.objective_at(t);
            if expected.is_finite() {
                prop_assert!((got - expected).abs() < 1e-12,
                    "merge at t={t}: {got} vs min {expected}");
            } else {
                prop_assert!(got.is_infinite());
            }
        }
        for pair in merged.points().windows(2) {
            prop_assert!(pair[0].elapsed_seconds < pair[1].elapsed_seconds,
                "merged points must have distinct, increasing timestamps: {pair:?}");
            prop_assert!(pair[1].objective < pair[0].objective);
        }
    }

    #[test]
    fn random_solver_summary_is_internally_consistent(inst in arb_instance(10)) {
        let summary = RandomSolver::new(17).summarize(&inst, 25);
        prop_assert!(summary.minimum <= summary.average + 1e-9);
        prop_assert!(summary.average <= summary.maximum + 1e-9);
        prop_assert!(summary.best.validate(&inst).is_ok());
        let best_area = ObjectiveEvaluator::new(&inst).evaluate_area(&summary.best);
        prop_assert!((best_area - summary.minimum).abs() < 1e-9);
    }
}

#[test]
fn solve_outcome_labels_round_trip() {
    for outcome in SolveOutcome::ALL {
        assert_eq!(SolveOutcome::from_label(outcome.label()), Some(outcome));
    }
    for bogus in ["", "optimal", "OPT", "df", "feasible"] {
        assert_eq!(SolveOutcome::from_label(bogus), None);
    }
}
