//! # idd — Incremental Database Design (umbrella crate)
//!
//! Reproduction of *"Optimizing Index Deployment Order for Evolving OLAP"*
//! (EDBT 2012). This crate re-exports the workspace members so examples and
//! downstream users can depend on a single crate:
//!
//! * [`core`] — the problem model (indexes, queries, plans, interactions),
//!   the objective function and instance serialization.
//! * [`whatif`] — a synthetic DBMS substrate: catalog, cost model, what-if
//!   optimizer and index advisor that produce problem instances.
//! * [`workloads`] — TPC-H-like / TPC-DS-like workload generators.
//! * [`solver`] — greedy, DP, CP branch-and-prune, MIP, A*, Tabu, LNS and VNS
//!   solvers plus the combinatorial pruning analysis.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use idd_core as core;
pub use idd_solver as solver;
pub use idd_whatif as whatif;
pub use idd_workloads as workloads;

/// Convenience prelude re-exporting the most common types.
pub mod prelude {
    pub use idd_core::prelude::*;
    pub use idd_solver::prelude::*;
    pub use idd_whatif::prelude::*;
    pub use idd_workloads::prelude::*;
}
