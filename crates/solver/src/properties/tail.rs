//! Tail-index analysis (Section 5.5, Appendix D.6).
//!
//! The last few positions of an optimal order can often be pinned down by
//! enumeration: for a fixed *set* of tail indexes, the preceding indexes and
//! their interactions onto the tail are fully determined, so the tail
//! orderings within the same set are directly comparable ("tail champions").
//! If one index is the last index of every champion, it is the last index of
//! some optimal solution and every other index can be constrained to precede
//! it. Re-running the analysis after fixing it pins the second-to-last index,
//! and so on (the paper's "iterate and recurse").

use crate::constraints::OrderConstraints;
use idd_core::{IndexId, ObjectiveEvaluator, ProblemInstance};

/// Enumerates feasible tail sequences of length `len` under `constraints`.
/// A sequence `[a, b, c]` means `a` is at position `n-3`, `c` at `n-1`.
fn enumerate_tails(
    instance: &ProblemInstance,
    constraints: &OrderConstraints,
    len: usize,
    budget: usize,
) -> Option<Vec<Vec<IndexId>>> {
    let n = instance.num_indexes();
    if len == 0 || len > n {
        return Some(Vec::new());
    }
    let mut result: Vec<Vec<IndexId>> = Vec::new();
    // Build backwards from the last position: an index can occupy the
    // currently-last open slot when every index it must precede is already
    // placed in a later slot.
    fn recurse(
        n: usize,
        constraints: &OrderConstraints,
        len: usize,
        suffix: &mut Vec<IndexId>,
        used: &mut Vec<bool>,
        result: &mut Vec<Vec<IndexId>>,
        budget: usize,
    ) -> bool {
        if suffix.len() == len {
            let mut tail: Vec<IndexId> = suffix.clone();
            tail.reverse();
            result.push(tail);
            return result.len() <= budget;
        }
        for raw in 0..n {
            let candidate = IndexId::new(raw);
            if used[raw] {
                continue;
            }
            // Every successor of the candidate must already be in the suffix.
            let ok = constraints
                .successors(candidate)
                .iter()
                .all(|s| used[s.raw()]);
            if !ok {
                continue;
            }
            used[raw] = true;
            suffix.push(candidate);
            let cont = recurse(n, constraints, len, suffix, used, result, budget);
            suffix.pop();
            used[raw] = false;
            if !cont {
                return false;
            }
        }
        true
    }

    let mut used = vec![false; n];
    let mut suffix = Vec::new();
    let within_budget = recurse(
        n,
        constraints,
        len,
        &mut suffix,
        &mut used,
        &mut result,
        budget,
    );
    if within_budget {
        Some(result)
    } else {
        None
    }
}

/// Objective contribution of a tail sequence given that every other index is
/// already built.
fn tail_objective(
    instance: &ProblemInstance,
    evaluator: &ObjectiveEvaluator<'_>,
    tail: &[IndexId],
) -> f64 {
    let n = instance.num_indexes();
    let mut built = vec![true; n];
    for &t in tail {
        built[t.raw()] = false;
    }
    let mut area = 0.0;
    for &t in tail {
        let runtime = evaluator.runtime_with(&built);
        let cost = instance.effective_build_cost(t, &built);
        area += runtime * cost;
        built[t.raw()] = true;
    }
    area
}

/// Runs one round of tail analysis: if every tail champion ends with the same
/// index, constrain all other indexes to precede it. Returns the number of
/// indexes newly pinned (0 or 1 per call; the fixed-point loop recurses).
pub fn analyze(
    instance: &ProblemInstance,
    constraints: &mut OrderConstraints,
    tail_length: usize,
    budget: usize,
) -> usize {
    let n = instance.num_indexes();
    if n < 2 {
        return 0;
    }
    let len = tail_length.min(n).max(1);
    let tails = match enumerate_tails(instance, constraints, len, budget) {
        Some(t) if !t.is_empty() => t,
        _ => return 0,
    };
    let evaluator = ObjectiveEvaluator::new(instance);

    // Group by tail set; keep the champion (smallest tail objective).
    use std::collections::HashMap;
    let mut champions: HashMap<Vec<usize>, (f64, Vec<IndexId>)> = HashMap::new();
    for tail in tails {
        let mut key: Vec<usize> = tail.iter().map(|i| i.raw()).collect();
        key.sort_unstable();
        let objective = tail_objective(instance, &evaluator, &tail);
        match champions.get(&key) {
            Some((best, _)) if *best <= objective => {}
            _ => {
                champions.insert(key, (objective, tail));
            }
        }
    }

    // Does one index close every champion?
    let mut last_indexes = champions.values().map(|(_, tail)| *tail.last().unwrap());
    let first = match last_indexes.next() {
        Some(i) => i,
        None => return 0,
    };
    if !last_indexes.all(|i| i == first) {
        return 0;
    }

    // Pin `first` as the very last index (unless it already is).
    let mut added = 0;
    for raw in 0..n {
        let other = IndexId::new(raw);
        if other != first
            && !constraints.must_precede(other, first)
            && constraints.add_before(other, first)
        {
            added = 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An instance where one index is obviously the worst thing to build
    /// early: zero benefit, large cost, no interactions.
    fn deadweight_instance() -> (ProblemInstance, IndexId) {
        let mut b = ProblemInstance::builder("deadweight");
        let useful1 = b.add_index(2.0);
        let useful2 = b.add_index(3.0);
        let deadweight = b.add_index(20.0);
        let q0 = b.add_query(100.0);
        b.add_plan(q0, vec![useful1], 40.0);
        let q1 = b.add_query(80.0);
        b.add_plan(q1, vec![useful2], 30.0);
        // The deadweight index has a tiny benefit so it is not useless, just
        // always the right thing to postpone.
        let q2 = b.add_query(10.0);
        b.add_plan(q2, vec![deadweight], 0.5);
        (b.build().unwrap(), deadweight)
    }

    #[test]
    fn deadweight_index_is_pinned_last() {
        // With tail length = |I| there is a single tail group whose champion
        // is the global optimum; its last index (the deadweight) gets pinned.
        let (inst, deadweight) = deadweight_instance();
        let mut constraints = OrderConstraints::from_instance(&inst);
        let fixed = analyze(&inst, &mut constraints, 3, 10_000);
        assert_eq!(fixed, 1);
        for other in inst.index_ids() {
            if other != deadweight {
                assert!(constraints.must_precede(other, deadweight));
            }
        }
    }

    #[test]
    fn enumeration_respects_existing_constraints() {
        let (inst, deadweight) = deadweight_instance();
        let mut constraints = OrderConstraints::from_instance(&inst);
        // Pretend another index must be last instead; the tails must honour it.
        let forced_last = inst.index_ids().find(|&i| i != deadweight).unwrap();
        for other in inst.index_ids() {
            if other != forced_last {
                constraints.add_before(other, forced_last);
            }
        }
        let tails = enumerate_tails(&inst, &constraints, 2, 10_000).unwrap();
        assert!(!tails.is_empty());
        for tail in &tails {
            assert_eq!(*tail.last().unwrap(), forced_last);
        }
    }

    #[test]
    fn budget_overflow_returns_none() {
        let (inst, _) = deadweight_instance();
        let constraints = OrderConstraints::from_instance(&inst);
        assert!(enumerate_tails(&inst, &constraints, 3, 1).is_none());
    }

    #[test]
    fn tail_objective_accounts_for_build_interactions() {
        let mut b = ProblemInstance::builder("tail-build");
        let i0 = b.add_index(10.0);
        let i1 = b.add_index(10.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0], 20.0);
        b.add_plan(q, vec![i1], 25.0);
        b.add_build_interaction(i0, i1, 6.0);
        let inst = b.build().unwrap();
        let evaluator = ObjectiveEvaluator::new(&inst);
        // Tail [i0] (everything else built): i0 costs 10-6=4, runtime is 25.
        let obj = tail_objective(&inst, &evaluator, &[i0]);
        assert!((obj - (50.0 - 25.0) * 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_index_instance_is_a_noop() {
        let mut b = ProblemInstance::builder("one");
        let i0 = b.add_index(1.0);
        let q = b.add_query(5.0);
        b.add_plan(q, vec![i0], 1.0);
        let inst = b.build().unwrap();
        let mut c = OrderConstraints::from_instance(&inst);
        assert_eq!(analyze(&inst, &mut c, 3, 1000), 0);
    }
}
