//! Alliance detection (Section 5.1, Appendix D.2).
//!
//! An *alliance* is a set of indexes that appear in query plans only as a
//! complete group (no member ever appears in a plan without all the others)
//! and whose members have no couplings to outside indexes. Building only
//! part of an alliance yields no query benefit, so some optimal solution
//! builds the members consecutively — the search can glue them together.
//!
//! "No couplings" means all three of:
//!
//! * no member speeds up the build of an outside index (delaying the member
//!   to join its group could make that outside build more expensive);
//! * no member's own build is sped up by an outside index (advancing the
//!   member to join its group could forfeit that saving);
//! * no member participates in a hard precedence with an outside index
//!   (gluing would implicitly reorder the outsider relative to the group,
//!   which the constraint may forbid — this is what made the glued "optimum"
//!   on a reduced instance worse than the true one before the check existed).

use idd_core::{IndexId, ProblemInstance};

/// `true` when `member` has no build-interaction or precedence coupling with
/// any index outside `members`.
fn externally_uncoupled(instance: &ProblemInstance, member: IndexId, members: &[IndexId]) -> bool {
    instance
        .helps(member)
        .iter()
        .all(|(target, _)| members.contains(target))
        && instance
            .helpers_of(member)
            .iter()
            .all(|(helper, _)| members.contains(helper))
        && instance.precedences().iter().all(|p| {
            (p.before != member && p.after != member)
                || (members.contains(&p.before) && members.contains(&p.after))
        })
}

/// Detects alliance groups. Each returned group has at least two members.
pub fn detect(instance: &ProblemInstance) -> Vec<Vec<IndexId>> {
    let n = instance.num_indexes();

    // Signature of an index: the sorted list of plans it participates in.
    // Two indexes are allied when their signatures are identical and
    // non-empty — then every plan containing one contains the other.
    let mut groups: std::collections::HashMap<Vec<usize>, Vec<IndexId>> =
        std::collections::HashMap::new();
    for raw in 0..n {
        let id = IndexId::new(raw);
        let mut signature: Vec<usize> = instance
            .plans_using_index(id)
            .iter()
            .map(|p| p.raw())
            .collect();
        if signature.is_empty() {
            continue;
        }
        signature.sort_unstable();
        groups.entry(signature).or_default().push(id);
    }

    let mut result: Vec<Vec<IndexId>> = groups
        .into_values()
        .filter(|members| members.len() >= 2)
        // Appendix D.2's "no external interactions": every member must be
        // free of build-interaction and precedence couplings to outsiders.
        .filter(|members| {
            members
                .iter()
                .all(|&m| externally_uncoupled(instance, m, members))
        })
        .collect();
    for g in &mut result {
        g.sort_unstable();
    }
    result.sort();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_example_finds_the_two_alliances() {
        // Plans: {i0,i2}, {i0,i2,i4}, {i1,i4}, {i3,i5} — alliances are
        // {i0,i2} and {i3,i5}; i1 and i4 are not allied because i4 appears
        // without i1.
        let mut b = ProblemInstance::builder("fig5");
        let i: Vec<IndexId> = (0..6).map(|_| b.add_index(5.0)).collect();
        let q0 = b.add_query(100.0);
        b.add_plan(q0, vec![i[0], i[2]], 30.0);
        b.add_plan(q0, vec![i[0], i[2], i[4]], 50.0);
        let q1 = b.add_query(80.0);
        b.add_plan(q1, vec![i[1], i[4]], 20.0);
        let q2 = b.add_query(60.0);
        b.add_plan(q2, vec![i[3], i[5]], 25.0);
        let inst = b.build().unwrap();

        let alliances = detect(&inst);
        assert_eq!(alliances.len(), 2);
        assert!(alliances.contains(&vec![i[0], i[2]]));
        assert!(alliances.contains(&vec![i[3], i[5]]));
    }

    #[test]
    fn index_with_solo_plan_is_not_allied() {
        let mut b = ProblemInstance::builder("solo");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        b.add_plan(q, vec![i0], 5.0); // i0 appears alone → not allied
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn external_build_helper_disqualifies_an_alliance() {
        let mut b = ProblemInstance::builder("helper");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        let q2 = b.add_query(30.0);
        b.add_plan(q2, vec![i2], 5.0);
        // i0 helps build the outside index i2 → the {i0,i1} alliance must not
        // be glued (placing i0 early could matter for i2's build cost).
        b.add_build_interaction(i2, i0, 2.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn internal_build_interactions_are_allowed() {
        let mut b = ProblemInstance::builder("internal");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        b.add_build_interaction(i1, i0, 2.0); // inside the group: fine
        let inst = b.build().unwrap();
        assert_eq!(detect(&inst), vec![vec![i0, i1]]);
    }

    #[test]
    fn external_build_helper_of_a_member_disqualifies_an_alliance() {
        let mut b = ProblemInstance::builder("helped");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        let q2 = b.add_query(30.0);
        b.add_plan(q2, vec![i2], 5.0);
        // The outside index i2 helps build the member i0: gluing i0 forward
        // to its group could forfeit that saving.
        b.add_build_interaction(i0, i2, 2.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn external_precedence_disqualifies_an_alliance() {
        let mut b = ProblemInstance::builder("prec");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        let q2 = b.add_query(30.0);
        b.add_plan(q2, vec![i2], 5.0);
        // A hard precedence couples the member i0 to the outsider i2.
        b.add_precedence(i0, i2);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());

        // Purely internal precedences do not disqualify the group.
        let mut b = ProblemInstance::builder("prec-internal");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        assert_eq!(detect(&inst), vec![vec![i0, i1]]);
    }

    #[test]
    fn unused_indexes_are_ignored() {
        let mut b = ProblemInstance::builder("unused");
        let _i0 = b.add_index(1.0);
        let _i1 = b.add_index(1.0);
        let q = b.add_query(5.0);
        let i2 = b.add_index(1.0);
        let i3 = b.add_index(1.0);
        b.add_plan(q, vec![i2, i3], 2.0);
        let inst = b.build().unwrap();
        let alliances = detect(&inst);
        assert_eq!(alliances, vec![vec![i2, i3]]);
    }
}
