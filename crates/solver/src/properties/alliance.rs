//! Alliance detection (Section 5.1, Appendix D.2).
//!
//! An *alliance* is a set of indexes that appear in query plans only as a
//! complete group (no member ever appears in a plan without all the others)
//! and whose members do not speed up the build of any outside index. Building
//! only part of an alliance yields no query benefit, so some optimal solution
//! builds the members consecutively — the search can glue them together.

use idd_core::{IndexId, ProblemInstance};

/// Detects alliance groups. Each returned group has at least two members.
pub fn detect(instance: &ProblemInstance) -> Vec<Vec<IndexId>> {
    let n = instance.num_indexes();

    // Signature of an index: the sorted list of plans it participates in.
    // Two indexes are allied when their signatures are identical and
    // non-empty — then every plan containing one contains the other.
    let mut groups: std::collections::HashMap<Vec<usize>, Vec<IndexId>> =
        std::collections::HashMap::new();
    for raw in 0..n {
        let id = IndexId::new(raw);
        let mut signature: Vec<usize> = instance
            .plans_using_index(id)
            .iter()
            .map(|p| p.raw())
            .collect();
        if signature.is_empty() {
            continue;
        }
        signature.sort_unstable();
        groups.entry(signature).or_default().push(id);
    }

    let mut result: Vec<Vec<IndexId>> = groups
        .into_values()
        .filter(|members| members.len() >= 2)
        // Members must not help building any outside index (Appendix D.2's
        // "no external interactions for building cost improvements").
        .filter(|members| {
            members.iter().all(|&m| {
                instance
                    .helps(m)
                    .iter()
                    .all(|(target, _)| members.contains(target))
            })
        })
        .collect();
    for g in &mut result {
        g.sort_unstable();
    }
    result.sort();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_example_finds_the_two_alliances() {
        // Plans: {i0,i2}, {i0,i2,i4}, {i1,i4}, {i3,i5} — alliances are
        // {i0,i2} and {i3,i5}; i1 and i4 are not allied because i4 appears
        // without i1.
        let mut b = ProblemInstance::builder("fig5");
        let i: Vec<IndexId> = (0..6).map(|_| b.add_index(5.0)).collect();
        let q0 = b.add_query(100.0);
        b.add_plan(q0, vec![i[0], i[2]], 30.0);
        b.add_plan(q0, vec![i[0], i[2], i[4]], 50.0);
        let q1 = b.add_query(80.0);
        b.add_plan(q1, vec![i[1], i[4]], 20.0);
        let q2 = b.add_query(60.0);
        b.add_plan(q2, vec![i[3], i[5]], 25.0);
        let inst = b.build().unwrap();

        let alliances = detect(&inst);
        assert_eq!(alliances.len(), 2);
        assert!(alliances.contains(&vec![i[0], i[2]]));
        assert!(alliances.contains(&vec![i[3], i[5]]));
    }

    #[test]
    fn index_with_solo_plan_is_not_allied() {
        let mut b = ProblemInstance::builder("solo");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        b.add_plan(q, vec![i0], 5.0); // i0 appears alone → not allied
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn external_build_helper_disqualifies_an_alliance() {
        let mut b = ProblemInstance::builder("helper");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        let q2 = b.add_query(30.0);
        b.add_plan(q2, vec![i2], 5.0);
        // i0 helps build the outside index i2 → the {i0,i1} alliance must not
        // be glued (placing i0 early could matter for i2's build cost).
        b.add_build_interaction(i2, i0, 2.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn internal_build_interactions_are_allowed() {
        let mut b = ProblemInstance::builder("internal");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        b.add_build_interaction(i1, i0, 2.0); // inside the group: fine
        let inst = b.build().unwrap();
        assert_eq!(detect(&inst), vec![vec![i0, i1]]);
    }

    #[test]
    fn unused_indexes_are_ignored() {
        let mut b = ProblemInstance::builder("unused");
        let _i0 = b.add_index(1.0);
        let _i1 = b.add_index(1.0);
        let q = b.add_query(5.0);
        let i2 = b.add_index(1.0);
        let i3 = b.add_index(1.0);
        b.add_plan(q, vec![i2, i3], 2.0);
        let inst = b.build().unwrap();
        let alliances = detect(&inst);
        assert_eq!(alliances, vec![vec![i2, i3]]);
    }
}
