//! Problem-specific properties (paper Section 5 / Appendix D).
//!
//! Each detector derives ordering constraints that hold in at least one
//! optimal solution, so adding them never changes the optimal objective but
//! shrinks the search space — by several orders of magnitude in the paper's
//! Table 6. The detectors are:
//!
//! * [`alliance`] — indexes that only ever appear in plans together must be
//!   built consecutively;
//! * [`colonized`] — an index that never appears without its "colonizer" is
//!   built after it;
//! * [`dominated`] — an index whose benefit can never exceed another's (and
//!   is never cheaper to build) is built after it;
//! * [`disjoint`] — fully independent indexes are ordered by density;
//! * [`tail`] — enumerating possible tail patterns can pin the last index.
//!
//! [`analyze`] runs the enabled detectors to a fixed point ("iterate and
//! recurse", Section 5.6), accumulating everything into an
//! [`OrderConstraints`].

pub mod alliance;
pub mod colonized;
pub mod disjoint;
pub mod dominated;
pub mod tail;

use crate::constraints::OrderConstraints;
use idd_core::ProblemInstance;
use serde::{Deserialize, Serialize};

/// Which detectors to run (used by the Table-6 drill-down).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisOptions {
    /// Detect alliances (A).
    pub alliances: bool,
    /// Detect colonized indexes (C).
    pub colonized: bool,
    /// Detect dominated indexes (M — "min/max domination").
    pub dominated: bool,
    /// Detect disjoint indexes (D).
    pub disjoint: bool,
    /// Run the tail-index analysis (T).
    pub tail: bool,
    /// Tail length to analyze.
    pub tail_length: usize,
    /// Maximum number of tail patterns to enumerate before giving up.
    pub tail_budget: usize,
    /// Maximum fixed-point rounds.
    pub max_rounds: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self::all()
    }
}

impl AnalysisOptions {
    /// Every detector enabled (the paper's "+ACMDT" configuration).
    pub fn all() -> Self {
        Self {
            alliances: true,
            colonized: true,
            dominated: true,
            disjoint: true,
            tail: true,
            tail_length: 3,
            tail_budget: 50_000,
            max_rounds: 8,
        }
    }

    /// No detector enabled (plain CP / MIP).
    pub fn none() -> Self {
        Self {
            alliances: false,
            colonized: false,
            dominated: false,
            disjoint: false,
            tail: false,
            tail_length: 3,
            tail_budget: 50_000,
            max_rounds: 1,
        }
    }

    /// The cumulative configurations of Table 6:
    /// `"", "A", "AC", "ACM", "ACMD", "ACMDT"`.
    pub fn drill_down(level: &str) -> Self {
        let mut o = Self::none();
        o.max_rounds = 8;
        for c in level.chars() {
            match c {
                'A' => o.alliances = true,
                'C' => o.colonized = true,
                'M' => o.dominated = true,
                'D' => o.disjoint = true,
                'T' => o.tail = true,
                _ => {}
            }
        }
        o
    }
}

/// Result of the property analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// All derived ordering constraints (including the instance's hard
    /// precedences).
    pub constraints: OrderConstraints,
    /// Number of alliance groups found.
    pub num_alliances: usize,
    /// Ordered pairs contributed by colonized-index detection.
    pub num_colonized_pairs: usize,
    /// Ordered pairs contributed by domination detection.
    pub num_dominated_pairs: usize,
    /// Ordered pairs contributed by disjoint-density detection.
    pub num_disjoint_pairs: usize,
    /// Indexes pinned by the tail analysis.
    pub num_tail_fixed: usize,
    /// Fixed-point rounds executed.
    pub rounds: usize,
    /// Total ordered pairs in the final closure.
    pub total_ordered_pairs: usize,
    /// `true` when the last executed round added nothing — the constraints
    /// are a genuine fixed point. `false` means the loop hit `max_rounds`
    /// while still making progress, so the constraint set is *clipped*:
    /// still sound (every pair individually holds) but not the full
    /// closure. Callers that treat the analysis as complete — e.g. the
    /// sharding decomposer, which derives its coupling graph from it —
    /// must check this flag and fall back when it is `false`.
    pub converged: bool,
}

/// Runs the enabled detectors to a fixed point.
pub fn analyze(instance: &ProblemInstance, options: AnalysisOptions) -> AnalysisReport {
    let mut constraints = OrderConstraints::from_instance(instance);
    let mut report = AnalysisReport {
        constraints: constraints.clone(),
        num_alliances: 0,
        num_colonized_pairs: 0,
        num_dominated_pairs: 0,
        num_disjoint_pairs: 0,
        num_tail_fixed: 0,
        rounds: 0,
        total_ordered_pairs: 0,
        converged: false,
    };

    // `true` once a full round runs without adding a single ordered pair:
    // the detectors are deterministic functions of the instance and the
    // constraint set, so an unchanged round proves the fixed point. If the
    // loop instead exhausts `max_rounds` while the last round was still
    // adding pairs, the result is clipped and this stays `false`.
    let mut last_round_was_stable = false;
    for round in 0..options.max_rounds.max(1) {
        let before = constraints.num_ordered_pairs();
        report.rounds = round + 1;

        if options.alliances {
            let groups = alliance::detect(instance);
            for g in &groups {
                constraints.add_alliance(g.clone());
            }
            report.num_alliances = constraints.alliances().len();
        }
        if options.colonized {
            for (before_idx, after_idx) in colonized::detect(instance) {
                if constraints.add_before(before_idx, after_idx) {
                    report.num_colonized_pairs += 1;
                }
            }
        }
        if options.dominated {
            for (before_idx, after_idx) in dominated::detect(instance) {
                if constraints.add_before(before_idx, after_idx) {
                    report.num_dominated_pairs += 1;
                }
            }
        }
        if options.disjoint {
            for (before_idx, after_idx) in disjoint::detect(instance) {
                if constraints.add_before(before_idx, after_idx) {
                    report.num_disjoint_pairs += 1;
                }
            }
        }
        if options.tail {
            let fixed = tail::analyze(
                instance,
                &mut constraints,
                options.tail_length,
                options.tail_budget,
            );
            report.num_tail_fixed += fixed;
        }

        last_round_was_stable = constraints.num_ordered_pairs() == before;
        if last_round_was_stable && round > 0 {
            break;
        }
        if last_round_was_stable && !options.tail {
            // Nothing added in the very first round and no tail recursion to
            // feed further rounds: we are already at the fixed point.
            break;
        }
    }

    report.converged = last_round_was_stable;
    report.total_ordered_pairs = constraints.num_ordered_pairs();
    report.constraints = constraints;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::IndexId;

    /// Figure 5-like instance: i0,i2 always together; i1,i5 in a plan with
    /// others; i3,i5 together.
    fn alliance_instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("alliance");
        let i: Vec<IndexId> = (0..6).map(|_| b.add_index(5.0)).collect();
        let q0 = b.add_query(100.0);
        b.add_plan(q0, vec![i[0], i[2]], 30.0);
        b.add_plan(q0, vec![i[0], i[2], i[4]], 50.0);
        let q1 = b.add_query(80.0);
        b.add_plan(q1, vec![i[1], i[4]], 20.0);
        let q2 = b.add_query(60.0);
        b.add_plan(q2, vec![i[3], i[5]], 25.0);
        b.build().unwrap()
    }

    #[test]
    fn full_analysis_runs_and_reports() {
        let inst = alliance_instance();
        let report = analyze(&inst, AnalysisOptions::all());
        assert!(report.rounds >= 1);
        assert!(report.num_alliances >= 2, "report: {report:?}");
        assert!(
            report.converged,
            "default budget must reach the fixed point"
        );
        assert_eq!(
            report.total_ordered_pairs,
            report.constraints.num_ordered_pairs()
        );
    }

    #[test]
    fn clipped_analysis_reports_not_converged() {
        // Two disjoint indexes: round 0 adds their density pair, so with
        // `max_rounds: 1` the loop ends while still making progress — the
        // caller cannot know whether another round would have added more,
        // and must be told so.
        let mut b = ProblemInstance::builder("clip");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![i0], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![i1], 10.0);
        let inst = b.build().unwrap();

        let clipped = analyze(
            &inst,
            AnalysisOptions {
                max_rounds: 1,
                ..AnalysisOptions::all()
            },
        );
        assert!(!clipped.converged, "report: {clipped:?}");
        assert_eq!(clipped.rounds, 1);

        let full = analyze(&inst, AnalysisOptions::all());
        assert!(full.converged);
        assert_eq!(full.total_ordered_pairs, clipped.total_ordered_pairs);
    }

    #[test]
    fn none_options_only_keep_hard_precedences() {
        let mut b = ProblemInstance::builder("p");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let q = b.add_query(10.0);
        b.add_plan(q, vec![i0], 2.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let report = analyze(&inst, AnalysisOptions::none());
        assert_eq!(report.total_ordered_pairs, 1);
        assert_eq!(report.num_alliances, 0);
    }

    #[test]
    fn drill_down_parsing() {
        let o = AnalysisOptions::drill_down("ACM");
        assert!(o.alliances && o.colonized && o.dominated);
        assert!(!o.disjoint && !o.tail);
        let all = AnalysisOptions::drill_down("ACMDT");
        assert!(all.tail);
    }

    #[test]
    fn analysis_constraints_never_make_the_instance_infeasible() {
        let inst = alliance_instance();
        let report = analyze(&inst, AnalysisOptions::all());
        // There must exist at least one topological order.
        let n = inst.num_indexes();
        let mut placed = vec![false; n];
        for _ in 0..n {
            let next = (0..n)
                .map(IndexId::new)
                .find(|&i| !placed[i.raw()] && report.constraints.can_place(i, &placed));
            assert!(next.is_some(), "constraints admit no feasible order");
            placed[next.unwrap().raw()] = true;
        }
    }
}
