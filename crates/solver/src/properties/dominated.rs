//! Dominated-index detection (Section 5.3, Appendix D.4).
//!
//! Index `i` is *dominated* by `k` when building `k` is always at least as
//! beneficial and at least as cheap as building `i`, no matter what else has
//! been built; the objective then prefers `k` first, so we may add `k ≺ i`.
//!
//! The full conditions of Appendix D.4 involve every possible interleaving;
//! we implement a conservative (sound) subset: the comparison is only made
//! when `i` never co-occurs with other indexes in a plan (so building `i`
//! cannot change any other index's marginal benefit) and `k` receives no
//! build help (so its creation cost is the same wherever it is placed).
//! Under those conditions the checks reduce to comparing `i`'s best-case
//! benefit with `k`'s worst-case benefit, their build costs, and their
//! helpfulness to others.

use idd_core::{IndexId, ProblemInstance};

/// Best-case total benefit of an index: for each query, the speed-up of the
/// best plan containing the index (an upper bound on its marginal benefit).
fn max_benefit(instance: &ProblemInstance, index: IndexId) -> f64 {
    instance
        .query_ids()
        .map(|q| {
            instance
                .plans_of_query(q)
                .iter()
                .filter(|&&p| instance.plan(p).uses(index))
                .map(|&p| instance.plan_speedup(p))
                .fold(0.0_f64, f64::max)
        })
        .sum()
}

/// Worst-case (guaranteed) total benefit of an index: for each query, the
/// speed-up of the index's best *single-index* plan minus the best plan not
/// containing it.
///
/// This is a valid lower bound on the index's marginal benefit in *any*
/// context: whatever is already built, adding the index makes at least its
/// singleton plan available, while the competing plans can never be better
/// than the query's best index-free-of-`index` plan. Multi-index plans
/// containing the index must not be counted here — they may be unavailable in
/// the context where the marginal benefit is smallest.
fn min_benefit(instance: &ProblemInstance, index: IndexId) -> f64 {
    instance
        .query_ids()
        .map(|q| {
            let with_singleton = instance
                .plans_of_query(q)
                .iter()
                .filter(|&&p| {
                    let plan = instance.plan(p);
                    plan.width() == 1 && plan.uses(index)
                })
                .map(|&p| instance.plan_speedup(p))
                .fold(0.0_f64, f64::max);
            let without = instance
                .plans_of_query(q)
                .iter()
                .filter(|&&p| !instance.plan(p).uses(index))
                .map(|&p| instance.plan_speedup(p))
                .fold(0.0_f64, f64::max);
            (with_singleton - without).max(0.0)
        })
        .sum()
}

/// `true` when the index appears only in single-index plans.
fn singleton_only(instance: &ProblemInstance, index: IndexId) -> bool {
    instance
        .plans_using_index(index)
        .iter()
        .all(|&p| instance.plan(p).width() == 1)
}

/// Detects dominated pairs, returned as `(dominator, dominated)` — the first
/// element may always be deployed before the second.
pub fn detect(instance: &ProblemInstance) -> Vec<(IndexId, IndexId)> {
    let n = instance.num_indexes();
    let max_b: Vec<f64> = (0..n)
        .map(|i| max_benefit(instance, IndexId::new(i)))
        .collect();
    let min_b: Vec<f64> = (0..n)
        .map(|i| min_benefit(instance, IndexId::new(i)))
        .collect();

    let mut out = Vec::new();
    for i_raw in 0..n {
        let i = IndexId::new(i_raw);
        if !singleton_only(instance, i) {
            continue;
        }
        for k_raw in 0..n {
            if i_raw == k_raw {
                continue;
            }
            let k = IndexId::new(k_raw);
            // (5) k's build cost must not depend on placement.
            if !instance.helpers_of(k).is_empty() {
                continue;
            }
            // (1) k's worst case beats i's best case.
            if max_b[i_raw] > min_b[k_raw] + 1e-12 {
                continue;
            }
            // (2) k is never more expensive to build than i can ever be.
            if instance.min_build_cost(i) + 1e-12 < instance.creation_cost(k) {
                continue;
            }
            // (3) i never helps another index's build more than k does.
            let i_helps_more = instance
                .helps(i)
                .iter()
                .any(|&(target, saving)| saving > instance.build_speedup(target, k) + 1e-12);
            if i_helps_more {
                continue;
            }
            // Tie-break to avoid emitting both directions when the two
            // indexes are completely symmetric.
            if max_b[k_raw] <= min_b[i_raw] + 1e-12
                && (instance.creation_cost(i) - instance.creation_cost(k)).abs() < 1e-12
                && k_raw > i_raw
            {
                continue;
            }
            out.push((k, i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 7: i1's benefit is 1–4 s, i2's is always 5 s; equal costs.
    /// i2 dominates i1.
    fn figure7_instance() -> (ProblemInstance, IndexId, IndexId, IndexId) {
        let mut b = ProblemInstance::builder("fig7");
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let i3 = b.add_index(4.0);
        let qa = b.add_query(50.0);
        // i1 alone: 1s; i1 with i3: 5s total (so i1's max marginal is 4s when
        // i3 exists — modelled here as competing plans of the same query).
        b.add_plan(qa, vec![i1], 1.0);
        b.add_plan(qa, vec![i3], 3.0);
        b.add_plan(qa, vec![i1, i3], 5.0);
        let qb = b.add_query(40.0);
        b.add_plan(qb, vec![i2], 5.0);
        (b.build().unwrap(), i1, i2, i3)
    }

    #[test]
    fn figure7_dominance_is_found() {
        let (inst, i1, i2, _i3) = figure7_instance();
        // i1 appears in a multi-index plan, so the conservative detector
        // requires singleton-only — rebuild a variant where i1 is singleton
        // but weak, to exercise the rule directly.
        let _ = inst;
        let mut b = ProblemInstance::builder("dom");
        let weak = b.add_index(4.0);
        let strong = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![weak], 2.0);
        let qb = b.add_query(40.0);
        b.add_plan(qb, vec![strong], 5.0);
        let inst2 = b.build().unwrap();
        let pairs = detect(&inst2);
        assert!(pairs.contains(&(strong, weak)), "pairs: {pairs:?}");
        assert!(!pairs.contains(&(weak, strong)));
        let _ = (i1, i2);
    }

    #[test]
    fn multi_index_plan_membership_blocks_the_rule() {
        let (inst, i1, i2, _) = figure7_instance();
        let pairs = detect(&inst);
        // i1 participates in a 2-index plan, so the conservative rule must
        // not claim it is dominated.
        assert!(!pairs.iter().any(|&(_, dominated)| dominated == i1));
        let _ = i2;
    }

    #[test]
    fn cheaper_but_weaker_index_is_not_dominated() {
        let mut b = ProblemInstance::builder("cheap");
        let cheap_weak = b.add_index(1.0); // tiny cost, small benefit
        let costly_strong = b.add_index(50.0); // big cost, big benefit
        let qa = b.add_query(100.0);
        b.add_plan(qa, vec![cheap_weak], 3.0);
        let qb = b.add_query(100.0);
        b.add_plan(qb, vec![costly_strong], 60.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        // The strong index is much more beneficial but also much more
        // expensive: condition (2) fails, no domination either way.
        assert!(pairs.is_empty(), "pairs: {pairs:?}");
    }

    #[test]
    fn dominator_with_build_helpers_is_skipped() {
        let mut b = ProblemInstance::builder("helped");
        let weak = b.add_index(4.0);
        let strong = b.add_index(4.0);
        let other = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![weak], 2.0);
        let qb = b.add_query(40.0);
        b.add_plan(qb, vec![strong], 5.0);
        let qc = b.add_query(40.0);
        b.add_plan(qc, vec![other], 5.0);
        // strong's build cost depends on whether `other` exists → unsafe.
        b.add_build_interaction(strong, other, 2.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(!pairs.iter().any(|&(dominator, _)| dominator == strong));
    }

    #[test]
    fn symmetric_indexes_do_not_create_a_cycle() {
        let mut b = ProblemInstance::builder("sym");
        let a = b.add_index(4.0);
        let c = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![a], 5.0);
        let qb = b.add_query(50.0);
        b.add_plan(qb, vec![c], 5.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(
            !(pairs.contains(&(a, c)) && pairs.contains(&(c, a))),
            "both directions emitted: {pairs:?}"
        );
    }
}
