//! Dominated-index detection (Section 5.3, Appendix D.4).
//!
//! Index `i` is *dominated* by `k` when building `k` is always at least as
//! beneficial and at least as cheap as building `i`, no matter what else has
//! been built; the objective then prefers `k` first, so we may add `k ≺ i`.
//!
//! The full conditions of Appendix D.4 involve every possible interleaving;
//! we implement a conservative (sound) subset: the comparison is only made
//! when `i` never co-occurs with other indexes in a plan (so building `i`
//! cannot change any other index's marginal benefit) and `k` receives no
//! build help (so its creation cost is the same wherever it is placed).
//! Under those conditions the checks reduce to comparing `i`'s best-case
//! benefit with `k`'s worst-case benefit, their build costs, and their
//! helpfulness to others.

use idd_core::{IndexId, PlanId, ProblemInstance};

/// Best speed-up among the plans the iterator yields, or `None` when no plan
/// qualifies.
///
/// Callers map `None` to an explicit `0.0`: on this crate's domain the two
/// coincide (the builder rejects negative speed-ups, so "no qualifying plan"
/// and "guaranteed zero benefit" are the same thing), but keeping the
/// empty set visible means the baseline can never silently absorb a
/// negative-speed-up plan if the domain ever widens — the `debug_assert`
/// below is the tripwire for that.
fn best_speedup(instance: &ProblemInstance, plans: impl Iterator<Item = PlanId>) -> Option<f64> {
    plans
        .map(|p| {
            let s = instance.plan_speedup(p);
            debug_assert!(
                s >= 0.0,
                "plan speed-ups are non-negative by construction; the 0.0 \
                 empty-set baseline below is only sound under that invariant"
            );
            s
        })
        .reduce(f64::max)
}

/// Best-case total benefit of an index: for each query, the speed-up of the
/// best plan containing the index (an upper bound on its marginal benefit).
/// A query with no qualifying plan contributes exactly 0 — correct as an
/// upper bound only because speed-ups are non-negative (see
/// [`best_speedup`]).
fn max_benefit(instance: &ProblemInstance, index: IndexId) -> f64 {
    instance
        .query_ids()
        .map(|q| {
            best_speedup(
                instance,
                instance
                    .plans_of_query(q)
                    .iter()
                    .copied()
                    .filter(|&p| instance.plan(p).uses(index)),
            )
            .unwrap_or(0.0)
        })
        .sum()
}

/// Worst-case (guaranteed) total benefit of an index: for each query, the
/// speed-up of the index's best *single-index* plan minus the best plan not
/// containing it.
///
/// This is a valid lower bound on the index's marginal benefit in *any*
/// context: whatever is already built, adding the index makes at least its
/// singleton plan available, while the competing plans can never be better
/// than the query's best index-free-of-`index` plan. Multi-index plans
/// containing the index must not be counted here — they may be unavailable in
/// the context where the marginal benefit is smallest.
fn min_benefit(instance: &ProblemInstance, index: IndexId) -> f64 {
    instance
        .query_ids()
        .map(|q| {
            // No qualifying singleton plan → the index guarantees nothing
            // for this query; no index-free plan → nothing competes. Both
            // empty sets are an explicit 0.0, sound because speed-ups are
            // non-negative (see [`best_speedup`]).
            let with_singleton = best_speedup(
                instance,
                instance.plans_of_query(q).iter().copied().filter(|&p| {
                    let plan = instance.plan(p);
                    plan.width() == 1 && plan.uses(index)
                }),
            )
            .unwrap_or(0.0);
            let without = best_speedup(
                instance,
                instance
                    .plans_of_query(q)
                    .iter()
                    .copied()
                    .filter(|&p| !instance.plan(p).uses(index)),
            )
            .unwrap_or(0.0);
            (with_singleton - without).max(0.0)
        })
        .sum()
}

/// `true` when the index appears only in single-index plans.
fn singleton_only(instance: &ProblemInstance, index: IndexId) -> bool {
    instance
        .plans_using_index(index)
        .iter()
        .all(|&p| instance.plan(p).width() == 1)
}

/// Detects dominated pairs, returned as `(dominator, dominated)` — the first
/// element may always be deployed before the second.
///
/// The soundness proof is a position *swap*: in any order placing `i` before
/// `k`, exchanging the two leaves every intermediate index in place and can
/// only lower the objective. Two consequences shape the checks below:
///
/// * every comparison is **exact** — an epsilon slack on conditions (1)–(3)
///   would *admit* pairs where `i` is strictly better than `k`'s guarantee
///   (by up to the slack), which is an unsound constraint, not a numerical
///   nicety; near-ties must fail the conditions, not squeak through;
/// * an index pinned by a **hard precedence** cannot be swapped freely (the
///   exchange could move it across its predecessor or successor), so any
///   precedence participation voids the proof and the pair is skipped —
///   the same rule the disjoint detector applies.
pub fn detect(instance: &ProblemInstance) -> Vec<(IndexId, IndexId)> {
    let n = instance.num_indexes();
    let max_b: Vec<f64> = (0..n)
        .map(|i| max_benefit(instance, IndexId::new(i)))
        .collect();
    let min_b: Vec<f64> = (0..n)
        .map(|i| min_benefit(instance, IndexId::new(i)))
        .collect();
    let in_precedence = |x: IndexId| {
        instance
            .precedences()
            .iter()
            .any(|p| p.before == x || p.after == x)
    };

    let mut out = Vec::new();
    for i_raw in 0..n {
        let i = IndexId::new(i_raw);
        if !singleton_only(instance, i) {
            continue;
        }
        // (4) the swap argument needs both indexes freely movable.
        if in_precedence(i) {
            continue;
        }
        for k_raw in 0..n {
            if i_raw == k_raw {
                continue;
            }
            let k = IndexId::new(k_raw);
            // (4) see above.
            if in_precedence(k) {
                continue;
            }
            // (5) k's build cost must not depend on placement.
            if !instance.helpers_of(k).is_empty() {
                continue;
            }
            // (1) k's worst case beats i's best case.
            if max_b[i_raw] > min_b[k_raw] {
                continue;
            }
            // (2) k is never more expensive to build than i can ever be.
            if instance.min_build_cost(i) < instance.creation_cost(k) {
                continue;
            }
            // (3) i never helps another index's build more than k does.
            let i_helps_more = instance
                .helps(i)
                .iter()
                .any(|&(target, saving)| saving > instance.build_speedup(target, k));
            if i_helps_more {
                continue;
            }
            // Tie-break to avoid emitting both directions when the two
            // indexes are completely symmetric. With the exact comparisons
            // above, both directions can pass (1)+(2) only when the
            // benefits and the build costs are *exactly* equal, so the
            // exact-equality test here is complete.
            #[allow(clippy::float_cmp)]
            let symmetric = max_b[k_raw] <= min_b[i_raw]
                && instance.creation_cost(i) == instance.creation_cost(k);
            if symmetric && k_raw > i_raw {
                continue;
            }
            out.push((k, i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 7: i1's benefit is 1–4 s, i2's is always 5 s; equal costs.
    /// i2 dominates i1.
    fn figure7_instance() -> (ProblemInstance, IndexId, IndexId, IndexId) {
        let mut b = ProblemInstance::builder("fig7");
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let i3 = b.add_index(4.0);
        let qa = b.add_query(50.0);
        // i1 alone: 1s; i1 with i3: 5s total (so i1's max marginal is 4s when
        // i3 exists — modelled here as competing plans of the same query).
        b.add_plan(qa, vec![i1], 1.0);
        b.add_plan(qa, vec![i3], 3.0);
        b.add_plan(qa, vec![i1, i3], 5.0);
        let qb = b.add_query(40.0);
        b.add_plan(qb, vec![i2], 5.0);
        (b.build().unwrap(), i1, i2, i3)
    }

    #[test]
    fn figure7_dominance_is_found() {
        let (inst, i1, i2, _i3) = figure7_instance();
        // i1 appears in a multi-index plan, so the conservative detector
        // requires singleton-only — rebuild a variant where i1 is singleton
        // but weak, to exercise the rule directly.
        let _ = inst;
        let mut b = ProblemInstance::builder("dom");
        let weak = b.add_index(4.0);
        let strong = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![weak], 2.0);
        let qb = b.add_query(40.0);
        b.add_plan(qb, vec![strong], 5.0);
        let inst2 = b.build().unwrap();
        let pairs = detect(&inst2);
        assert!(pairs.contains(&(strong, weak)), "pairs: {pairs:?}");
        assert!(!pairs.contains(&(weak, strong)));
        let _ = (i1, i2);
    }

    #[test]
    fn multi_index_plan_membership_blocks_the_rule() {
        let (inst, i1, i2, _) = figure7_instance();
        let pairs = detect(&inst);
        // i1 participates in a 2-index plan, so the conservative rule must
        // not claim it is dominated.
        assert!(!pairs.iter().any(|&(_, dominated)| dominated == i1));
        let _ = i2;
    }

    #[test]
    fn cheaper_but_weaker_index_is_not_dominated() {
        let mut b = ProblemInstance::builder("cheap");
        let cheap_weak = b.add_index(1.0); // tiny cost, small benefit
        let costly_strong = b.add_index(50.0); // big cost, big benefit
        let qa = b.add_query(100.0);
        b.add_plan(qa, vec![cheap_weak], 3.0);
        let qb = b.add_query(100.0);
        b.add_plan(qb, vec![costly_strong], 60.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        // The strong index is much more beneficial but also much more
        // expensive: condition (2) fails, no domination either way.
        assert!(pairs.is_empty(), "pairs: {pairs:?}");
    }

    #[test]
    fn dominator_with_build_helpers_is_skipped() {
        let mut b = ProblemInstance::builder("helped");
        let weak = b.add_index(4.0);
        let strong = b.add_index(4.0);
        let other = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![weak], 2.0);
        let qb = b.add_query(40.0);
        b.add_plan(qb, vec![strong], 5.0);
        let qc = b.add_query(40.0);
        b.add_plan(qc, vec![other], 5.0);
        // strong's build cost depends on whether `other` exists → unsafe.
        b.add_build_interaction(strong, other, 2.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(!pairs.iter().any(|&(dominator, _)| dominator == strong));
    }

    #[test]
    fn near_tie_resolves_toward_the_strictly_better_index() {
        // `better` beats `worse`'s guarantee by 2^-40 — far inside the old
        // 1e-12 slack, which emitted the unsound `(worse, better)` pair
        // ("worse dominates better") because condition (1) was loosened.
        // With exact comparisons only the sound direction survives.
        let eps = 2f64.powi(-40);
        let mut b = ProblemInstance::builder("neartie");
        let worse = b.add_index(4.0);
        let better = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![worse], 5.0);
        let qb = b.add_query(50.0);
        b.add_plan(qb, vec![better], 5.0 + eps);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert_eq!(pairs, vec![(better, worse)]);
    }

    #[test]
    fn plan_less_index_is_dominated_but_never_dominates() {
        // Empty-set baseline, both directions: an index with no qualifying
        // plans has best-case benefit exactly 0 (not an artifact of the
        // fold seed), so a genuinely beneficial, no-more-expensive index
        // dominates it — and the plan-less index must never be reported as
        // dominating the beneficial one.
        let mut b = ProblemInstance::builder("planless");
        let dead = b.add_index(6.0);
        let useful = b.add_index(4.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![useful], 5.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(pairs.contains(&(useful, dead)), "pairs: {pairs:?}");
        assert!(!pairs.contains(&(dead, useful)), "pairs: {pairs:?}");
    }

    #[test]
    fn precedence_pinned_dominator_is_skipped() {
        // `gate ≺ strong` forces an expensive useless build before the
        // would-be dominator. Emitting `strong ≺ weak` would then force
        // `gate, strong, weak` — strictly worse than the true optimum
        // `weak, gate, strong` — so the swap argument (and the detector)
        // must not fire for precedence-pinned indexes.
        let mut b = ProblemInstance::builder("pinned");
        let gate = b.add_index(100.0);
        let strong = b.add_index(4.0);
        let weak = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![strong], 5.0);
        let qb = b.add_query(50.0);
        b.add_plan(qb, vec![weak], 2.0);
        b.add_precedence(gate, strong);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(
            !pairs.iter().any(|&(dominator, _)| dominator == strong),
            "pairs: {pairs:?}"
        );
    }

    #[test]
    fn symmetric_indexes_do_not_create_a_cycle() {
        let mut b = ProblemInstance::builder("sym");
        let a = b.add_index(4.0);
        let c = b.add_index(4.0);
        let qa = b.add_query(50.0);
        b.add_plan(qa, vec![a], 5.0);
        let qb = b.add_query(50.0);
        b.add_plan(qb, vec![c], 5.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(
            !(pairs.contains(&(a, c)) && pairs.contains(&(c, a))),
            "both directions emitted: {pairs:?}"
        );
    }
}
