//! Disjoint-index detection (Section 5.4, Appendix D.5).
//!
//! A *disjoint* index has no interaction whatsoever with other indexes: it
//! only appears in single-index plans, no other index speeds up the same
//! queries, and it takes part in no build interaction. For two disjoint
//! indexes the optimal relative order is fully determined by *density*
//! (benefit divided by build cost): the denser one comes first.
//!
//! The backward-/forward-disjoint generalization of the paper (which uses the
//! already-derived constraints to treat almost-disjoint indexes as disjoint
//! over a sub-range) is not implemented; the plain disjoint rule already
//! provides most of the pruning on the low-density instances where it is
//! used (Tables 5 and 6).

use idd_core::{IndexId, ProblemInstance};

/// `true` when the index has no query, build or precedence interaction with
/// any other index.
fn is_disjoint(instance: &ProblemInstance, index: IndexId) -> bool {
    // No build interactions in either direction.
    if !instance.helpers_of(index).is_empty() || !instance.helps(index).is_empty() {
        return false;
    }
    // No hard precedence in either direction: a precedence-coupled index is
    // not freely movable, so the density-exchange argument does not apply to
    // it (ordering it by density can cut off every optimal solution).
    if instance
        .precedences()
        .iter()
        .any(|p| p.before == index || p.after == index)
    {
        return false;
    }
    let plans = instance.plans_using_index(index);
    // An index that serves no plan at all interacts with nothing: it is
    // disjoint with density zero (it will be ordered last among the disjoint
    // indexes).
    if plans.is_empty() {
        return true;
    }
    for &pid in plans {
        let plan = instance.plan(pid);
        // Only single-index plans.
        if plan.width() != 1 {
            return false;
        }
        // No other index competes on the same query.
        let q = plan.query;
        let someone_else = instance
            .plans_of_query(q)
            .iter()
            .any(|&other| instance.plan(other).indexes.iter().any(|&i| i != index));
        if someone_else {
            return false;
        }
    }
    true
}

/// Stand-alone benefit of a disjoint index: the sum of its plans' speed-ups
/// (at most one per query; the best is used defensively).
fn benefit(instance: &ProblemInstance, index: IndexId) -> f64 {
    instance
        .query_ids()
        .map(|q| {
            instance
                .plans_of_query(q)
                .iter()
                .filter(|&&p| instance.plan(p).uses(index))
                .map(|&p| instance.plan_speedup(p))
                .fold(0.0_f64, f64::max)
        })
        .sum()
}

/// Detects density orderings among disjoint indexes, returned as
/// `(denser, sparser)` pairs — the denser index precedes the sparser one.
pub fn detect(instance: &ProblemInstance) -> Vec<(IndexId, IndexId)> {
    let n = instance.num_indexes();
    let disjoint: Vec<IndexId> = (0..n)
        .map(IndexId::new)
        .filter(|&i| is_disjoint(instance, i))
        .collect();

    let density: Vec<(IndexId, f64)> = disjoint
        .iter()
        .map(|&i| {
            let cost = instance.creation_cost(i).max(1e-12);
            (i, benefit(instance, i) / cost)
        })
        .collect();

    let mut out = Vec::new();
    for (ai, &(a, da)) in density.iter().enumerate() {
        for &(b, db) in density.iter().skip(ai + 1) {
            if da > db + 1e-12 {
                out.push((a, b));
            } else if db > da + 1e-12 {
                out.push((b, a));
            } else {
                // Equal densities: swapping two disjoint equal-density
                // indexes never changes the objective, so fixing the
                // id order keeps an optimal solution while removing the
                // symmetric permutations from the search space.
                out.push((a.min(b), a.max(b)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_indexes_are_ordered_by_density() {
        let mut b = ProblemInstance::builder("disjoint");
        let dense = b.add_index(2.0); // 10/2 = 5
        let sparse = b.add_index(5.0); // 10/5 = 2
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![dense], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![sparse], 10.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert_eq!(pairs, vec![(dense, sparse)]);
    }

    #[test]
    fn shared_query_breaks_disjointness() {
        let mut b = ProblemInstance::builder("shared");
        let a = b.add_index(2.0);
        let c = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a], 10.0);
        b.add_plan(q0, vec![c], 12.0); // competes on the same query
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn build_interaction_breaks_disjointness() {
        let mut b = ProblemInstance::builder("build");
        let a = b.add_index(2.0);
        let c = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![c], 10.0);
        b.add_build_interaction(a, c, 1.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn hard_precedence_breaks_disjointness() {
        // The denser index is chained behind a third index by a hard
        // precedence; ordering it before the sparser one by density would
        // cut off orders that build the sparser index first, which can be
        // the only optima.
        let mut b = ProblemInstance::builder("prec");
        let gate = b.add_index(4.0);
        let dense = b.add_index(2.0);
        let sparse = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![dense], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![sparse], 10.0);
        let q2 = b.add_query(40.0);
        b.add_plan(q2, vec![gate], 5.0);
        b.add_precedence(gate, dense);
        let inst = b.build().unwrap();
        // `dense` is precedence-coupled, `sparse` and `gate` still pair up.
        let pairs = detect(&inst);
        assert!(!pairs.iter().any(|&(a, b)| a == dense || b == dense));
    }

    #[test]
    fn multi_index_plan_breaks_disjointness() {
        let mut b = ProblemInstance::builder("multi");
        let a = b.add_index(2.0);
        let c = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a, c], 10.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn equal_density_is_broken_by_canonical_id_order() {
        // Swapping two equal-density disjoint indexes cannot change the
        // objective, so the detector pins the id order to remove the
        // symmetric permutations.
        let mut b = ProblemInstance::builder("equal");
        let a = b.add_index(2.0);
        let c = b.add_index(2.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![c], 10.0);
        let inst = b.build().unwrap();
        assert_eq!(detect(&inst), vec![(a, c)]);
    }

    #[test]
    fn indexes_without_plans_are_ordered_last_and_canonically() {
        let mut b = ProblemInstance::builder("deadweight");
        let useful = b.add_index(2.0);
        let dead1 = b.add_index(3.0);
        let dead2 = b.add_index(4.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![useful], 10.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(pairs.contains(&(useful, dead1)));
        assert!(pairs.contains(&(useful, dead2)));
        assert!(pairs.contains(&(dead1, dead2)));
    }

    #[test]
    fn three_disjoint_indexes_get_a_total_order() {
        let mut b = ProblemInstance::builder("three");
        let ids: Vec<IndexId> = [1.0, 2.0, 4.0].iter().map(|&c| b.add_index(c)).collect();
        for (k, &i) in ids.iter().enumerate() {
            let q = b.add_query(50.0);
            b.add_plan(q, vec![i], 8.0 - k as f64); // decreasing benefit, increasing cost
        }
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(ids[0], ids[1])));
        assert!(pairs.contains(&(ids[0], ids[2])));
        assert!(pairs.contains(&(ids[1], ids[2])));
    }
}
