//! Disjoint-index detection (Section 5.4, Appendix D.5).
//!
//! A *disjoint* index has no interaction whatsoever with other indexes: it
//! only appears in single-index plans, no other index speeds up the same
//! queries, and it takes part in no build interaction. For two disjoint
//! indexes the optimal relative order is fully determined by *density*
//! (benefit per unit of build cost): the denser one comes first. Densities
//! are compared by cross-multiplication, never by division, so zero-cost
//! builds stay well-defined (see [`detect`]).
//!
//! The backward-/forward-disjoint generalization of the paper (which uses the
//! already-derived constraints to treat almost-disjoint indexes as disjoint
//! over a sub-range) is not implemented; the plain disjoint rule already
//! provides most of the pruning on the low-density instances where it is
//! used (Tables 5 and 6).

use idd_core::{IndexId, ProblemInstance};

/// `true` when the index has no query, build or precedence interaction with
/// any other index.
fn is_disjoint(instance: &ProblemInstance, index: IndexId) -> bool {
    // No build interactions in either direction.
    if !instance.helpers_of(index).is_empty() || !instance.helps(index).is_empty() {
        return false;
    }
    // No hard precedence in either direction: a precedence-coupled index is
    // not freely movable, so the density-exchange argument does not apply to
    // it (ordering it by density can cut off every optimal solution).
    if instance
        .precedences()
        .iter()
        .any(|p| p.before == index || p.after == index)
    {
        return false;
    }
    let plans = instance.plans_using_index(index);
    // An index that serves no plan at all interacts with nothing: it is
    // disjoint with density zero (it will be ordered last among the disjoint
    // indexes).
    if plans.is_empty() {
        return true;
    }
    for &pid in plans {
        let plan = instance.plan(pid);
        // Only single-index plans.
        if plan.width() != 1 {
            return false;
        }
        // No other index competes on the same query.
        let q = plan.query;
        let someone_else = instance
            .plans_of_query(q)
            .iter()
            .any(|&other| instance.plan(other).indexes.iter().any(|&i| i != index));
        if someone_else {
            return false;
        }
    }
    true
}

/// Stand-alone benefit of a disjoint index: the sum of its plans' speed-ups
/// (at most one per query; the best is used defensively).
fn benefit(instance: &ProblemInstance, index: IndexId) -> f64 {
    instance
        .query_ids()
        .map(|q| {
            instance
                .plans_of_query(q)
                .iter()
                .filter(|&&p| instance.plan(p).uses(index))
                .map(|&p| instance.plan_speedup(p))
                .fold(0.0_f64, f64::max)
        })
        .sum()
}

/// Detects density orderings among disjoint indexes, returned as
/// `(denser, sparser)` pairs — the denser index precedes the sparser one.
///
/// Densities are never materialized as quotients. For two disjoint indexes
/// the exchange argument says `a` before `b` is at least as good exactly
/// when `benefit(a)·cost(b) ≥ benefit(b)·cost(a)`, so the comparison is done
/// on those cross-products directly. This keeps zero-cost builds
/// well-defined without a clamp (a zero-cost index with positive benefit
/// compares denser than every positive-cost index, and a zero-cost
/// zero-benefit index ties with everything instead of producing `0/0`),
/// never produces `inf`/`NaN`, and makes ties *exact* rather than
/// epsilon-banded. Exact ties are broken by canonical id order, so the
/// emitted relation is a deterministic total order over the disjoint set.
pub fn detect(instance: &ProblemInstance) -> Vec<(IndexId, IndexId)> {
    let n = instance.num_indexes();
    let disjoint: Vec<(IndexId, f64, f64)> = (0..n)
        .map(IndexId::new)
        .filter(|&i| is_disjoint(instance, i))
        .map(|i| (i, benefit(instance, i), instance.creation_cost(i)))
        .collect();

    let mut out = Vec::new();
    for (ai, &(a, benefit_a, cost_a)) in disjoint.iter().enumerate() {
        for &(b, benefit_b, cost_b) in disjoint.iter().skip(ai + 1) {
            // Area saved by putting `a` first vs `b` first; swapping two
            // adjacent disjoint indexes changes the objective by exactly
            // the difference of these two products.
            let a_first = benefit_a * cost_b;
            let b_first = benefit_b * cost_a;
            if a_first > b_first {
                out.push((a, b));
            } else if b_first > a_first {
                out.push((b, a));
            } else {
                // Exact tie (equal densities, or a degenerate pair where
                // both products vanish): swapping two such disjoint indexes
                // never changes the objective, so fixing the id order keeps
                // an optimal solution while removing the symmetric
                // permutations from the search space.
                out.push((a.min(b), a.max(b)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_indexes_are_ordered_by_density() {
        let mut b = ProblemInstance::builder("disjoint");
        let dense = b.add_index(2.0); // 10/2 = 5
        let sparse = b.add_index(5.0); // 10/5 = 2
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![dense], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![sparse], 10.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert_eq!(pairs, vec![(dense, sparse)]);
    }

    #[test]
    fn shared_query_breaks_disjointness() {
        let mut b = ProblemInstance::builder("shared");
        let a = b.add_index(2.0);
        let c = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a], 10.0);
        b.add_plan(q0, vec![c], 12.0); // competes on the same query
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn build_interaction_breaks_disjointness() {
        let mut b = ProblemInstance::builder("build");
        let a = b.add_index(2.0);
        let c = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![c], 10.0);
        b.add_build_interaction(a, c, 1.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn hard_precedence_breaks_disjointness() {
        // The denser index is chained behind a third index by a hard
        // precedence; ordering it before the sparser one by density would
        // cut off orders that build the sparser index first, which can be
        // the only optima.
        let mut b = ProblemInstance::builder("prec");
        let gate = b.add_index(4.0);
        let dense = b.add_index(2.0);
        let sparse = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![dense], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![sparse], 10.0);
        let q2 = b.add_query(40.0);
        b.add_plan(q2, vec![gate], 5.0);
        b.add_precedence(gate, dense);
        let inst = b.build().unwrap();
        // `dense` is precedence-coupled, `sparse` and `gate` still pair up.
        let pairs = detect(&inst);
        assert!(!pairs.iter().any(|&(a, b)| a == dense || b == dense));
    }

    #[test]
    fn multi_index_plan_breaks_disjointness() {
        let mut b = ProblemInstance::builder("multi");
        let a = b.add_index(2.0);
        let c = b.add_index(5.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a, c], 10.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn equal_density_is_broken_by_canonical_id_order() {
        // Swapping two equal-density disjoint indexes cannot change the
        // objective, so the detector pins the id order to remove the
        // symmetric permutations.
        let mut b = ProblemInstance::builder("equal");
        let a = b.add_index(2.0);
        let c = b.add_index(2.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![c], 10.0);
        let inst = b.build().unwrap();
        assert_eq!(detect(&inst), vec![(a, c)]);
    }

    #[test]
    fn indexes_without_plans_are_ordered_last_and_canonically() {
        let mut b = ProblemInstance::builder("deadweight");
        let useful = b.add_index(2.0);
        let dead1 = b.add_index(3.0);
        let dead2 = b.add_index(4.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![useful], 10.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(pairs.contains(&(useful, dead1)));
        assert!(pairs.contains(&(useful, dead2)));
        assert!(pairs.contains(&(dead1, dead2)));
    }

    #[test]
    fn zero_cost_index_with_benefit_comes_first() {
        // A zero-cost build has infinite density: it delays nothing and
        // realizes its benefit immediately, so it precedes every
        // positive-cost disjoint index. The old quotient formulation clamped
        // the cost to 1e-12 and produced a huge-but-finite density that
        // could still be mis-ranked; the cross-product comparison handles
        // the case exactly (benefit·cost(other) > benefit(other)·0).
        let mut b = ProblemInstance::builder("zerocost");
        let dense = b.add_index(1.0); // density 10
        let free = b.add_index(0.0); // density ∞
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![dense], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![free], 1.0);
        let inst = b.build().unwrap();
        assert_eq!(detect(&inst), vec![(free, dense)]);
    }

    #[test]
    fn zero_cost_zero_benefit_ties_are_canonical_and_nan_free() {
        // 0/0 density: the quotient is NaN, under which `partial_cmp`-style
        // orderings silently drop constraints. The cross-product comparison
        // makes the pair an exact tie (both products are 0·0 = 0), broken by
        // id order — and a free useless index also ties with a useful one
        // (0·cost vs benefit·0), which is sound: a zero-cost build delays
        // nothing, so either relative order is optimal.
        let mut b = ProblemInstance::builder("zerozero");
        let dead_a = b.add_index(0.0);
        let dead_b = b.add_index(0.0);
        let useful = b.add_index(2.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![useful], 10.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        // A total order over all three, fixed by id on the exact ties.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(dead_a, dead_b)));
        assert!(pairs.contains(&(dead_a, useful)));
        assert!(pairs.contains(&(dead_b, useful)));
    }

    #[test]
    fn equal_density_different_scale_is_an_exact_tie() {
        // (benefit 10, cost 2) and (benefit 5, cost 1) have exactly equal
        // densities; the cross-products (10·1 and 5·2) are exactly equal in
        // floating point, so the tie-break must fire — no epsilon band.
        let mut b = ProblemInstance::builder("samedensity");
        let a = b.add_index(2.0);
        let c = b.add_index(1.0);
        let q0 = b.add_query(50.0);
        b.add_plan(q0, vec![a], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![c], 5.0);
        let inst = b.build().unwrap();
        assert_eq!(detect(&inst), vec![(a, c)]);
    }

    #[test]
    fn three_disjoint_indexes_get_a_total_order() {
        let mut b = ProblemInstance::builder("three");
        let ids: Vec<IndexId> = [1.0, 2.0, 4.0].iter().map(|&c| b.add_index(c)).collect();
        for (k, &i) in ids.iter().enumerate() {
            let q = b.add_query(50.0);
            b.add_plan(q, vec![i], 8.0 - k as f64); // decreasing benefit, increasing cost
        }
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(ids[0], ids[1])));
        assert!(pairs.contains(&(ids[0], ids[2])));
        assert!(pairs.contains(&(ids[1], ids[2])));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// NaN-freedom and totality: for any mix of benefits and costs
            /// — zeros included, so the quotient formulation would hit
            /// `x/0 = inf` and `0/0 = NaN` — the detector emits a complete,
            /// antisymmetric, correctly-oriented order over the disjoint
            /// set.
            #[test]
            fn detect_is_total_antisymmetric_and_never_misordered(
                pairs in collection::vec((0u32..=8, 0u32..=8), 2..6)
            ) {
                let mut b = ProblemInstance::builder("prop");
                let mut expected = Vec::new();
                for &(benefit, cost) in &pairs {
                    let i = b.add_index(cost as f64);
                    let q = b.add_query(20.0);
                    if benefit > 0 {
                        b.add_plan(q, vec![i], benefit as f64);
                    }
                    expected.push((i, benefit as f64, cost as f64));
                }
                let inst = b.build().unwrap();
                let out = detect(&inst);
                let k = expected.len();
                // Every index is disjoint here, so the order must be total.
                prop_assert_eq!(out.len(), k * (k - 1) / 2);
                for &(first, second) in &out {
                    prop_assert!(!out.contains(&(second, first)), "antisymmetry");
                    let (_, bf, cf) = expected[first.raw()];
                    let (_, bs, cs) = expected[second.raw()];
                    // `first` may precede `second` only when putting it
                    // first saves at least as much area (ties allowed, then
                    // id order must have been used).
                    prop_assert!(bf * cs >= bs * cf, "misordered pair");
                    if bf * cs == bs * cf {
                        prop_assert!(first < second, "tie not broken by id");
                    }
                }
            }
        }
    }
}
