//! Colonized-index detection (Section 5.2, Appendix D.3).
//!
//! Index `i` is *colonized* by `j` when every plan using `i` also uses `j`
//! (but not vice versa) and `i` does not speed up the build of any other
//! index. Building `i` before its colonizer can never help any query, so some
//! optimal solution builds the colonizer first: emit `j ≺ i`.

use idd_core::{IndexId, ProblemInstance};

/// Detects colonized pairs, returned as `(colonizer, colonized)` — the first
/// element must be deployed before the second.
pub fn detect(instance: &ProblemInstance) -> Vec<(IndexId, IndexId)> {
    let n = instance.num_indexes();
    let mut out = Vec::new();

    for raw in 0..n {
        let i = IndexId::new(raw);
        let plans = instance.plans_using_index(i);
        if plans.is_empty() {
            continue;
        }
        // Appendix D.3: the colonized index must not speed up building others.
        if !instance.helps(i).is_empty() {
            continue;
        }

        // Intersection of all plans containing i (minus i itself).
        let mut colonizers: Vec<IndexId> = instance.plan(plans[0]).indexes.clone();
        colonizers.retain(|&x| x != i);
        for &pid in &plans[1..] {
            let plan = instance.plan(pid);
            colonizers.retain(|x| plan.indexes.contains(x));
        }

        for &j in &colonizers {
            // j must appear in some plan without i, otherwise they are allies
            // (handled by the alliance detector) and no direction is implied.
            let j_has_own_plan = instance
                .plans_using_index(j)
                .iter()
                .any(|&pid| !instance.plan(pid).uses(i));
            if j_has_own_plan {
                out.push((j, i));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 6: i1 is colonized by i2 (appears with it in every plan), but
    /// not by i3 or i4 (they appear in only some of i1's plans).
    fn figure6_instance() -> (ProblemInstance, Vec<IndexId>) {
        let mut b = ProblemInstance::builder("fig6");
        let i: Vec<IndexId> = (0..4).map(|_| b.add_index(3.0)).collect();
        let q0 = b.add_query(100.0);
        b.add_plan(q0, vec![i[0], i[1], i[2]], 40.0); // i1 with i2(=colonizer) and i3
        b.add_plan(q0, vec![i[0], i[1], i[3]], 35.0); // i1 with i2 and i4
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![i[1]], 10.0); // i2 alone
        (b.build().unwrap(), i)
    }

    #[test]
    fn figure6_detects_only_the_true_colonizer() {
        let (inst, i) = figure6_instance();
        let pairs = detect(&inst);
        // i0 (paper's i1) is colonized by i1 (paper's i2).
        assert!(pairs.contains(&(i[1], i[0])));
        // Not by i2 or i3.
        assert!(!pairs.contains(&(i[2], i[0])));
        assert!(!pairs.contains(&(i[3], i[0])));
    }

    #[test]
    fn mutual_containment_is_not_colonization() {
        // {i0,i1} always together: an alliance, not a colonization.
        let mut b = ProblemInstance::builder("mutual");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let q = b.add_query(30.0);
        b.add_plan(q, vec![i0, i1], 10.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).is_empty());
    }

    #[test]
    fn build_helper_is_never_reported_as_colonized() {
        let mut b = ProblemInstance::builder("helper");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let q = b.add_query(60.0);
        b.add_plan(q, vec![i0, i1], 20.0);
        b.add_plan(q, vec![i1], 5.0);
        // i0 would be colonized by i1, but i0 helps build i2 → skip.
        b.add_build_interaction(i2, i0, 1.0);
        let inst = b.build().unwrap();
        assert!(detect(&inst).iter().all(|&(_, colonized)| colonized != i0));
    }

    #[test]
    fn multiple_colonizers_all_reported() {
        let mut b = ProblemInstance::builder("multi");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(1.0);
        let q = b.add_query(80.0);
        b.add_plan(q, vec![i0, i1, i2], 30.0);
        b.add_plan(q, vec![i1, i2], 10.0);
        b.add_plan(q, vec![i1], 4.0);
        b.add_plan(q, vec![i2], 4.0);
        let inst = b.build().unwrap();
        let pairs = detect(&inst);
        assert!(pairs.contains(&(i1, i0)));
        assert!(pairs.contains(&(i2, i0)));
    }
}
