//! Projection of one shard onto a self-contained sub-instance.
//!
//! A shard keeps its member indexes (re-numbered densely, parent metadata
//! preserved), every query that has at least one plan fully inside the
//! member set, those fully-contained plans, and the intra-shard build
//! interactions and precedences. When the partition is exact (no coupling
//! edge cut) this projection is lossless for *ordering*: a plan, query
//! competition, interaction or precedence crossing shard boundaries cannot
//! exist, so the shard's contribution to the global objective depends only
//! on its internal order — queries outside the shard contribute a constant
//! baseline no matter where the shard's builds land on the clock.
//!
//! When edges *were* cut, cross-boundary plans are dropped and a query may
//! be projected into several shards (each sees only its own plans for it);
//! the recombined order is then an approximation — which is why the
//! decomposer re-evaluates the spliced order against the full instance and
//! reports that exact number, never the sum of shard objectives.

use idd_core::{IndexId, InstanceBuilder, ProblemInstance};

/// One shard's projected sub-instance plus the id mapping back to the
/// parent.
#[derive(Debug, Clone)]
pub struct ShardInstance {
    /// The self-contained sub-instance (dense shard-local ids).
    pub instance: ProblemInstance,
    /// `members[local.raw()]` is the parent id of shard-local index `local`.
    pub members: Vec<IndexId>,
}

impl ShardInstance {
    /// Maps a shard-local deployment order back to parent ids.
    pub fn to_parent_order(&self, local_order: &[IndexId]) -> Vec<IndexId> {
        local_order.iter().map(|&l| self.members[l.raw()]).collect()
    }
}

/// Projects `members` (sorted parent ids) of `parent` onto a sub-instance.
pub fn project(parent: &ProblemInstance, members: &[IndexId]) -> ShardInstance {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted");
    let mut remap: Vec<Option<IndexId>> = vec![None; parent.num_indexes()];
    let mut builder = InstanceBuilder::new(format!(
        "{}/shard[{}..]",
        parent.name(),
        members.first().map(|m| m.raw()).unwrap_or(0)
    ));

    for (local, &m) in members.iter().enumerate() {
        let mut meta = parent.index_meta(m).clone();
        meta.id = IndexId::new(local);
        let id = builder.push_index(meta);
        debug_assert_eq!(id.raw(), local);
        remap[m.raw()] = Some(id);
    }
    let contained = |ids: &[IndexId]| ids.iter().all(|i| remap[i.raw()].is_some());

    for q in parent.query_ids() {
        let kept: Vec<_> = parent
            .plans_of_query(q)
            .iter()
            .filter(|&&p| contained(&parent.plan(p).indexes))
            .collect();
        if kept.is_empty() {
            continue;
        }
        let local_q = builder.push_query(parent.query(q).clone());
        for &&p in &kept {
            let plan = parent.plan(p);
            let indexes = plan
                .indexes
                .iter()
                .map(|i| remap[i.raw()].expect("plan is contained"))
                .collect();
            builder.add_plan(local_q, indexes, plan.speedup);
        }
    }

    for bi in parent.build_interactions() {
        if let (Some(target), Some(helper)) = (remap[bi.target.raw()], remap[bi.helper.raw()]) {
            builder.add_build_interaction(target, helper, bi.speedup);
        }
    }
    for pr in parent.precedences() {
        if let (Some(before), Some(after)) = (remap[pr.before.raw()], remap[pr.after.raw()]) {
            builder.add_precedence(before, after);
        }
    }

    let instance = builder
        .build()
        .expect("projection of a valid instance stays valid");
    ShardInstance {
        instance,
        members: members.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::{Deployment, ObjectiveEvaluator};

    fn two_blocks() -> ProblemInstance {
        let mut b = ProblemInstance::builder("two-blocks");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(3.0);
        let i2 = b.add_index(4.0);
        let q0 = b.add_query(60.0);
        b.add_plan(q0, vec![i0], 10.0);
        b.add_plan(q0, vec![i0, i1], 25.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![i2], 12.0);
        b.add_build_interaction(i1, i0, 1.0);
        b.add_precedence(i0, i1);
        b.build().unwrap()
    }

    #[test]
    fn projection_keeps_contained_structure_only() {
        let parent = two_blocks();
        let shard = project(&parent, &[IndexId::new(0), IndexId::new(1)]);
        assert_eq!(shard.instance.num_indexes(), 2);
        assert_eq!(shard.instance.num_queries(), 1);
        assert_eq!(shard.instance.num_plans(), 2);
        assert_eq!(shard.instance.build_interactions().len(), 1);
        assert_eq!(shard.instance.precedences().len(), 1);

        let other = project(&parent, &[IndexId::new(2)]);
        assert_eq!(other.instance.num_indexes(), 1);
        assert_eq!(other.instance.num_queries(), 1);
        assert_eq!(other.instance.build_interactions().len(), 0);
    }

    #[test]
    fn shard_objective_matches_parent_marginals() {
        // On an exact partition, a shard's step benefits and costs equal
        // what the same builds realize inside the parent instance, so the
        // shard evaluator's step trace is trustworthy for recombination.
        let parent = two_blocks();
        let shard = project(&parent, &[IndexId::new(0), IndexId::new(1)]);
        let shard_value =
            ObjectiveEvaluator::new(&shard.instance).evaluate(&Deployment::from_raw([0, 1]));
        let parent_value =
            ObjectiveEvaluator::new(&parent).evaluate(&Deployment::from_raw([0, 1, 2]));
        for (s, p) in shard_value.steps.iter().zip(&parent_value.steps) {
            assert_eq!(s.build_cost, p.build_cost);
            assert_eq!(
                s.runtime_before - s.runtime_after,
                p.runtime_before - p.runtime_after
            );
        }
    }

    #[test]
    fn parent_order_mapping_round_trips() {
        let parent = two_blocks();
        let shard = project(&parent, &[IndexId::new(0), IndexId::new(2)]);
        let order = shard.to_parent_order(&[IndexId::new(1), IndexId::new(0)]);
        assert_eq!(order, vec![IndexId::new(2), IndexId::new(0)]);
    }
}
