//! # Shard-and-recombine solving
//!
//! The Section-5 property analysis doubles as a *decomposer*: the same
//! structural facts the detectors consume (which plans share indexes, which
//! indexes compete for a query, which builds interact) define a coupling
//! graph over the indexes. Components of that graph are independent
//! sub-problems — an index's position relative to another component's
//! indexes never changes the objective — so each component ("shard") can be
//! solved by its own portfolio race and the per-shard schedules recombined:
//!
//! 1. [`properties::analyze`](crate::properties::analyze) — if the fixed
//!    point was **clipped** (`!report.converged`) the decomposer refuses to
//!    shard and falls back to a monolithic solve: a clipped analysis could
//!    under-report alliances, and alliances pin shard membership.
//! 2. [`CouplingGraph::build`] + [`CouplingGraph::partition`] — cut soft
//!    edges below the configured threshold (`0.0` cuts nothing ⇒ the
//!    partition is *exact*); hard precedence/alliance edges are never cut.
//! 3. [`shard::project`] each component onto a self-contained sub-instance
//!    and race the standard portfolio on every shard in parallel.
//! 4. Read each shard schedule back as a benefit curve
//!    ([`idd_core::benefit_steps`]), decompose into maximal-density prefix
//!    blocks and [`recombine::merge`] by Smith's rule — the optimal
//!    order-preserving interleave.
//! 5. Re-evaluate the spliced order against the **full** instance with
//!    [`ObjectiveEvaluator`]; the reported objective is always that exact
//!    number, never a sum of shard objectives.
//!
//! The combined outcome claims [`SolveOutcome::Optimal`] only when the
//! partition was exact *and* every shard proved its own optimum: for
//! independent shards the block merge is optimal over order-preserving
//! interleaves, and an exchange argument shows some global optimum is
//! order-preserving over per-shard optima. Any cut edge demotes the claim to
//! `Feasible`.

pub mod graph;
pub mod recombine;
pub mod shard;

pub use graph::{CouplingEdge, CouplingGraph, Partition};
pub use recombine::ShardSchedule;
pub use shard::{project, ShardInstance};

use crate::anytime::Trajectory;
use crate::budget::SearchBudget;
use crate::portfolio::{PortfolioConfig, PortfolioSolver};
use crate::properties::{analyze, AnalysisOptions};
use crate::result::{CoopStats, SolveOutcome, SolveResult};
use crate::solver::{CooperationPolicy, SolveContext};
use idd_core::{benefit_steps, Deployment, IndexId, ObjectiveEvaluator, ProblemInstance};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for [`ShardedSolver`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Budget given to *each* shard's portfolio race (shards are far smaller
    /// than the whole instance, so this is typically the monolithic budget
    /// unchanged — the saving comes from search-space size, not budget
    /// splitting).
    pub shard_budget: SearchBudget,
    /// Soft coupling edges with accumulated weight below this are cut.
    /// `0.0` (the default) cuts nothing: shards are exactly independent and
    /// recombination is lossless.
    pub cut_threshold: f64,
    /// Property-analysis configuration used to build the coupling graph.
    pub analysis: AnalysisOptions,
    /// Passed through to each shard's [`PortfolioConfig`].
    pub cancel_on_optimal: bool,
    /// Passed through to each shard's [`PortfolioConfig`].
    pub cooperation: CooperationPolicy,
    /// How many shard races run concurrently. Each race itself spawns the
    /// portfolio's member threads, so the default (`0`) picks
    /// `max(1, available_parallelism / members)` to avoid oversubscription.
    pub max_parallel_shards: usize,
}

impl ShardedConfig {
    /// Default configuration with the given per-shard budget.
    pub fn with_budget(shard_budget: SearchBudget) -> Self {
        Self {
            shard_budget,
            cut_threshold: 0.0,
            analysis: AnalysisOptions::all(),
            cancel_on_optimal: true,
            cooperation: CooperationPolicy::Off,
            max_parallel_shards: 0,
        }
    }
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self::with_budget(SearchBudget::default())
    }
}

/// One shard's members and solve result (shard-local ids in
/// `result.deployment`; [`ShardInstance::to_parent_order`] maps them back).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Parent-instance ids of the shard's indexes.
    pub members: Vec<IndexId>,
    /// The shard portfolio's combined result.
    pub result: SolveResult,
}

/// The full outcome of a sharded solve.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// The recombined result. `objective` is always re-evaluated against the
    /// full instance, bit-for-bit identical to
    /// [`ObjectiveEvaluator::evaluate`] on `deployment`.
    pub result: SolveResult,
    /// Per-shard reports (empty when the solve fell back to monolithic).
    pub shards: Vec<ShardReport>,
    /// Number of soft coupling edges the threshold cut.
    pub cut_edges: usize,
    /// Total weight of the cut edges.
    pub cut_weight: f64,
    /// `true` when no coupling was severed (recombination is lossless).
    pub exact: bool,
    /// `true` when the property analysis reached a genuine fixed point.
    pub analysis_converged: bool,
    /// `true` when the decomposer did not shard (clipped analysis, or the
    /// coupling graph is one component) and ran the plain portfolio instead.
    pub monolithic_fallback: bool,
}

impl ShardedOutcome {
    /// Number of shards the instance was split into (`1` for a monolithic
    /// fallback).
    pub fn num_shards(&self) -> usize {
        self.shards.len().max(1)
    }
}

/// Shard-and-recombine wrapper around the standard portfolio.
#[derive(Debug, Clone, Default)]
pub struct ShardedSolver {
    config: ShardedConfig,
}

impl ShardedSolver {
    /// Creates a sharded solver with the given configuration.
    pub fn new(config: ShardedConfig) -> Self {
        Self { config }
    }

    /// Convenience: default configuration with the given per-shard budget.
    pub fn recommended(shard_budget: SearchBudget) -> Self {
        Self::new(ShardedConfig::with_budget(shard_budget))
    }

    fn portfolio(&self) -> PortfolioSolver {
        PortfolioSolver::recommended(self.config.shard_budget).with_config(PortfolioConfig {
            budget: self.config.shard_budget,
            cancel_on_optimal: self.config.cancel_on_optimal,
            cooperation: self.config.cooperation,
        })
    }

    fn workers(&self, num_shards: usize) -> usize {
        let configured = if self.config.max_parallel_shards > 0 {
            self.config.max_parallel_shards
        } else {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            // The recommended portfolio races 4 member threads per shard.
            (cores / 4).max(1)
        };
        configured.min(num_shards).max(1)
    }

    fn monolithic(
        &self,
        instance: &ProblemInstance,
        started: Instant,
        analysis_converged: bool,
        exact: bool,
    ) -> ShardedOutcome {
        let outcome = self
            .portfolio()
            .solve_detailed_in(instance, &SolveContext::new());
        let mut result = outcome.combined;
        result.solver = "sharded(monolithic-fallback)".to_string();
        result.elapsed_seconds = started.elapsed().as_secs_f64();
        ShardedOutcome {
            result,
            shards: Vec::new(),
            cut_edges: 0,
            cut_weight: 0.0,
            exact,
            analysis_converged,
            monolithic_fallback: true,
        }
    }

    /// Solves `instance` by sharding along the coupling graph.
    pub fn solve(&self, instance: &ProblemInstance) -> ShardedOutcome {
        let started = Instant::now();

        let analysis = analyze(instance, self.config.analysis);
        if !analysis.converged {
            // A clipped closure may miss alliance groups, and alliances pin
            // shard membership — sharding on it could split an alliance.
            return self.monolithic(instance, started, false, false);
        }

        let graph = CouplingGraph::build(instance, &analysis);
        let partition = graph.partition(self.config.cut_threshold);
        if partition.shards.len() <= 1 {
            return self.monolithic(instance, started, true, partition.is_exact());
        }

        let shard_instances: Vec<ShardInstance> = partition
            .shards
            .iter()
            .map(|members| shard::project(instance, members))
            .collect();

        // Worker pool: each worker pulls the next unsolved shard and races
        // the full portfolio on it with a private SolveContext (no shared
        // cancellation or incumbent across shards — they are different
        // instances).
        let results: Mutex<Vec<Option<SolveResult>>> =
            Mutex::new(vec![None; shard_instances.len()]);
        let next = AtomicUsize::new(0);
        let workers = self.workers(shard_instances.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= shard_instances.len() {
                        break;
                    }
                    let outcome = self
                        .portfolio()
                        .solve_detailed_in(&shard_instances[k].instance, &SolveContext::new());
                    results.lock().unwrap()[k] = Some(outcome.combined);
                });
            }
        });
        let shard_results: Vec<SolveResult> = results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("worker pool visits every shard"))
            .collect();

        // Read each shard's schedule back as a benefit curve with parent
        // ids, then merge by block density.
        let mut schedules = Vec::with_capacity(shard_results.len());
        for (shard, result) in shard_instances.iter().zip(&shard_results) {
            let Some(deployment) = result.deployment.as_ref() else {
                // The portfolio always contains greedy, so this is
                // unreachable in practice; degrade gracefully regardless.
                return self.monolithic(instance, started, true, partition.is_exact());
            };
            let value = ObjectiveEvaluator::new(&shard.instance).evaluate(deployment);
            let steps = benefit_steps(&value)
                .into_iter()
                .map(|mut s| {
                    s.index = shard.members[s.index.raw()];
                    s
                })
                .collect();
            schedules.push(ShardSchedule { steps });
        }
        let order = recombine::merge(&schedules);
        let deployment = Deployment::new(order);
        debug_assert!(deployment.is_valid_for(instance));

        // The one objective we report: the spliced order evaluated against
        // the full instance.
        let objective = ObjectiveEvaluator::new(instance).evaluate(&deployment).area;

        let all_optimal = shard_results
            .iter()
            .all(|r| r.outcome == SolveOutcome::Optimal);
        let outcome = if partition.is_exact() && all_optimal {
            SolveOutcome::Optimal
        } else {
            SolveOutcome::Feasible
        };

        let elapsed_seconds = started.elapsed().as_secs_f64();
        let mut trajectory = Trajectory::new();
        trajectory.record(elapsed_seconds, objective);
        let result = SolveResult {
            solver: format!("sharded(x{})", shard_results.len()),
            deployment: Some(deployment),
            objective,
            outcome,
            elapsed_seconds,
            nodes: shard_results.iter().map(|r| r.nodes).sum(),
            trajectory,
            coop: shard_results
                .iter()
                .fold(CoopStats::default(), |acc, r| acc.merged(r.coop)),
        };

        ShardedOutcome {
            result,
            shards: partition
                .shards
                .iter()
                .cloned()
                .zip(shard_results)
                .map(|(members, result)| ShardReport { members, result })
                .collect(),
            cut_edges: partition.cut_edges.len(),
            cut_weight: partition.cut_weight,
            exact: partition.is_exact(),
            analysis_converged: true,
            monolithic_fallback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three independent blocks with small integer-valued costs and
    /// speed-ups: every area is an exact small-integer f64 sum, so sharded
    /// and monolithic optima can be compared with `==`.
    fn three_blocks() -> ProblemInstance {
        let mut b = ProblemInstance::builder("three-blocks");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(3.0);
        let i2 = b.add_index(1.0);
        let i3 = b.add_index(4.0);
        let i4 = b.add_index(2.0);
        let q0 = b.add_query(40.0);
        b.add_plan(q0, vec![i0], 8.0);
        b.add_plan(q0, vec![i0, i1], 20.0);
        let q1 = b.add_query(30.0);
        b.add_plan(q1, vec![i2], 6.0);
        b.add_plan(q1, vec![i3], 9.0);
        let q2 = b.add_query(25.0);
        b.add_plan(q2, vec![i4], 10.0);
        b.build().unwrap()
    }

    fn budgeted() -> ShardedConfig {
        let mut config = ShardedConfig::with_budget(SearchBudget::nodes(200_000));
        config.cancel_on_optimal = false;
        config.max_parallel_shards = 1;
        config
    }

    #[test]
    fn zero_coupling_sharded_matches_monolithic_exactly() {
        let inst = three_blocks();
        let sharded = ShardedSolver::new(budgeted()).solve(&inst);
        assert!(!sharded.monolithic_fallback);
        assert!(sharded.exact);
        assert_eq!(sharded.shards.len(), 3);
        assert_eq!(sharded.result.outcome, SolveOutcome::Optimal);

        let mono = PortfolioSolver::recommended(SearchBudget::nodes(200_000))
            .solve_detailed_in(&inst, &SolveContext::new())
            .combined;
        assert_eq!(mono.outcome, SolveOutcome::Optimal);
        assert_eq!(
            sharded.result.objective, mono.objective,
            "lossless decomposition must reproduce the monolithic optimum"
        );

        // And the reported number is exactly the evaluator's.
        let deployment = sharded.result.deployment.as_ref().unwrap();
        assert!(deployment.is_valid_for(&inst));
        assert_eq!(
            sharded.result.objective,
            ObjectiveEvaluator::new(&inst).evaluate(deployment).area
        );
    }

    #[test]
    fn clipped_analysis_refuses_to_shard() {
        let inst = three_blocks();
        let mut config = budgeted();
        config.analysis.max_rounds = 0;
        let outcome = ShardedSolver::new(config).solve(&inst);
        assert!(outcome.monolithic_fallback);
        assert!(!outcome.analysis_converged);
        assert!(outcome.shards.is_empty());
        let deployment = outcome.result.deployment.as_ref().unwrap();
        assert!(deployment.is_valid_for(&inst));
    }

    #[test]
    fn cut_partition_is_reverified_and_never_claims_optimal() {
        let inst = three_blocks();
        let mut config = budgeted();
        // Higher than every accumulated soft weight: cut everything soft.
        config.cut_threshold = 1_000.0;
        let outcome = ShardedSolver::new(config).solve(&inst);
        assert!(!outcome.monolithic_fallback);
        assert!(!outcome.exact);
        assert!(outcome.cut_edges > 0);
        assert_eq!(outcome.shards.len(), 5);
        assert_eq!(outcome.result.outcome, SolveOutcome::Feasible);
        let deployment = outcome.result.deployment.as_ref().unwrap();
        assert_eq!(
            outcome.result.objective,
            ObjectiveEvaluator::new(&inst).evaluate(deployment).area,
            "the reported objective must be the full-instance evaluation"
        );
    }

    #[test]
    fn single_component_falls_back_to_monolithic() {
        let mut b = ProblemInstance::builder("one-block");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(3.0);
        let q0 = b.add_query(40.0);
        b.add_plan(q0, vec![i0, i1], 20.0);
        let inst = b.build().unwrap();
        let outcome = ShardedSolver::new(budgeted()).solve(&inst);
        assert!(outcome.monolithic_fallback);
        assert!(outcome.analysis_converged);
        assert_eq!(outcome.num_shards(), 1);
    }
}
