//! Recombining per-shard schedules into one deployment.
//!
//! Minimizing the area under the improvement curve is, for a fixed total
//! deployment time, the same as minimizing `Σ_j benefit_j · completion_j`
//! (expand `area = R_∅·T − Σ_j b_j·(T − completion_j)`; `R_∅·T` and the
//! completion-independent parts are constants). For *fixed* per-shard
//! sequences over independent shards this is the classical problem of
//! merging chains under Smith's rule: decompose each sequence into its
//! maximal-density prefix blocks ([`idd_core::density_blocks`]) and emit
//! blocks in non-increasing density order. That interleaving is optimal
//! over all order-preserving merges, and the block decomposition is what
//! makes it safe — a shard's cheap dense tail is pulled forward *together
//! with* the expensive prefix it depends on, never alone.
//!
//! Ties between blocks of equal density are broken by `(shard, block)`
//! position, so the merge is deterministic and machine-independent.

use idd_core::{BenefitStep, IndexId, ScheduleBlock};
use std::cmp::Ordering;

/// One shard's schedule in benefit-curve form, with steps carrying *parent*
/// index ids.
#[derive(Debug, Clone)]
pub struct ShardSchedule {
    /// Steps in shard-order, ids already mapped to the parent instance.
    pub steps: Vec<BenefitStep>,
}

/// Merges the shard schedules into one parent-id deployment order.
pub fn merge(schedules: &[ShardSchedule]) -> Vec<IndexId> {
    // (shard, block) pairs, then a single density sort with positional
    // tie-breaks. Within one shard the block densities strictly decrease
    // (that is what the prefix decomposition guarantees), so any
    // density-consistent total order automatically preserves each shard's
    // internal block order — and therefore its step order and precedences.
    let mut blocks: Vec<(usize, ScheduleBlock)> = Vec::new();
    for (shard, schedule) in schedules.iter().enumerate() {
        for block in idd_core::density_blocks(&schedule.steps) {
            blocks.push((shard, block));
        }
    }
    blocks.sort_by(|(shard_a, a), (shard_b, b)| match b.density_cmp(a) {
        Ordering::Equal => (shard_a, a.start).cmp(&(shard_b, b.start)),
        ordering => ordering,
    });

    let mut order = Vec::with_capacity(schedules.iter().map(|s| s.steps.len()).sum());
    for (shard, block) in blocks {
        for step in &schedules[shard].steps[block.start..block.start + block.len] {
            order.push(step.index);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(raw: usize, cost: f64, benefit: f64) -> BenefitStep {
        BenefitStep {
            index: IndexId::new(raw),
            cost,
            benefit,
        }
    }

    #[test]
    fn single_steps_merge_by_density() {
        let merged = merge(&[
            ShardSchedule {
                steps: vec![step(0, 1.0, 5.0), step(1, 1.0, 1.0)],
            },
            ShardSchedule {
                steps: vec![step(2, 1.0, 3.0)],
            },
        ]);
        assert_eq!(
            merged,
            vec![IndexId::new(0), IndexId::new(2), IndexId::new(1)]
        );
    }

    #[test]
    fn dense_tail_travels_with_its_prefix() {
        // Shard A: cheap dense step (density 8) behind an expensive sparse
        // one (density 0.5) — as a fused block their density is 12/9 ≈ 1.33.
        // Shard B: a single density-1 step. Naively sorting *steps* would
        // rip A's tail to the front; the block merge keeps A's pair together
        // and schedules the whole block before B.
        let merged = merge(&[
            ShardSchedule {
                steps: vec![step(0, 8.0, 4.0), step(1, 1.0, 8.0)],
            },
            ShardSchedule {
                steps: vec![step(2, 4.0, 4.0)],
            },
        ]);
        assert_eq!(
            merged,
            vec![IndexId::new(0), IndexId::new(1), IndexId::new(2)]
        );
    }

    #[test]
    fn equal_density_ties_break_by_shard_then_position() {
        let merged = merge(&[
            ShardSchedule {
                steps: vec![step(3, 2.0, 4.0)],
            },
            ShardSchedule {
                steps: vec![step(7, 1.0, 2.0)],
            },
        ]);
        assert_eq!(merged, vec![IndexId::new(3), IndexId::new(7)]);
    }

    #[test]
    fn merge_preserves_each_shards_internal_order() {
        let schedules = vec![
            ShardSchedule {
                steps: vec![step(0, 3.0, 1.0), step(1, 1.0, 6.0), step(2, 2.0, 1.0)],
            },
            ShardSchedule {
                steps: vec![step(3, 1.0, 4.0), step(4, 2.0, 1.0)],
            },
        ];
        let merged = merge(&schedules);
        for schedule in &schedules {
            let positions: Vec<usize> = schedule
                .steps
                .iter()
                .map(|s| merged.iter().position(|&i| i == s.index).unwrap())
                .collect();
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "shard order violated: {positions:?}"
            );
        }
    }
}
