//! The coupling graph: which indexes must (or should) be solved together.
//!
//! Nodes are indexes; edges accumulate every mechanism through which two
//! indexes' deployment positions influence each other's contribution to the
//! objective:
//!
//! * **plan co-occurrence** — two indexes in the same plan realize that
//!   plan's speed-up only together (weight += the plan's weighted speed-up);
//! * **query competition** — two indexes serving the same query through
//!   different plans fight over the same runtime (weight += the smaller of
//!   the two sides' best speed-ups for that query);
//! * **build interaction** — one build cheapens the other (weight += the
//!   saving);
//! * **hard precedence** — an uncuttable edge: splitting it could make the
//!   recombined order infeasible;
//! * **alliance membership** (from the Section-5 analysis) — allied indexes
//!   are deployed consecutively in some optimal order, so they stay in one
//!   shard regardless of the cut threshold.
//!
//! [`CouplingGraph::partition`] cuts every *finite* edge whose accumulated
//! weight is below the caller's threshold and returns the connected
//! components of what remains. A threshold of `0.0` cuts nothing: the
//! components are then exactly the instance's independent sub-problems and
//! decomposing along them is lossless.

use crate::properties::AnalysisReport;
use idd_core::{IndexId, ProblemInstance};
use std::collections::BTreeMap;

/// One accumulated coupling edge (reported for cut diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingEdge {
    /// Smaller endpoint.
    pub a: IndexId,
    /// Larger endpoint.
    pub b: IndexId,
    /// Accumulated finite coupling weight.
    pub weight: f64,
    /// `true` for precedence / alliance edges, which no threshold cuts.
    pub hard: bool,
}

/// The symmetric weighted coupling graph of one instance.
#[derive(Debug, Clone)]
pub struct CouplingGraph {
    num_indexes: usize,
    edges: BTreeMap<(usize, usize), (f64, bool)>,
}

/// The result of cutting the graph at a threshold.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Connected components after the cut, each sorted ascending, the list
    /// itself sorted by smallest member — a canonical, deterministic order.
    pub shards: Vec<Vec<IndexId>>,
    /// Finite edges removed by the threshold.
    pub cut_edges: Vec<CouplingEdge>,
    /// Total weight of the removed edges (`0.0` means the partition is
    /// lossless: no interaction crosses shard boundaries).
    pub cut_weight: f64,
}

impl Partition {
    /// `true` when no finite coupling was severed — the shards are exactly
    /// independent and solving them separately loses nothing.
    pub fn is_exact(&self) -> bool {
        self.cut_edges.is_empty()
    }
}

impl CouplingGraph {
    /// Builds the graph from the instance plus the property analysis (only
    /// the analysis' alliance groups are used; derived ordering pairs such
    /// as disjoint-density constraints are deliberately *not* edges — they
    /// hold across independent sub-problems by construction and would fuse
    /// everything into one shard).
    pub fn build(instance: &ProblemInstance, analysis: &AnalysisReport) -> Self {
        let mut graph = Self {
            num_indexes: instance.num_indexes(),
            edges: BTreeMap::new(),
        };

        // Plan co-occurrence.
        for p in instance.plan_ids() {
            let plan = instance.plan(p);
            if plan.width() < 2 {
                continue;
            }
            let w = instance.plan_speedup(p);
            for (i, &a) in plan.indexes.iter().enumerate() {
                for &b in plan.indexes.iter().skip(i + 1) {
                    graph.add_soft(a, b, w);
                }
            }
        }

        // Query competition: every index serving the query is coupled to
        // every other, by the smaller of the two sides' best speed-ups —
        // that is the most runtime one side's placement can steal from the
        // other's marginal benefit.
        for q in instance.query_ids() {
            let mut best: BTreeMap<usize, f64> = BTreeMap::new();
            for &p in instance.plans_of_query(q) {
                let w = instance.plan_speedup(p);
                for &i in &instance.plan(p).indexes {
                    let e = best.entry(i.raw()).or_insert(0.0);
                    if w > *e {
                        *e = w;
                    }
                }
            }
            let members: Vec<(usize, f64)> = best.into_iter().collect();
            for (i, &(a, wa)) in members.iter().enumerate() {
                for &(b, wb) in members.iter().skip(i + 1) {
                    graph.add_soft(IndexId::new(a), IndexId::new(b), wa.min(wb));
                }
            }
        }

        // Build interactions.
        for bi in instance.build_interactions() {
            graph.add_soft(bi.target, bi.helper, bi.speedup);
        }

        // Hard precedences.
        for pr in instance.precedences() {
            graph.add_hard(pr.before, pr.after);
        }

        // Alliances: keep each group connected with hard edges along a
        // spanning path.
        for group in analysis.constraints.alliances() {
            for pair in group.windows(2) {
                graph.add_hard(pair[0], pair[1]);
            }
        }

        graph
    }

    fn key(a: IndexId, b: IndexId) -> (usize, usize) {
        let (x, y) = (a.raw(), b.raw());
        (x.min(y), x.max(y))
    }

    fn add_soft(&mut self, a: IndexId, b: IndexId, weight: f64) {
        if a == b {
            return;
        }
        let entry = self.edges.entry(Self::key(a, b)).or_insert((0.0, false));
        entry.0 += weight;
    }

    fn add_hard(&mut self, a: IndexId, b: IndexId) {
        if a == b {
            return;
        }
        let entry = self.edges.entry(Self::key(a, b)).or_insert((0.0, false));
        entry.1 = true;
    }

    /// Number of accumulated edges (hard and soft).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Cuts every soft edge with `weight < cut_threshold` and returns the
    /// connected components of the remainder. `cut_threshold <= 0.0` cuts
    /// nothing (weights are non-negative), so the partition is exact.
    pub fn partition(&self, cut_threshold: f64) -> Partition {
        let mut dsu = Dsu::new(self.num_indexes);
        let mut cut_edges = Vec::new();
        let mut cut_weight = 0.0;
        for (&(a, b), &(weight, hard)) in &self.edges {
            if hard || weight >= cut_threshold {
                dsu.union(a, b);
            } else {
                cut_edges.push(CouplingEdge {
                    a: IndexId::new(a),
                    b: IndexId::new(b),
                    weight,
                    hard: false,
                });
                cut_weight += weight;
            }
        }

        // Canonical components: grouped under their smallest member, in
        // ascending order of that member.
        let mut by_root: BTreeMap<usize, Vec<IndexId>> = BTreeMap::new();
        for i in 0..self.num_indexes {
            by_root
                .entry(dsu.find(i))
                .or_default()
                .push(IndexId::new(i));
        }
        let mut shards: Vec<Vec<IndexId>> = by_root.into_values().collect();
        shards.sort_by_key(|s| s[0]);

        Partition {
            shards,
            cut_edges,
            cut_weight,
        }
    }
}

/// Minimal union-find with path halving.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins: keeps components canonically labelled.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{analyze, AnalysisOptions};

    /// Two fully independent 2-index blocks plus one free-floating index.
    fn blocky() -> ProblemInstance {
        let mut b = ProblemInstance::builder("blocky");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(3.0);
        let i2 = b.add_index(4.0);
        let i3 = b.add_index(5.0);
        let _lone = b.add_index(1.0);
        let q0 = b.add_query(60.0);
        b.add_plan(q0, vec![i0], 10.0);
        b.add_plan(q0, vec![i0, i1], 25.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![i2], 12.0);
        b.add_plan(q1, vec![i3], 15.0);
        b.build().unwrap()
    }

    #[test]
    fn independent_blocks_become_separate_shards() {
        let inst = blocky();
        let analysis = analyze(&inst, AnalysisOptions::all());
        let graph = CouplingGraph::build(&inst, &analysis);
        let partition = graph.partition(0.0);
        assert!(partition.is_exact());
        assert_eq!(partition.shards.len(), 3);
        let sizes: Vec<usize> = partition.shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn threshold_cuts_weak_edges_only() {
        let inst = blocky();
        let analysis = analyze(&inst, AnalysisOptions::all());
        let graph = CouplingGraph::build(&inst, &analysis);
        // q0's co-occurrence + competition coupling of (i0,i1) is strong
        // (25 + 10); q1's competition coupling of (i2,i3) is min(12,15) =
        // 12. A threshold between them splits only the second block.
        let partition = graph.partition(20.0);
        assert!(!partition.is_exact());
        assert_eq!(partition.shards.len(), 4);
        assert_eq!(partition.cut_edges.len(), 1);
        assert_eq!(partition.cut_edges[0].weight, 12.0);
    }

    #[test]
    fn precedence_edges_survive_any_threshold() {
        let mut b = ProblemInstance::builder("prec");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(3.0);
        let q0 = b.add_query(30.0);
        b.add_plan(q0, vec![i0], 5.0);
        let q1 = b.add_query(30.0);
        b.add_plan(q1, vec![i1], 5.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let analysis = analyze(&inst, AnalysisOptions::all());
        let graph = CouplingGraph::build(&inst, &analysis);
        let partition = graph.partition(f64::INFINITY);
        assert_eq!(partition.shards.len(), 1, "hard edge must not be cut");
        assert!(partition.cut_edges.is_empty());
    }
}
