//! Convenience re-exports of the solver toolbox.

pub use crate::anytime::{Trajectory, TrajectoryPoint};
pub use crate::budget::SearchBudget;
pub use crate::constraints::OrderConstraints;
pub use crate::dp::DpSolver;
pub use crate::exact::{AStarConfig, AStarSolver, CpConfig, CpSolver, MipConfig, MipSolver};
pub use crate::greedy::{GreedyConfig, GreedySolver};
pub use crate::local::{
    LnsConfig, LnsSolver, SwapStrategy, TabuConfig, TabuSolver, VnsConfig, VnsSolver,
};
pub use crate::portfolio::{PortfolioConfig, PortfolioOutcome, PortfolioSolver};
pub use crate::properties::{analyze, AnalysisOptions, AnalysisReport};
pub use crate::random::{RandomSolver, RandomSummary};
pub use crate::replan::{ReplanOutcome, ReplanStrategy, Replanner};
pub use crate::result::{CoopStats, SolveOutcome, SolveResult};
pub use crate::solver::{
    CancelToken, CooperationPolicy, IncumbentSnapshot, NeighborhoodHints, SharedIncumbent,
    SolveContext, Solver,
};
