//! Ordering constraints: hard precedences plus the additional constraints
//! derived by the problem-property analysis of Section 5.
//!
//! [`OrderConstraints`] maintains a precedence DAG (`before ≺ after`) with its
//! transitive closure, so the exact searches can ask in O(1) whether an index
//! may still be placed, and the local searches can check candidate moves
//! cheaply. Alliances (indexes that must be built consecutively) are kept as
//! separate groups because they are stronger than plain precedences.

use idd_core::{IndexId, ProblemInstance};
use serde::{Deserialize, Serialize};

/// A set of alliance groups plus a precedence DAG over indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderConstraints {
    n: usize,
    /// `closure[a][b]` — index `a` must be deployed before index `b`.
    closure: Vec<Vec<bool>>,
    /// Groups of indexes that must be deployed consecutively.
    alliances: Vec<Vec<IndexId>>,
}

impl OrderConstraints {
    /// Creates an empty constraint set over `n` indexes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            closure: vec![vec![false; n]; n],
            alliances: Vec::new(),
        }
    }

    /// Creates a constraint set seeded with the instance's hard precedences.
    pub fn from_instance(instance: &ProblemInstance) -> Self {
        let mut c = Self::new(instance.num_indexes());
        for pr in instance.precedences() {
            c.add_before(pr.before, pr.after);
        }
        c
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the constraint set covers no indexes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `before ≺ after` and updates the transitive closure.
    /// Returns `false` (and changes nothing) when the new edge would create a
    /// cycle or is a self-edge; returns `true` when the constraint is new or
    /// already implied.
    pub fn add_before(&mut self, before: IndexId, after: IndexId) -> bool {
        let (b, a) = (before.raw(), after.raw());
        if b == a || self.closure[a][b] {
            return false;
        }
        if self.closure[b][a] {
            return true;
        }
        // New edge: propagate — everything that must precede `before` must
        // also precede everything that must follow `after`.
        let preds: Vec<usize> = (0..self.n)
            .filter(|&x| x == b || self.closure[x][b])
            .collect();
        let succs: Vec<usize> = (0..self.n)
            .filter(|&y| y == a || self.closure[a][y])
            .collect();
        for &x in &preds {
            for &y in &succs {
                if x != y {
                    self.closure[x][y] = true;
                }
            }
        }
        true
    }

    /// `true` when `before ≺ after` is required (directly or transitively).
    pub fn must_precede(&self, before: IndexId, after: IndexId) -> bool {
        self.closure[before.raw()][after.raw()]
    }

    /// Indexes that must be deployed before `index`.
    pub fn predecessors(&self, index: IndexId) -> Vec<IndexId> {
        (0..self.n)
            .filter(|&x| self.closure[x][index.raw()])
            .map(IndexId::new)
            .collect()
    }

    /// Indexes that must be deployed after `index`.
    pub fn successors(&self, index: IndexId) -> Vec<IndexId> {
        (0..self.n)
            .filter(|&y| self.closure[index.raw()][y])
            .map(IndexId::new)
            .collect()
    }

    /// Number of ordered pairs in the closure (a measure of pruning power).
    pub fn num_ordered_pairs(&self) -> usize {
        self.closure
            .iter()
            .map(|row| row.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Registers an alliance: the given indexes must be deployed
    /// consecutively (in any internal order not contradicting the DAG).
    /// Re-registering a known group is a no-op, so fixed-point analysis
    /// rounds do not accumulate duplicates.
    pub fn add_alliance(&mut self, members: Vec<IndexId>) {
        if members.len() >= 2 && !self.alliances.contains(&members) {
            self.alliances.push(members);
        }
    }

    /// The registered alliances.
    pub fn alliances(&self) -> &[Vec<IndexId>] {
        &self.alliances
    }

    /// `true` when `index` may be placed next, given the set of already
    /// placed indexes (bitmap by raw id): all of its required predecessors
    /// must already be placed.
    pub fn can_place(&self, index: IndexId, placed: &[bool]) -> bool {
        let i = index.raw();
        (0..self.n).all(|x| !self.closure[x][i] || placed[x])
    }

    /// Checks a complete order against the precedence closure (alliances are
    /// not checked here; they are search hints rather than feasibility
    /// requirements unless they came from hard precedences).
    pub fn is_satisfied_by(&self, order: &[IndexId]) -> bool {
        let mut pos = vec![usize::MAX; self.n];
        for (p, &i) in order.iter().enumerate() {
            pos[i.raw()] = p;
        }
        for a in 0..self.n {
            for b in 0..self.n {
                if self.closure[a][b]
                    && pos[a] != usize::MAX
                    && pos[b] != usize::MAX
                    && pos[a] > pos[b]
                {
                    return false;
                }
            }
        }
        true
    }

    /// Merges another constraint set into this one (used by the fixed-point
    /// analysis). Returns how many new ordered pairs were added.
    pub fn merge(&mut self, other: &OrderConstraints) -> usize {
        let before = self.num_ordered_pairs();
        for a in 0..self.n {
            for b in 0..self.n {
                if other.closure[a][b] {
                    self.add_before(IndexId::new(a), IndexId::new(b));
                }
            }
        }
        for alliance in &other.alliances {
            if !self.alliances.contains(alliance) {
                self.alliances.push(alliance.clone());
            }
        }
        self.num_ordered_pairs() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> IndexId {
        IndexId::new(i)
    }

    #[test]
    fn transitive_closure_is_maintained() {
        let mut c = OrderConstraints::new(4);
        assert!(c.add_before(id(0), id(1)));
        assert!(c.add_before(id(1), id(2)));
        assert!(c.must_precede(id(0), id(2)));
        assert!(!c.must_precede(id(2), id(0)));
        assert_eq!(c.predecessors(id(2)), vec![id(0), id(1)]);
        assert_eq!(c.successors(id(0)), vec![id(1), id(2)]);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut c = OrderConstraints::new(3);
        c.add_before(id(0), id(1));
        c.add_before(id(1), id(2));
        assert!(!c.add_before(id(2), id(0)));
        assert!(!c.must_precede(id(2), id(0)));
        assert!(!c.add_before(id(1), id(1)));
    }

    #[test]
    fn can_place_requires_predecessors() {
        let mut c = OrderConstraints::new(3);
        c.add_before(id(0), id(2));
        assert!(c.can_place(id(0), &[false, false, false]));
        assert!(c.can_place(id(1), &[false, false, false]));
        assert!(!c.can_place(id(2), &[false, false, false]));
        assert!(c.can_place(id(2), &[true, false, false]));
    }

    #[test]
    fn order_satisfaction_check() {
        let mut c = OrderConstraints::new(3);
        c.add_before(id(2), id(0));
        assert!(c.is_satisfied_by(&[id(2), id(0), id(1)]));
        assert!(!c.is_satisfied_by(&[id(0), id(2), id(1)]));
    }

    #[test]
    fn merge_combines_pairs_and_alliances() {
        let mut a = OrderConstraints::new(3);
        a.add_before(id(0), id(1));
        let mut b = OrderConstraints::new(3);
        b.add_before(id(1), id(2));
        b.add_alliance(vec![id(0), id(2)]);
        let added = a.merge(&b);
        assert!(added >= 1);
        assert!(a.must_precede(id(0), id(2)));
        assert_eq!(a.alliances().len(), 1);
    }

    #[test]
    fn from_instance_reads_hard_precedences() {
        let mut builder = ProblemInstance::builder("c");
        let i0 = builder.add_index(1.0);
        let i1 = builder.add_index(1.0);
        builder.add_precedence(i0, i1);
        let q = builder.add_query(5.0);
        builder.add_plan(q, vec![i0], 1.0);
        let inst = builder.build().unwrap();
        let c = OrderConstraints::from_instance(&inst);
        assert!(c.must_precede(i0, i1));
        assert_eq!(c.num_ordered_pairs(), 1);
    }
}
