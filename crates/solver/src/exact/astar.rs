//! A* / best-first search over built-index subsets.
//!
//! The remaining objective of a partial deployment depends only on the *set*
//! of indexes already built (not on the order used to reach it), so the
//! problem admits a shortest-path formulation over the subset lattice:
//! `g` = best known area to reach a subset, `h` = the admissible lower bound
//! of [`crate::exact::bounds::LowerBound`]. This is the A* approach the paper
//! attributes to earlier work [6, 13] — exact, but its frontier grows
//! exponentially, which is why it (like MIP) falls over well before CP does.
//! The solver therefore carries an explicit state cap that reports a
//! `DidNotFinish` outcome, mirroring the paper's out-of-memory entries.

use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::exact::bounds::LowerBound;
use crate::result::{CoopStats, SolveOutcome, SolveResult};
use crate::solver::{SolveContext, Solver};
use idd_core::{Deployment, IndexId, ObjectiveEvaluator, ProblemInstance};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of the A* solver.
#[derive(Debug, Clone)]
pub struct AStarConfig {
    /// Time / node budget.
    pub budget: SearchBudget,
    /// Maximum number of distinct subsets kept in memory before giving up
    /// (models the memory exhaustion the paper reports).
    pub max_states: usize,
    /// Respect hard precedence constraints.
    pub use_precedences: bool,
}

impl Default for AStarConfig {
    fn default() -> Self {
        Self {
            budget: SearchBudget::default(),
            max_states: 2_000_000,
            use_precedences: true,
        }
    }
}

/// Key for a subset of built indexes (bit-packed).
type SubsetKey = Vec<u64>;

fn key_with(key: &SubsetKey, raw: usize) -> SubsetKey {
    let mut k = key.clone();
    k[raw / 64] |= 1 << (raw % 64);
    k
}

fn key_contains(key: &SubsetKey, raw: usize) -> bool {
    key[raw / 64] & (1 << (raw % 64)) != 0
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    f: f64,
    g: f64,
    key: SubsetKey,
    depth: usize,
}

impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f (BinaryHeap is a max-heap, so reverse).
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The A* solver.
#[derive(Debug, Clone, Default)]
pub struct AStarSolver {
    config: AStarConfig,
}

impl AStarSolver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: AStarConfig) -> Self {
        Self { config }
    }

    /// Runs the search.
    pub fn solve(&self, instance: &ProblemInstance) -> SolveResult {
        self.solve_in(instance, &SolveContext::new())
    }

    /// Runs the search inside a shared [`SolveContext`] (cancellable; A*
    /// only ever has a solution at the very end, which is published then).
    pub fn solve_in(&self, instance: &ProblemInstance, ctx: &SolveContext) -> SolveResult {
        let n = instance.num_indexes();
        let words = n.div_ceil(64);
        let evaluator = ObjectiveEvaluator::new(instance);
        let bound = LowerBound::new(instance);
        let constraints = OrderConstraints::from_instance(instance);
        let mut clock = self.config.budget.start_cancellable(ctx.cancel_token());

        // g-values and parent pointers (subset → (previous subset, index)).
        let mut best_g: HashMap<SubsetKey, f64> = HashMap::new();
        let mut parent: HashMap<SubsetKey, (SubsetKey, IndexId)> = HashMap::new();
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();

        let start: SubsetKey = vec![0; words];
        let baseline = instance.baseline_runtime();
        best_g.insert(start.clone(), 0.0);
        heap.push(Node {
            f: bound.remaining(&vec![false; n], baseline),
            g: 0.0,
            key: start.clone(),
            depth: 0,
        });

        let full: SubsetKey = {
            let mut k = vec![0u64; words];
            for raw in 0..n {
                k[raw / 64] |= 1 << (raw % 64);
            }
            k
        };

        while let Some(node) = heap.pop() {
            if clock.exhausted() || best_g.len() > self.config.max_states {
                return SolveResult::did_not_finish(
                    "astar",
                    clock.elapsed_seconds(),
                    clock.nodes(),
                );
            }
            clock.count_node();

            // Stale entry?
            if let Some(&g) = best_g.get(&node.key) {
                if node.g > g + 1e-12 {
                    continue;
                }
            }

            if node.key == full {
                // Reconstruct the order.
                let mut order_rev: Vec<IndexId> = Vec::with_capacity(n);
                let mut cursor = node.key.clone();
                while let Some((prev, index)) = parent.get(&cursor) {
                    order_rev.push(*index);
                    cursor = prev.clone();
                }
                order_rev.reverse();
                let deployment = Deployment::new(order_rev);
                let objective = evaluator.evaluate_area(&deployment);
                ctx.publish_deployment(objective, deployment.order());
                let mut trajectory = crate::anytime::Trajectory::new();
                trajectory.record(clock.elapsed_seconds(), objective);
                return SolveResult {
                    solver: "astar".into(),
                    deployment: Some(deployment),
                    objective,
                    outcome: SolveOutcome::Optimal,
                    elapsed_seconds: clock.elapsed_seconds(),
                    nodes: clock.nodes(),
                    trajectory,
                    coop: CoopStats::default(),
                };
            }

            // Expand: runtime and built bitmap for this subset.
            let built: Vec<bool> = (0..n).map(|raw| key_contains(&node.key, raw)).collect();
            let runtime = evaluator.runtime_with(&built);

            for raw in 0..n {
                if built[raw] {
                    continue;
                }
                let index = IndexId::new(raw);
                if self.config.use_precedences && !constraints.can_place(index, &built) {
                    continue;
                }
                let cost = instance.effective_build_cost(index, &built);
                let g = node.g + runtime * cost;
                let child_key = key_with(&node.key, raw);
                let better = best_g
                    .get(&child_key)
                    .map(|&old| g < old - 1e-12)
                    .unwrap_or(true);
                if better {
                    best_g.insert(child_key.clone(), g);
                    parent.insert(child_key.clone(), (node.key.clone(), index));
                    let mut child_built = built.clone();
                    child_built[raw] = true;
                    let child_runtime = evaluator.runtime_with(&child_built);
                    let h = bound.remaining(&child_built, child_runtime);
                    heap.push(Node {
                        f: g + h,
                        g,
                        key: child_key,
                        depth: node.depth + 1,
                    });
                }
            }
        }

        SolveResult::did_not_finish("astar", clock.elapsed_seconds(), clock.nodes())
    }
}

impl Solver for AStarSolver {
    fn name(&self) -> &'static str {
        "astar"
    }

    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        let mut config = self.config.clone();
        config.budget = budget;
        AStarSolver::with_config(config).solve_in(instance, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::cp::{CpConfig, CpSolver};

    fn instance(seed: u64) -> ProblemInstance {
        let mut b = ProblemInstance::builder(format!("astar-{seed}"));
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 6;
        let idx: Vec<IndexId> = (0..n).map(|_| b.add_index(1.0 + next() * 6.0)).collect();
        for q in 0..4 {
            let qid = b.add_query(30.0 + next() * 50.0);
            b.add_plan(qid, vec![idx[q % n]], 4.0 + next() * 8.0);
            b.add_plan(qid, vec![idx[q % n], idx[(q + 1) % n]], 12.0 + next() * 8.0);
        }
        b.add_build_interaction(idx[2], idx[1], 0.5);
        b.build().unwrap()
    }

    #[test]
    fn astar_matches_cp_optimum() {
        for seed in [1, 2, 3] {
            let inst = instance(seed);
            let astar = AStarSolver::with_config(AStarConfig {
                budget: SearchBudget::unlimited(),
                ..AStarConfig::default()
            })
            .solve(&inst);
            let cp = CpSolver::with_config(CpConfig::plain(SearchBudget::unlimited())).solve(&inst);
            assert!(astar.is_optimal(), "seed {seed}");
            assert!(
                (astar.objective - cp.objective).abs() < 1e-6,
                "seed {seed}: astar {} cp {}",
                astar.objective,
                cp.objective
            );
        }
    }

    #[test]
    fn state_cap_produces_dnf() {
        let inst = instance(4);
        let result = AStarSolver::with_config(AStarConfig {
            budget: SearchBudget::unlimited(),
            max_states: 3,
            use_precedences: true,
        })
        .solve(&inst);
        assert_eq!(result.outcome, SolveOutcome::DidNotFinish);
        assert!(!result.is_feasible());
    }

    #[test]
    fn precedences_are_respected() {
        let mut b = ProblemInstance::builder("astar-prec");
        let i0 = b.add_index(3.0);
        let i1 = b.add_index(1.0);
        let q = b.add_query(20.0);
        b.add_plan(q, vec![i1], 10.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let result = AStarSolver::new().solve(&inst);
        let d = result.deployment.unwrap();
        assert!(d.is_valid_for(&inst));
        assert_eq!(d.at(0), i0);
    }
}
