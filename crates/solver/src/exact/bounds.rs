//! Admissible lower bounds on the remaining objective area.

use idd_core::{IndexId, ObjectiveEvaluator, ProblemInstance};

/// Precomputed data for the combinatorial lower bound used by the exact
/// searches.
///
/// For a prefix with current runtime `R_cur`, the remaining area of *any*
/// completion is at least
///
/// ```text
/// R_final · Σ_{i remaining} minCost(i)  +  (R_cur − R_final) · min_{i remaining} minCost(i)
/// ```
///
/// where `R_final` is the workload runtime once every index exists (the
/// lowest runtime ever reachable) and `minCost(i)` is index `i`'s build cost
/// with its best possible helper available. The first term charges every
/// remaining index its cheapest cost at the lowest possible runtime; the
/// second recognises that the very next index must be built while the runtime
/// is still `R_cur`.
#[derive(Debug, Clone)]
pub struct LowerBound {
    final_runtime: f64,
    min_costs: Vec<f64>,
}

impl LowerBound {
    /// Precomputes the bound data for an instance.
    pub fn new(instance: &ProblemInstance) -> Self {
        let evaluator = ObjectiveEvaluator::new(instance);
        let all_built = vec![true; instance.num_indexes()];
        let final_runtime = evaluator.runtime_with(&all_built);
        let min_costs = instance
            .index_ids()
            .map(|i| instance.min_build_cost(i))
            .collect();
        Self {
            final_runtime,
            min_costs,
        }
    }

    /// Workload runtime when every candidate index exists.
    pub fn final_runtime(&self) -> f64 {
        self.final_runtime
    }

    /// Cheapest possible build cost of one index.
    pub fn min_cost(&self, index: IndexId) -> f64 {
        self.min_costs[index.raw()]
    }

    /// Lower bound on the area still to be accumulated given the set of
    /// already-built indexes and the current runtime.
    pub fn remaining(&self, built: &[bool], current_runtime: f64) -> f64 {
        let mut sum = 0.0;
        let mut cheapest = f64::INFINITY;
        for (raw, &done) in built.iter().enumerate() {
            if !done {
                sum += self.min_costs[raw];
                if self.min_costs[raw] < cheapest {
                    cheapest = self.min_costs[raw];
                }
            }
        }
        if !cheapest.is_finite() {
            return 0.0;
        }
        self.final_runtime * sum + (current_runtime - self.final_runtime).max(0.0) * cheapest
    }

    /// A weaker bound (no "next step at current runtime" term), used by the
    /// MIP-style solver to mirror the weak linear relaxation the paper
    /// describes.
    pub fn remaining_weak(&self, built: &[bool]) -> f64 {
        let sum: f64 = built
            .iter()
            .enumerate()
            .filter(|(_, &done)| !done)
            .map(|(raw, _)| self.min_costs[raw])
            .sum();
        self.final_runtime * sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::{Deployment, ObjectiveEvaluator};

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("bound");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let i2 = b.add_index(5.0);
        let q = b.add_query(30.0);
        b.add_plan(q, vec![i0], 5.0);
        b.add_plan(q, vec![i1], 20.0);
        let q2 = b.add_query(50.0);
        b.add_plan(q2, vec![i2], 10.0);
        b.add_build_interaction(i0, i1, 3.0);
        b.build().unwrap()
    }

    /// The bound from the empty prefix must not exceed the objective of any
    /// complete order (admissibility).
    #[test]
    fn bound_is_admissible_for_every_permutation() {
        let inst = instance();
        let bound = LowerBound::new(&inst);
        let eval = ObjectiveEvaluator::new(&inst);
        let empty = vec![false; 3];
        let lb = bound.remaining(&empty, inst.baseline_runtime());
        let weak = bound.remaining_weak(&empty);
        let orders = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for order in orders {
            let area = eval.evaluate_area(&Deployment::from_raw(order));
            assert!(lb <= area + 1e-9, "lb {lb} > area {area} for {order:?}");
            assert!(weak <= area + 1e-9);
        }
        assert!(
            weak <= lb + 1e-9,
            "weak bound must not exceed the strong one"
        );
    }

    #[test]
    fn bound_is_admissible_from_partial_prefixes() {
        let inst = instance();
        let bound = LowerBound::new(&inst);
        let eval = ObjectiveEvaluator::new(&inst);
        // Prefix [1]: remaining = {0, 2}.
        let prefix_area = eval.evaluate_prefix_area(&[idd_core::IndexId::new(1)]);
        let built = [false, true, false];
        let runtime_after = eval.runtime_with(&built);
        let lb = bound.remaining(&built, runtime_after);
        for completion in [[0, 2], [2, 0]] {
            let full: Vec<usize> = std::iter::once(1).chain(completion).collect();
            let area = eval.evaluate_area(&Deployment::from_raw(full));
            assert!(prefix_area + lb <= area + 1e-9);
        }
    }

    #[test]
    fn fully_built_prefix_has_zero_remaining() {
        let inst = instance();
        let bound = LowerBound::new(&inst);
        assert_eq!(bound.remaining(&[true, true, true], 100.0), 0.0);
        assert_eq!(bound.remaining_weak(&[true, true, true]), 0.0);
    }

    #[test]
    fn min_cost_uses_best_helper() {
        let inst = instance();
        let bound = LowerBound::new(&inst);
        assert_eq!(bound.min_cost(idd_core::IndexId::new(0)), 1.0);
        assert_eq!(bound.min_cost(idd_core::IndexId::new(1)), 6.0);
        assert!(bound.final_runtime() < inst.baseline_runtime());
    }
}
