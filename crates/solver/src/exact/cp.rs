//! CP-style branch-and-prune exact search (Section 6).
//!
//! The solver assigns deployment positions chronologically: at depth `d` it
//! chooses which index is deployed at position `d`. Pruning combines
//!
//! * the precedence closure (hard precedences plus every constraint derived
//!   by the Section-5 property analysis — the difference between the paper's
//!   "CP" and "CP+" rows),
//! * alliance gluing (once an alliance member is placed, the remaining
//!   members are the only candidates until the group is complete), and
//! * the admissible lower bound of [`crate::exact::bounds::LowerBound`]
//!   against the incumbent (branch-and-prune).
//!
//! Candidates at each node are ordered by a density heuristic so the first
//! dive already produces a good incumbent (the anytime behaviour the paper
//! reports for CP is poor on large instances; the same is visible here).

use crate::anytime::Trajectory;
use crate::budget::{BudgetClock, SearchBudget};
use crate::constraints::OrderConstraints;
use crate::exact::bounds::LowerBound;
use crate::exact::state::SearchState;
use crate::properties::{self, AnalysisOptions};
use crate::result::{CoopStats, SolveOutcome, SolveResult};
use crate::solver::{SolveContext, Solver};
use idd_core::{Deployment, IndexId, ProblemInstance};

/// Configuration of the CP solver.
#[derive(Debug, Clone, Default)]
pub struct CpConfig {
    /// Time / node budget.
    pub budget: SearchBudget,
    /// Property analysis to run before the search (`AnalysisOptions::none()`
    /// reproduces the paper's plain "CP" row, `AnalysisOptions::all()` the
    /// "CP+" row; the default is `all()`).
    pub analysis: AnalysisOptions,
    /// Optional warm-start incumbent (e.g. the greedy order).
    pub initial: Option<Deployment>,
}

impl CpConfig {
    /// Plain CP (no additional constraints) with the given budget.
    pub fn plain(budget: SearchBudget) -> Self {
        Self {
            budget,
            analysis: AnalysisOptions::none(),
            initial: None,
        }
    }

    /// CP+ (all additional constraints) with the given budget.
    pub fn with_properties(budget: SearchBudget) -> Self {
        Self {
            budget,
            analysis: AnalysisOptions::all(),
            initial: None,
        }
    }
}

/// The CP branch-and-prune solver.
#[derive(Debug, Clone, Default)]
pub struct CpSolver {
    config: CpConfig,
}

struct SearchContext<'a> {
    instance: &'a ProblemInstance,
    constraints: &'a OrderConstraints,
    shared: &'a SolveContext,
    bound: LowerBound,
    clock: BudgetClock,
    best_area: f64,
    best_order: Option<Vec<IndexId>>,
    trajectory: Trajectory,
    complete: bool,
    /// Alliance group currently being emitted, if any: (group position in
    /// `constraints.alliances()`, members still to place).
    open_alliance: Option<(usize, Vec<IndexId>)>,
}

impl CpSolver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: CpConfig) -> Self {
        Self { config }
    }

    /// Runs the search.
    pub fn solve(&self, instance: &ProblemInstance) -> SolveResult {
        self.solve_in(instance, &SolveContext::new())
    }

    /// Runs the search inside a shared [`SolveContext`] (cancellable, and
    /// publishing every incumbent improvement).
    pub fn solve_in(&self, instance: &ProblemInstance, shared: &SolveContext) -> SolveResult {
        let analysis = properties::analyze(instance, self.config.analysis);
        self.solve_with_constraints_in(instance, &analysis.constraints, shared)
    }

    /// Runs the search against an externally prepared constraint set (used by
    /// the Table-6 drill-down so the analysis cost is not re-paid per row).
    pub fn solve_with_constraints(
        &self,
        instance: &ProblemInstance,
        constraints: &OrderConstraints,
    ) -> SolveResult {
        self.solve_with_constraints_in(instance, constraints, &SolveContext::new())
    }

    /// [`CpSolver::solve_with_constraints`] inside a shared context.
    pub fn solve_with_constraints_in(
        &self,
        instance: &ProblemInstance,
        constraints: &OrderConstraints,
        shared: &SolveContext,
    ) -> SolveResult {
        let clock = self.config.budget.start_cancellable(shared.cancel_token());
        let mut ctx = SearchContext {
            instance,
            constraints,
            shared,
            bound: LowerBound::new(instance),
            clock,
            best_area: f64::INFINITY,
            best_order: None,
            trajectory: Trajectory::new(),
            complete: true,
            open_alliance: None,
        };

        // Warm start from the explicit initial deployment, if any.
        if let Some(initial) = &self.config.initial {
            if initial.is_valid_for(instance) {
                let area = idd_core::ObjectiveEvaluator::new(instance).evaluate_area(initial);
                ctx.best_area = area;
                ctx.best_order = Some(initial.order().to_vec());
                ctx.trajectory.record(ctx.clock.elapsed_seconds(), area);
                ctx.shared.publish_deployment(area, initial.order());
            }
        }

        // Cooperative warm start: a CP member (re)starting inside a
        // warm-start portfolio adopts the shared best *deployment* as its
        // initial incumbent when it beats the explicit one. This is sound
        // for the optimality proof — the bound is a feasible order the
        // member now holds (re-evaluated locally, never a bare objective
        // from another thread) — and it is what makes the paper's
        // Section-6 "heuristic seeds the exact search" loop work in both
        // directions inside the portfolio. Gated on the policy, so
        // `CooperationPolicy::Off` runs are bit-identical to before.
        if shared.cooperation().warm_starts() {
            if let Some(snapshot) = shared.incumbent().best_deployment() {
                let adopted = Deployment::new(snapshot.order);
                if adopted.is_valid_for(instance) {
                    let area = idd_core::ObjectiveEvaluator::new(instance).evaluate_area(&adopted);
                    if area < ctx.best_area {
                        ctx.best_area = area;
                        ctx.best_order = Some(adopted.order().to_vec());
                        ctx.trajectory.record(ctx.clock.elapsed_seconds(), area);
                    }
                }
            }
        }

        let mut state = SearchState::new(instance);
        let mut order: Vec<IndexId> = Vec::with_capacity(instance.num_indexes());
        Self::dfs(&mut ctx, &mut state, &mut order);

        let elapsed = ctx.clock.elapsed_seconds();
        let nodes = ctx.clock.nodes();
        let name = if constraints.num_ordered_pairs() > instance.precedences().len()
            || !constraints.alliances().is_empty()
        {
            "cp+"
        } else {
            "cp"
        };
        match ctx.best_order {
            Some(best) => SolveResult {
                solver: name.to_string(),
                deployment: Some(Deployment::new(best)),
                objective: ctx.best_area,
                outcome: if ctx.complete {
                    SolveOutcome::Optimal
                } else {
                    SolveOutcome::Feasible
                },
                elapsed_seconds: elapsed,
                nodes,
                trajectory: ctx.trajectory,
                coop: CoopStats::default(),
            },
            None => SolveResult::did_not_finish(name, elapsed, nodes),
        }
    }

    fn candidate_order(ctx: &SearchContext<'_>, state: &SearchState<'_>) -> Vec<IndexId> {
        let instance = ctx.instance;
        let n = instance.num_indexes();

        // Alliance gluing: while a group is open, only its remaining members
        // may be placed.
        if let Some((_, remaining)) = &ctx.open_alliance {
            let mut members: Vec<IndexId> = remaining
                .iter()
                .copied()
                .filter(|&i| !state.is_built(i) && ctx.constraints.can_place(i, state.built()))
                .collect();
            members.sort_unstable();
            return members;
        }

        let mut candidates: Vec<(f64, IndexId)> = (0..n)
            .map(IndexId::new)
            .filter(|&i| !state.is_built(i) && ctx.constraints.can_place(i, state.built()))
            .map(|i| {
                // Density heuristic: immediate best-plan speed-up over cost.
                let speedup: f64 = instance
                    .plans_using_index(i)
                    .iter()
                    .map(|&p| instance.plan_speedup(p) / instance.plan(p).width() as f64)
                    .fold(0.0, f64::max);
                let cost = state.build_cost_of(i).max(1e-12);
                (speedup / cost, i)
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        candidates.into_iter().map(|(_, i)| i).collect()
    }

    fn dfs(ctx: &mut SearchContext<'_>, state: &mut SearchState<'_>, order: &mut Vec<IndexId>) {
        if ctx.clock.exhausted() {
            ctx.complete = false;
            return;
        }
        ctx.clock.count_node();

        if state.is_complete() {
            if state.area() < ctx.best_area {
                // Canonicalize before recording: the search state keeps a
                // naive running sum (fine for bounding), but published and
                // returned objectives must carry the canonical evaluator's
                // bits — cooperating members compare foreign incumbents
                // against their own canonical areas at ulp-level
                // tolerances. The naive comparison above is a cheap
                // pre-filter; improvements are rare enough that the O(n)
                // re-evaluation is free.
                let area = idd_core::ObjectiveEvaluator::new(ctx.instance)
                    .evaluate_area(&Deployment::new(order.clone()));
                if area < ctx.best_area {
                    ctx.best_area = area;
                    ctx.best_order = Some(order.clone());
                    ctx.trajectory.record(ctx.clock.elapsed_seconds(), area);
                    ctx.shared.publish_deployment(area, order);
                }
            }
            return;
        }

        // Branch-and-prune bound.
        let lb = state.area() + ctx.bound.remaining(state.built(), state.runtime());
        if lb >= ctx.best_area - 1e-9 {
            return;
        }

        let candidates = Self::candidate_order(ctx, state);
        for index in candidates {
            if ctx.clock.exhausted() {
                ctx.complete = false;
                return;
            }

            // Maintain alliance gluing state across the recursive call.
            let previous_alliance = ctx.open_alliance.clone();
            match &mut ctx.open_alliance {
                Some((_, remaining)) => {
                    remaining.retain(|&m| m != index);
                    if remaining.is_empty() {
                        ctx.open_alliance = None;
                    }
                }
                None => {
                    // Does this index open an alliance?
                    for (gi, group) in ctx.constraints.alliances().iter().enumerate() {
                        if group.contains(&index) {
                            let remaining: Vec<IndexId> = group
                                .iter()
                                .copied()
                                .filter(|&m| m != index && !state.is_built(m))
                                .collect();
                            if !remaining.is_empty() {
                                ctx.open_alliance = Some((gi, remaining));
                            }
                            break;
                        }
                    }
                }
            }

            let undo = state.push(index);
            order.push(index);
            Self::dfs(ctx, state, order);
            order.pop();
            state.pop(undo);
            ctx.open_alliance = previous_alliance;
        }
    }
}

impl Solver for CpSolver {
    fn name(&self) -> &'static str {
        // The paper's naming: "cp+" once the Section-5 property constraints
        // participate, plain "cp" otherwise.
        if self.config.analysis == AnalysisOptions::none() {
            "cp"
        } else {
            "cp+"
        }
    }

    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        let mut config = self.config.clone();
        config.budget = budget;
        CpSolver::with_config(config).solve_in(instance, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedySolver;
    use idd_core::ObjectiveEvaluator;

    fn brute_force_optimum(instance: &ProblemInstance) -> f64 {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let smaller = permutations(n - 1);
            let mut out = Vec::new();
            for p in smaller {
                for pos in 0..=p.len() {
                    let mut q: Vec<usize> = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        let eval = ObjectiveEvaluator::new(instance);
        permutations(instance.num_indexes())
            .into_iter()
            .map(Deployment::from_raw)
            .filter(|d| d.is_valid_for(instance))
            .map(|d| eval.evaluate_area(&d))
            .fold(f64::INFINITY, f64::min)
    }

    fn small_instance(seed: u64) -> ProblemInstance {
        // Deterministic small instance with interactions, built without
        // external crates.
        let mut b = ProblemInstance::builder(format!("cp-{seed}"));
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 6;
        let idx: Vec<IndexId> = (0..n).map(|_| b.add_index(2.0 + next() * 8.0)).collect();
        for q in 0..5 {
            let qid = b.add_query(40.0 + next() * 60.0);
            let a = idx[q % n];
            let c = idx[(q + 2) % n];
            b.add_plan(qid, vec![a], 5.0 + next() * 10.0);
            b.add_plan(qid, vec![a, c], 18.0 + next() * 10.0);
        }
        b.add_build_interaction(idx[0], idx[1], 1.0);
        b.add_build_interaction(idx[3], idx[2], 1.5);
        b.build().unwrap()
    }

    #[test]
    fn cp_finds_the_brute_force_optimum() {
        for seed in [1, 2, 3] {
            let inst = small_instance(seed);
            let result =
                CpSolver::with_config(CpConfig::plain(SearchBudget::unlimited())).solve(&inst);
            assert!(result.is_optimal());
            let expected = brute_force_optimum(&inst);
            assert!(
                (result.objective - expected).abs() < 1e-6,
                "seed {seed}: cp {} vs brute force {expected}",
                result.objective
            );
        }
    }

    #[test]
    fn cp_plus_matches_plain_cp_optimum() {
        // The additional constraints must not change the optimal objective.
        for seed in [4, 5, 6, 7] {
            let inst = small_instance(seed);
            let plain =
                CpSolver::with_config(CpConfig::plain(SearchBudget::unlimited())).solve(&inst);
            let plus = CpSolver::with_config(CpConfig::with_properties(SearchBudget::unlimited()))
                .solve(&inst);
            assert!(plain.is_optimal() && plus.is_optimal());
            assert!(
                (plain.objective - plus.objective).abs() < 1e-6,
                "seed {seed}: plain {} vs plus {}",
                plain.objective,
                plus.objective
            );
            // And the pruning never explores more nodes than plain CP.
            assert!(
                plus.nodes <= plain.nodes,
                "seed {seed}: {} > {}",
                plus.nodes,
                plain.nodes
            );
        }
    }

    #[test]
    fn warm_start_is_respected() {
        let inst = small_instance(8);
        let greedy = GreedySolver::new().construct(&inst);
        let mut config = CpConfig::with_properties(SearchBudget::nodes(1));
        config.initial = Some(greedy.clone());
        let result = CpSolver::with_config(config).solve(&inst);
        // With a one-node budget the solver can only return the warm start.
        assert!(result.is_feasible());
        let eval = ObjectiveEvaluator::new(&inst);
        assert!(result.objective <= eval.evaluate_area(&greedy) + 1e-9);
    }

    #[test]
    fn budget_exhaustion_reports_feasible_or_dnf() {
        let inst = small_instance(9);
        let result = CpSolver::with_config(CpConfig::plain(SearchBudget::nodes(2))).solve(&inst);
        assert!(matches!(
            result.outcome,
            SolveOutcome::Feasible | SolveOutcome::DidNotFinish
        ));
    }

    #[test]
    fn precedences_are_respected_by_the_optimum() {
        let mut b = ProblemInstance::builder("prec");
        let i0 = b.add_index(5.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(2.0);
        let q = b.add_query(60.0);
        b.add_plan(q, vec![i1], 30.0);
        b.add_plan(q, vec![i2], 10.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let result = CpSolver::with_config(CpConfig::plain(SearchBudget::unlimited())).solve(&inst);
        let d = result.deployment.unwrap();
        assert!(d.is_valid_for(&inst));
        assert!(d.position_of(i0).unwrap() < d.position_of(i1).unwrap());
    }
}
