//! Incremental search state with O(step) push / pop, shared by the exact
//! searches and the CP reinsertion search used by LNS / VNS.

use idd_core::{IndexId, ProblemInstance};

/// Undo record returned by [`SearchState::push`].
#[derive(Debug, Clone)]
pub struct StepUndo {
    index: IndexId,
    runtime_before: f64,
    area_before: f64,
    elapsed_before: f64,
    /// `(query raw id, previous best speed-up)` for queries whose best
    /// available plan changed.
    changed_queries: Vec<(usize, f64)>,
    /// Plans whose missing-index counters were decremented.
    touched_plans: Vec<usize>,
}

/// Incremental evaluation state for a growing prefix of a deployment order.
#[derive(Debug, Clone)]
pub struct SearchState<'a> {
    instance: &'a ProblemInstance,
    built: Vec<bool>,
    missing: Vec<u32>,
    best_speedup: Vec<f64>,
    runtime: f64,
    area: f64,
    elapsed: f64,
    depth: usize,
}

impl<'a> SearchState<'a> {
    /// Creates the empty-prefix state.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        Self {
            built: vec![false; instance.num_indexes()],
            missing: instance.plans().iter().map(|p| p.width() as u32).collect(),
            best_speedup: vec![0.0; instance.num_queries()],
            runtime: instance.baseline_runtime(),
            area: 0.0,
            elapsed: 0.0,
            depth: 0,
            instance,
        }
    }

    /// The instance this state evaluates.
    pub fn instance(&self) -> &'a ProblemInstance {
        self.instance
    }

    /// Bitmap of built indexes, keyed by raw index id.
    pub fn built(&self) -> &[bool] {
        &self.built
    }

    /// `true` when the given index is already in the prefix.
    pub fn is_built(&self, index: IndexId) -> bool {
        self.built[index.raw()]
    }

    /// Current total workload runtime.
    pub fn runtime(&self) -> f64 {
        self.runtime
    }

    /// Objective area accumulated by the prefix.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Deployment time consumed by the prefix.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Number of indexes in the prefix.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// `true` when every index has been placed.
    pub fn is_complete(&self) -> bool {
        self.depth == self.instance.num_indexes()
    }

    /// Effective build cost the given index would have right now.
    pub fn build_cost_of(&self, index: IndexId) -> f64 {
        self.instance.effective_build_cost(index, &self.built)
    }

    /// Appends `index` to the prefix, returning the undo record.
    pub fn push(&mut self, index: IndexId) -> StepUndo {
        debug_assert!(!self.built[index.raw()], "index {index} pushed twice");
        let build_cost = self.build_cost_of(index);
        let undo = StepUndo {
            index,
            runtime_before: self.runtime,
            area_before: self.area,
            elapsed_before: self.elapsed,
            changed_queries: Vec::new(),
            touched_plans: Vec::new(),
        };
        let mut undo = undo;

        self.area += self.runtime * build_cost;
        self.elapsed += build_cost;
        self.built[index.raw()] = true;
        self.depth += 1;

        for &pid in self.instance.plans_using_index(index) {
            let p = pid.raw();
            self.missing[p] -= 1;
            undo.touched_plans.push(p);
            if self.missing[p] == 0 {
                let plan = self.instance.plan(pid);
                let q = plan.query.raw();
                let speedup = self.instance.plan_speedup(pid);
                if speedup > self.best_speedup[q] {
                    undo.changed_queries.push((q, self.best_speedup[q]));
                    self.runtime -= speedup - self.best_speedup[q];
                    self.best_speedup[q] = speedup;
                }
            }
        }
        undo
    }

    /// Reverts the most recent [`SearchState::push`] described by `undo`.
    pub fn pop(&mut self, undo: StepUndo) {
        debug_assert!(self.built[undo.index.raw()]);
        for &(q, previous) in undo.changed_queries.iter().rev() {
            self.best_speedup[q] = previous;
        }
        for &p in &undo.touched_plans {
            self.missing[p] += 1;
        }
        self.built[undo.index.raw()] = false;
        self.runtime = undo.runtime_before;
        self.area = undo.area_before;
        self.elapsed = undo.elapsed_before;
        self.depth -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::{Deployment, ObjectiveEvaluator};

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("state");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let i2 = b.add_index(3.0);
        let q = b.add_query(30.0);
        b.add_plan(q, vec![i0], 5.0);
        b.add_plan(q, vec![i1], 20.0);
        let q2 = b.add_query(40.0);
        b.add_plan(q2, vec![i1, i2], 25.0);
        b.add_build_interaction(i0, i1, 3.0);
        b.build().unwrap()
    }

    #[test]
    fn push_matches_full_evaluator() {
        let inst = instance();
        let eval = ObjectiveEvaluator::new(&inst);
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0]] {
            let mut state = SearchState::new(&inst);
            for &raw in &order {
                state.push(IndexId::new(raw));
            }
            let expected = eval.evaluate(&Deployment::from_raw(order));
            assert!(
                (state.area() - expected.area).abs() < 1e-9,
                "order {order:?}"
            );
            assert!((state.runtime() - expected.final_runtime).abs() < 1e-9);
            assert!((state.elapsed() - expected.deployment_time).abs() < 1e-9);
            assert!(state.is_complete());
        }
    }

    #[test]
    fn pop_restores_previous_state_exactly() {
        let inst = instance();
        let mut state = SearchState::new(&inst);
        let u0 = state.push(IndexId::new(1));
        let runtime_after_first = state.runtime();
        let area_after_first = state.area();
        let u1 = state.push(IndexId::new(2));
        assert_ne!(state.runtime(), runtime_after_first);
        state.pop(u1);
        assert_eq!(state.runtime(), runtime_after_first);
        assert_eq!(state.area(), area_after_first);
        assert_eq!(state.depth(), 1);
        state.pop(u0);
        assert_eq!(state.depth(), 0);
        assert_eq!(state.runtime(), inst.baseline_runtime());
        assert_eq!(state.area(), 0.0);
        assert!(!state.is_built(IndexId::new(1)));
    }

    #[test]
    fn interleaved_push_pop_explores_consistently() {
        let inst = instance();
        let eval = ObjectiveEvaluator::new(&inst);
        let mut state = SearchState::new(&inst);
        // Explore 0 then backtrack and explore 1 — like a DFS would.
        let u = state.push(IndexId::new(0));
        state.pop(u);
        let _ = state.push(IndexId::new(1));
        let _ = state.push(IndexId::new(0));
        let _ = state.push(IndexId::new(2));
        let expected = eval.evaluate_area(&Deployment::from_raw([1, 0, 2]));
        assert!((state.area() - expected).abs() < 1e-9);
    }

    #[test]
    fn build_cost_reflects_interactions() {
        let inst = instance();
        let mut state = SearchState::new(&inst);
        assert_eq!(state.build_cost_of(IndexId::new(0)), 4.0);
        state.push(IndexId::new(1));
        assert_eq!(state.build_cost_of(IndexId::new(0)), 1.0);
    }
}
