//! Exact search algorithms: CP branch-and-prune, A*, and a MIP-style
//! time-discretized branch-and-bound.

pub mod astar;
pub mod bounds;
pub mod cp;
pub mod mip;
pub mod state;

pub use astar::{AStarConfig, AStarSolver};
pub use bounds::LowerBound;
pub use cp::{CpConfig, CpSolver};
pub use mip::{MipConfig, MipSolver};
pub use state::SearchState;
