//! MIP-style time-discretized branch-and-bound (paper Appendix B).
//!
//! The paper models the ordering problem as a mixed integer program by
//! discretizing deployment time into `|I| · 20` uniform steps and introducing
//! assignment, precedence and availability variables, then hands the model to
//! CPlex. CPlex is not available here, so this module reproduces the
//! *behaviour* that matters for the comparison instead:
//!
//! * the model-size accounting ([`MipSolver::model_size`]) shows how the
//!   discretization blows up the variable count (over a million variables for
//!   TPC-DS-sized instances, as the paper reports);
//! * the search is a best-first branch-and-bound whose bound is the weak
//!   relaxation [`LowerBound::remaining_weak`] (no ordering insight, exactly
//!   the weakness the paper ascribes to the linear relaxation), and whose
//!   frontier is kept in memory like a MIP solver's node tree — so it
//!   exhausts its memory cap on anything but small instances and reports
//!   `DidNotFinish`, mirroring the paper's "DF / out of memory" entries;
//! * objective values are computed on the discretized time grid, so the
//!   reported optimum can differ slightly from the exact CP optimum, just as
//!   a time-indexed MIP's does.

use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::exact::bounds::LowerBound;
use crate::result::{CoopStats, SolveOutcome, SolveResult};
use crate::solver::{SolveContext, Solver};
use idd_core::{Deployment, IndexId, ObjectiveEvaluator, ProblemInstance};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of the MIP-style solver.
#[derive(Debug, Clone)]
pub struct MipConfig {
    /// Time / node budget.
    pub budget: SearchBudget,
    /// Number of timesteps per index (the paper uses 20, i.e. `|D| = 20·|I|`).
    pub timesteps_per_index: usize,
    /// Maximum number of open nodes kept in the frontier before the solver
    /// declares itself out of memory.
    pub max_open_nodes: usize,
}

impl Default for MipConfig {
    fn default() -> Self {
        Self {
            budget: SearchBudget::default(),
            timesteps_per_index: 20,
            max_open_nodes: 200_000,
        }
    }
}

/// Size of the discretized MIP model (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSize {
    /// Number of timesteps `|D|`.
    pub timesteps: usize,
    /// Total number of decision variables (A, B, C, X, Y, Z, CY).
    pub variables: usize,
    /// Total number of constraints.
    pub constraints: usize,
}

/// One open node of the best-first tree: a prefix of the deployment order.
#[derive(Debug, Clone, PartialEq)]
struct OpenNode {
    bound: f64,
    area: f64,
    runtime: f64,
    elapsed_steps: usize,
    order: Vec<IndexId>,
    built: Vec<bool>,
}

impl Eq for OpenNode {}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.order.len().cmp(&other.order.len()))
    }
}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The MIP-style solver.
#[derive(Debug, Clone, Default)]
pub struct MipSolver {
    config: MipConfig,
}

impl MipSolver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: MipConfig) -> Self {
        Self { config }
    }

    /// Counts variables and constraints of the Appendix-B formulation for an
    /// instance (reported by the Table-5 harness to substantiate the paper's
    /// "over 1 million integer variables remain" observation).
    pub fn model_size(&self, instance: &ProblemInstance) -> ModelSize {
        let i = instance.num_indexes();
        let q = instance.num_queries();
        let p = instance.num_plans();
        let d = i * self.config.timesteps_per_index;
        // Variables: A_i, B_{i,j}, Ĉ_i, X̂_{q,d}, Ŷ_{q,p,d}, Ẑ_{i,d}, CY_{i,j}.
        let variables = i + i * i + i + q * d + p * d + i * d + i * i;
        // Constraints (13)-(23), counted per the quantifiers in Appendix B.
        let constraints = i * i            // (13)
            + i * i * i                     // (14)
            + i * i                         // (15)
            + q * d                         // (16)
            + p * d * 4                     // (17) per index in plan (approx. widest 4)
            + q * d                         // (19)
            + i * d                         // (20)
            + i                             // (21)
            + i * i                         // (22)
            + i; // (23)
        ModelSize {
            timesteps: d,
            variables,
            constraints,
        }
    }

    /// Runs the branch-and-bound.
    pub fn solve(&self, instance: &ProblemInstance) -> SolveResult {
        self.solve_in(instance, &SolveContext::new())
    }

    /// Runs the branch-and-bound inside a shared [`SolveContext`]
    /// (cancellable, publishing incumbent improvements).
    pub fn solve_in(&self, instance: &ProblemInstance, ctx: &SolveContext) -> SolveResult {
        let n = instance.num_indexes();
        let evaluator = ObjectiveEvaluator::new(instance);
        let bound = LowerBound::new(instance);
        let constraints = OrderConstraints::from_instance(instance);
        let mut clock = self.config.budget.start_cancellable(ctx.cancel_token());

        // Time quantum of the discretization.
        let total_cost = instance.total_base_build_cost();
        let quantum = (total_cost / (n * self.config.timesteps_per_index) as f64).max(f64::EPSILON);
        let quantize = |cost: f64| -> f64 { (cost / quantum).ceil() * quantum };

        let mut heap: BinaryHeap<OpenNode> = BinaryHeap::new();
        heap.push(OpenNode {
            bound: bound.remaining_weak(&vec![false; n]),
            area: 0.0,
            runtime: instance.baseline_runtime(),
            elapsed_steps: 0,
            order: Vec::new(),
            built: vec![false; n],
        });

        let mut best_area = f64::INFINITY;
        let mut best_order: Option<Vec<IndexId>> = None;
        let mut trajectory = crate::anytime::Trajectory::new();

        while let Some(node) = heap.pop() {
            if clock.exhausted() || heap.len() > self.config.max_open_nodes {
                // Out of budget or out of memory, exactly like the paper's DF rows.
                let elapsed = clock.elapsed_seconds();
                let nodes = clock.nodes();
                return match best_order {
                    Some(order) => SolveResult {
                        solver: "mip".into(),
                        objective: evaluator.evaluate_area(&Deployment::new(order.clone())),
                        deployment: Some(Deployment::new(order)),
                        outcome: SolveOutcome::Feasible,
                        elapsed_seconds: elapsed,
                        nodes,
                        trajectory,
                        coop: CoopStats::default(),
                    },
                    None => SolveResult::did_not_finish("mip", elapsed, nodes),
                };
            }
            clock.count_node();

            if node.bound >= best_area - 1e-9 {
                continue;
            }
            if node.order.len() == n {
                if node.area < best_area {
                    best_area = node.area;
                    best_order = Some(node.order.clone());
                    trajectory.record(clock.elapsed_seconds(), node.area);
                    // Publish the canonical (unquantized) area: shared-best
                    // consumers compare incumbents at ulp-level tolerances,
                    // so quantized node sums must not leak off this solver.
                    let canonical = evaluator.evaluate_area(&Deployment::new(node.order.clone()));
                    ctx.publish_deployment(canonical, &node.order);
                }
                continue;
            }

            for raw in 0..n {
                if node.built[raw] {
                    continue;
                }
                let index = IndexId::new(raw);
                if !constraints.can_place(index, &node.built) {
                    continue;
                }
                let cost = quantize(instance.effective_build_cost(index, &node.built));
                let area = node.area + node.runtime * cost;
                let mut built = node.built.clone();
                built[raw] = true;
                let runtime = evaluator.runtime_with(&built);
                let child_bound = area + bound.remaining_weak(&built);
                if child_bound >= best_area - 1e-9 {
                    continue;
                }
                let mut order = node.order.clone();
                order.push(index);
                heap.push(OpenNode {
                    bound: child_bound,
                    area,
                    runtime,
                    elapsed_steps: node.elapsed_steps + (cost / quantum).round() as usize,
                    order,
                    built,
                });
            }
        }

        let elapsed = clock.elapsed_seconds();
        let nodes = clock.nodes();
        match best_order {
            Some(order) => SolveResult {
                solver: "mip".into(),
                objective: evaluator.evaluate_area(&Deployment::new(order.clone())),
                deployment: Some(Deployment::new(order)),
                outcome: SolveOutcome::Optimal,
                elapsed_seconds: elapsed,
                nodes,
                trajectory,
                coop: CoopStats::default(),
            },
            None => SolveResult::did_not_finish("mip", elapsed, nodes),
        }
    }
}

impl Solver for MipSolver {
    fn name(&self) -> &'static str {
        "mip"
    }

    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        let mut config = self.config.clone();
        config.budget = budget;
        MipSolver::with_config(config).solve_in(instance, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::cp::{CpConfig, CpSolver};

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("mip");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(6.0);
        let i2 = b.add_index(3.0);
        let i3 = b.add_index(5.0);
        let q0 = b.add_query(40.0);
        b.add_plan(q0, vec![i0], 10.0);
        b.add_plan(q0, vec![i0, i1], 25.0);
        let q1 = b.add_query(30.0);
        b.add_plan(q1, vec![i2], 12.0);
        b.add_plan(q1, vec![i3], 8.0);
        b.add_build_interaction(i0, i1, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn mip_optimum_is_close_to_cp_optimum() {
        let inst = instance();
        let mip = MipSolver::with_config(MipConfig {
            budget: SearchBudget::unlimited(),
            ..MipConfig::default()
        })
        .solve(&inst);
        let cp = CpSolver::with_config(CpConfig::plain(SearchBudget::unlimited())).solve(&inst);
        assert!(mip.is_optimal());
        // The MIP search branches on discretized costs but the reported
        // objective is re-evaluated exactly, so the orders should agree up to
        // discretization noise.
        assert!(
            (mip.objective - cp.objective).abs() / cp.objective < 0.05,
            "mip {} vs cp {}",
            mip.objective,
            cp.objective
        );
    }

    #[test]
    fn model_size_grows_quadratically_with_indexes_and_plans() {
        let inst = instance();
        let solver = MipSolver::new();
        let size = solver.model_size(&inst);
        assert_eq!(size.timesteps, 4 * 20);
        assert!(size.variables > 500);
        assert!(size.constraints > size.variables);
        // Ten times the indexes/plans → far more than ten times the
        // variables (the discretization couples them multiplicatively).
        let mut big = ProblemInstance::builder("big");
        let ids: Vec<_> = (0..40).map(|_| big.add_index(1.0)).collect();
        for k in 0..20 {
            let q = big.add_query(10.0);
            big.add_plan(q, vec![ids[k], ids[(k + 1) % 40]], 2.0);
            big.add_plan(q, vec![ids[k]], 1.0);
        }
        let big = big.build().unwrap();
        let big_size = solver.model_size(&big);
        assert!(big_size.variables > 20 * size.variables);
    }

    #[test]
    fn memory_cap_reports_dnf_without_incumbent() {
        let inst = instance();
        let result = MipSolver::with_config(MipConfig {
            budget: SearchBudget::unlimited(),
            timesteps_per_index: 20,
            max_open_nodes: 2,
        })
        .solve(&inst);
        // With an absurdly small frontier the solver cannot finish.
        assert_ne!(result.outcome, SolveOutcome::Optimal);
    }

    #[test]
    fn node_budget_is_honoured() {
        let inst = instance();
        let result = MipSolver::with_config(MipConfig {
            budget: SearchBudget::nodes(3),
            ..MipConfig::default()
        })
        .solve(&inst);
        assert!(result.nodes <= 4);
        assert_ne!(result.outcome, SolveOutcome::Optimal);
    }
}
