//! Stoer–Wagner global minimum cut.
//!
//! Used by the dynamic-programming baseline (Appendix C, Algorithm 2) to
//! split the index set into two weakly interacting clusters at every level of
//! the recursion. The implementation is the classic O(V³) minimum-cut-phase
//! algorithm over a dense adjacency matrix, which is plenty for the ≤ few
//! hundred indexes of our instances.

/// Computes a global minimum cut of an undirected weighted graph given as a
/// dense adjacency matrix (`weights[i][j]` = weight of edge `i–j`, 0 when
/// absent). Returns `(cut_weight, side)` where `side` is the set of vertex
/// ids on one side of the cut.
///
/// Degenerate inputs: an empty graph returns weight 0 and an empty side; a
/// single vertex returns weight 0 with that vertex on the returned side.
/// Disconnected graphs return a zero-weight cut separating components.
pub fn stoer_wagner(weights: &[Vec<f64>]) -> (f64, Vec<usize>) {
    let n = weights.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    if n == 1 {
        return (0.0, vec![0]);
    }

    // Working copy of the weight matrix; `members[v]` tracks which original
    // vertices have been merged into super-vertex v.
    let mut w: Vec<Vec<f64>> = weights.to_vec();
    let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best_weight = f64::INFINITY;
    let mut best_side: Vec<usize> = Vec::new();

    while active.len() > 1 {
        // Minimum cut phase.
        let mut in_a = vec![false; n];
        let mut weights_to_a = vec![0.0_f64; n];
        let start = active[0];
        in_a[start] = true;
        for &v in &active {
            if v != start {
                weights_to_a[v] = w[start][v];
            }
        }
        let mut prev = start;
        let mut last = start;
        for _ in 1..active.len() {
            // Most tightly connected vertex not yet in A.
            let mut best = None;
            let mut best_w = f64::NEG_INFINITY;
            for &v in &active {
                if !in_a[v] && weights_to_a[v] > best_w {
                    best_w = weights_to_a[v];
                    best = Some(v);
                }
            }
            let v = best.expect("active set exhausted mid-phase");
            prev = last;
            last = v;
            in_a[v] = true;
            for &u in &active {
                if !in_a[u] {
                    weights_to_a[u] += w[v][u];
                }
            }
        }

        // Cut-of-the-phase: `last` alone against the rest.
        let cut_weight = weights_to_a[last];
        if cut_weight < best_weight {
            best_weight = cut_weight;
            best_side = members[last].clone();
        }

        // Merge `last` into `prev`.
        let last_members = members[last].clone();
        members[prev].extend(last_members);
        for &u in &active {
            if u != prev && u != last {
                w[prev][u] += w[last][u];
                w[u][prev] = w[prev][u];
            }
        }
        active.retain(|&v| v != last);
    }

    best_side.sort_unstable();
    (best_weight, best_side)
}

/// Splits vertex ids `0..n` into the min-cut side and its complement.
pub fn min_cut_partition(weights: &[Vec<f64>]) -> (Vec<usize>, Vec<usize>) {
    let n = weights.len();
    let (_, side) = stoer_wagner(weights);
    // Guard against degenerate outputs: both sides must be non-empty for the
    // DP recursion to terminate.
    if side.is_empty() || side.len() == n {
        let half = (n / 2).max(1);
        return ((0..half).collect(), (half..n).collect());
    }
    let in_side: Vec<bool> = {
        let mut v = vec![false; n];
        for &x in &side {
            v[x] = true;
        }
        v
    };
    let complement: Vec<usize> = (0..n).filter(|&x| !in_side[x]).collect();
    (side, complement)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, edges: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
        let mut w = vec![vec![0.0; n]; n];
        for &(a, b, wt) in edges {
            w[a][b] += wt;
            w[b][a] += wt;
        }
        w
    }

    #[test]
    fn two_cliques_with_a_weak_bridge() {
        // Vertices 0-2 and 3-5 are cliques (weight 10), bridged by weight 1.
        let mut edges = vec![(2usize, 3usize, 1.0)];
        for a in 0..3 {
            for b in (a + 1)..3 {
                edges.push((a, b, 10.0));
                edges.push((a + 3, b + 3, 10.0));
            }
        }
        let w = matrix(6, &edges);
        let (weight, side) = stoer_wagner(&w);
        assert!((weight - 1.0).abs() < 1e-9);
        let mut side = side;
        side.sort_unstable();
        assert!(side == vec![0, 1, 2] || side == vec![3, 4, 5]);
    }

    #[test]
    fn known_min_cut_on_the_wikipedia_example() {
        // Classic 8-vertex Stoer–Wagner example with min cut 4.
        let edges = [
            (0, 1, 2.0),
            (0, 4, 3.0),
            (1, 2, 3.0),
            (1, 4, 2.0),
            (1, 5, 2.0),
            (2, 3, 4.0),
            (2, 6, 2.0),
            (3, 6, 2.0),
            (3, 7, 2.0),
            (4, 5, 3.0),
            (5, 6, 1.0),
            (6, 7, 3.0),
        ];
        let w = matrix(8, &edges);
        let (weight, _) = stoer_wagner(&w);
        assert!((weight - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let w = matrix(4, &[(0, 1, 5.0), (2, 3, 7.0)]);
        let (weight, side) = stoer_wagner(&w);
        assert_eq!(weight, 0.0);
        assert!(!side.is_empty() && side.len() < 4);
    }

    #[test]
    fn partition_sides_are_complementary_and_nonempty() {
        let w = matrix(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        let (a, b) = min_cut_partition(&w);
        assert!(!a.is_empty() && !b.is_empty());
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(stoer_wagner(&[]), (0.0, vec![]));
        assert_eq!(stoer_wagner(&[vec![0.0]]), (0.0, vec![0]));
        // All-zero weights: partition still splits.
        let w = vec![vec![0.0; 3]; 3];
        let (a, b) = min_cut_partition(&w);
        assert!(!a.is_empty() && !b.is_empty());
        assert_eq!(a.len() + b.len(), 3);
    }
}
