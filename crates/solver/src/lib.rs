//! # idd-solver — solvers for the index deployment ordering problem
//!
//! This crate implements every solution technique the paper evaluates:
//!
//! * [`greedy`] — the interaction-guided greedy of Section 7.4 / Algorithm 1,
//!   used as the initial solution for local search (and as a baseline).
//! * [`dp`] — the dynamic-programming baseline of Schnaitter et al.
//!   (Algorithm 2), built on a Stoer–Wagner minimum cut ([`mincut`]).
//! * [`random`] — random-permutation baselines (Table 7).
//! * [`properties`] — the combinatorial problem properties of Section 5
//!   (alliances, colonized, dominated, disjoint, tail indexes) run to a fixed
//!   point, producing the additional ordering constraints that speed up the
//!   exact searches by orders of magnitude (Tables 5 and 6).
//! * [`exact`] — exact search: a CP-style branch-and-prune solver with
//!   first-fail ordering ([`exact::cp`]), an A* / best-first subset search
//!   ([`exact::astar`]), and a time-discretized MIP-style branch-and-bound
//!   ([`exact::mip`]) that reproduces the scalability collapse the paper
//!   reports for integer programming.
//! * [`local`] — local search: Tabu search (best-swap and first-swap),
//!   Large Neighborhood Search and Variable Neighborhood Search on top of the
//!   CP reinsertion search (Section 7).
//! * [`solver`] — the unified [`Solver`] trait every
//!   technique above implements (instance + budget + cancellation context
//!   in, [`SolveResult`] out), plus the shared-state primitives that let
//!   solvers cooperate across threads: the versioned [`SharedIncumbent`]
//!   (lock-free best objective + epoch-counted best deployment),
//!   [`CancelToken`], the [`NeighborhoodHints`] work-stealing deque and the
//!   [`CooperationPolicy`] gating who may read what.
//! * [`decompose`] — shard-and-recombine solving: the Section-5 analysis
//!   doubles as a *decomposer*. A coupling graph (plan co-occurrence, query
//!   competition, build interactions; hard precedence/alliance edges)
//!   partitions the instance into independent — or, above a cut threshold,
//!   weakly-coupled — shards; each shard races the portfolio in parallel
//!   and the per-shard schedules are recombined by a Smith's-rule block
//!   merge over their benefit curves, then re-verified bit-for-bit against
//!   the full-instance evaluator.
//! * [`portfolio`] — a concurrent anytime portfolio: member solvers race one
//!   wall-clock deadline on `std::thread`s, publish incumbents (objective
//!   *and* order) to the shared best, cancel the race once a proof lands,
//!   and merge their trajectories into one (Section 7's "different solvers
//!   win at different budgets" observation, operationalised). Under a
//!   warm-start [`CooperationPolicy`] the members additionally re-seed from
//!   each other's incumbents on stall and trade LNS destroy-neighbourhood
//!   hints — a team, not just a race.
//! * [`constraints`], [`anytime`], [`budget`], [`result`] — shared
//!   infrastructure: precedence-constraint closures, objective-vs-time
//!   trajectories (Figures 11–13), time/node budgets and solver reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anytime;
pub mod budget;
pub mod constraints;
pub mod decompose;
pub mod dp;
pub mod exact;
pub mod greedy;
pub mod local;
pub mod mincut;
pub mod portfolio;
pub mod properties;
pub mod random;
pub mod replan;
pub mod result;
pub mod solver;

pub mod prelude;

pub use anytime::{Trajectory, TrajectoryPoint};
pub use budget::SearchBudget;
pub use constraints::OrderConstraints;
pub use decompose::{
    CouplingGraph, Partition, ShardInstance, ShardedConfig, ShardedOutcome, ShardedSolver,
};
pub use dp::DpSolver;
pub use greedy::GreedySolver;
pub use portfolio::{PortfolioConfig, PortfolioOutcome, PortfolioSolver};
pub use random::RandomSolver;
pub use replan::{ReplanOutcome, ReplanStrategy, Replanner};
pub use result::{CoopStats, SolveOutcome, SolveResult};
pub use solver::{
    CancelToken, CooperationPolicy, IncumbentSnapshot, NeighborhoodHints, SharedIncumbent,
    SolveContext, Solver,
};
