//! A concurrent anytime *portfolio* of solvers.
//!
//! The paper's Section-7/8 evaluation shows that different techniques win at
//! different time budgets: greedy is instant, local search dominates within
//! seconds, and only CP+properties delivers optimality proofs. A portfolio
//! exploits exactly that complementarity — run several member solvers
//! *concurrently* against one wall-clock deadline and report the best
//! incumbent any of them found:
//!
//! * every member runs on its own `std::thread`, sharing a
//!   [`SolveContext`] (versioned incumbent cell + cancellation token + hint
//!   deque);
//! * improvements — objective *and* deployment order — are published to the
//!   shared incumbent as they happen, so an external observer (or a nested
//!   portfolio) always sees the best known solution;
//! * under a [`CooperationPolicy`] beyond [`CooperationPolicy::Off`], the
//!   race becomes a *team*: stalled local searches warm-start from the
//!   shared best deployment, and (with stealing on) LNS members pull
//!   destroy-neighbourhood hints that other members published;
//! * the first member to finish with an [`SolveOutcome::Optimal`] proof
//!   cancels the race — the remaining members stop cooperatively at their
//!   next budget check;
//! * the member trajectories are merged into one portfolio trajectory (the
//!   pointwise minimum), which is what an anytime consumer would have
//!   observed.
//!
//! By construction the portfolio's reported objective is the minimum over
//! its members' results — it is never worse than its best member.

use crate::anytime::Trajectory;
use crate::budget::SearchBudget;
use crate::exact::{AStarSolver, CpConfig, CpSolver, MipSolver};
use crate::greedy::GreedySolver;
use crate::local::{LnsSolver, SwapStrategy, TabuConfig, TabuSolver, VnsSolver};
use crate::random::RandomSolver;
use crate::result::{CoopStats, SolveOutcome, SolveResult};
use crate::solver::{CooperationPolicy, SolveContext, Solver};
use idd_core::ProblemInstance;
use idd_telemetry::Telemetry;

/// Configuration of the portfolio runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioConfig {
    /// Wall-clock / node deadline each member races against.
    pub budget: SearchBudget,
    /// Cancel the whole race as soon as one member proves optimality
    /// (`true` in every sensible deployment; `false` lets tests observe all
    /// members running to completion).
    pub cancel_on_optimal: bool,
    /// How much shared state the members may *read*:
    /// [`CooperationPolicy::Off`] reproduces the independent race
    /// bit-for-bit, the warm-start policies turn the race into a team.
    pub cooperation: CooperationPolicy,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self {
            budget: SearchBudget::default(),
            cancel_on_optimal: true,
            cooperation: CooperationPolicy::Off,
        }
    }
}

/// The detailed outcome of a portfolio race: the merged result plus every
/// member's individual report (in member order).
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The combined result: best member deployment/objective, merged
    /// trajectory, summed node counts.
    pub combined: SolveResult,
    /// Each member's own result, in the order the members were registered.
    pub members: Vec<SolveResult>,
}

impl PortfolioOutcome {
    /// The best (smallest) objective any member reported, ∞ when none was
    /// feasible.
    pub fn best_member_objective(&self) -> f64 {
        self.members
            .iter()
            .map(|r| r.objective)
            .fold(f64::INFINITY, f64::min)
    }

    /// The name of the member whose result the combined report adopted.
    pub fn winner(&self) -> Option<&str> {
        let best = self.best_member_objective();
        self.members
            .iter()
            .find(|r| r.is_feasible() && r.objective <= best)
            .map(|r| r.solver.as_str())
    }
}

/// A concurrent portfolio of [`Solver`]s racing one deadline.
pub struct PortfolioSolver {
    config: PortfolioConfig,
    members: Vec<Box<dyn Solver>>,
    telemetry: Telemetry,
}

impl PortfolioSolver {
    /// A portfolio over the paper's recommended complementary trio —
    /// greedy (instant incumbent), VNS (fast improvement), CP+properties
    /// (optimality proofs) — plus best-swap tabu as a fourth perspective.
    pub fn recommended(budget: SearchBudget) -> Self {
        Self::with_members(
            budget,
            vec![
                Box::new(GreedySolver::new()),
                Box::new(VnsSolver::new(budget)),
                Box::new(CpSolver::with_config(CpConfig::with_properties(budget))),
                Box::new(TabuSolver::with_config(TabuConfig {
                    strategy: SwapStrategy::Best,
                    budget,
                    ..TabuConfig::default()
                })),
            ],
        )
    }

    /// Every solver the crate implements, raced together (the "kitchen
    /// sink" configuration used by the differential tests and `table8`).
    pub fn all_solvers(budget: SearchBudget) -> Self {
        Self::with_members(
            budget,
            vec![
                Box::new(GreedySolver::new()),
                Box::new(crate::dp::DpSolver::new()),
                Box::new(RandomSolver::default()),
                Box::new(CpSolver::with_config(CpConfig::plain(budget))),
                Box::new(CpSolver::with_config(CpConfig::with_properties(budget))),
                Box::new(AStarSolver::new()),
                Box::new(MipSolver::new()),
                Box::new(TabuSolver::new(SwapStrategy::Best, budget)),
                Box::new(TabuSolver::new(SwapStrategy::First, budget)),
                Box::new(LnsSolver::new(budget)),
                Box::new(VnsSolver::new(budget)),
            ],
        )
    }

    /// A portfolio over an explicit member list.
    pub fn with_members(budget: SearchBudget, members: Vec<Box<dyn Solver>>) -> Self {
        assert!(!members.is_empty(), "portfolio needs at least one member");
        Self {
            config: PortfolioConfig {
                budget,
                ..PortfolioConfig::default()
            },
            members,
            telemetry: Telemetry::off(),
        }
    }

    /// Overrides the configuration (builder style).
    pub fn with_config(mut self, config: PortfolioConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the cooperation policy (builder style).
    pub fn with_cooperation(mut self, cooperation: CooperationPolicy) -> Self {
        self.config.cooperation = cooperation;
        self
    }

    /// Attaches a telemetry handle (builder style). The default is
    /// [`Telemetry::off`], under which the race is bit-identical to an
    /// uninstrumented one. With a recording handle, each member gets its
    /// own track (`solver/<index>-<name>`) carrying a wall-clock `run`
    /// span, incumbent-publish / restart / adoption / hint marks, and
    /// end-of-run counters.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The configured cooperation policy.
    pub fn cooperation(&self) -> CooperationPolicy {
        self.config.cooperation
    }

    /// Number of member solvers (== concurrent threads during a race).
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Member names, in registration order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Races the members and returns the combined result.
    pub fn solve(&self, instance: &ProblemInstance) -> SolveResult {
        self.solve_detailed(instance).combined
    }

    /// Races the members inside a *fresh* context and reports both the
    /// combined and the per-member results.
    pub fn solve_detailed(&self, instance: &ProblemInstance) -> PortfolioOutcome {
        self.race(instance, self.config.budget, &SolveContext::new())
    }

    /// Races the members inside the *caller's* context — shared cancel
    /// token, incumbent and hint deque — and reports both the combined and
    /// the per-member results. Pre-seeding the context's incumbent before
    /// calling this is how a replan warm-starts the race from the order
    /// currently in flight.
    pub fn solve_detailed_in(
        &self,
        instance: &ProblemInstance,
        ctx: &SolveContext,
    ) -> PortfolioOutcome {
        self.race(instance, self.config.budget, ctx)
    }

    fn race(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> PortfolioOutcome {
        let clock = SearchBudget::unlimited().start();
        // Apply the configured policy without mutating the caller's context:
        // the derived handle shares the cancel token, incumbent cell and
        // hint deque, so outer cancellation and observation still work.
        let ctx = &ctx.with_policy(self.config.cooperation);
        // Register member tracks on this thread, in member order, *before*
        // spawning: track ids are then deterministic regardless of how the
        // OS schedules the race.
        let tracks: Vec<_> = self
            .members
            .iter()
            .enumerate()
            .map(|(k, member)| {
                self.telemetry
                    .register(format!("solver/{:02}-{}", k, member.name()))
            })
            .collect();
        let members: Vec<SolveResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter()
                .zip(&tracks)
                .map(|(member, track)| {
                    scope.spawn(move || {
                        // Park this member's recorder in the thread-local
                        // slot so the local searches (whose trait signature
                        // carries no telemetry) can emit through the free
                        // functions; the guard submits the buffer when the
                        // member finishes.
                        let _guard = track.install();
                        idd_telemetry::span_begin("run");
                        let result = member.run(instance, budget, ctx);
                        idd_telemetry::span_end("run");
                        if self.config.cancel_on_optimal && result.is_optimal() {
                            ctx.cancel_token().cancel();
                        }
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(&self.members)
                .map(|(handle, member)| {
                    handle
                        .join()
                        .unwrap_or_else(|_| SolveResult::did_not_finish(member.name(), 0.0, 0))
                })
                .collect()
        });

        let combined = Self::combine(&members, clock.elapsed_seconds());
        PortfolioOutcome { combined, members }
    }

    /// Folds member results into the portfolio report: minimum objective,
    /// best outcome, merged trajectory, summed node counts.
    fn combine(members: &[SolveResult], elapsed_seconds: f64) -> SolveResult {
        let best = members
            .iter()
            .filter(|r| r.is_feasible())
            .min_by(|a, b| a.objective.total_cmp(&b.objective));

        // Merge trajectories; a member without one (constructive heuristics
        // report a bare result) contributes its final solution as one point.
        let mut trajectory = Trajectory::new();
        for member in members {
            let member_trajectory = if member.trajectory.is_empty() && member.is_feasible() {
                let mut t = Trajectory::new();
                t.record(member.elapsed_seconds, member.objective);
                t
            } else {
                member.trajectory.clone()
            };
            trajectory = trajectory.merge(&member_trajectory);
        }

        let outcome = if members.iter().any(|r| r.is_optimal()) {
            SolveOutcome::Optimal
        } else if best.is_some() {
            SolveOutcome::Feasible
        } else {
            SolveOutcome::DidNotFinish
        };

        SolveResult {
            solver: "portfolio".to_string(),
            deployment: best.and_then(|r| r.deployment.clone()),
            objective: best.map(|r| r.objective).unwrap_or(f64::INFINITY),
            outcome,
            elapsed_seconds,
            nodes: members.iter().map(|r| r.nodes).sum(),
            trajectory,
            coop: members
                .iter()
                .fold(CoopStats::default(), |acc, r| acc.merged(r.coop)),
        }
    }
}

impl std::fmt::Debug for PortfolioSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortfolioSolver")
            .field("config", &self.config)
            .field("members", &self.member_names())
            .finish()
    }
}

impl Solver for PortfolioSolver {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    /// Races the members inside the *caller's* context: an outer
    /// cancellation stops every member, and (because the context is shared)
    /// a member proving optimality cancels the outer context too.
    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        self.race(instance, budget, ctx).combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CancelToken;
    use idd_core::{IndexId, ObjectiveEvaluator};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn instance(n: usize) -> ProblemInstance {
        let mut b = ProblemInstance::builder(format!("portfolio-{n}"));
        let idx: Vec<IndexId> = (0..n).map(|k| b.add_index(2.0 + (k % 5) as f64)).collect();
        for q in 0..n.max(4) {
            let qid = b.add_query(50.0 + (q % 7) as f64 * 12.0);
            b.add_plan(qid, vec![idx[q % n]], 9.0);
            b.add_plan(qid, vec![idx[q % n], idx[(q + 2) % n]], 21.0);
        }
        b.add_build_interaction(idx[0], idx[1], 1.0);
        b.build().unwrap()
    }

    #[test]
    fn portfolio_is_never_worse_than_its_best_member() {
        let inst = instance(7);
        let outcome =
            PortfolioSolver::recommended(SearchBudget::bounded(2.0, 400)).solve_detailed(&inst);
        assert!(outcome.combined.is_feasible());
        assert!(outcome.combined.objective <= outcome.best_member_objective() + 1e-12);
        assert_eq!(outcome.members.len(), 4);
        assert!(outcome.winner().is_some());
        let d = outcome.combined.deployment.as_ref().unwrap();
        assert!(d.is_valid_for(&inst));
        assert!(
            (ObjectiveEvaluator::new(&inst).evaluate_area(d) - outcome.combined.objective).abs()
                < 1e-9
        );
    }

    #[test]
    fn optimal_member_marks_the_combined_result_optimal() {
        let inst = instance(6);
        let outcome =
            PortfolioSolver::recommended(SearchBudget::seconds(30.0)).solve_detailed(&inst);
        // CP+ proves 6-index instances in milliseconds.
        assert_eq!(outcome.combined.outcome, SolveOutcome::Optimal);
        // And the proof's objective is the minimum — no member beat it.
        let cp = outcome
            .members
            .iter()
            .find(|r| r.solver.starts_with("cp"))
            .unwrap();
        assert!(cp.is_optimal());
        assert!((outcome.combined.objective - cp.objective).abs() < 1e-9);
    }

    #[test]
    fn merged_trajectory_tracks_the_best_member_everywhere() {
        let inst = instance(8);
        let outcome =
            PortfolioSolver::all_solvers(SearchBudget::bounded(2.0, 300)).solve_detailed(&inst);
        let merged = &outcome.combined.trajectory;
        assert!(!merged.is_empty());
        // The merged curve's final value equals the best member objective.
        assert!((merged.final_objective() - outcome.combined.objective).abs() < 1e-6);
        // And at every member point, merged ≤ member.
        for member in &outcome.members {
            for p in member.trajectory.points() {
                assert!(merged.objective_at(p.elapsed_seconds) <= p.objective + 1e-9);
            }
        }
    }

    #[test]
    fn outer_cancellation_stops_the_race_early() {
        let inst = instance(9);
        let portfolio = PortfolioSolver::with_members(
            SearchBudget::unlimited(),
            vec![
                Box::new(VnsSolver::new(SearchBudget::unlimited())),
                Box::new(LnsSolver::new(SearchBudget::unlimited())),
            ],
        );
        let ctx = SolveContext::new();
        let cancel: CancelToken = ctx.cancel_token().clone();
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let r = portfolio.run(&inst, SearchBudget::unlimited(), &ctx);
                assert!(r.is_feasible());
                done.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            cancel.cancel();
        });
        // The scope joined, so the unlimited-budget members really stopped.
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_panics() {
        PortfolioSolver::with_members(SearchBudget::default(), vec![]);
    }
}
