//! Solver reports.

use crate::anytime::Trajectory;
use idd_core::Deployment;
use serde::{Deserialize, Serialize};

/// How a solver run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveOutcome {
    /// The solver proved the returned deployment optimal.
    Optimal,
    /// The solver stopped at its time/node budget with the best solution
    /// found so far (the paper's "no optimality proof").
    Feasible,
    /// The solver exhausted its budget without finding any feasible solution
    /// (the paper's "DF" — did not finish).
    DidNotFinish,
}

impl SolveOutcome {
    /// Every outcome, in severity order (best first).
    pub const ALL: [SolveOutcome; 3] = [
        SolveOutcome::Optimal,
        SolveOutcome::Feasible,
        SolveOutcome::DidNotFinish,
    ];

    /// Short label used in the experiment tables (`"opt"`, `"feas"`, `"DF"`).
    pub fn label(&self) -> &'static str {
        match self {
            SolveOutcome::Optimal => "opt",
            SolveOutcome::Feasible => "feas",
            SolveOutcome::DidNotFinish => "DF",
        }
    }

    /// Parses a table label back into an outcome (the inverse of
    /// [`SolveOutcome::label`]).
    pub fn from_label(label: &str) -> Option<SolveOutcome> {
        Self::ALL.into_iter().find(|o| o.label() == label)
    }
}

/// Cooperation counters for one solver run inside a portfolio race.
///
/// All zeros for standalone runs and for runs under
/// [`CooperationPolicy::Off`](crate::solver::CooperationPolicy::Off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoopStats {
    /// Stall events that triggered a re-seed attempt (no improvement for the
    /// configured slice of the budget).
    pub restarts: u64,
    /// Restarts that actually adopted the shared best deployment (a strictly
    /// better foreign incumbent existed and satisfied the member's
    /// constraint closure). Always `<= restarts`.
    pub adoptions: u64,
    /// Destroy-neighbourhood hints stolen from the shared deque (LNS only).
    pub hints_stolen: u64,
    /// Destroy-neighbourhood hints published to the shared deque.
    pub hints_published: u64,
}

impl CoopStats {
    /// Sums counters (used by the portfolio's combined report).
    pub fn merged(self, other: CoopStats) -> CoopStats {
        CoopStats {
            restarts: self.restarts + other.restarts,
            adoptions: self.adoptions + other.adoptions,
            hints_stolen: self.hints_stolen + other.hints_stolen,
            hints_published: self.hints_published + other.hints_published,
        }
    }
}

/// The result of one solver run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResult {
    /// Name of the solver ("greedy", "cp", "cp+", "vns", ...).
    pub solver: String,
    /// Best deployment found, if any.
    pub deployment: Option<Deployment>,
    /// Objective area of `deployment`.
    pub objective: f64,
    /// How the run ended.
    pub outcome: SolveOutcome,
    /// Wall-clock seconds spent.
    pub elapsed_seconds: f64,
    /// Number of search nodes / iterations explored (meaning is
    /// solver-specific; 0 for constructive heuristics).
    pub nodes: u64,
    /// Objective-vs-time trajectory of the incumbent (empty for constructive
    /// heuristics).
    pub trajectory: Trajectory,
    /// Cooperation counters (restarts, adoptions, hint traffic); all zeros
    /// outside a cooperative portfolio race.
    pub coop: CoopStats,
}

impl SolveResult {
    /// A result for a constructive heuristic that produced `deployment`.
    pub fn heuristic(
        solver: impl Into<String>,
        deployment: Deployment,
        objective: f64,
        elapsed_seconds: f64,
    ) -> Self {
        Self {
            solver: solver.into(),
            deployment: Some(deployment),
            objective,
            outcome: SolveOutcome::Feasible,
            elapsed_seconds,
            nodes: 0,
            trajectory: Trajectory::new(),
            coop: CoopStats::default(),
        }
    }

    /// A "did not finish" result.
    pub fn did_not_finish(solver: impl Into<String>, elapsed_seconds: f64, nodes: u64) -> Self {
        Self {
            solver: solver.into(),
            deployment: None,
            objective: f64::INFINITY,
            outcome: SolveOutcome::DidNotFinish,
            elapsed_seconds,
            nodes,
            trajectory: Trajectory::new(),
            coop: CoopStats::default(),
        }
    }

    /// `true` when the solver found at least one feasible deployment.
    pub fn is_feasible(&self) -> bool {
        self.deployment.is_some()
    }

    /// `true` when the deployment was proved optimal.
    pub fn is_optimal(&self) -> bool {
        self.outcome == SolveOutcome::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_labels() {
        assert_eq!(SolveOutcome::Optimal.label(), "opt");
        assert_eq!(SolveOutcome::Feasible.label(), "feas");
        assert_eq!(SolveOutcome::DidNotFinish.label(), "DF");
    }

    #[test]
    fn outcome_labels_round_trip() {
        for outcome in SolveOutcome::ALL {
            assert_eq!(SolveOutcome::from_label(outcome.label()), Some(outcome));
        }
        assert_eq!(SolveOutcome::from_label("nope"), None);
    }

    #[test]
    fn heuristic_result_is_feasible_not_optimal() {
        let r = SolveResult::heuristic("greedy", Deployment::from_raw([0, 1]), 12.0, 0.001);
        assert!(r.is_feasible());
        assert!(!r.is_optimal());
        assert_eq!(r.objective, 12.0);
    }

    #[test]
    fn dnf_result_has_no_deployment() {
        let r = SolveResult::did_not_finish("mip", 10.0, 1234);
        assert!(!r.is_feasible());
        assert_eq!(r.outcome, SolveOutcome::DidNotFinish);
        assert!(r.objective.is_infinite());
        assert_eq!(r.coop, CoopStats::default());
    }

    #[test]
    fn coop_stats_merge_by_summing() {
        let a = CoopStats {
            restarts: 2,
            adoptions: 1,
            hints_stolen: 3,
            hints_published: 4,
        };
        let b = CoopStats {
            restarts: 1,
            adoptions: 1,
            hints_stolen: 0,
            hints_published: 2,
        };
        let m = a.merged(b);
        assert_eq!(m.restarts, 3);
        assert_eq!(m.adoptions, 2);
        assert_eq!(m.hints_stolen, 3);
        assert_eq!(m.hints_published, 6);
    }
}
