//! Random-permutation baselines (the "Random (AVG)" / "Random (MIN)" columns
//! of Table 7).

use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::result::{SolveOutcome, SolveResult};
use crate::solver::{SolveContext, Solver};
use idd_core::{Deployment, IndexId, ObjectiveEvaluator, ProblemInstance};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Summary of a batch of random permutations.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSummary {
    /// Number of permutations evaluated.
    pub samples: usize,
    /// Average objective over the batch.
    pub average: f64,
    /// Best (minimum) objective over the batch.
    pub minimum: f64,
    /// Worst (maximum) objective over the batch.
    pub maximum: f64,
    /// The best deployment found.
    pub best: Deployment,
}

/// Random-permutation generator / baseline solver.
#[derive(Debug, Clone)]
pub struct RandomSolver {
    seed: u64,
}

impl Default for RandomSolver {
    fn default() -> Self {
        Self { seed: 0x5EED }
    }
}

impl RandomSolver {
    /// Creates a random solver with an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates one random feasible permutation (precedence-aware: indexes
    /// are drawn uniformly among those whose predecessors are already placed).
    pub fn random_deployment(&self, instance: &ProblemInstance, rng: &mut impl Rng) -> Deployment {
        let constraints = OrderConstraints::from_instance(instance);
        self.random_deployment_with(instance, &constraints, rng)
    }

    /// [`RandomSolver::random_deployment`] against a prebuilt precedence
    /// closure, so batch callers pay the closure construction only once.
    fn random_deployment_with(
        &self,
        instance: &ProblemInstance,
        constraints: &OrderConstraints,
        rng: &mut impl Rng,
    ) -> Deployment {
        let n = instance.num_indexes();
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let available: Vec<IndexId> = (0..n)
                .map(IndexId::new)
                .filter(|&i| !placed[i.raw()] && constraints.can_place(i, &placed))
                .collect();
            let &chosen = available
                .choose(rng)
                .expect("precedence constraints must be acyclic");
            placed[chosen.raw()] = true;
            order.push(chosen);
        }
        Deployment::new(order)
    }

    /// Evaluates `samples` random permutations (the paper uses 100).
    pub fn summarize(&self, instance: &ProblemInstance, samples: usize) -> RandomSummary {
        assert!(samples > 0, "need at least one sample");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let constraints = OrderConstraints::from_instance(instance);
        let evaluator = ObjectiveEvaluator::new(instance);
        let mut total = 0.0;
        let mut best_area = f64::INFINITY;
        let mut worst_area = f64::NEG_INFINITY;
        let mut best = None;
        for _ in 0..samples {
            let d = self.random_deployment_with(instance, &constraints, &mut rng);
            let area = evaluator.evaluate_area(&d);
            total += area;
            if area > worst_area {
                worst_area = area;
            }
            if area < best_area {
                best_area = area;
                best = Some(d);
            }
        }
        RandomSummary {
            samples,
            average: total / samples as f64,
            minimum: best_area,
            maximum: worst_area,
            best: best.expect("samples > 0"),
        }
    }

    /// Runs the baseline and reports the *best* of `samples` permutations.
    pub fn solve(&self, instance: &ProblemInstance, samples: usize) -> SolveResult {
        let started = Instant::now();
        let summary = self.summarize(instance, samples);
        SolveResult::heuristic(
            "random",
            summary.best,
            summary.minimum,
            started.elapsed().as_secs_f64(),
        )
    }
}

impl Solver for RandomSolver {
    fn name(&self) -> &'static str {
        "random"
    }

    /// Keeps drawing random feasible permutations until the budget (or a
    /// cancellation) stops it, capped at the paper's 100 samples, tracking
    /// the best draw as an anytime incumbent.
    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        let mut clock = budget.start_cancellable(ctx.cancel_token());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let constraints = OrderConstraints::from_instance(instance);
        let evaluator = ObjectiveEvaluator::new(instance);
        let mut result = SolveResult::did_not_finish(self.name(), 0.0, 0);
        while !clock.exhausted() && clock.nodes() < 100 {
            clock.count_node();
            let d = self.random_deployment_with(instance, &constraints, &mut rng);
            let area = evaluator.evaluate_area(&d);
            if area < result.objective {
                ctx.publish_deployment(area, d.order());
                result.objective = area;
                result.deployment = Some(d);
                result.outcome = SolveOutcome::Feasible;
                result.trajectory.record(clock.elapsed_seconds(), area);
            }
        }
        result.elapsed_seconds = clock.elapsed_seconds();
        result.nodes = clock.nodes();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("r");
        let i: Vec<IndexId> = (0..6).map(|k| b.add_index(2.0 + k as f64)).collect();
        for q in 0..4 {
            let qid = b.add_query(50.0 + 10.0 * q as f64);
            b.add_plan(qid, vec![i[q]], 15.0);
            b.add_plan(qid, vec![i[q], i[(q + 2) % 6]], 30.0);
        }
        b.add_precedence(i[0], i[5]);
        b.build().unwrap()
    }

    #[test]
    fn random_deployments_are_valid_and_respect_precedences() {
        let inst = instance();
        let solver = RandomSolver::new(7);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let d = solver.random_deployment(&inst, &mut rng);
            assert!(d.is_valid_for(&inst));
        }
    }

    #[test]
    fn summary_statistics_are_consistent() {
        let inst = instance();
        let s = RandomSolver::new(3).summarize(&inst, 50);
        assert_eq!(s.samples, 50);
        assert!(s.minimum <= s.average);
        assert!(s.average <= s.maximum);
        let eval = ObjectiveEvaluator::new(&inst);
        assert!((eval.evaluate_area(&s.best) - s.minimum).abs() < 1e-9);
    }

    #[test]
    fn same_seed_reproduces_summary() {
        let inst = instance();
        let a = RandomSolver::new(11).summarize(&inst, 20);
        let b = RandomSolver::new(11).summarize(&inst, 20);
        assert_eq!(a.average, b.average);
        assert_eq!(a.minimum, b.minimum);
        let c = RandomSolver::new(12).summarize(&inst, 20);
        assert_ne!(a.average, c.average);
    }

    #[test]
    fn solve_reports_best_sample() {
        let inst = instance();
        let r = RandomSolver::new(5).solve(&inst, 30);
        assert!(r.is_feasible());
        assert_eq!(r.solver, "random");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let inst = instance();
        RandomSolver::new(5).summarize(&inst, 0);
    }
}
