//! Tabu search over the swap neighbourhood (Section 7.1).
//!
//! Two variants are implemented, matching the paper:
//!
//! * **TS-BSwap** evaluates every feasible pair swap each iteration and takes
//!   the best one — high quality per iteration, but an iteration costs
//!   `O(n²)` objective evaluations (the paper measures ~50 minutes per
//!   iteration on TPC-DS).
//! * **TS-FSwap** scans pairs in a random order and takes the first improving
//!   swap — much cheaper iterations, lower quality per iteration.
//!
//! Recently swapped indexes are *tabu* for a number of iterations (the tabu
//! length) unless the move improves on the best solution found so far
//! (aspiration).
//!
//! Inside a cooperative portfolio
//! ([`CooperationPolicy`](crate::solver::CooperationPolicy)) a stalled tabu
//! member re-seeds from the shared best deployment (clearing its tabu list,
//! which refers to the abandoned walk) and publishes the index pairs of
//! improving swaps as destroy-neighbourhood hints for LNS workers.

use crate::anytime::Trajectory;
use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::greedy::GreedySolver;
use crate::local::{swap_is_feasible, Cooperator};
use crate::result::{SolveOutcome, SolveResult};
use crate::solver::{SolveContext, Solver};
use idd_core::{DeltaEvaluator, Deployment, ProblemInstance};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Which swap to take each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapStrategy {
    /// Evaluate all pairs, take the best (TS-BSwap).
    Best,
    /// Take the first improving pair in a random scan (TS-FSwap).
    First,
}

/// Configuration of the tabu search.
#[derive(Debug, Clone)]
pub struct TabuConfig {
    /// Swap strategy.
    pub strategy: SwapStrategy,
    /// How many iterations a swapped index stays tabu.
    pub tabu_length: usize,
    /// Time / iteration budget.
    pub budget: SearchBudget,
    /// RNG seed (used by the first-swap scan order).
    pub seed: u64,
    /// Iterations without improvement on the member's own best before it
    /// counts as *stalled* and (under a warm-start policy) re-seeds from the
    /// shared best deployment. `None` (the default) derives a slice of the
    /// budget via [`crate::local::derived_stall_iterations`]; `Some(n)`
    /// overrides it. Ignored outside cooperative portfolio runs.
    pub stall_iterations: Option<u64>,
}

impl Default for TabuConfig {
    fn default() -> Self {
        Self {
            strategy: SwapStrategy::Best,
            tabu_length: 7,
            budget: SearchBudget::default(),
            seed: 0x7AB,
            stall_iterations: None,
        }
    }
}

/// The tabu-search solver.
#[derive(Debug, Clone)]
pub struct TabuSolver {
    config: TabuConfig,
}

impl TabuSolver {
    /// Creates a solver with the given strategy and budget.
    pub fn new(strategy: SwapStrategy, budget: SearchBudget) -> Self {
        Self {
            config: TabuConfig {
                strategy,
                budget,
                ..TabuConfig::default()
            },
        }
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: TabuConfig) -> Self {
        Self { config }
    }

    /// Improves `initial` until the budget runs out.
    pub fn solve(&self, instance: &ProblemInstance, initial: Deployment) -> SolveResult {
        self.solve_in(instance, initial, &SolveContext::new())
    }

    /// [`TabuSolver::solve`] inside a shared [`SolveContext`] (cancellable,
    /// publishing incumbent improvements).
    pub fn solve_in(
        &self,
        instance: &ProblemInstance,
        initial: Deployment,
        ctx: &SolveContext,
    ) -> SolveResult {
        let n = instance.num_indexes();
        let constraints = OrderConstraints::from_instance(instance);
        let mut clock = self.config.budget.start_cancellable(ctx.cancel_token());
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        // Best-swap scans are the delta evaluator's home turf: every
        // adjacent pair is O(1) and a general pair is O(hi - lo), so one
        // full scan costs O(n²) *positions touched*, not O(n²) evaluations
        // of O(n) each.
        let mut evaluator = DeltaEvaluator::new(instance, initial.clone());
        let mut best_order = initial;
        let mut best_area = evaluator.base_area();
        let mut trajectory = Trajectory::new();
        trajectory.record(clock.elapsed_seconds(), best_area);
        ctx.publish(best_area);

        // tabu_until[i] = first iteration at which index i may move again.
        let mut tabu_until = vec![0usize; n];
        let mut iteration = 0usize;

        let name = match self.config.strategy {
            SwapStrategy::Best => "ts-bswap",
            SwapStrategy::First => "ts-fswap",
        };

        let stall = self
            .config
            .stall_iterations
            .unwrap_or_else(|| crate::local::derived_stall_iterations(&self.config.budget));
        let mut coop = Cooperator::new(ctx, stall);
        while !clock.exhausted() && n >= 2 {
            iteration += 1;
            clock.count_node();

            // Cooperative warm-start: when stalled, restart the walk from
            // the portfolio's best deployment. The tabu list describes the
            // abandoned walk, so it is cleared alongside.
            if let Some(snapshot) = coop.stalled_adoption(ctx, best_area, &constraints) {
                best_order = Deployment::new(snapshot.order);
                evaluator.set_base(best_order.clone());
                // Re-derive canonically: the publisher may have computed the
                // objective with different (naive) arithmetic.
                best_area = evaluator.base_area();
                tabu_until.iter_mut().for_each(|t| *t = 0);
                trajectory.record(clock.elapsed_seconds(), best_area);
            }

            let current_area = evaluator.base_area();

            // Collect candidate pairs.
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    pairs.push((a, b));
                }
            }
            if self.config.strategy == SwapStrategy::First {
                pairs.shuffle(&mut rng);
            }

            let mut chosen: Option<(usize, usize, f64)> = None;
            for &(a, b) in &pairs {
                if clock.exhausted() {
                    break;
                }
                let order = evaluator.base().order();
                let ia = order[a];
                let ib = order[b];
                if !swap_is_feasible(&constraints, order, a, b) {
                    continue;
                }
                let area = evaluator.evaluate_swap(a, b);
                let is_tabu = tabu_until[ia.raw()] > iteration || tabu_until[ib.raw()] > iteration;
                // Aspiration: a tabu move is allowed if it beats the best.
                if is_tabu && area >= best_area - 1e-12 {
                    continue;
                }
                let better_than_chosen = chosen.map(|(_, _, v)| area < v).unwrap_or(true);
                if better_than_chosen {
                    chosen = Some((a, b, area));
                }
                if self.config.strategy == SwapStrategy::First && area < current_area - 1e-12 {
                    chosen = Some((a, b, area));
                    break;
                }
            }

            let (a, b, area) = match chosen {
                Some(c) => c,
                None => break, // every move tabu and none aspirates: stuck
            };
            let ia = evaluator.base().order()[a];
            let ib = evaluator.base().order()[b];
            evaluator.commit_swap(a, b);
            tabu_until[ia.raw()] = iteration + self.config.tabu_length;
            tabu_until[ib.raw()] = iteration + self.config.tabu_length;

            if area < best_area - 1e-12 {
                let gain = best_area - area;
                best_area = area;
                best_order = evaluator.base().clone();
                trajectory.record(clock.elapsed_seconds(), best_area);
                ctx.publish_deployment(best_area, best_order.order());
                if coop.policy().steals() {
                    // The improving pair is a natural 2-index destroy set,
                    // valued at the improvement it just bought.
                    idd_telemetry::mark("hint-publish", format!("size=2 gain={gain:.4}"));
                    ctx.hints().push_scored(vec![ia, ib], gain);
                    coop.stats.hints_published += 1;
                }
                coop.note_improvement();
            } else {
                coop.note_no_improvement();
            }
        }

        coop.emit_counters(iteration as u64);
        SolveResult {
            solver: name.to_string(),
            deployment: Some(best_order),
            objective: best_area,
            outcome: SolveOutcome::Feasible,
            elapsed_seconds: clock.elapsed_seconds(),
            nodes: iteration as u64,
            trajectory,
            coop: coop.stats,
        }
    }
}

impl Solver for TabuSolver {
    fn name(&self) -> &'static str {
        match self.config.strategy {
            SwapStrategy::Best => "ts-bswap",
            SwapStrategy::First => "ts-fswap",
        }
    }

    /// Starts from the interaction-guided greedy order (the paper's setup
    /// for every local search) and improves it under `budget`.
    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        let initial = GreedySolver::new().construct(instance);
        let mut config = self.config.clone();
        config.budget = budget;
        TabuSolver::with_config(config).solve_in(instance, initial, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::{IndexId, ObjectiveEvaluator};

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("tabu");
        let i: Vec<IndexId> = (0..8)
            .map(|k| b.add_index(2.0 + (k % 4) as f64 * 3.0))
            .collect();
        for q in 0..6 {
            let qid = b.add_query(50.0 + q as f64 * 15.0);
            b.add_plan(qid, vec![i[q % 8]], 8.0);
            b.add_plan(qid, vec![i[q % 8], i[(q + 3) % 8]], 22.0);
        }
        b.add_build_interaction(i[1], i[2], 1.5);
        b.add_build_interaction(i[5], i[4], 2.0);
        b.build().unwrap()
    }

    #[test]
    fn both_strategies_never_worsen_the_initial_solution() {
        let inst = instance();
        let eval = ObjectiveEvaluator::new(&inst);
        let initial = Deployment::identity(inst.num_indexes());
        let initial_area = eval.evaluate_area(&initial);
        for strategy in [SwapStrategy::Best, SwapStrategy::First] {
            let result =
                TabuSolver::new(strategy, SearchBudget::nodes(50)).solve(&inst, initial.clone());
            assert!(result.objective <= initial_area + 1e-9);
            let d = result.deployment.unwrap();
            assert!(d.is_valid_for(&inst));
            assert_eq!(eval.evaluate_area(&d), result.objective);
        }
    }

    #[test]
    fn improves_a_greedy_start_or_keeps_it() {
        let inst = instance();
        let greedy = GreedySolver::new().construct(&inst);
        let eval = ObjectiveEvaluator::new(&inst);
        let greedy_area = eval.evaluate_area(&greedy);
        let result =
            TabuSolver::new(SwapStrategy::Best, SearchBudget::nodes(100)).solve(&inst, greedy);
        assert!(result.objective <= greedy_area + 1e-9);
        assert!(!result.trajectory.is_empty());
    }

    #[test]
    fn respects_precedence_constraints() {
        let mut b = ProblemInstance::builder("tabu-prec");
        let i0 = b.add_index(8.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(2.0);
        let q = b.add_query(40.0);
        b.add_plan(q, vec![i1], 30.0);
        b.add_plan(q, vec![i2], 10.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let initial = Deployment::from_raw([0, 1, 2]);
        let result =
            TabuSolver::new(SwapStrategy::Best, SearchBudget::nodes(30)).solve(&inst, initial);
        assert!(result.deployment.unwrap().is_valid_for(&inst));
    }

    #[test]
    fn first_swap_is_deterministic_for_a_seed() {
        let inst = instance();
        let initial = Deployment::identity(inst.num_indexes());
        let run = |seed| {
            TabuSolver::with_config(TabuConfig {
                strategy: SwapStrategy::First,
                seed,
                budget: SearchBudget::nodes(40),
                ..TabuConfig::default()
            })
            .solve(&inst, initial.clone())
            .objective
        };
        assert_eq!(run(1), run(1));
    }
}
