//! Variable Neighborhood Search (Section 7.3).
//!
//! VNS is LNS with self-tuning parameters. Relaxations are processed in
//! groups of 20; if more than 75% of a group's reinsertion searches ended
//! with a *proof* (the CP search exhausted the neighbourhood without finding
//! a better solution — i.e. we are stuck in a local minimum of that
//! neighbourhood size), the relaxation size grows by 1% of the indexes;
//! otherwise the failure limit grows by 20% so the same-size neighbourhood is
//! explored more thoroughly. The paper finds this adaptive rule both faster
//! to improve and more stable than fixed-parameter LNS, and it is the method
//! recommended for large instances (Figures 11–13).
//!
//! Inside a cooperative portfolio
//! ([`CooperationPolicy`](crate::solver::CooperationPolicy)) the VNS member
//! re-seeds from the shared best deployment when it stalls and publishes the
//! relaxation sets that produced improvements as destroy-neighbourhood hints
//! for LNS workers to steal.

use crate::anytime::Trajectory;
use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::exact::bounds::LowerBound;
use crate::greedy::GreedySolver;
use crate::local::{reinsert, shift_is_feasible, Cooperator};
use crate::properties::{self, AnalysisOptions};
use crate::result::{SolveOutcome, SolveResult};
use crate::solver::{SolveContext, Solver};
use idd_core::{DeltaEvaluator, Deployment, IndexId, ProblemInstance};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Configuration of the VNS solver.
#[derive(Debug, Clone)]
pub struct VnsConfig {
    /// Initial relaxation fraction (paper: 5%).
    pub initial_relax_fraction: f64,
    /// Initial failure limit (paper: 500).
    pub initial_failure_limit: u64,
    /// Relaxations per adaptation group (paper: 20).
    pub group_size: usize,
    /// Fraction of proofs within a group that triggers a relaxation-size
    /// increase (paper: 75%).
    pub proof_threshold: f64,
    /// Relaxation-size increment, as a fraction of the indexes (paper: 1%).
    pub relax_increment: f64,
    /// Failure-limit growth factor (paper: +20%).
    pub failure_growth: f64,
    /// Time / iteration budget.
    pub budget: SearchBudget,
    /// RNG seed.
    pub seed: u64,
    /// Property analysis used for neighbourhood constraints.
    pub analysis: AnalysisOptions,
    /// Iterations without improvement before the member counts as *stalled*
    /// and (under a warm-start policy) re-seeds from the shared best
    /// deployment. `None` (the default) derives a slice of the budget via
    /// [`crate::local::derived_stall_iterations`]; `Some(n)` overrides it.
    /// Ignored outside cooperative portfolio runs.
    pub stall_iterations: Option<u64>,
    /// Polish each accepted reinsertion with a bounded-radius shift descent
    /// on the delta evaluator (first-improvement relocations within
    /// `shift_radius` positions, O(radius) per probe). The CP reinsertion
    /// search explores *subset* neighbourhoods; this cheap pass catches the
    /// orthogonal "one index sits a few slots off" improvements.
    pub shift_descent: bool,
    /// How far a shift-descent relocation may move an index.
    pub shift_radius: usize,
}

impl Default for VnsConfig {
    fn default() -> Self {
        Self {
            initial_relax_fraction: 0.05,
            initial_failure_limit: 500,
            group_size: 20,
            proof_threshold: 0.75,
            relax_increment: 0.01,
            failure_growth: 1.2,
            budget: SearchBudget::default(),
            seed: 0x7145,
            analysis: AnalysisOptions::none(),
            stall_iterations: None,
            shift_descent: true,
            shift_radius: 8,
        }
    }
}

/// The VNS solver.
#[derive(Debug, Clone, Default)]
pub struct VnsSolver {
    config: VnsConfig,
}

impl VnsSolver {
    /// Creates a solver with the default configuration and the given budget.
    pub fn new(budget: SearchBudget) -> Self {
        Self {
            config: VnsConfig {
                budget,
                ..VnsConfig::default()
            },
        }
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: VnsConfig) -> Self {
        Self { config }
    }

    /// Improves `initial` until the budget runs out.
    pub fn solve(&self, instance: &ProblemInstance, initial: Deployment) -> SolveResult {
        self.solve_in(instance, initial, &SolveContext::new())
    }

    /// [`VnsSolver::solve`] inside a shared [`SolveContext`] (cancellable,
    /// publishing incumbent improvements).
    pub fn solve_in(
        &self,
        instance: &ProblemInstance,
        initial: Deployment,
        ctx: &SolveContext,
    ) -> SolveResult {
        let n = instance.num_indexes();
        let analysis = properties::analyze(instance, self.config.analysis);
        let constraints: &OrderConstraints = &analysis.constraints;
        let bound = LowerBound::new(instance);
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut clock = self.config.budget.start_cancellable(ctx.cancel_token());

        // The delta evaluator both canonicalizes every objective this member
        // publishes and powers the shift-descent polish below.
        let mut delta = DeltaEvaluator::new(instance, initial.clone());
        let mut current = initial;
        let mut current_area = delta.base_area();
        let mut trajectory = Trajectory::new();
        trajectory.record(clock.elapsed_seconds(), current_area);
        ctx.publish(current_area);

        let mut relax_count =
            ((n as f64 * self.config.initial_relax_fraction).ceil() as usize).clamp(2.min(n), n);
        let mut failure_limit = self.config.initial_failure_limit;
        let mut proofs_in_group = 0usize;
        let mut group_progress = 0usize;

        let stall = self
            .config
            .stall_iterations
            .unwrap_or_else(|| crate::local::derived_stall_iterations(&self.config.budget));
        let mut coop = Cooperator::new(ctx, stall);
        let mut iterations = 0u64;
        while !clock.exhausted() && n >= 2 {
            iterations += 1;
            clock.count_node();

            // Cooperative warm-start: when stalled, jump to the portfolio's
            // best deployment instead of grinding on our own local optimum.
            if let Some(snapshot) = coop.stalled_adoption(ctx, current_area, constraints) {
                current = Deployment::new(snapshot.order);
                delta.set_base(current.clone());
                // Re-derive canonically: the publisher may have computed the
                // objective with different (naive) arithmetic.
                current_area = delta.base_area();
                trajectory.record(clock.elapsed_seconds(), current_area);
            }

            let mut ids: Vec<usize> = (0..n).collect();
            ids.shuffle(&mut rng);
            let relaxed: Vec<IndexId> = ids[..relax_count.min(n)]
                .iter()
                .map(|&r| IndexId::new(r))
                .collect();
            let fixed: Vec<IndexId> = current
                .order()
                .iter()
                .copied()
                .filter(|i| !relaxed.contains(i))
                .collect();

            let result = reinsert(
                instance,
                constraints,
                &bound,
                &fixed,
                &relaxed,
                current_area,
                failure_limit,
            );
            if let Some(order) = result.order {
                let area_before = current_area;
                current = Deployment::new(order);
                delta.set_base(current.clone());
                // The reinsertion search's running sum is naive; publish the
                // canonical evaluation instead.
                current_area = delta.base_area();
                debug_assert!(
                    (result.area - current_area).abs() <= 1e-6 * current_area.abs().max(1.0),
                    "naive reinsertion sum drifted from the canonical area"
                );

                // Polish: bounded-radius shift descent on the delta path.
                // Each probe is O(|from - to|); each commit re-anchors the
                // evaluator at the improved order.
                if self.config.shift_descent && self.config.shift_radius > 0 {
                    let radius = self.config.shift_radius;
                    let mut improved = true;
                    while improved && !clock.exhausted() {
                        improved = false;
                        for from in 0..n {
                            let lo = from.saturating_sub(radius);
                            let hi = (from + radius).min(n - 1);
                            let mut best: Option<(usize, f64)> = None;
                            for to in lo..=hi {
                                if to == from
                                    || !shift_is_feasible(
                                        constraints,
                                        delta.base().order(),
                                        from,
                                        to,
                                    )
                                {
                                    continue;
                                }
                                let area = delta.evaluate_shift(from, to);
                                if area < current_area - 1e-12
                                    && best.map(|(_, v)| area < v).unwrap_or(true)
                                {
                                    best = Some((to, area));
                                }
                            }
                            if let Some((to, area)) = best {
                                delta.commit_shift(from, to);
                                current_area = area;
                                improved = true;
                            }
                        }
                    }
                    current = delta.base().clone();
                }

                trajectory.record(clock.elapsed_seconds(), current_area);
                ctx.publish_deployment(current_area, current.order());
                if coop.policy().steals() {
                    // Feed the deque: this relaxation just paid off, so an
                    // LNS worker on another thread may profit from it too —
                    // valued at the improvement it produced (polish
                    // included).
                    idd_telemetry::mark(
                        "hint-publish",
                        format!(
                            "size={} gain={:.4}",
                            relaxed.len(),
                            area_before - current_area
                        ),
                    );
                    ctx.hints().push_scored(relaxed, area_before - current_area);
                    coop.stats.hints_published += 1;
                }
                coop.note_improvement();
            } else {
                coop.note_no_improvement();
            }
            if result.proved {
                proofs_in_group += 1;
            }
            group_progress += 1;

            // Adapt parameters after each group of relaxations.
            if group_progress >= self.config.group_size {
                let proof_ratio = proofs_in_group as f64 / group_progress as f64;
                if proof_ratio > self.config.proof_threshold {
                    // Stuck in small neighbourhoods: widen them.
                    let inc = ((n as f64 * self.config.relax_increment).ceil() as usize).max(1);
                    relax_count = (relax_count + inc).min(n);
                } else {
                    // Still hitting the failure limit: search deeper instead.
                    failure_limit =
                        ((failure_limit as f64) * self.config.failure_growth).ceil() as u64;
                }
                proofs_in_group = 0;
                group_progress = 0;
            }
        }

        coop.emit_counters(iterations);
        SolveResult {
            solver: "vns".into(),
            deployment: Some(current),
            objective: current_area,
            outcome: SolveOutcome::Feasible,
            elapsed_seconds: clock.elapsed_seconds(),
            nodes: iterations,
            trajectory,
            coop: coop.stats,
        }
    }
}

impl Solver for VnsSolver {
    fn name(&self) -> &'static str {
        "vns"
    }

    /// Starts from the interaction-guided greedy order and improves it under
    /// `budget`.
    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        let initial = GreedySolver::new().construct(instance);
        let mut config = self.config.clone();
        config.budget = budget;
        VnsSolver::with_config(config).solve_in(instance, initial, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::lns::LnsSolver;
    use idd_core::ObjectiveEvaluator;

    fn instance(seed: u64) -> ProblemInstance {
        let mut b = ProblemInstance::builder(format!("vns-{seed}"));
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 14;
        let idx: Vec<IndexId> = (0..n).map(|_| b.add_index(2.0 + next() * 10.0)).collect();
        for q in 0..10 {
            let qid = b.add_query(50.0 + next() * 80.0);
            let a = idx[(q * 3) % n];
            let c = idx[(q * 5 + 1) % n];
            let d = idx[(q * 7 + 2) % n];
            b.add_plan(qid, vec![a], 5.0 + next() * 10.0);
            b.add_plan(qid, vec![a, c], 15.0 + next() * 10.0);
            b.add_plan(qid, vec![a, c, d], 25.0 + next() * 12.0);
        }
        b.add_build_interaction(idx[1], idx[0], 1.5);
        b.add_build_interaction(idx[4], idx[5], 2.0);
        b.add_build_interaction(idx[9], idx[8], 1.0);
        b.build().unwrap()
    }

    #[test]
    fn vns_never_worsens_and_stays_valid() {
        let inst = instance(1);
        let eval = ObjectiveEvaluator::new(&inst);
        let greedy = GreedySolver::new().construct(&inst);
        let greedy_area = eval.evaluate_area(&greedy);
        let result = VnsSolver::new(SearchBudget::nodes(120)).solve(&inst, greedy);
        assert!(result.objective <= greedy_area + 1e-9);
        let d = result.deployment.unwrap();
        assert!(d.is_valid_for(&inst));
        assert!((eval.evaluate_area(&d) - result.objective).abs() < 1e-9);
    }

    #[test]
    fn vns_matches_or_beats_fixed_parameter_lns_given_equal_iterations() {
        // The paper's headline local-search claim, scaled down: starting from
        // the same greedy solution and the same iteration budget, VNS should
        // end at least as good as LNS (it adapts its neighbourhood).
        let mut vns_wins = 0usize;
        let mut ties = 0usize;
        for seed in [2, 3, 4] {
            let inst = instance(seed);
            let greedy = GreedySolver::new().construct(&inst);
            let lns = LnsSolver::with_config(crate::local::lns::LnsConfig {
                budget: SearchBudget::nodes(150),
                seed,
                ..Default::default()
            })
            .solve(&inst, greedy.clone());
            let vns = VnsSolver::with_config(VnsConfig {
                budget: SearchBudget::nodes(150),
                seed,
                ..Default::default()
            })
            .solve(&inst, greedy);
            if vns.objective < lns.objective - 1e-9 {
                vns_wins += 1;
            } else if (vns.objective - lns.objective).abs() <= 1e-9 {
                ties += 1;
            }
        }
        assert!(
            vns_wins + ties >= 2,
            "VNS should match or beat LNS on most seeds (wins {vns_wins}, ties {ties})"
        );
    }

    #[test]
    fn adaptation_parameters_do_not_break_feasibility() {
        let inst = instance(5);
        let initial = Deployment::identity(inst.num_indexes());
        let result = VnsSolver::with_config(VnsConfig {
            budget: SearchBudget::nodes(60),
            group_size: 5,
            initial_failure_limit: 20,
            ..Default::default()
        })
        .solve(&inst, initial);
        assert!(result.deployment.unwrap().is_valid_for(&inst));
    }

    #[test]
    fn deterministic_for_a_fixed_seed_and_node_budget() {
        let inst = instance(6);
        let initial = Deployment::identity(inst.num_indexes());
        let run = |seed| {
            VnsSolver::with_config(VnsConfig {
                seed,
                budget: SearchBudget::nodes(50),
                ..Default::default()
            })
            .solve(&inst, initial.clone())
            .objective
        };
        assert_eq!(run(7), run(7));
    }
}
