//! Large Neighborhood Search (Section 7.2).
//!
//! Each iteration relaxes a fixed fraction of the indexes (the paper uses
//! 5%), keeps the rest of the current order fixed, and asks the CP
//! reinsertion search for a strictly better completion, giving up after a
//! fixed number of backtracks (the failure limit, 500 in the paper). If the
//! neighbourhood contains an improvement it becomes the new current solution;
//! otherwise a new random relaxation is drawn.
//!
//! Inside a cooperative portfolio
//! ([`CooperationPolicy`](crate::solver::CooperationPolicy)) the LNS member
//! additionally (a) re-seeds from the shared best deployment when it stalls,
//! and (b) steals destroy-neighbourhood hints — relaxation sets that
//! produced improvements in *other* members — from the portfolio's
//! work-stealing deque before falling back to a random draw.

use crate::anytime::Trajectory;
use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::exact::bounds::LowerBound;
use crate::greedy::GreedySolver;
use crate::local::{reinsert, sanitize_hint, shift_is_feasible, Cooperator};
use crate::properties::{self, AnalysisOptions};
use crate::result::{SolveOutcome, SolveResult};
use crate::solver::{SolveContext, Solver};
use idd_core::{DeltaEvaluator, Deployment, IndexId, ProblemInstance};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Configuration of the LNS solver.
#[derive(Debug, Clone)]
pub struct LnsConfig {
    /// Fraction of the indexes relaxed each iteration (paper: 5%).
    pub relax_fraction: f64,
    /// Backtrack limit per reinsertion search (paper: 500).
    pub failure_limit: u64,
    /// Time / iteration budget.
    pub budget: SearchBudget,
    /// RNG seed.
    pub seed: u64,
    /// Property analysis used to derive constraints that restrict the
    /// neighbourhood (and keep it feasible). `AnalysisOptions::none()`
    /// uses only hard precedences.
    pub analysis: AnalysisOptions,
    /// Iterations without improvement before the member counts as *stalled*
    /// and (under a warm-start policy) re-seeds from the shared best
    /// deployment. `None` (the default) derives a slice of the budget via
    /// [`crate::local::derived_stall_iterations`]; `Some(n)` overrides it.
    /// Ignored outside cooperative portfolio runs.
    pub stall_iterations: Option<u64>,
    /// When the CP reinsertion search hits its failure limit without finding
    /// an improvement, try a cheap greedy repair instead of discarding the
    /// destroy set: relocate each destroyed index to its best position,
    /// with every candidate insertion scored by the delta evaluator
    /// (O(|from - to|) per probe instead of a full re-evaluation).
    pub delta_repair: bool,
}

impl Default for LnsConfig {
    fn default() -> Self {
        Self {
            relax_fraction: 0.05,
            failure_limit: 500,
            budget: SearchBudget::default(),
            seed: 0x1A5,
            analysis: AnalysisOptions::none(),
            stall_iterations: None,
            delta_repair: true,
        }
    }
}

/// The LNS solver.
#[derive(Debug, Clone, Default)]
pub struct LnsSolver {
    config: LnsConfig,
}

impl LnsSolver {
    /// Creates a solver with the default configuration and the given budget.
    pub fn new(budget: SearchBudget) -> Self {
        Self {
            config: LnsConfig {
                budget,
                ..LnsConfig::default()
            },
        }
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: LnsConfig) -> Self {
        Self { config }
    }

    /// Improves `initial` until the budget runs out.
    pub fn solve(&self, instance: &ProblemInstance, initial: Deployment) -> SolveResult {
        self.solve_in(instance, initial, &SolveContext::new())
    }

    /// [`LnsSolver::solve`] inside a shared [`SolveContext`] (cancellable,
    /// publishing incumbent improvements).
    pub fn solve_in(
        &self,
        instance: &ProblemInstance,
        initial: Deployment,
        ctx: &SolveContext,
    ) -> SolveResult {
        let n = instance.num_indexes();
        let analysis = properties::analyze(instance, self.config.analysis);
        let constraints: &OrderConstraints = &analysis.constraints;
        let bound = LowerBound::new(instance);
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut clock = self.config.budget.start_cancellable(ctx.cancel_token());

        // Canonicalizes every objective this member publishes and scores the
        // greedy-repair insertions below.
        let mut delta = DeltaEvaluator::new(instance, initial.clone());
        let mut current = initial;
        let mut current_area = delta.base_area();
        let mut trajectory = Trajectory::new();
        trajectory.record(clock.elapsed_seconds(), current_area);
        ctx.publish(current_area);

        let relax_count =
            ((n as f64 * self.config.relax_fraction).ceil() as usize).clamp(2.min(n), n);

        let stall = self
            .config
            .stall_iterations
            .unwrap_or_else(|| crate::local::derived_stall_iterations(&self.config.budget));
        let mut coop = Cooperator::new(ctx, stall);
        let mut iterations = 0u64;
        while !clock.exhausted() && n >= 2 {
            iterations += 1;
            clock.count_node();

            // Cooperative warm-start: when stalled, jump to the portfolio's
            // best deployment instead of grinding on our own local optimum.
            if let Some(snapshot) = coop.stalled_adoption(ctx, current_area, constraints) {
                current = Deployment::new(snapshot.order);
                delta.set_base(current.clone());
                // Re-derive canonically: the publisher may have computed the
                // objective with different (naive) arithmetic.
                current_area = delta.base_area();
                trajectory.record(clock.elapsed_seconds(), current_area);
            }

            // Destroy set: prefer a stolen hint (a relaxation that recently
            // paid off in another member), else draw uniformly at random.
            let stolen = if coop.policy().steals() {
                ctx.hints()
                    .steal()
                    .map(|hint| sanitize_hint(hint, n))
                    .filter(|hint| hint.len() >= 2)
            } else {
                None
            };
            let relaxed: Vec<IndexId> = match stolen {
                Some(hint) => {
                    coop.stats.hints_stolen += 1;
                    idd_telemetry::mark("hint-steal", format!("size={}", hint.len()));
                    hint
                }
                None => {
                    let mut ids: Vec<usize> = (0..n).collect();
                    ids.shuffle(&mut rng);
                    ids[..relax_count]
                        .iter()
                        .map(|&r| IndexId::new(r))
                        .collect()
                }
            };
            let fixed: Vec<IndexId> = current
                .order()
                .iter()
                .copied()
                .filter(|i| !relaxed.contains(i))
                .collect();

            let result = reinsert(
                instance,
                constraints,
                &bound,
                &fixed,
                &relaxed,
                current_area,
                self.config.failure_limit,
            );
            if let Some(order) = result.order {
                let area_before = current_area;
                current = Deployment::new(order);
                delta.set_base(current.clone());
                // The reinsertion search's running sum is naive; publish the
                // canonical evaluation instead.
                current_area = delta.base_area();
                debug_assert!(
                    (result.area - current_area).abs() <= 1e-6 * current_area.abs().max(1.0),
                    "naive reinsertion sum drifted from the canonical area"
                );
                trajectory.record(clock.elapsed_seconds(), current_area);
                ctx.publish_deployment(current_area, current.order());
                if coop.policy().steals() {
                    // This destroy set just paid off — share it, valued at
                    // what it paid.
                    idd_telemetry::mark(
                        "hint-publish",
                        format!(
                            "size={} gain={:.4}",
                            relaxed.len(),
                            area_before - current_area
                        ),
                    );
                    ctx.hints().push_scored(relaxed, area_before - current_area);
                    coop.stats.hints_published += 1;
                }
                coop.note_improvement();
            } else if self.config.delta_repair && !result.proved && !clock.exhausted() {
                // The CP search hit its failure limit before exhausting the
                // neighbourhood. Salvage the destroy set with a greedy
                // repair: relocate each destroyed index to its best
                // position, every candidate scored on the delta path.
                delta.set_base(current.clone());
                let mut area = current_area;
                for &r in &relaxed {
                    let from = delta
                        .base()
                        .order()
                        .iter()
                        .position(|&i| i == r)
                        .expect("destroy set is drawn from the current order");
                    let mut best: Option<(usize, f64)> = None;
                    for to in 0..n {
                        if to == from
                            || !shift_is_feasible(constraints, delta.base().order(), from, to)
                        {
                            continue;
                        }
                        let candidate = delta.evaluate_shift(from, to);
                        if candidate < area - 1e-12
                            && best.map(|(_, v)| candidate < v).unwrap_or(true)
                        {
                            best = Some((to, candidate));
                        }
                    }
                    if let Some((to, v)) = best {
                        delta.commit_shift(from, to);
                        area = v;
                    }
                }
                if area < current_area - 1e-12 {
                    let gain = current_area - area;
                    current = delta.base().clone();
                    current_area = area;
                    trajectory.record(clock.elapsed_seconds(), current_area);
                    ctx.publish_deployment(current_area, current.order());
                    if coop.policy().steals() {
                        idd_telemetry::mark(
                            "hint-publish",
                            format!("size={} gain={gain:.4}", relaxed.len()),
                        );
                        ctx.hints().push_scored(relaxed, gain);
                        coop.stats.hints_published += 1;
                    }
                    coop.note_improvement();
                } else {
                    coop.note_no_improvement();
                }
            } else {
                coop.note_no_improvement();
            }
        }

        coop.emit_counters(iterations);
        SolveResult {
            solver: "lns".into(),
            deployment: Some(current),
            objective: current_area,
            outcome: SolveOutcome::Feasible,
            elapsed_seconds: clock.elapsed_seconds(),
            nodes: iterations,
            trajectory,
            coop: coop.stats,
        }
    }
}

impl Solver for LnsSolver {
    fn name(&self) -> &'static str {
        "lns"
    }

    /// Starts from the interaction-guided greedy order and improves it under
    /// `budget`.
    fn run(
        &self,
        instance: &ProblemInstance,
        budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        let initial = GreedySolver::new().construct(instance);
        let mut config = self.config.clone();
        config.budget = budget;
        LnsSolver::with_config(config).solve_in(instance, initial, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::ObjectiveEvaluator;

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("lns");
        let i: Vec<IndexId> = (0..10)
            .map(|k| b.add_index(2.0 + (k % 5) as f64 * 2.0))
            .collect();
        for q in 0..8 {
            let qid = b.add_query(60.0 + q as f64 * 10.0);
            b.add_plan(qid, vec![i[q % 10]], 9.0);
            b.add_plan(qid, vec![i[q % 10], i[(q + 4) % 10]], 24.0);
        }
        b.add_build_interaction(i[2], i[3], 1.0);
        b.add_build_interaction(i[7], i[6], 2.0);
        b.build().unwrap()
    }

    #[test]
    fn lns_never_worsens_and_stays_valid() {
        let inst = instance();
        let initial = Deployment::identity(inst.num_indexes());
        let eval = ObjectiveEvaluator::new(&inst);
        let initial_area = eval.evaluate_area(&initial);
        let result = LnsSolver::new(SearchBudget::nodes(60)).solve(&inst, initial);
        assert!(result.objective <= initial_area + 1e-9);
        let d = result.deployment.unwrap();
        assert!(d.is_valid_for(&inst));
        assert!((eval.evaluate_area(&d) - result.objective).abs() < 1e-9);
    }

    #[test]
    fn lns_improves_greedy_on_this_instance() {
        let inst = instance();
        let greedy = GreedySolver::new().construct(&inst);
        let eval = ObjectiveEvaluator::new(&inst);
        let greedy_area = eval.evaluate_area(&greedy);
        let result = LnsSolver::new(SearchBudget::nodes(200)).solve(&inst, greedy);
        assert!(result.objective <= greedy_area + 1e-9);
    }

    #[test]
    fn deterministic_for_a_fixed_seed_and_node_budget() {
        let inst = instance();
        let initial = Deployment::identity(inst.num_indexes());
        let run = |seed| {
            LnsSolver::with_config(LnsConfig {
                seed,
                budget: SearchBudget::nodes(40),
                ..LnsConfig::default()
            })
            .solve(&inst, initial.clone())
            .objective
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn respects_precedences_through_the_reinsertion_search() {
        let mut b = ProblemInstance::builder("lns-prec");
        let i0 = b.add_index(6.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(2.0);
        let i3 = b.add_index(2.0);
        let q = b.add_query(50.0);
        b.add_plan(q, vec![i1], 35.0);
        b.add_plan(q, vec![i2], 10.0);
        b.add_plan(q, vec![i3], 5.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let initial = Deployment::from_raw([0, 1, 2, 3]);
        let result = LnsSolver::new(SearchBudget::nodes(80)).solve(&inst, initial);
        assert!(result.deployment.unwrap().is_valid_for(&inst));
    }
}
