//! Local search methods (Section 7): Tabu search, LNS and VNS.
//!
//! All three start from an initial solution (normally the greedy order of
//! Algorithm 1) and improve it within a wall-clock budget, recording the
//! incumbent trajectory used by Figures 11–13. LNS and VNS share the
//! CP-powered *reinsertion search* in this module: a subset of indexes is
//! removed from the current order and optimally re-inserted by a small
//! branch-and-prune search with a failure (backtrack) limit.

pub mod lns;
pub mod tabu;
pub mod vns;

pub use lns::{LnsConfig, LnsSolver};
pub use tabu::{SwapStrategy, TabuConfig, TabuSolver};
pub use vns::{VnsConfig, VnsSolver};

use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::exact::bounds::LowerBound;
use crate::exact::state::SearchState;
use crate::result::CoopStats;
use crate::solver::{CooperationPolicy, IncumbentSnapshot, SolveContext};
use idd_core::{IndexId, ProblemInstance};

/// Derives a stall threshold (iterations without improvement before a
/// member re-seeds from the shared best) as a *slice of the budget*, so the
/// knob scales with how long the member actually runs instead of being a
/// fixed per-config count:
///
/// * node-limited budgets stall after 1/8 of the iteration allowance — a
///   member gets several restart opportunities within its run, but each
///   basin is explored long enough to pay off;
/// * time-limited budgets assume the ~25 iterations/second a mid-size
///   instance sustains and take the same 1/8 slice of that;
/// * unlimited budgets fall back to a generous fixed threshold.
///
/// Every local-search config keeps an explicit override
/// (`stall_iterations: Some(n)`); this function only supplies the default.
pub fn derived_stall_iterations(budget: &SearchBudget) -> u64 {
    if let Some(nodes) = budget.node_limit {
        (nodes / 8).clamp(4, 2_000)
    } else if let Some(limit) = budget.time_limit {
        ((limit.as_secs_f64() * 25.0 / 8.0).ceil() as u64).clamp(4, 2_000)
    } else {
        200
    }
}

/// Shared stall-detection / warm-start machinery for the three local
/// searches (tabu, LNS, VNS).
///
/// Tracks iterations since the member's own last improvement; once that
/// exceeds the configured stall threshold the member is *stalled* and (under
/// a warm-start policy) re-seeds from the portfolio's shared best deployment
/// instead of grinding on its own local optimum. Every decision is gated on
/// the context's [`CooperationPolicy`], so under
/// [`CooperationPolicy::Off`] this struct is inert and the search loops are
/// bit-identical to their non-cooperative selves.
#[derive(Debug)]
pub(crate) struct Cooperator {
    policy: CooperationPolicy,
    stall_iterations: u64,
    since_improvement: u64,
    last_seen_epoch: u64,
    /// Counters reported through [`SolveResult::coop`](crate::result::SolveResult).
    pub stats: CoopStats,
}

impl Cooperator {
    pub fn new(ctx: &SolveContext, stall_iterations: u64) -> Self {
        Self {
            policy: ctx.cooperation(),
            // A threshold of 0 would re-seed on every iteration; clamp to 1.
            stall_iterations: stall_iterations.max(1),
            since_improvement: 0,
            last_seen_epoch: 0,
            stats: CoopStats::default(),
        }
    }

    /// The policy this member runs under.
    pub fn policy(&self) -> CooperationPolicy {
        self.policy
    }

    /// The member improved its own incumbent: reset the stall counter.
    pub fn note_improvement(&mut self) {
        self.since_improvement = 0;
    }

    /// The member finished an iteration without improving.
    pub fn note_no_improvement(&mut self) {
        self.since_improvement += 1;
    }

    /// Called at the top of each search iteration. Returns a snapshot of the
    /// shared best deployment when the member (a) is allowed to warm-start,
    /// (b) has stalled, and (c) a *strictly better* foreign deployment that
    /// satisfies the member's own constraint closure has been published
    /// since it last looked. The caller must re-seed from the returned
    /// order.
    ///
    /// Every stall event counts as a restart; only successful adoptions
    /// count as adoptions (so `adoptions <= restarts` always holds).
    pub fn stalled_adoption(
        &mut self,
        ctx: &SolveContext,
        current_area: f64,
        constraints: &OrderConstraints,
    ) -> Option<IncumbentSnapshot> {
        if !self.policy.warm_starts() || self.since_improvement < self.stall_iterations {
            return None;
        }
        self.since_improvement = 0;
        self.stats.restarts += 1;
        idd_telemetry::mark("restart", format!("stall={}", self.stall_iterations));
        // Lock-free pre-check: nothing new published since the last look
        // (the member's own publications bump the epoch too, but they can
        // never be strictly better than its current incumbent).
        let epoch = ctx.incumbent().epoch();
        if epoch == self.last_seen_epoch {
            return None;
        }
        self.last_seen_epoch = epoch;
        let snapshot = ctx.incumbent().best_deployment()?;
        // Only adopt orders the member's own neighbourhood machinery can
        // work with: the closure may be stronger than the instance's hard
        // precedences when property analysis is enabled.
        if snapshot.objective < current_area - 1e-12 && constraints.is_satisfied_by(&snapshot.order)
        {
            self.stats.adoptions += 1;
            idd_telemetry::mark_epoch(
                "adoption",
                format!("objective={:.4}", snapshot.objective),
                epoch,
            );
            Some(snapshot)
        } else {
            None
        }
    }

    /// Emits this member's end-of-run totals — the iteration count plus
    /// every [`CoopStats`] counter — onto the calling thread's telemetry
    /// track. Called once, right before the search builds its
    /// [`SolveResult`](crate::result::SolveResult); a no-op without an
    /// installed recorder.
    pub fn emit_counters(&self, iterations: u64) {
        idd_telemetry::counter("iterations", iterations);
        idd_telemetry::counter("restarts", self.stats.restarts);
        idd_telemetry::counter("adoptions", self.stats.adoptions);
        idd_telemetry::counter("hints_stolen", self.stats.hints_stolen);
        idd_telemetry::counter("hints_published", self.stats.hints_published);
    }
}

/// Filters a stolen destroy-neighbourhood hint down to distinct, in-range
/// index ids. Hints always originate from the same instance inside one
/// portfolio run, but the deque is a public surface — never trust a hint to
/// index into per-instance arrays unchecked.
pub(crate) fn sanitize_hint(hint: Vec<IndexId>, n: usize) -> Vec<IndexId> {
    let mut seen = vec![false; n];
    hint.into_iter()
        .filter(|i| i.raw() < n && !std::mem::replace(&mut seen[i.raw()], true))
        .collect()
}

/// Result of one reinsertion search.
#[derive(Debug, Clone)]
pub(crate) struct ReinsertionResult {
    /// The best complete order found, if it improves on the incumbent.
    pub order: Option<Vec<IndexId>>,
    /// Its objective area (only meaningful when `order` is `Some`).
    pub area: f64,
    /// `true` when the neighbourhood was searched exhaustively (no better
    /// solution exists in it); `false` when the failure limit was hit first.
    pub proved: bool,
}

/// Optimally re-inserts `relaxed` into the sequence `fixed` (whose relative
/// order is preserved), looking for an order strictly better than
/// `incumbent_area`. The search backtracks at most `failure_limit` times.
pub(crate) fn reinsert(
    instance: &ProblemInstance,
    constraints: &OrderConstraints,
    bound: &LowerBound,
    fixed: &[IndexId],
    relaxed: &[IndexId],
    incumbent_area: f64,
    failure_limit: u64,
) -> ReinsertionResult {
    struct Ctx<'a> {
        instance: &'a ProblemInstance,
        constraints: &'a OrderConstraints,
        bound: &'a LowerBound,
        fixed: &'a [IndexId],
        relaxed: &'a [IndexId],
        best_area: f64,
        best_order: Option<Vec<IndexId>>,
        failures: u64,
        failure_limit: u64,
        aborted: bool,
    }

    fn dfs(
        ctx: &mut Ctx<'_>,
        state: &mut SearchState<'_>,
        order: &mut Vec<IndexId>,
        next_fixed: usize,
        relaxed_used: &mut Vec<bool>,
    ) {
        if ctx.aborted {
            return;
        }
        if state.is_complete() {
            if state.area() < ctx.best_area - 1e-12 {
                ctx.best_area = state.area();
                ctx.best_order = Some(order.clone());
            }
            return;
        }
        let lb = state.area() + ctx.bound.remaining(state.built(), state.runtime());
        if lb >= ctx.best_area - 1e-12 {
            ctx.failures += 1;
            if ctx.failures > ctx.failure_limit {
                ctx.aborted = true;
            }
            return;
        }

        // Candidate moves: the next fixed index, then each unused relaxed
        // index (relaxed first would also work; fixed-first keeps the search
        // close to the incumbent which finds improvements faster).
        let mut candidates: Vec<(bool, usize, IndexId)> = Vec::new();
        if next_fixed < ctx.fixed.len() {
            candidates.push((true, next_fixed, ctx.fixed[next_fixed]));
        }
        for (pos, &r) in ctx.relaxed.iter().enumerate() {
            if !relaxed_used[pos] {
                candidates.push((false, pos, r));
            }
        }

        let mut any_feasible = false;
        for (is_fixed, pos, index) in candidates {
            if ctx.aborted {
                return;
            }
            if !ctx.constraints.can_place(index, state.built()) {
                continue;
            }
            any_feasible = true;
            let undo = state.push(index);
            order.push(index);
            if is_fixed {
                dfs(ctx, state, order, next_fixed + 1, relaxed_used);
            } else {
                relaxed_used[pos] = true;
                dfs(ctx, state, order, next_fixed, relaxed_used);
                relaxed_used[pos] = false;
            }
            order.pop();
            state.pop(undo);
        }
        if !any_feasible {
            ctx.failures += 1;
            if ctx.failures > ctx.failure_limit {
                ctx.aborted = true;
            }
        }
    }

    let mut ctx = Ctx {
        instance,
        constraints,
        bound,
        fixed,
        relaxed,
        best_area: incumbent_area,
        best_order: None,
        failures: 0,
        failure_limit,
        aborted: false,
    };
    let mut state = SearchState::new(instance);
    let mut order = Vec::with_capacity(instance.num_indexes());
    let mut relaxed_used = vec![false; relaxed.len()];
    dfs(&mut ctx, &mut state, &mut order, 0, &mut relaxed_used);
    let _ = ctx.instance;

    ReinsertionResult {
        order: ctx.best_order,
        area: ctx.best_area,
        proved: !ctx.aborted,
    }
}

/// Checks whether swapping the indexes at `a` and `b` (a < b is not required)
/// keeps the order feasible under the precedence closure.
pub(crate) fn swap_is_feasible(
    constraints: &OrderConstraints,
    order: &[IndexId],
    a: usize,
    b: usize,
) -> bool {
    if a == b {
        return true;
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let early = order[lo]; // moves later
    let late = order[hi]; // moves earlier
                          // `late` moves to position lo: nothing between lo..hi may be required
                          // before it, and it must not be required after `early`... the pairwise
                          // check against every index in the window (inclusive) covers both.
    for &other in &order[lo..=hi] {
        if other != late && constraints.must_precede(other, late) {
            return false;
        }
        if other != early && constraints.must_precede(early, other) {
            return false;
        }
    }
    true
}

/// Checks whether relocating the index at `from` to position `to` (the
/// [`Deployment::relocate`](idd_core::Deployment) move scored by
/// [`DeltaEvaluator::evaluate_shift`](idd_core::DeltaEvaluator)) keeps the
/// order feasible under the precedence closure.
pub(crate) fn shift_is_feasible(
    constraints: &OrderConstraints,
    order: &[IndexId],
    from: usize,
    to: usize,
) -> bool {
    if from == to {
        return true;
    }
    let moved = order[from];
    if from < to {
        // `moved` jumps after order[from+1 ..= to]: it must not be required
        // before any of them.
        order[from + 1..=to]
            .iter()
            .all(|&other| !constraints.must_precede(moved, other))
    } else {
        // `moved` jumps before order[to .. from]: none of them may be
        // required before it.
        order[to..from]
            .iter()
            .all(|&other| !constraints.must_precede(other, moved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::{Deployment, ObjectiveEvaluator};

    fn instance() -> ProblemInstance {
        let mut b = ProblemInstance::builder("local");
        let i: Vec<IndexId> = (0..5).map(|k| b.add_index(2.0 + k as f64)).collect();
        let q0 = b.add_query(60.0);
        b.add_plan(q0, vec![i[0]], 10.0);
        b.add_plan(q0, vec![i[0], i[1]], 30.0);
        let q1 = b.add_query(40.0);
        b.add_plan(q1, vec![i[2]], 15.0);
        let q2 = b.add_query(50.0);
        b.add_plan(q2, vec![i[3], i[4]], 25.0);
        b.add_build_interaction(i[1], i[0], 1.0);
        b.build().unwrap()
    }

    #[test]
    fn reinsertion_with_everything_relaxed_finds_the_optimum() {
        let inst = instance();
        let constraints = OrderConstraints::from_instance(&inst);
        let bound = LowerBound::new(&inst);
        let all: Vec<IndexId> = inst.index_ids().collect();
        let result = reinsert(
            &inst,
            &constraints,
            &bound,
            &[],
            &all,
            f64::INFINITY,
            u64::MAX,
        );
        assert!(result.proved);
        let best = result.order.expect("some order must beat infinity");
        // Compare against the CP optimum.
        let cp = crate::exact::cp::CpSolver::with_config(crate::exact::cp::CpConfig::plain(
            crate::budget::SearchBudget::unlimited(),
        ))
        .solve(&inst);
        assert!((result.area - cp.objective).abs() < 1e-6);
        assert!(Deployment::new(best).is_valid_for(&inst));
    }

    #[test]
    fn reinsertion_respects_the_incumbent_bound() {
        let inst = instance();
        let constraints = OrderConstraints::from_instance(&inst);
        let bound = LowerBound::new(&inst);
        let eval = ObjectiveEvaluator::new(&inst);
        let identity = Deployment::identity(5);
        let incumbent = eval.evaluate_area(&identity);
        // Relax nothing: the only completion is the incumbent itself, which
        // is not strictly better, so no order is returned.
        let result = reinsert(
            &inst,
            &constraints,
            &bound,
            identity.order(),
            &[],
            incumbent,
            1000,
        );
        assert!(result.order.is_none());
    }

    #[test]
    fn failure_limit_stops_the_search() {
        let inst = instance();
        let constraints = OrderConstraints::from_instance(&inst);
        let bound = LowerBound::new(&inst);
        let all: Vec<IndexId> = inst.index_ids().collect();
        let result = reinsert(&inst, &constraints, &bound, &[], &all, 1e-9, 0);
        // Nothing beats an incumbent of ~0, and the failure limit of zero is
        // exceeded by the very first pruned node.
        assert!(!result.proved);
        assert!(result.order.is_none());
    }

    #[test]
    fn stall_threshold_is_a_slice_of_the_budget() {
        use crate::budget::SearchBudget;
        // Node-limited: 1/8 of the allowance, clamped below by 4.
        assert_eq!(derived_stall_iterations(&SearchBudget::nodes(800)), 100);
        assert_eq!(derived_stall_iterations(&SearchBudget::nodes(10)), 4);
        assert_eq!(
            derived_stall_iterations(&SearchBudget::nodes(1_000_000)),
            2_000
        );
        // Time-limited: ~25 iterations/second, same 1/8 slice.
        assert_eq!(derived_stall_iterations(&SearchBudget::seconds(8.0)), 25);
        assert_eq!(derived_stall_iterations(&SearchBudget::seconds(0.1)), 4);
        // Unlimited: fixed generous fallback.
        assert_eq!(derived_stall_iterations(&SearchBudget::unlimited()), 200);
        // A bounded budget prefers the node limit (machine-independent).
        assert_eq!(
            derived_stall_iterations(&SearchBudget::bounded(100.0, 80)),
            10
        );
    }

    #[test]
    fn swap_feasibility_respects_precedences() {
        let mut b = ProblemInstance::builder("swap");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(1.0);
        let q = b.add_query(10.0);
        b.add_plan(q, vec![i0], 1.0);
        b.add_precedence(i0, i2);
        let inst = b.build().unwrap();
        let constraints = OrderConstraints::from_instance(&inst);
        let order = vec![i0, i1, i2];
        assert!(swap_is_feasible(&constraints, &order, 1, 2)); // i1 <-> i2 fine
        assert!(!swap_is_feasible(&constraints, &order, 0, 2)); // i2 before i0: no
        assert!(swap_is_feasible(&constraints, &order, 0, 1)); // i1 before i0: fine
        assert!(swap_is_feasible(&constraints, &order, 1, 1));
    }

    #[test]
    fn shift_feasibility_respects_precedences() {
        let mut b = ProblemInstance::builder("shift");
        let i0 = b.add_index(1.0);
        let i1 = b.add_index(1.0);
        let i2 = b.add_index(1.0);
        let i3 = b.add_index(1.0);
        let q = b.add_query(10.0);
        b.add_plan(q, vec![i0], 1.0);
        b.add_precedence(i0, i2);
        let inst = b.build().unwrap();
        let constraints = OrderConstraints::from_instance(&inst);
        let order = vec![i0, i1, i2, i3];
        // Forward: i0 may slide to 1 (past i1) but not past its dependent i2.
        assert!(shift_is_feasible(&constraints, &order, 0, 1));
        assert!(!shift_is_feasible(&constraints, &order, 0, 2));
        assert!(!shift_is_feasible(&constraints, &order, 0, 3));
        // Backward: i2 may not move before its prerequisite i0; i3 may move
        // anywhere (it is unconstrained).
        assert!(shift_is_feasible(&constraints, &order, 2, 1));
        assert!(!shift_is_feasible(&constraints, &order, 2, 0));
        assert!(shift_is_feasible(&constraints, &order, 3, 0));
        assert!(shift_is_feasible(&constraints, &order, 1, 1));
        // Every feasible shift matches the brute-force relocate check.
        let eval_order = Deployment::new(order.clone());
        for from in 0..4 {
            for to in 0..4 {
                let relocated = {
                    let mut d = eval_order.clone();
                    d.relocate(from, to);
                    d
                };
                let expected = constraints.is_satisfied_by(relocated.order());
                assert_eq!(
                    shift_is_feasible(&constraints, &order, from, to),
                    expected,
                    "shift {from}->{to}"
                );
            }
        }
    }
}
