//! The interaction-guided greedy algorithm (Section 7.4, Algorithm 1).
//!
//! At each step the index with the highest *density* is appended, where
//! density is the index's immediate benefit — plus a share of the speed-up of
//! every not-yet-feasible plan it participates in, split evenly among the
//! plan's still-missing indexes — divided by its effective build cost given
//! the indexes already chosen. The interaction credit is what distinguishes
//! this greedy from a naive benefit/cost ranking: it values indexes that
//! unlock future multi-index plans.

use crate::budget::SearchBudget;
use crate::constraints::OrderConstraints;
use crate::result::SolveResult;
use crate::solver::{SolveContext, Solver};
use idd_core::{Deployment, IndexId, ObjectiveEvaluator, ProblemInstance};
use std::time::Instant;

/// Configuration of the greedy construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyConfig {
    /// Include the interaction credit (`interaction / |p \ N|` of
    /// Algorithm 1). Disabling it yields the naive density greedy and is used
    /// by the ablation bench.
    pub interaction_credit: bool,
    /// Respect hard precedence constraints while constructing the order.
    pub respect_precedences: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            interaction_credit: true,
            respect_precedences: true,
        }
    }
}

/// The greedy solver.
#[derive(Debug, Clone, Default)]
pub struct GreedySolver {
    config: GreedyConfig,
}

impl GreedySolver {
    /// Creates a greedy solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a greedy solver with an explicit configuration.
    pub fn with_config(config: GreedyConfig) -> Self {
        Self { config }
    }

    /// Builds a deployment order for `instance`.
    pub fn construct(&self, instance: &ProblemInstance) -> Deployment {
        let n = instance.num_indexes();
        let evaluator = ObjectiveEvaluator::new(instance);
        let constraints = if self.config.respect_precedences {
            Some(OrderConstraints::from_instance(instance))
        } else {
            None
        };

        let mut order: Vec<IndexId> = Vec::with_capacity(n);
        let mut built = vec![false; n];

        for _ in 0..n {
            let mut best_index: Option<IndexId> = None;
            let mut best_density = f64::NEG_INFINITY;

            let current_runtime_by_query: Vec<f64> = instance
                .query_ids()
                .map(|q| instance.query_runtime(q) - evaluator.query_speedup_with(q, &built))
                .collect();

            for raw in 0..n {
                if built[raw] {
                    continue;
                }
                let candidate = IndexId::new(raw);
                if let Some(c) = &constraints {
                    if !c.can_place(candidate, &built) {
                        continue;
                    }
                }

                // Immediate benefit of adding the candidate.
                let mut with_candidate = built.clone();
                with_candidate[raw] = true;
                let mut benefit = 0.0;
                for q in instance.query_ids() {
                    let previous = current_runtime_by_query[q.raw()];
                    let next = instance.query_runtime(q)
                        - evaluator.query_speedup_with(q, &with_candidate);
                    benefit += previous - next;

                    if self.config.interaction_credit {
                        // Credit for plans the candidate participates in that
                        // are still missing other indexes.
                        for &pid in instance.plans_of_query(q) {
                            let plan = instance.plan(pid);
                            if !plan.uses(candidate) {
                                continue;
                            }
                            let runtime_if_plan =
                                instance.query_runtime(q) - instance.plan_speedup(pid);
                            let interaction = next - runtime_if_plan;
                            let missing = plan
                                .indexes
                                .iter()
                                .filter(|i| !with_candidate[i.raw()])
                                .count();
                            if interaction > 0.0 && missing > 0 {
                                benefit += interaction / missing as f64;
                            }
                        }
                    }
                }

                let cost = instance.effective_build_cost(candidate, &built).max(1e-12);
                let density = benefit / cost;
                if density > best_density {
                    best_density = density;
                    best_index = Some(candidate);
                }
            }

            // All remaining candidates blocked or zero-benefit: fall back to
            // any placeable index (ties broken by id for determinism).
            let chosen = best_index.unwrap_or_else(|| {
                (0..n)
                    .map(IndexId::new)
                    .find(|&i| {
                        !built[i.raw()]
                            && constraints
                                .as_ref()
                                .map(|c| c.can_place(i, &built))
                                .unwrap_or(true)
                    })
                    .expect("no placeable index left; precedence constraints are cyclic")
            });
            built[chosen.raw()] = true;
            order.push(chosen);
        }

        Deployment::new(order)
    }

    /// Runs the greedy and wraps the result in a [`SolveResult`].
    pub fn solve(&self, instance: &ProblemInstance) -> SolveResult {
        let started = Instant::now();
        let deployment = self.construct(instance);
        let objective = ObjectiveEvaluator::new(instance).evaluate_area(&deployment);
        SolveResult::heuristic(
            if self.config.interaction_credit {
                "greedy"
            } else {
                "greedy-naive"
            },
            deployment,
            objective,
            started.elapsed().as_secs_f64(),
        )
    }
}

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        if self.config.interaction_credit {
            "greedy"
        } else {
            "greedy-naive"
        }
    }

    /// Greedy is a one-shot construction: the budget only gates whether it
    /// starts at all (cancellation), and the single solution it produces is
    /// recorded as a one-point trajectory and published to the context.
    fn run(
        &self,
        instance: &ProblemInstance,
        _budget: SearchBudget,
        ctx: &SolveContext,
    ) -> SolveResult {
        if ctx.is_cancelled() {
            return SolveResult::did_not_finish(self.name(), 0.0, 0);
        }
        let mut result = self.solve(instance);
        result
            .trajectory
            .record(result.elapsed_seconds, result.objective);
        if let Some(deployment) = &result.deployment {
            ctx.publish_deployment(result.objective, deployment.order());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Section 4.2: covering index should be built first.
    fn competing_example() -> ProblemInstance {
        let mut b = ProblemInstance::builder("competing");
        let i_city = b.add_named_index("i(City)", 4.0);
        let i_cov = b.add_named_index("i(City,Salary)", 6.0);
        let q = b.add_named_query("avg_salary", 30.0);
        b.add_plan(q, vec![i_city], 5.0);
        b.add_plan(q, vec![i_cov], 20.0);
        b.add_build_interaction(i_city, i_cov, 3.0);
        b.build().unwrap()
    }

    #[test]
    fn greedy_prefers_the_denser_covering_index_first() {
        let inst = competing_example();
        let d = GreedySolver::new().construct(&inst);
        // density(i_cov) = 20/6 > density(i_city) = 5/4.
        assert_eq!(d.at(0), IndexId::new(1));
        assert!(d.is_valid_for(&inst));
    }

    #[test]
    fn interaction_credit_unlocks_multi_index_plans_early() {
        // A join query needs both i0 and i1; i2 has a small solo benefit.
        // Without the credit, i2 (solo benefit 6/2=3 density) is picked before
        // i0/i1 (no solo benefit); with the credit, the pair comes first.
        let mut b = ProblemInstance::builder("join");
        let i0 = b.add_index(2.0);
        let i1 = b.add_index(2.0);
        let i2 = b.add_index(2.0);
        let q_join = b.add_query(100.0);
        b.add_plan(q_join, vec![i0, i1], 80.0);
        let q_small = b.add_query(10.0);
        b.add_plan(q_small, vec![i2], 6.0);
        let inst = b.build().unwrap();

        let with_credit = GreedySolver::new().construct(&inst);
        let naive = GreedySolver::with_config(GreedyConfig {
            interaction_credit: false,
            ..GreedyConfig::default()
        })
        .construct(&inst);

        let eval = ObjectiveEvaluator::new(&inst);
        assert!(eval.evaluate_area(&with_credit) <= eval.evaluate_area(&naive));
        // With the credit the join pair is scheduled before the small index.
        let pos2 = with_credit.position_of(IndexId::new(2)).unwrap();
        assert_eq!(
            pos2, 2,
            "small index should come last, order {with_credit:?}"
        );
    }

    #[test]
    fn greedy_respects_hard_precedences() {
        let mut b = ProblemInstance::builder("prec");
        let clustered = b.add_index(10.0);
        let secondary = b.add_index(1.0);
        let q = b.add_query(50.0);
        // The secondary looks far more attractive (cheap, huge benefit)...
        b.add_plan(q, vec![secondary], 40.0);
        b.add_plan(q, vec![clustered], 5.0);
        // ...but it must follow the clustered index.
        b.add_precedence(clustered, secondary);
        let inst = b.build().unwrap();
        let d = GreedySolver::new().construct(&inst);
        assert!(d.is_valid_for(&inst));
        assert_eq!(d.at(0), clustered);
    }

    #[test]
    fn solve_reports_objective_matching_evaluator() {
        let inst = competing_example();
        let r = GreedySolver::new().solve(&inst);
        let eval = ObjectiveEvaluator::new(&inst);
        assert_eq!(
            r.objective,
            eval.evaluate_area(r.deployment.as_ref().unwrap())
        );
        assert_eq!(r.solver, "greedy");
    }

    #[test]
    fn greedy_beats_worst_case_order_on_larger_instances() {
        use idd_core::Deployment;
        // Build a moderate instance by hand: 12 indexes, mixed plans.
        let mut b = ProblemInstance::builder("m");
        let idx: Vec<IndexId> = (0..12).map(|i| b.add_index(2.0 + (i % 5) as f64)).collect();
        for q in 0..8 {
            let qid = b.add_query(60.0 + q as f64 * 10.0);
            b.add_plan(qid, vec![idx[q % 12]], 10.0);
            b.add_plan(qid, vec![idx[q % 12], idx[(q + 3) % 12]], 25.0);
        }
        let inst = b.build().unwrap();
        let eval = ObjectiveEvaluator::new(&inst);
        let greedy = GreedySolver::new().construct(&inst);
        let greedy_area = eval.evaluate_area(&greedy);
        // Compare to the reverse-identity order (arbitrary but fixed).
        let reverse = Deployment::new((0..12).rev().map(IndexId::new).collect());
        let reverse_area = eval.evaluate_area(&reverse);
        assert!(greedy_area <= reverse_area);
    }
}
