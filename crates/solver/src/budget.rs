//! Time and node budgets shared by the search algorithms.

use crate::solver::CancelToken;
use std::time::{Duration, Instant};

/// A search budget: wall-clock limit and/or node (iteration) limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchBudget {
    /// Maximum wall-clock time; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum number of explored nodes / iterations; `None` means unlimited.
    pub node_limit: Option<u64>,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            time_limit: Some(Duration::from_secs(10)),
            node_limit: None,
        }
    }
}

impl SearchBudget {
    /// Budget limited only by wall-clock seconds.
    pub fn seconds(secs: f64) -> Self {
        Self {
            time_limit: Some(Duration::from_secs_f64(secs)),
            node_limit: None,
        }
    }

    /// Budget limited only by node count.
    pub fn nodes(limit: u64) -> Self {
        Self {
            time_limit: None,
            node_limit: Some(limit),
        }
    }

    /// Budget limited by both time and nodes.
    pub fn bounded(secs: f64, nodes: u64) -> Self {
        Self {
            time_limit: Some(Duration::from_secs_f64(secs)),
            node_limit: Some(nodes),
        }
    }

    /// Unlimited budget (only sensible for tiny instances in tests).
    pub fn unlimited() -> Self {
        Self {
            time_limit: None,
            node_limit: None,
        }
    }

    /// Starts a stopwatch for this budget.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            budget: *self,
            started: Instant::now(),
            nodes: 0,
            cancel: None,
        }
    }

    /// Starts a stopwatch that additionally treats a cooperative
    /// cancellation request as budget exhaustion. Every search loop that
    /// polls [`BudgetClock::exhausted`] thereby becomes cancellable without
    /// further changes.
    pub fn start_cancellable(&self, cancel: &CancelToken) -> BudgetClock {
        BudgetClock {
            budget: *self,
            started: Instant::now(),
            nodes: 0,
            cancel: Some(cancel.clone()),
        }
    }
}

/// A running stopwatch against a [`SearchBudget`].
#[derive(Debug, Clone)]
pub struct BudgetClock {
    budget: SearchBudget,
    started: Instant,
    nodes: u64,
    cancel: Option<CancelToken>,
}

impl BudgetClock {
    /// Seconds elapsed since the clock started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Counts one explored node / iteration.
    pub fn count_node(&mut self) {
        self.nodes += 1;
    }

    /// Counts `n` explored nodes.
    pub fn count_nodes(&mut self, n: u64) {
        self.nodes += n;
    }

    /// Total nodes counted so far.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// `true` when cancellation was requested on the attached token (if
    /// any). Exposed so solvers can distinguish "cancelled by a peer" from
    /// "ran out of budget" when reporting.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// `true` when either limit has been exceeded or cancellation was
    /// requested.
    pub fn exhausted(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        if let Some(limit) = self.budget.node_limit {
            if self.nodes >= limit {
                return true;
            }
        }
        if let Some(limit) = self.budget.time_limit {
            if self.started.elapsed() >= limit {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_limit_is_enforced() {
        let mut clock = SearchBudget::nodes(3).start();
        assert!(!clock.exhausted());
        clock.count_nodes(3);
        assert!(clock.exhausted());
        assert_eq!(clock.nodes(), 3);
    }

    #[test]
    fn unlimited_budget_never_exhausts_by_nodes() {
        let mut clock = SearchBudget::unlimited().start();
        clock.count_nodes(1_000_000);
        assert!(!clock.exhausted());
    }

    #[test]
    fn time_limit_is_enforced() {
        let clock = SearchBudget::seconds(0.0).start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(clock.exhausted());
        assert!(clock.elapsed_seconds() > 0.0);
    }

    #[test]
    fn cancellation_exhausts_the_clock() {
        use crate::solver::CancelToken;
        let token = CancelToken::new();
        let clock = SearchBudget::unlimited().start_cancellable(&token);
        assert!(!clock.exhausted());
        token.cancel();
        assert!(clock.is_cancelled());
        assert!(clock.exhausted());
        // A plain clock is never cancelled.
        assert!(!SearchBudget::unlimited().start().is_cancelled());
    }

    #[test]
    fn constructors_set_fields() {
        let b = SearchBudget::bounded(1.5, 10);
        assert_eq!(b.node_limit, Some(10));
        assert!(b.time_limit.unwrap().as_secs_f64() > 1.4);
        assert!(SearchBudget::default().time_limit.is_some());
    }
}
