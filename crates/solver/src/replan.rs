//! Mid-flight replanning: re-optimizing the unbuilt suffix of a deployment.
//!
//! When an evolution event lands (workload drift, design revision, …) the
//! deployment runtime freezes the built prefix and derives a *residual*
//! instance for the unbuilt suffix
//! ([`ProblemInstance::residual`](idd_core::ProblemInstance::residual)).
//! This module answers the follow-up question: *given that residual instance
//! and the order we were about to execute, what should the new suffix order
//! be?*
//!
//! Three strategies, in increasing effort:
//!
//! * [`ReplanStrategy::KeepOrder`] — no re-optimization; the current suffix
//!   order is kept verbatim (the "static plan that ignores events" baseline
//!   of the `table9` experiment).
//! * [`ReplanStrategy::Greedy`] — one pass of the interaction-guided greedy
//!   over the residual instance; instant, and already workload-aware.
//! * [`ReplanStrategy::Portfolio`] — the cooperative portfolio (greedy,
//!   tabu, LNS, VNS, CP+) raced over the residual instance, *warm-started
//!   from the current suffix order*: the incumbent order is published to the
//!   [`SharedIncumbent`](crate::solver::SharedIncumbent) before the race and
//!   handed to the CP member as its initial incumbent
//!   ([`CpConfig::initial`]), so every improvement is an improvement over
//!   the plan actually in flight.
//!
//! Whatever the strategy, the returned order is never worse than the warm
//! start: replanning can only help, by construction.

use crate::budget::SearchBudget;
use crate::exact::{CpConfig, CpSolver};
use crate::greedy::GreedySolver;
use crate::local::{
    LnsConfig, LnsSolver, SwapStrategy, TabuConfig, TabuSolver, VnsConfig, VnsSolver,
};
use crate::portfolio::{PortfolioConfig, PortfolioSolver};
use crate::result::CoopStats;
use crate::solver::{CooperationPolicy, SolveContext, Solver};
use idd_core::{Deployment, IndexId, ObjectiveEvaluator, ProblemInstance, ResidualInstance};

/// How to re-optimize a residual instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanStrategy {
    /// Keep the current suffix order (the event-ignoring baseline).
    KeepOrder,
    /// One interaction-guided greedy pass over the residual instance.
    Greedy,
    /// The cooperative portfolio, warm-started from the current order.
    Portfolio {
        /// Cooperation policy for the race ([`CooperationPolicy::Off`]
        /// keeps every member deterministic under node budgets).
        cooperation: CooperationPolicy,
        /// Cancel the race on the first optimality proof. Leave `false`
        /// when bit-for-bit reproducibility matters: cancellation timing is
        /// scheduler-dependent.
        cancel_on_optimal: bool,
    },
}

impl ReplanStrategy {
    /// Short label used by reports ("static", "greedy", "portfolio").
    pub fn label(&self) -> &'static str {
        match self {
            ReplanStrategy::KeepOrder => "static",
            ReplanStrategy::Greedy => "greedy",
            ReplanStrategy::Portfolio { .. } => "portfolio",
        }
    }
}

/// A replanner: strategy + per-replan budget.
#[derive(Debug, Clone)]
pub struct Replanner {
    /// The strategy to apply at every replan point.
    pub strategy: ReplanStrategy,
    /// Budget for each replan (node budgets keep runs machine-independent).
    pub budget: SearchBudget,
}

/// The outcome of one replan over a residual instance.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// The chosen suffix order, in *residual* ids.
    pub deployment: Deployment,
    /// Its objective area on the residual instance.
    pub objective: f64,
    /// The objective of the warm-start order, if one was usable.
    pub warm_start_objective: Option<f64>,
    /// Which solver produced the chosen order ("warm-start" when nothing
    /// beat the incumbent plan).
    pub solver: String,
    /// `true` when the chosen order strictly improves on the warm start.
    pub improved: bool,
    /// Merged cooperation counters of the portfolio race (zeros otherwise).
    pub coop: CoopStats,
    /// Wall-clock seconds spent replanning.
    pub elapsed_seconds: f64,
}

impl Replanner {
    /// Creates a replanner.
    pub fn new(strategy: ReplanStrategy, budget: SearchBudget) -> Self {
        Self { strategy, budget }
    }

    /// Re-optimizes `residual`, warm-starting from `warm_start` (the
    /// current suffix order projected into residual ids) when it is a valid
    /// order for the residual instance.
    ///
    /// Candidates are compared deterministically: the warm start first, then
    /// each solver output in roster order, keeping the first strict
    /// improvement on ties — so a node-budgeted, cooperation-off replan is
    /// bit-for-bit reproducible.
    pub fn replan(
        &self,
        residual: &ProblemInstance,
        warm_start: Option<&Deployment>,
    ) -> ReplanOutcome {
        let started = std::time::Instant::now();
        let evaluator = ObjectiveEvaluator::new(residual);
        let warm = warm_start
            .filter(|d| d.is_valid_for(residual))
            .map(|d| (d.clone(), evaluator.evaluate_area(d)));
        let warm_objective = warm.as_ref().map(|(_, a)| *a);

        let mut best = warm
            .clone()
            .map(|(d, a)| (d, a, "warm-start".to_string()))
            .unwrap_or_else(|| {
                // No usable warm start (fresh instance, stale projection):
                // greedy provides the incumbent every strategy measures
                // against.
                let d = GreedySolver::new().construct(residual);
                let a = evaluator.evaluate_area(&d);
                (d, a, "greedy".to_string())
            });

        let mut coop = CoopStats::default();
        match self.strategy {
            ReplanStrategy::KeepOrder => {}
            ReplanStrategy::Greedy => {
                let d = GreedySolver::new().construct(residual);
                let a = evaluator.evaluate_area(&d);
                if a < best.1 - 1e-12 {
                    best = (d, a, "greedy".to_string());
                }
            }
            ReplanStrategy::Portfolio {
                cooperation,
                cancel_on_optimal,
            } => {
                let portfolio = PortfolioSolver::with_members(
                    self.budget,
                    replan_roster(self.budget, warm.as_ref().map(|(d, _)| d.clone())),
                )
                .with_config(PortfolioConfig {
                    budget: self.budget,
                    cancel_on_optimal,
                    cooperation,
                });
                // Publish the in-flight order so warm-start members adopt it
                // and every observer sees "never worse than the plan we
                // already had".
                let ctx = SolveContext::new();
                if let Some((d, a)) = &warm {
                    ctx.publish_deployment(*a, d.order());
                }
                let outcome = portfolio.solve_detailed_in(residual, &ctx);
                coop = outcome.combined.coop;
                for member in &outcome.members {
                    if let Some(d) = &member.deployment {
                        if member.objective < best.1 - 1e-12 {
                            best = (d.clone(), member.objective, member.solver.clone());
                        }
                    }
                }
            }
        }

        let improved = warm_objective.is_some_and(|w| best.1 < w - 1e-12);
        ReplanOutcome {
            deployment: best.0,
            objective: best.1,
            warm_start_objective: warm_objective,
            solver: best.2,
            improved,
            coop,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Replans the pending suffix of a partially-executed deployment
    /// *around* its committed work: `residual` carries the conditioning on
    /// the built prefix plus any in-flight builds
    /// ([`idd_core::ProblemInstance::residual_for_replan`]), and `pending`
    /// is the surviving suffix — the parent-id order that was about to
    /// execute, which becomes the warm start when it projects cleanly.
    ///
    /// Returns the replan outcome (residual ids, as
    /// [`Replanner::replan`] does) together with the new pending order
    /// lifted back to parent ids. In-flight indexes never appear in the
    /// returned order — they are not residual indexes, so no strategy can
    /// schedule (or rebuild) them; callers splice the result behind their
    /// frozen commitment (the deploy runtime appends it to its
    /// dispatch-order committed sequence;
    /// [`ResidualInstance::splice_around`] is the equivalent for callers
    /// tracking the built prefix and in-flight set separately).
    ///
    /// Returns `None` when `pending` is not a permutation of the residual
    /// indexes — plan maintenance went out of sync with the instance, which
    /// callers must surface as a bug rather than replan around.
    pub fn replan_around(
        &self,
        residual: &ResidualInstance,
        pending: &[IndexId],
    ) -> Option<(ReplanOutcome, Vec<IndexId>)> {
        let warm = residual.project_order(pending)?;
        let outcome = self.replan(residual.instance(), Some(&warm));
        let new_pending = residual.lift_order(outcome.deployment.order());
        debug_assert!(
            new_pending
                .iter()
                .all(|i| !residual.in_flight().contains(i)),
            "replan scheduled an in-flight index"
        );
        Some((outcome, new_pending))
    }
}

/// The replan roster: greedy (instant), best-swap tabu, LNS, VNS, CP+ with
/// the in-flight order as its initial incumbent. Fixed seeds — a replan at
/// the same residual instance is reproducible.
fn replan_roster(budget: SearchBudget, warm_start: Option<Deployment>) -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(GreedySolver::new()),
        Box::new(TabuSolver::with_config(TabuConfig {
            strategy: SwapStrategy::Best,
            budget,
            ..TabuConfig::default()
        })),
        Box::new(LnsSolver::with_config(LnsConfig {
            budget,
            ..LnsConfig::default()
        })),
        Box::new(VnsSolver::with_config(VnsConfig {
            budget,
            ..VnsConfig::default()
        })),
        Box::new(CpSolver::with_config(CpConfig {
            budget,
            initial: warm_start,
            ..CpConfig::with_properties(budget)
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::IndexId;

    fn residual_like(n: usize) -> ProblemInstance {
        let mut b = ProblemInstance::builder("replan");
        let idx: Vec<IndexId> = (0..n).map(|k| b.add_index(2.0 + (k % 4) as f64)).collect();
        for q in 0..n {
            let qid = b.add_query(40.0 + (q % 5) as f64 * 20.0);
            b.add_plan(qid, vec![idx[q % n]], 7.0);
            b.add_plan(qid, vec![idx[q % n], idx[(q + 2) % n]], 19.0);
        }
        b.add_build_interaction(idx[0], idx[1], 1.0);
        b.build().unwrap()
    }

    #[test]
    fn keep_order_returns_the_warm_start_verbatim() {
        let inst = residual_like(6);
        let warm = Deployment::from_raw([5, 4, 3, 2, 1, 0]);
        let replanner = Replanner::new(ReplanStrategy::KeepOrder, SearchBudget::nodes(10));
        let outcome = replanner.replan(&inst, Some(&warm));
        assert_eq!(outcome.deployment, warm);
        assert_eq!(outcome.solver, "warm-start");
        assert!(!outcome.improved);
        assert_eq!(outcome.warm_start_objective, Some(outcome.objective));
    }

    #[test]
    fn missing_warm_start_falls_back_to_greedy() {
        let inst = residual_like(5);
        let replanner = Replanner::new(ReplanStrategy::KeepOrder, SearchBudget::nodes(10));
        let outcome = replanner.replan(&inst, None);
        assert_eq!(outcome.solver, "greedy");
        assert!(outcome.deployment.is_valid_for(&inst));
        assert!(outcome.warm_start_objective.is_none());
        // A stale warm start (wrong length) is treated as missing.
        let stale = Deployment::from_raw([0, 1]);
        let outcome2 = replanner.replan(&inst, Some(&stale));
        assert_eq!(outcome2.solver, "greedy");
    }

    #[test]
    fn replanning_never_worsens_the_warm_start() {
        let inst = residual_like(7);
        let evaluator = ObjectiveEvaluator::new(&inst);
        let warm = Deployment::identity(7);
        let warm_area = evaluator.evaluate_area(&warm);
        for strategy in [
            ReplanStrategy::KeepOrder,
            ReplanStrategy::Greedy,
            ReplanStrategy::Portfolio {
                cooperation: CooperationPolicy::Off,
                cancel_on_optimal: false,
            },
        ] {
            let outcome =
                Replanner::new(strategy, SearchBudget::nodes(60)).replan(&inst, Some(&warm));
            assert!(
                outcome.objective <= warm_area + 1e-12,
                "{}: {} > {warm_area}",
                strategy.label(),
                outcome.objective
            );
            assert!(outcome.deployment.is_valid_for(&inst));
            assert_eq!(
                evaluator.evaluate_area(&outcome.deployment),
                outcome.objective
            );
            assert_eq!(outcome.improved, outcome.objective < warm_area - 1e-12);
        }
    }

    #[test]
    fn deterministic_portfolio_replan_is_reproducible() {
        let inst = residual_like(6);
        let warm = Deployment::identity(6);
        let run = || {
            Replanner::new(
                ReplanStrategy::Portfolio {
                    cooperation: CooperationPolicy::Off,
                    cancel_on_optimal: false,
                },
                SearchBudget::nodes(50),
            )
            .replan(&inst, Some(&warm))
        };
        let a = run();
        let b = run();
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.solver, b.solver);
    }

    #[test]
    fn replan_around_keeps_in_flight_out_of_the_new_suffix() {
        // Parent world: 6 indexes; i0 built, i1 and i4 in flight, the
        // pending suffix is [i5, i3, i2]. Whatever the strategy returns, the
        // committed indexes must never reappear.
        let parent = residual_like(6);
        let mut built = vec![false; 6];
        built[0] = true;
        let in_flight = [IndexId::new(1), IndexId::new(4)];
        let residual = parent
            .residual_for_replan(&built, &in_flight, &[false; 6])
            .unwrap();
        let pending = [IndexId::new(5), IndexId::new(3), IndexId::new(2)];
        for strategy in [
            ReplanStrategy::KeepOrder,
            ReplanStrategy::Greedy,
            ReplanStrategy::Portfolio {
                cooperation: CooperationPolicy::Off,
                cancel_on_optimal: false,
            },
        ] {
            let replanner = Replanner::new(strategy, SearchBudget::nodes(40));
            let (outcome, new_pending) = replanner
                .replan_around(&residual, &pending)
                .expect("pending is a permutation of the residual");
            // Same index set as the old pending, no committed index leaked.
            let mut sorted = new_pending.clone();
            sorted.sort_unstable_by_key(|i| i.raw());
            assert_eq!(sorted, [IndexId::new(2), IndexId::new(3), IndexId::new(5)]);
            // The warm start survived as a candidate: never worse.
            let warm_area = outcome.warm_start_objective.expect("projected cleanly");
            assert!(outcome.objective <= warm_area + 1e-12);
            // The spliced order extends the frozen commitment verbatim.
            let spliced = residual.splice_around(
                &[IndexId::new(0)],
                &residual.project_order(&new_pending).unwrap(),
            );
            assert!(spliced.starts_with(&[IndexId::new(0), IndexId::new(1), IndexId::new(4)]));
            assert!(spliced.is_valid_for(&parent));
        }
    }

    #[test]
    fn replan_around_rejects_a_desynced_pending_order() {
        let parent = residual_like(5);
        let built = vec![false; 5];
        let residual = parent
            .residual_for_replan(&built, &[IndexId::new(0)], &[false; 5])
            .unwrap();
        let replanner = Replanner::new(ReplanStrategy::Greedy, SearchBudget::nodes(10));
        // Pending that still names the in-flight index is out of sync.
        let stale = [
            IndexId::new(0),
            IndexId::new(1),
            IndexId::new(2),
            IndexId::new(3),
        ];
        assert!(replanner.replan_around(&residual, &stale).is_none());
        // Pending that lost an index is out of sync too.
        assert!(replanner
            .replan_around(&residual, &[IndexId::new(1), IndexId::new(2)])
            .is_none());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(ReplanStrategy::KeepOrder.label(), "static");
        assert_eq!(ReplanStrategy::Greedy.label(), "greedy");
        assert_eq!(
            ReplanStrategy::Portfolio {
                cooperation: CooperationPolicy::WarmStart,
                cancel_on_optimal: true
            }
            .label(),
            "portfolio"
        );
    }
}
