//! Mid-flight replanning: re-optimizing the unbuilt suffix of a deployment.
//!
//! When an evolution event lands (workload drift, design revision, …) the
//! deployment runtime freezes the built prefix and derives a *residual*
//! instance for the unbuilt suffix
//! ([`ProblemInstance::residual`](idd_core::ProblemInstance::residual)).
//! This module answers the follow-up question: *given that residual instance
//! and the order we were about to execute, what should the new suffix order
//! be?*
//!
//! Three strategies, in increasing effort:
//!
//! * [`ReplanStrategy::KeepOrder`] — no re-optimization; the current suffix
//!   order is kept verbatim (the "static plan that ignores events" baseline
//!   of the `table9` experiment).
//! * [`ReplanStrategy::Greedy`] — one pass of the interaction-guided greedy
//!   over the residual instance; instant, and already workload-aware.
//! * [`ReplanStrategy::Portfolio`] — the cooperative portfolio (greedy,
//!   tabu, LNS, VNS, CP+) raced over the residual instance, *warm-started
//!   from the current suffix order*: the incumbent order is published to the
//!   [`SharedIncumbent`](crate::solver::SharedIncumbent) before the race and
//!   handed to the CP member as its initial incumbent
//!   ([`CpConfig::initial`]), so every improvement is an improvement over
//!   the plan actually in flight.
//!
//! Whatever the strategy, the returned order is never worse than the warm
//! start: replanning can only help, by construction.

use crate::budget::SearchBudget;
use crate::exact::{CpConfig, CpSolver};
use crate::greedy::GreedySolver;
use crate::local::{
    LnsConfig, LnsSolver, SwapStrategy, TabuConfig, TabuSolver, VnsConfig, VnsSolver,
};
use crate::portfolio::{PortfolioConfig, PortfolioSolver};
use crate::result::CoopStats;
use crate::solver::{CooperationPolicy, SolveContext, Solver};
use idd_core::{
    Deployment, IndexId, ObjectiveEvaluator, ProblemInstance, ResidualInstance,
    SlotScheduleEvaluator,
};

/// How to re-optimize a residual instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanStrategy {
    /// Keep the current suffix order (the event-ignoring baseline).
    KeepOrder,
    /// One interaction-guided greedy pass over the residual instance.
    Greedy,
    /// The cooperative portfolio, warm-started from the current order.
    Portfolio {
        /// Cooperation policy for the race ([`CooperationPolicy::Off`]
        /// keeps every member deterministic under node budgets).
        cooperation: CooperationPolicy,
        /// Cancel the race on the first optimality proof. Leave `false`
        /// when bit-for-bit reproducibility matters: cancellation timing is
        /// scheduler-dependent.
        cancel_on_optimal: bool,
    },
}

impl ReplanStrategy {
    /// Short label used by reports ("static", "greedy", "portfolio").
    pub fn label(&self) -> &'static str {
        match self {
            ReplanStrategy::KeepOrder => "static",
            ReplanStrategy::Greedy => "greedy",
            ReplanStrategy::Portfolio { .. } => "portfolio",
        }
    }
}

/// How candidate suffix orders are *scored* (and therefore ranked) during
/// a replan. Orthogonal to the [`ReplanStrategy`], which decides how
/// candidates are *generated*.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SuffixScoring {
    /// The serial objective area
    /// ([`ObjectiveEvaluator::evaluate_area`]) — the paper's one-build-at-
    /// a-time model, and the default. Exact for a serial executor; a proxy
    /// for a concurrent one.
    #[default]
    Serial,
    /// The realized k-slot area: each candidate is list-scheduled onto
    /// `slots` concurrent build slots by [`SlotScheduleEvaluator`] (under
    /// work-conserving or head-of-line dispatch, matching the executing
    /// runtime), so candidates are ranked by the cost the runtime will
    /// actually realize on a quiet tail. With `slots = 1` this coincides
    /// with [`SuffixScoring::Serial`] bit-for-bit.
    SlotAware {
        /// Number of concurrent build slots to schedule onto.
        slots: usize,
        /// `true` to list-schedule with work-conserving dispatch (first
        /// eligible pending index runs), `false` for head-of-line.
        work_conserving: bool,
    },
}

impl SuffixScoring {
    /// Short label for reports ("serial" / "slot-aware").
    pub fn label(&self) -> &'static str {
        match self {
            SuffixScoring::Serial => "serial",
            SuffixScoring::SlotAware { .. } => "slot-aware",
        }
    }
}

/// A replanner: strategy + per-replan budget + candidate scoring.
#[derive(Debug, Clone)]
pub struct Replanner {
    /// The strategy to apply at every replan point.
    pub strategy: ReplanStrategy,
    /// Budget for each replan (node budgets keep runs machine-independent).
    pub budget: SearchBudget,
    /// How candidates are scored ([`SuffixScoring::Serial`] by default).
    /// The internal searches always *optimize* the serial objective (that
    /// is what their delta evaluators speak); the scoring decides which
    /// candidate — warm start included — *wins*.
    pub scoring: SuffixScoring,
}

/// The outcome of one replan over a residual instance.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// The chosen suffix order, in *residual* ids.
    pub deployment: Deployment,
    /// Its objective on the residual instance, under the replanner's
    /// configured [`SuffixScoring`] (serial area by default, realized
    /// k-slot area when slot-aware).
    pub objective: f64,
    /// The objective of the warm-start order under the same scoring, if one
    /// was usable.
    pub warm_start_objective: Option<f64>,
    /// Which solver produced the chosen order ("warm-start" when nothing
    /// beat the incumbent plan).
    pub solver: String,
    /// `true` when the chosen order strictly improves on the warm start.
    pub improved: bool,
    /// Merged cooperation counters of the portfolio race (zeros otherwise).
    pub coop: CoopStats,
    /// Wall-clock seconds spent replanning.
    pub elapsed_seconds: f64,
}

impl Replanner {
    /// Creates a replanner with the default (serial) candidate scoring.
    pub fn new(strategy: ReplanStrategy, budget: SearchBudget) -> Self {
        Self {
            strategy,
            budget,
            scoring: SuffixScoring::default(),
        }
    }

    /// Sets the candidate scoring.
    pub fn with_scoring(mut self, scoring: SuffixScoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// The slot-schedule evaluator the configured scoring calls for, if it
    /// is genuinely different from the serial objective (`slots > 1`).
    /// `busy_until` marks slots still occupied at the replan point (offsets
    /// from the residual's t = 0 at which they free up).
    fn slot_evaluator<'a>(
        &self,
        residual: &'a ProblemInstance,
        busy_until: &[f64],
    ) -> Option<SlotScheduleEvaluator<'a>> {
        match self.scoring {
            SuffixScoring::Serial => None,
            SuffixScoring::SlotAware { slots, .. } if slots <= 1 => None,
            SuffixScoring::SlotAware {
                slots,
                work_conserving,
            } => {
                let evaluator =
                    SlotScheduleEvaluator::new(residual, slots).with_busy_until(busy_until);
                Some(if work_conserving {
                    evaluator
                } else {
                    evaluator.head_of_line()
                })
            }
        }
    }

    /// Re-optimizes `residual`, warm-starting from `warm_start` (the
    /// current suffix order projected into residual ids) when it is a valid
    /// order for the residual instance.
    ///
    /// Candidates are compared deterministically: the warm start first, then
    /// each solver output in roster order, keeping the first strict
    /// improvement on ties — so a node-budgeted, cooperation-off replan is
    /// bit-for-bit reproducible.
    pub fn replan(
        &self,
        residual: &ProblemInstance,
        warm_start: Option<&Deployment>,
    ) -> ReplanOutcome {
        self.replan_occupied(residual, warm_start, &[])
    }

    /// [`Replanner::replan`], with slots still occupied at the replan
    /// point: `busy_until[i]` is the offset (from the residual's t = 0) at
    /// which the i-th occupied slot frees up — what a mid-flight replan sees
    /// while committed builds drain. Only slot-aware scoring reads it; a
    /// serial proxy has no slots to occupy. An empty slice is exactly
    /// [`Replanner::replan`].
    pub fn replan_occupied(
        &self,
        residual: &ProblemInstance,
        warm_start: Option<&Deployment>,
        busy_until: &[f64],
    ) -> ReplanOutcome {
        let started = std::time::Instant::now();
        let evaluator = ObjectiveEvaluator::new(residual);
        // With slot-aware scoring every candidate — warm start included —
        // is ranked by its realized k-slot area; the solvers underneath
        // still *search* with the serial objective (their delta evaluators
        // speak serial), so this re-scores their outputs. With serial
        // scoring (or one slot) the closure is the plain serial area and
        // behavior is unchanged bit-for-bit.
        let slot_evaluator = self.slot_evaluator(residual, busy_until);
        let score = |d: &Deployment| match &slot_evaluator {
            Some(slot) => slot.evaluate_area(d),
            None => evaluator.evaluate_area(d),
        };
        let warm = warm_start
            .filter(|d| d.is_valid_for(residual))
            .map(|d| (d.clone(), score(d)));
        let warm_objective = warm.as_ref().map(|(_, a)| *a);

        let mut best = warm
            .clone()
            .map(|(d, a)| (d, a, "warm-start".to_string()))
            .unwrap_or_else(|| {
                // No usable warm start (fresh instance, stale projection):
                // greedy provides the incumbent every strategy measures
                // against.
                let d = GreedySolver::new().construct(residual);
                let a = score(&d);
                (d, a, "greedy".to_string())
            });

        let mut coop = CoopStats::default();
        match self.strategy {
            ReplanStrategy::KeepOrder => {}
            ReplanStrategy::Greedy => {
                let d = GreedySolver::new().construct(residual);
                let a = score(&d);
                if a < best.1 - 1e-12 {
                    best = (d, a, "greedy".to_string());
                }
            }
            ReplanStrategy::Portfolio {
                cooperation,
                cancel_on_optimal,
            } => {
                let portfolio = PortfolioSolver::with_members(
                    self.budget,
                    replan_roster(self.budget, warm.as_ref().map(|(d, _)| d.clone())),
                )
                .with_config(PortfolioConfig {
                    budget: self.budget,
                    cancel_on_optimal,
                    cooperation,
                });
                // Publish the in-flight order so warm-start members adopt it
                // and every observer sees "never worse than the plan we
                // already had". The incumbent lives in the members' search
                // domain — the *serial* objective — so the warm start is
                // published at its serial area even when candidates are
                // ranked slot-aware (identical bits under serial scoring).
                let ctx = SolveContext::new();
                if let Some((d, _)) = &warm {
                    ctx.publish_deployment(evaluator.evaluate_area(d), d.order());
                }
                let outcome = portfolio.solve_detailed_in(residual, &ctx);
                coop = outcome.combined.coop;
                for member in &outcome.members {
                    if let Some(d) = &member.deployment {
                        // Members report the serial area they searched
                        // with; under slot-aware scoring each candidate is
                        // re-scored by the k-slot schedule before it may
                        // unseat the incumbent.
                        let objective = match &slot_evaluator {
                            Some(slot) => slot.evaluate_area(d),
                            None => member.objective,
                        };
                        if objective < best.1 - 1e-12 {
                            best = (d.clone(), objective, member.solver.clone());
                        }
                    }
                }
            }
        }

        let improved = warm_objective.is_some_and(|w| best.1 < w - 1e-12);
        ReplanOutcome {
            deployment: best.0,
            objective: best.1,
            warm_start_objective: warm_objective,
            solver: best.2,
            improved,
            coop,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Replans the pending suffix of a partially-executed deployment
    /// *around* its committed work: `residual` carries the conditioning on
    /// the built prefix plus any in-flight builds
    /// ([`idd_core::ProblemInstance::residual_for_replan`]), and `pending`
    /// is the surviving suffix — the parent-id order that was about to
    /// execute, which becomes the warm start when it projects cleanly.
    ///
    /// Returns the replan outcome (residual ids, as
    /// [`Replanner::replan`] does) together with the new pending order
    /// lifted back to parent ids. In-flight indexes never appear in the
    /// returned order — they are not residual indexes, so no strategy can
    /// schedule (or rebuild) them; callers splice the result behind their
    /// frozen commitment (the deploy runtime appends it to its
    /// dispatch-order committed sequence;
    /// [`ResidualInstance::splice_around`] is the equivalent for callers
    /// tracking the built prefix and in-flight set separately).
    ///
    /// Returns `None` when `pending` is not a permutation of the residual
    /// indexes — plan maintenance went out of sync with the instance, which
    /// callers must surface as a bug rather than replan around.
    pub fn replan_around(
        &self,
        residual: &ResidualInstance,
        pending: &[IndexId],
    ) -> Option<(ReplanOutcome, Vec<IndexId>)> {
        self.replan_around_occupied(residual, pending, &[])
    }

    /// [`Replanner::replan_around`], with slots still occupied by the
    /// in-flight builds the residual was conditioned on: `busy_until[i]` is
    /// the offset from the replan point at which the i-th in-flight build
    /// finishes and its slot frees up. Only slot-aware scoring reads it.
    pub fn replan_around_occupied(
        &self,
        residual: &ResidualInstance,
        pending: &[IndexId],
        busy_until: &[f64],
    ) -> Option<(ReplanOutcome, Vec<IndexId>)> {
        let warm = residual.project_order(pending)?;
        let outcome = self.replan_occupied(residual.instance(), Some(&warm), busy_until);
        let new_pending = residual.lift_order(outcome.deployment.order());
        debug_assert!(
            new_pending
                .iter()
                .all(|i| !residual.in_flight().contains(i)),
            "replan scheduled an in-flight index"
        );
        Some((outcome, new_pending))
    }
}

/// The replan roster: greedy (instant), best-swap tabu, LNS, VNS, CP+ with
/// the in-flight order as its initial incumbent. Fixed seeds — a replan at
/// the same residual instance is reproducible.
fn replan_roster(budget: SearchBudget, warm_start: Option<Deployment>) -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(GreedySolver::new()),
        Box::new(TabuSolver::with_config(TabuConfig {
            strategy: SwapStrategy::Best,
            budget,
            ..TabuConfig::default()
        })),
        Box::new(LnsSolver::with_config(LnsConfig {
            budget,
            ..LnsConfig::default()
        })),
        Box::new(VnsSolver::with_config(VnsConfig {
            budget,
            ..VnsConfig::default()
        })),
        Box::new(CpSolver::with_config(CpConfig {
            budget,
            initial: warm_start,
            ..CpConfig::with_properties(budget)
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use idd_core::IndexId;

    fn residual_like(n: usize) -> ProblemInstance {
        let mut b = ProblemInstance::builder("replan");
        let idx: Vec<IndexId> = (0..n).map(|k| b.add_index(2.0 + (k % 4) as f64)).collect();
        for q in 0..n {
            let qid = b.add_query(40.0 + (q % 5) as f64 * 20.0);
            b.add_plan(qid, vec![idx[q % n]], 7.0);
            b.add_plan(qid, vec![idx[q % n], idx[(q + 2) % n]], 19.0);
        }
        b.add_build_interaction(idx[0], idx[1], 1.0);
        b.build().unwrap()
    }

    #[test]
    fn keep_order_returns_the_warm_start_verbatim() {
        let inst = residual_like(6);
        let warm = Deployment::from_raw([5, 4, 3, 2, 1, 0]);
        let replanner = Replanner::new(ReplanStrategy::KeepOrder, SearchBudget::nodes(10));
        let outcome = replanner.replan(&inst, Some(&warm));
        assert_eq!(outcome.deployment, warm);
        assert_eq!(outcome.solver, "warm-start");
        assert!(!outcome.improved);
        assert_eq!(outcome.warm_start_objective, Some(outcome.objective));
    }

    #[test]
    fn missing_warm_start_falls_back_to_greedy() {
        let inst = residual_like(5);
        let replanner = Replanner::new(ReplanStrategy::KeepOrder, SearchBudget::nodes(10));
        let outcome = replanner.replan(&inst, None);
        assert_eq!(outcome.solver, "greedy");
        assert!(outcome.deployment.is_valid_for(&inst));
        assert!(outcome.warm_start_objective.is_none());
        // A stale warm start (wrong length) is treated as missing.
        let stale = Deployment::from_raw([0, 1]);
        let outcome2 = replanner.replan(&inst, Some(&stale));
        assert_eq!(outcome2.solver, "greedy");
    }

    #[test]
    fn replanning_never_worsens_the_warm_start() {
        let inst = residual_like(7);
        let evaluator = ObjectiveEvaluator::new(&inst);
        let warm = Deployment::identity(7);
        let warm_area = evaluator.evaluate_area(&warm);
        for strategy in [
            ReplanStrategy::KeepOrder,
            ReplanStrategy::Greedy,
            ReplanStrategy::Portfolio {
                cooperation: CooperationPolicy::Off,
                cancel_on_optimal: false,
            },
        ] {
            let outcome =
                Replanner::new(strategy, SearchBudget::nodes(60)).replan(&inst, Some(&warm));
            assert!(
                outcome.objective <= warm_area + 1e-12,
                "{}: {} > {warm_area}",
                strategy.label(),
                outcome.objective
            );
            assert!(outcome.deployment.is_valid_for(&inst));
            assert_eq!(
                evaluator.evaluate_area(&outcome.deployment),
                outcome.objective
            );
            assert_eq!(outcome.improved, outcome.objective < warm_area - 1e-12);
        }
    }

    #[test]
    fn deterministic_portfolio_replan_is_reproducible() {
        let inst = residual_like(6);
        let warm = Deployment::identity(6);
        let run = || {
            Replanner::new(
                ReplanStrategy::Portfolio {
                    cooperation: CooperationPolicy::Off,
                    cancel_on_optimal: false,
                },
                SearchBudget::nodes(50),
            )
            .replan(&inst, Some(&warm))
        };
        let a = run();
        let b = run();
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.solver, b.solver);
    }

    #[test]
    fn replan_around_keeps_in_flight_out_of_the_new_suffix() {
        // Parent world: 6 indexes; i0 built, i1 and i4 in flight, the
        // pending suffix is [i5, i3, i2]. Whatever the strategy returns, the
        // committed indexes must never reappear.
        let parent = residual_like(6);
        let mut built = vec![false; 6];
        built[0] = true;
        let in_flight = [IndexId::new(1), IndexId::new(4)];
        let residual = parent
            .residual_for_replan(&built, &in_flight, &[false; 6])
            .unwrap();
        let pending = [IndexId::new(5), IndexId::new(3), IndexId::new(2)];
        for strategy in [
            ReplanStrategy::KeepOrder,
            ReplanStrategy::Greedy,
            ReplanStrategy::Portfolio {
                cooperation: CooperationPolicy::Off,
                cancel_on_optimal: false,
            },
        ] {
            let replanner = Replanner::new(strategy, SearchBudget::nodes(40));
            let (outcome, new_pending) = replanner
                .replan_around(&residual, &pending)
                .expect("pending is a permutation of the residual");
            // Same index set as the old pending, no committed index leaked.
            let mut sorted = new_pending.clone();
            sorted.sort_unstable_by_key(|i| i.raw());
            assert_eq!(sorted, [IndexId::new(2), IndexId::new(3), IndexId::new(5)]);
            // The warm start survived as a candidate: never worse.
            let warm_area = outcome.warm_start_objective.expect("projected cleanly");
            assert!(outcome.objective <= warm_area + 1e-12);
            // The spliced order extends the frozen commitment verbatim.
            let spliced = residual.splice_around(
                &[IndexId::new(0)],
                &residual.project_order(&new_pending).unwrap(),
            );
            assert!(spliced.starts_with(&[IndexId::new(0), IndexId::new(1), IndexId::new(4)]));
            assert!(spliced.is_valid_for(&parent));
        }
    }

    #[test]
    fn replan_around_rejects_a_desynced_pending_order() {
        let parent = residual_like(5);
        let built = vec![false; 5];
        let residual = parent
            .residual_for_replan(&built, &[IndexId::new(0)], &[false; 5])
            .unwrap();
        let replanner = Replanner::new(ReplanStrategy::Greedy, SearchBudget::nodes(10));
        // Pending that still names the in-flight index is out of sync.
        let stale = [
            IndexId::new(0),
            IndexId::new(1),
            IndexId::new(2),
            IndexId::new(3),
        ];
        assert!(replanner.replan_around(&residual, &stale).is_none());
        // Pending that lost an index is out of sync too.
        assert!(replanner
            .replan_around(&residual, &[IndexId::new(1), IndexId::new(2)])
            .is_none());
    }

    #[test]
    fn slot_aware_scoring_with_one_slot_is_bit_identical_to_serial() {
        // `SlotAware { slots: 1 }` short-circuits to the serial evaluator,
        // so every candidate scores identically and the whole outcome —
        // winner, objective bits, solver label — is unchanged.
        let inst = residual_like(6);
        let warm = Deployment::identity(6);
        let strategy = ReplanStrategy::Portfolio {
            cooperation: CooperationPolicy::Off,
            cancel_on_optimal: false,
        };
        let serial = Replanner::new(strategy, SearchBudget::nodes(50)).replan(&inst, Some(&warm));
        for work_conserving in [false, true] {
            let slot = Replanner::new(strategy, SearchBudget::nodes(50))
                .with_scoring(SuffixScoring::SlotAware {
                    slots: 1,
                    work_conserving,
                })
                .replan(&inst, Some(&warm));
            assert_eq!(slot.objective.to_bits(), serial.objective.to_bits());
            assert_eq!(slot.deployment, serial.deployment);
            assert_eq!(slot.solver, serial.solver);
            assert_eq!(
                slot.warm_start_objective.map(f64::to_bits),
                serial.warm_start_objective.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn slot_aware_scoring_keeps_a_slot_friendly_warm_start() {
        // Three equal-cost indexes; i1 carries the big speedup but is gated
        // behind i0. Serially the greedy order [i0, i1, i2] wins (unlock the
        // 40s speedup as early as possible: area 90·4 + 80·4 + 40·4 = 840 vs
        // the warm start's 90·4 + 80·4 + 72·4 = 968). On two head-of-line
        // slots the picture flips: [i0, i1, i2] idles slot 1 behind the gate
        // (area 90·4 + 80·4 = 680) while the in-flight order [i0, i2, i1]
        // keeps both slots busy (90·4 + 72·4 = 648). Serial scoring must
        // replace the warm start; slot-aware must keep it.
        let mut b = ProblemInstance::builder("slots");
        let i0 = b.add_index(4.0);
        let i1 = b.add_index(4.0);
        let i2 = b.add_index(4.0);
        let q0 = b.add_query(20.0);
        b.add_plan(q0, vec![i0], 10.0);
        let q1 = b.add_query(50.0);
        b.add_plan(q1, vec![i1], 40.0);
        let q2 = b.add_query(20.0);
        b.add_plan(q2, vec![i2], 8.0);
        b.add_precedence(i0, i1);
        let inst = b.build().unwrap();
        let warm = Deployment::from_raw([0, 2, 1]);

        let serial = Replanner::new(ReplanStrategy::Greedy, SearchBudget::nodes(10))
            .replan(&inst, Some(&warm));
        assert_eq!(serial.deployment, Deployment::from_raw([0, 1, 2]));
        assert_eq!(serial.solver, "greedy");
        assert!((serial.objective - 840.0).abs() < 1e-9);
        assert!(serial.improved);

        let slot_aware = Replanner::new(ReplanStrategy::Greedy, SearchBudget::nodes(10))
            .with_scoring(SuffixScoring::SlotAware {
                slots: 2,
                work_conserving: false,
            })
            .replan(&inst, Some(&warm));
        assert_eq!(slot_aware.deployment, warm, "slot-friendly order survives");
        assert_eq!(slot_aware.solver, "warm-start");
        assert!((slot_aware.objective - 648.0).abs() < 1e-9);
        assert_eq!(slot_aware.warm_start_objective, Some(slot_aware.objective));
        assert!(!slot_aware.improved);

        // The reported objective really is the realized two-slot area.
        let realized = SlotScheduleEvaluator::new(&inst, 2)
            .head_of_line()
            .evaluate_area(&slot_aware.deployment);
        assert_eq!(slot_aware.objective.to_bits(), realized.to_bits());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(ReplanStrategy::KeepOrder.label(), "static");
        assert_eq!(ReplanStrategy::Greedy.label(), "greedy");
        assert_eq!(
            ReplanStrategy::Portfolio {
                cooperation: CooperationPolicy::WarmStart,
                cancel_on_optimal: true
            }
            .label(),
            "portfolio"
        );
        assert_eq!(SuffixScoring::Serial.label(), "serial");
        assert_eq!(
            SuffixScoring::SlotAware {
                slots: 4,
                work_conserving: true
            }
            .label(),
            "slot-aware"
        );
        assert_eq!(SuffixScoring::default(), SuffixScoring::Serial);
    }
}
